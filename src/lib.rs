//! # wsf — Well-Structured Futures and Cache Locality
//!
//! Umbrella crate re-exporting the whole workspace: the computation-DAG
//! model ([`dag`]), the cache simulator ([`cache`]), the work-stealing
//! deques ([`deque`]), the parsimonious work-stealing execution simulator
//! ([`core`]), the real futures runtime ([`runtime`]), the workload
//! generators ([`workloads`]) and the experiment harness ([`analysis`]).
//!
//! The workspace reproduces the system described in *"Well-Structured
//! Futures and Cache Locality"* (Maurice Herlihy and Zhiyu Liu, PPoPP 2014):
//! it lets you build future-parallel computation DAGs, classify them as
//! structured / single-touch / local-touch, execute them sequentially or
//! with a simulated parsimonious work-stealing scheduler under either the
//! *future-first* or *parent-first* fork policy, and measure the deviations
//! and additional cache misses that the paper's theorems bound.
//!
//! ## Quick example
//!
//! ```
//! use wsf::prelude::*;
//!
//! // Build the structured single-touch DAG of the paper's Figure 4.
//! let dag = wsf::workloads::figures::fig4(4, 3);
//! assert!(wsf::dag::classify(&dag).is_structured_single_touch());
//!
//! // Sequential baseline and a 4-processor work-stealing execution.
//! let seq = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
//! let par = ParallelSimulator::new(SimConfig {
//!     processors: 4,
//!     cache_lines: 8,
//!     fork_policy: ForkPolicy::FutureFirst,
//!     ..SimConfig::default()
//! })
//! .run(&dag);
//!
//! assert!(par.cache_misses() >= seq.cache_misses());
//! assert!(par.completed);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use wsf_analysis as analysis;
pub use wsf_cache as cache;
pub use wsf_core as core;
pub use wsf_dag as dag;
pub use wsf_deque as deque;
pub use wsf_runtime as runtime;
pub use wsf_server as server;
pub use wsf_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use wsf_cache::{CachePolicy, CacheSim, LruCache};
    pub use wsf_core::{
        ExecutionReport, ForkPolicy, ParallelSimulator, SequentialExecutor, SimConfig,
    };
    pub use wsf_dag::{Block, Dag, DagBuilder, DagClass, EdgeKind, NodeId, ThreadId};
    pub use wsf_runtime::{Runtime, RuntimeBuilder, SpawnPolicy};
}
