//! Scale tests: large `random_single_touch` DAGs must build and simulate
//! within the CI time budget now that the hot path is allocation-free.

use wsf_core::{ParallelSimulator, RandomScheduler, SimConfig, SimScratch};
use wsf_workloads::random::{random_single_touch, RandomConfig};

fn simulate(nodes: usize, processors: usize) {
    let dag = random_single_touch(&RandomConfig {
        target_nodes: nodes,
        seed: 13,
        blocks: 512,
        ..RandomConfig::default()
    });
    assert!(
        dag.num_nodes() >= nodes / 2,
        "generator fell far short of the target: {} nodes",
        dag.num_nodes()
    );
    let config = SimConfig {
        processors,
        cache_lines: 16,
        ..SimConfig::default()
    };
    let sim = ParallelSimulator::new(config);
    let seq = sim.sequential(&dag);
    let mut scratch = SimScratch::new();
    for seed in 0..2u64 {
        let mut sched = RandomScheduler::new(seed);
        let report = sim.run_with_scratch(&dag, &seq, &mut sched, false, &mut scratch);
        assert!(report.completed, "budget must suffice at this scale");
        assert_eq!(report.executed(), dag.num_nodes() as u64);
        assert!(report.deviations() <= report.executed());
    }
}

#[test]
fn simulates_100k_node_random_single_touch() {
    simulate(100_000, 8);
}

/// Heavier sibling for manual profiling:
/// `cargo test -p wsf-core --release --test scale -- --ignored`.
#[test]
#[ignore = "10^6-node run; seconds in release, minutes in debug"]
fn simulates_million_node_random_single_touch() {
    simulate(1_000_000, 8);
}
