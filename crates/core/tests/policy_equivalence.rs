//! The E19 refactor's backward-compatibility contract: the legacy
//! schedulers are *exact* `PolicyScheduler` configurations, pinned
//! step-for-step at the trait level (randomized call sequences) and
//! report-for-report at the full-simulation level — this is what makes the
//! E11–E18 byte-identity across the refactor a theorem rather than a
//! coincidence. Plus the `StealAmount::Half` invariants: exactly-once
//! delivery and a consistent incrementally-maintained non-empty set.

use wsf_core::{
    ForkPolicy, ParallelSimulator, ParsimoniousScheduler, PolicyConfig, PolicyScheduler,
    RandomScheduler, Scheduler, SimConfig, SimScratch, StealAmount, StealContext, VictimOrder,
};
use wsf_dag::NodeId;
use wsf_workloads::random::{random_single_touch, RandomConfig};

/// Deterministic xorshift64* for generating randomized call sequences
/// (proptest-style sampling without the dependency).
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Drives `a` and `b` through an identical randomized sequence of trait
/// calls (victim choices over varying candidate sets, completions, wake
/// probes) and asserts every observable output matches.
fn assert_step_for_step(
    a: &mut dyn Scheduler,
    b: &mut dyn Scheduler,
    procs: usize,
    steps: u64,
    gen_seed: u64,
) {
    let mut rng = Xs(gen_seed | 1);
    let mut candidates: Vec<usize> = Vec::new();
    for step in 0..steps {
        let thief = rng.below(procs as u64) as usize;
        match rng.below(4) {
            0 => {
                let node = NodeId(rng.below(1000) as u32);
                a.on_complete(thief, node, step);
                b.on_complete(thief, node, step);
            }
            1 => {
                assert_eq!(
                    a.is_awake(thief, step),
                    b.is_awake(thief, step),
                    "step {step}"
                );
            }
            _ => {
                // A random candidate subset (possibly empty) of the other
                // processors, ascending — the shape the simulator builds.
                candidates.clear();
                let mask = rng.next();
                candidates.extend((0..procs).filter(|&q| q != thief && mask >> q & 1 == 1));
                let ctx = StealContext::bare(&candidates);
                assert_eq!(
                    a.choose_victim(thief, &ctx),
                    b.choose_victim(thief, &ctx),
                    "step {step}, candidates {candidates:?}"
                );
            }
        }
    }
}

#[test]
fn policy_lowest_one_matches_parsimonious_step_for_step() {
    for patience in [0u32, 1, 2, 3, 7, 16] {
        for gen_seed in [3u64, 11, 42, 2026] {
            let mut policy = PolicyScheduler::new(PolicyConfig {
                order: VictimOrder::LowestId,
                amount: StealAmount::One,
                patience,
                prefer_cached: false,
            });
            let mut legacy = ParsimoniousScheduler::new(patience);
            assert_step_for_step(&mut policy, &mut legacy, 6, 400, gen_seed);
        }
    }
}

#[test]
fn policy_random_one_zero_matches_random_scheduler_step_for_step() {
    // The equivalence includes RNG consumption: both draw exactly one
    // `gen_range` per non-empty candidate list, so interleaving empty and
    // non-empty calls must never desynchronize the streams.
    for rng_seed in [0u64, 7, 0x5eed, u64::MAX] {
        for gen_seed in [5u64, 23, 99] {
            let mut policy = PolicyScheduler::new(PolicyConfig::ws_random(rng_seed));
            let mut legacy = RandomScheduler::new(rng_seed);
            assert_step_for_step(&mut policy, &mut legacy, 8, 400, gen_seed);
        }
    }
}

/// Two full simulations over the same DAG must produce identical reports.
fn assert_reports_identical<S1: Scheduler, S2: Scheduler>(
    config: SimConfig,
    dag: &wsf_dag::Dag,
    mut a: S1,
    mut b: S2,
) {
    let sim = ParallelSimulator::new(config);
    let seq = sim.sequential(dag);
    let mut scratch = SimScratch::new();
    let ra = sim.run_with_scratch(dag, &seq, &mut a, true, &mut scratch);
    let rb = sim.run_with_scratch(dag, &seq, &mut b, true, &mut scratch);
    assert!(ra.completed && rb.completed);
    assert_eq!(ra.makespan, rb.makespan);
    assert_eq!(ra.steals(), rb.steals());
    assert_eq!(ra.deviations(), rb.deviations());
    assert_eq!(ra.cache_misses(), rb.cache_misses());
    let (ta, tb) = (ra.trace.as_ref().unwrap(), rb.trace.as_ref().unwrap());
    assert_eq!(ta.len(), tb.len());
    for (x, y) in ta.iter().zip(tb) {
        assert_eq!((x.step, x.proc, x.node), (y.step, y.proc, y.node));
    }
}

#[test]
fn full_simulations_agree_between_policy_and_legacy_schedulers() {
    let dag = random_single_touch(&RandomConfig {
        target_nodes: 3_000,
        seed: 13,
        ..RandomConfig::default()
    });
    for fork_policy in ForkPolicy::ALL {
        for processors in [2usize, 4, 8] {
            let config = SimConfig {
                processors,
                cache_lines: 16,
                fork_policy,
                ..SimConfig::default()
            };
            assert_reports_identical(
                config,
                &dag,
                PolicyScheduler::new(PolicyConfig::ws_random(config.seed)),
                RandomScheduler::new(config.seed),
            );
            assert_reports_identical(
                config,
                &dag,
                PolicyScheduler::new(PolicyConfig {
                    order: VictimOrder::LowestId,
                    amount: StealAmount::One,
                    patience: 4,
                    prefer_cached: false,
                }),
                ParsimoniousScheduler::new(4),
            );
        }
    }
}

/// Runs `dag` under a half-stealing policy and asserts the two invariants
/// the `StealAmount::Half` transfer must preserve: every node executes
/// exactly once (the multi-entry transfer neither drops nor duplicates
/// deque entries) and the run completes (the incrementally-maintained
/// non-empty set stayed consistent on BOTH sides of the transfer — a stale
/// entry for the drained victim or a missing one for the refilled thief
/// starves the steal loop and blows the step budget).
fn assert_half_steal_invariants(order: VictimOrder, processors: usize, dag: &wsf_dag::Dag) {
    let config = SimConfig {
        processors,
        cache_lines: 16,
        ..SimConfig::default()
    };
    let sim = ParallelSimulator::new(config);
    let seq = sim.sequential(dag);
    let mut scratch = SimScratch::new();
    let mut sched = PolicyScheduler::new(PolicyConfig {
        order,
        amount: StealAmount::Half,
        patience: 0,
        prefer_cached: false,
    });
    let report = sim.run_with_scratch(dag, &seq, &mut sched, true, &mut scratch);
    assert!(
        report.completed,
        "half-stealing run starved ({order:?}, P={processors})"
    );
    assert_eq!(report.executed(), dag.num_nodes() as u64);
    let mut seen = vec![false; dag.num_nodes()];
    for ev in report.trace.as_ref().unwrap() {
        assert!(
            !std::mem::replace(&mut seen[ev.node.0 as usize], true),
            "node {:?} executed twice under steal-half",
            ev.node
        );
    }
    assert!(seen.iter().all(|&s| s), "steal-half dropped nodes");
}

#[test]
fn steal_half_delivers_every_node_exactly_once() {
    let wide = random_single_touch(&RandomConfig {
        target_nodes: 4_000,
        seed: 21,
        ..RandomConfig::default()
    });
    let sort = wsf_workloads::sort::mergesort(256, 8);
    for order in [
        VictimOrder::Random(1),
        VictimOrder::LowestId,
        VictimOrder::RoundRobin,
        VictimOrder::MostLoaded,
        VictimOrder::LastVictim,
    ] {
        for processors in [2usize, 4, 8] {
            assert_half_steal_invariants(order, processors, &wide);
        }
        assert_half_steal_invariants(order, 4, &sort);
    }
}

#[test]
fn theorem_bounds_hold_over_sampled_policy_points() {
    // Theorem 8/10/12 conformance extended from the two legacy schedulers
    // to sampled `PolicyScheduler` points: the deviation bound O(P·T∞²)
    // (in the repo's constant-free reading, `bounds::thm8_deviations`) and
    // the miss bound C·deviations hold for every policy in the composable
    // space — the proofs only use work-stealing structure (steals happen
    // into empty processors from deque tops), which every point preserves.
    use wsf_core::bounds;

    let dag = random_single_touch(&RandomConfig {
        target_nodes: 2_000,
        seed: 31,
        ..RandomConfig::default()
    });
    let sampled = [
        PolicyConfig::ws_random(9),
        PolicyConfig::parsimonious(2),
        PolicyConfig::ws_half(9),
        PolicyConfig::rr_eager(),
        PolicyConfig::loaded_frugal(),
        PolicyConfig {
            order: VictimOrder::LastVictim,
            amount: StealAmount::Half,
            patience: 1,
            prefer_cached: true,
        },
    ];
    for fork_policy in ForkPolicy::ALL {
        for processors in [2usize, 4] {
            let config = SimConfig {
                processors,
                cache_lines: 16,
                fork_policy,
                ..SimConfig::default()
            };
            let sim = ParallelSimulator::new(config);
            let seq = sim.sequential(&dag);
            let span = wsf_dag::span(&dag);
            let mut scratch = SimScratch::new();
            for cfg in sampled {
                let mut sched = PolicyScheduler::new(cfg);
                let report = sim.run_with_scratch(&dag, &seq, &mut sched, false, &mut scratch);
                assert!(report.completed);
                let dev = report.deviations();
                let dev_bound = bounds::thm8_deviations(processors as u64, span);
                assert!(
                    dev <= dev_bound,
                    "{cfg:?} at P={processors}: {dev} deviations exceed the \
                     Theorem-8 bound {dev_bound}"
                );
                let extra = report.additional_misses(&seq);
                let miss_bound = bounds::thm8_additional_misses(
                    config.cache_lines as u64,
                    processors as u64,
                    span,
                );
                assert!(
                    extra <= miss_bound,
                    "{cfg:?} at P={processors}: {extra} extra misses exceed the \
                     Theorem-8 miss bound {miss_bound}"
                );
            }
        }
    }
}
