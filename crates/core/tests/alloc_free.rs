//! Proves the simulator hot path is allocation-free in steady state.
//!
//! A counting global allocator tracks this thread's allocations. After a
//! warm-up run that grows every [`SimScratch`] buffer to capacity, a full
//! `run_with_scratch` must perform only the O(1) allocations of the
//! returned report — a count that is tiny and, crucially, *independent of
//! the DAG size and step count*, which is only possible if zero
//! allocations happen per step.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use wsf_core::{ParallelSimulator, RandomScheduler, SimConfig, SimScratch};
use wsf_workloads::random::{random_single_touch, RandomConfig};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The system allocator plus a per-thread allocation counter (per-thread so
/// the test harness's other threads cannot disturb the measurement).
struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter update allocates
// nothing (a `const`-initialized thread-local `Cell<u64>`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Runs the simulator once with `scratch` and returns how many allocations
/// the run performed on this thread.
fn measured_run(
    sim: &ParallelSimulator,
    dag: &wsf_dag::Dag,
    seq: &wsf_core::SeqReport,
    scratch: &mut SimScratch,
) -> u64 {
    let mut sched = RandomScheduler::new(sim.config().seed);
    let before = allocs();
    let report = sim.run_with_scratch(dag, seq, &mut sched, false, scratch);
    let count = allocs() - before;
    assert!(report.completed);
    count
}

#[test]
fn steady_state_runs_do_not_allocate_per_step() {
    let config = SimConfig {
        processors: 8,
        cache_lines: 16,
        ..SimConfig::default()
    };
    let sim = ParallelSimulator::new(config);

    // Largest DAG first, so its warm-up grows every buffer to the maximum
    // capacity any later run needs.
    let large = random_single_touch(&RandomConfig {
        target_nodes: 30_000,
        seed: 5,
        ..RandomConfig::default()
    });
    let small = random_single_touch(&RandomConfig {
        target_nodes: 5_000,
        seed: 6,
        ..RandomConfig::default()
    });
    let seq_large = sim.sequential(&large);
    let seq_small = sim.sequential(&small);

    let mut scratch = SimScratch::new();
    let _warm = measured_run(&sim, &large, &seq_large, &mut scratch);

    let steady_large = measured_run(&sim, &large, &seq_large, &mut scratch);
    let steady_small = measured_run(&sim, &small, &seq_small, &mut scratch);
    let steady_large_again = measured_run(&sim, &large, &seq_large, &mut scratch);

    // The only remaining allocations are the O(1) construction of the
    // returned report (its per-processor stats vector).
    assert!(
        steady_large <= 4,
        "steady-state run allocated {steady_large} times; the hot loop must not allocate"
    );
    assert_eq!(
        steady_large, steady_large_again,
        "steady-state allocation count must be stable"
    );
    assert_eq!(
        steady_large, steady_small,
        "allocation count must be independent of DAG size ({steady_large} vs {steady_small} \
         for 30k- vs 5k-node DAGs) — anything else means per-step or per-node allocation"
    );
}

#[test]
fn stack_distance_reset_is_allocation_free_in_steady_state() {
    // The one-pass profiler's `reset()` is a generation bump: re-profiling
    // the same trace through one warmed profiler must allocate nothing at
    // all — not per access, not per reset, not for the histogram.
    use wsf_cache::StackDistanceSim;
    use wsf_core::{ForkPolicy, SequentialExecutor};

    let dag = wsf_workloads::sort::mergesort(512, 8);
    let seq = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
    let mut sd = StackDistanceSim::with_block_hint(dag.block_space());

    let profile = |sd: &mut StackDistanceSim| -> u64 {
        let before = allocs();
        sd.reset();
        for &node in &seq.order {
            sd.access_opt(dag.block_of(node).map(|b| b.0));
        }
        allocs() - before
    };

    let _warm = profile(&mut sd);
    let steady = profile(&mut sd);
    let steady_again = profile(&mut sd);
    assert_eq!(
        steady, 0,
        "steady-state reset + re-profile allocated {steady} times; \
         reset must be a pure generation bump"
    );
    assert_eq!(steady, steady_again);
    assert!(sd.accesses() > 0);
}

#[test]
fn fresh_scratch_amortizes_after_first_run() {
    // Even without pre-warming, the second identical run through one
    // scratch allocates only the O(1) report.
    let config = SimConfig {
        processors: 4,
        ..SimConfig::default()
    };
    let sim = ParallelSimulator::new(config);
    let dag = random_single_touch(&RandomConfig {
        target_nodes: 8_000,
        seed: 9,
        ..RandomConfig::default()
    });
    let seq = sim.sequential(&dag);
    let mut scratch = SimScratch::new();
    let first = measured_run(&sim, &dag, &seq, &mut scratch);
    let second = measured_run(&sim, &dag, &seq, &mut scratch);
    assert!(second <= 4, "second run allocated {second} times");
    assert!(
        first > second,
        "first run ({first}) must be the one paying the buffer growth"
    );
}

#[test]
fn steal_half_and_residency_context_stay_allocation_free() {
    // The E19 policy machinery must not reintroduce per-step allocation:
    // `StealAmount::Half` stages multi-entry transfers in the scratch
    // `stolen` buffer and `prefer_cached` fills the scratch residency
    // view on every steal attempt — both reuse, never allocate, in steady
    // state. Exercised through the most demanding `PolicyScheduler` point
    // (MostLoaded needs the depth view too).
    use wsf_core::{PolicyConfig, PolicyScheduler, StealAmount, VictimOrder};

    let config = SimConfig {
        processors: 8,
        cache_lines: 16,
        ..SimConfig::default()
    };
    let sim = ParallelSimulator::new(config);
    let dag = random_single_touch(&RandomConfig {
        target_nodes: 20_000,
        seed: 12,
        ..RandomConfig::default()
    });
    let seq = sim.sequential(&dag);
    let mut scratch = SimScratch::new();

    let run = |scratch: &mut SimScratch| -> u64 {
        let mut sched = PolicyScheduler::new(PolicyConfig {
            order: VictimOrder::MostLoaded,
            amount: StealAmount::Half,
            patience: 1,
            prefer_cached: true,
        });
        let before = allocs();
        let report = sim.run_with_scratch(&dag, &seq, &mut sched, false, scratch);
        let count = allocs() - before;
        assert!(report.completed);
        count
    };

    let _warm = run(&mut scratch);
    let steady = run(&mut scratch);
    let steady_again = run(&mut scratch);
    assert!(
        steady <= 4,
        "steady-state steal-half run allocated {steady} times; the staging \
         and residency buffers must come from the scratch"
    );
    assert_eq!(steady, steady_again);
}
