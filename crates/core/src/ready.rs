//! Readiness tracking and the enabling rule shared by the sequential and
//! parallel executors.

use crate::policy::ForkPolicy;
use wsf_dag::{Dag, EdgeKind, NodeId};

/// Tracks which nodes have executed and how many of each node's
/// dependencies are still outstanding.
#[derive(Clone, Debug)]
pub struct ReadyTracker {
    remaining: Vec<u32>,
    executed: Vec<bool>,
    executed_count: usize,
}

impl Default for ReadyTracker {
    /// An empty tracker; call [`ReadyTracker::reset`] before use.
    fn default() -> Self {
        ReadyTracker {
            remaining: Vec::new(),
            executed: Vec::new(),
            executed_count: 0,
        }
    }
}

impl ReadyTracker {
    /// Creates a tracker for `dag` with nothing executed yet.
    pub fn new(dag: &Dag) -> Self {
        ReadyTracker {
            remaining: dag.in_degrees(),
            executed: vec![false; dag.num_nodes()],
            executed_count: 0,
        }
    }

    /// Whether `node` has already executed.
    #[inline]
    pub fn is_executed(&self, node: NodeId) -> bool {
        self.executed[node.index()]
    }

    /// Whether every dependency of `node` has executed (and `node` itself
    /// has not).
    #[inline]
    pub fn is_ready(&self, node: NodeId) -> bool {
        !self.executed[node.index()] && self.remaining[node.index()] == 0
    }

    /// Number of nodes executed so far.
    #[inline]
    pub fn executed_count(&self) -> usize {
        self.executed_count
    }

    /// Marks `node` executed and returns its children that became ready as
    /// a consequence, in out-edge order.
    pub fn complete(&mut self, dag: &Dag, node: NodeId) -> Vec<NodeId> {
        let mut enabled = Vec::with_capacity(2);
        self.complete_into(dag, node, &mut enabled);
        enabled
    }

    /// Marks `node` executed and writes its newly-ready children into
    /// `enabled` (cleared first), in out-edge order.
    ///
    /// This is the allocation-free variant of [`ReadyTracker::complete`]:
    /// the executors call it with a buffer they reuse across completions, so
    /// the hot loop performs no per-node heap allocation once the buffer has
    /// grown to its steady-state capacity.
    pub fn complete_into(&mut self, dag: &Dag, node: NodeId, enabled: &mut Vec<NodeId>) {
        debug_assert!(
            self.remaining[node.index()] == 0,
            "completing a node whose dependencies have not run"
        );
        debug_assert!(!self.executed[node.index()], "node completed twice");
        self.executed[node.index()] = true;
        self.executed_count += 1;
        enabled.clear();
        for e in dag.node(node).out_edges() {
            let r = &mut self.remaining[e.node.index()];
            *r -= 1;
            if *r == 0 {
                enabled.push(e.node);
            }
        }
    }

    /// Re-initializes the tracker for `dag`, reusing the existing storage.
    ///
    /// Equivalent to `*self = ReadyTracker::new(dag)` but without allocating
    /// when the tracker's buffers already have enough capacity, which lets a
    /// [`crate::SimScratch`] run many simulations with zero steady-state
    /// heap traffic.
    pub fn reset(&mut self, dag: &Dag) {
        self.remaining.clear();
        self.remaining
            .extend(dag.node_ids().map(|id| dag.node(id).in_degree() as u32));
        self.executed.clear();
        self.executed.resize(dag.num_nodes(), false);
        self.executed_count = 0;
    }
}

/// What a processor decides to do with the children enabled by completing a
/// node: execute `next` (if any) and push `push` (if any) onto its deque.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct Continuation {
    /// The child the processor executes next.
    pub next: Option<NodeId>,
    /// The child the processor pushes onto the bottom of its deque.
    pub push: Option<NodeId>,
}

/// Applies the parsimonious scheduling rule to the children of `node` that
/// just became ready.
///
/// * At a **fork** both children are enabled; `policy` chooses which one to
///   execute first, and the other is pushed.
/// * Otherwise, if two children became ready (a node that both continues
///   its thread and enables a touch in another thread), the continuation
///   child is executed and the touch is pushed, keeping the processor on
///   its own thread.
/// * With a single enabled child the processor simply continues with it;
///   with none it will fall back to its deque.
pub fn schedule_enabled(
    dag: &Dag,
    node: NodeId,
    enabled: &[NodeId],
    policy: ForkPolicy,
) -> Continuation {
    match enabled {
        [] => Continuation::default(),
        [only] => Continuation {
            next: Some(*only),
            push: None,
        },
        _ => {
            if dag.is_fork(node) {
                let left = dag.left_child(node).expect("fork has a future child");
                let right = dag.right_child(node).expect("fork has a right child");
                debug_assert!(enabled.contains(&left) && enabled.contains(&right));
                match policy {
                    ForkPolicy::FutureFirst => Continuation {
                        next: Some(left),
                        push: Some(right),
                    },
                    ForkPolicy::ParentFirst => Continuation {
                        next: Some(right),
                        push: Some(left),
                    },
                }
            } else {
                // Non-fork node enabling two children: prefer to stay on the
                // current thread (the continuation successor), push the rest.
                let cont = dag
                    .node(node)
                    .out_edges()
                    .iter()
                    .find(|e| e.kind == EdgeKind::Continuation)
                    .map(|e| e.node)
                    .filter(|n| enabled.contains(n));
                match cont {
                    Some(c) => {
                        let other = enabled.iter().copied().find(|&n| n != c);
                        Continuation {
                            next: Some(c),
                            push: other,
                        }
                    }
                    None => Continuation {
                        next: Some(enabled[0]),
                        push: enabled.get(1).copied(),
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_dag::DagBuilder;

    fn tiny() -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.chain(f.future_thread, 1);
        b.task(main);
        b.touch_thread(main, f.future_thread);
        b.task(main);
        b.finish().unwrap()
    }

    #[test]
    fn tracker_counts_down_dependencies() {
        let dag = tiny();
        let mut t = ReadyTracker::new(&dag);
        assert!(t.is_ready(dag.root()));
        assert!(!t.is_executed(dag.root()));

        let enabled = t.complete(&dag, dag.root());
        assert_eq!(enabled.len(), 1, "root enables the fork");
        assert!(t.is_executed(dag.root()));
        assert_eq!(t.executed_count(), 1);

        let fork = enabled[0];
        let enabled = t.complete(&dag, fork);
        assert_eq!(enabled.len(), 2, "a fork enables both children");

        // The touch is not ready until both parents executed.
        let touch = dag.touches().next().unwrap();
        assert!(!t.is_ready(touch));
    }

    #[test]
    fn fork_policy_selects_child() {
        let dag = tiny();
        let fork = dag.forks().next().unwrap();
        let left = dag.left_child(fork).unwrap();
        let right = dag.right_child(fork).unwrap();
        let enabled = vec![left, right];

        let c = schedule_enabled(&dag, fork, &enabled, ForkPolicy::FutureFirst);
        assert_eq!(c.next, Some(left));
        assert_eq!(c.push, Some(right));

        let c = schedule_enabled(&dag, fork, &enabled, ForkPolicy::ParentFirst);
        assert_eq!(c.next, Some(right));
        assert_eq!(c.push, Some(left));
    }

    #[test]
    fn single_and_zero_enabled() {
        let dag = tiny();
        let c = schedule_enabled(&dag, dag.root(), &[NodeId(1)], ForkPolicy::FutureFirst);
        assert_eq!(c.next, Some(NodeId(1)));
        assert_eq!(c.push, None);

        let c = schedule_enabled(&dag, dag.root(), &[], ForkPolicy::FutureFirst);
        assert_eq!(c, Continuation::default());
    }

    #[test]
    fn non_fork_double_enable_prefers_continuation() {
        // A future thread whose interior node supplies a touch: completing
        // that node can enable both its continuation and the touch.
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        let supplier = f.future_first;
        b.chain(f.future_thread, 1);
        b.task(main); // right child
        let touch1 = b.touch(main, supplier);
        b.touch_thread(main, f.future_thread);
        b.task(main);
        let dag = b.finish().unwrap();

        let cont_succ = dag.node(supplier).continuation_successor().unwrap();
        let c = schedule_enabled(
            &dag,
            supplier,
            &[cont_succ, touch1],
            ForkPolicy::FutureFirst,
        );
        assert_eq!(c.next, Some(cont_succ));
        assert_eq!(c.push, Some(touch1));

        // Order of the enabled slice must not matter.
        let c2 = schedule_enabled(
            &dag,
            supplier,
            &[touch1, cont_succ],
            ForkPolicy::FutureFirst,
        );
        assert_eq!(c, c2);
    }
}
