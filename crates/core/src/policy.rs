//! Scheduling policies for the parsimonious work-stealing scheduler.

/// Which child of a fork the executing processor runs first.
///
/// Section 5 of the paper shows this choice dominates the cache locality of
/// structured single-touch computations: running the *future thread* first
/// yields `O(C·P·T∞²)` additional misses (Theorem 8), while running the
/// *parent thread* first can incur `Ω(C·t·T∞)` additional misses
/// (Theorem 10).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum ForkPolicy {
    /// Execute the spawned future thread (the fork's left child) first and
    /// push the parent continuation onto the deque. This is the
    /// "child-first" / "work-first" strategy of Cilk-style schedulers and
    /// the policy the paper recommends.
    #[default]
    FutureFirst,
    /// Execute the parent continuation (the fork's right child) first and
    /// push the future thread onto the deque ("helper-first" / "parent
    /// stealing").
    ParentFirst,
}

impl ForkPolicy {
    /// All policies, in the order they are reported by the benches.
    pub const ALL: [ForkPolicy; 2] = [ForkPolicy::FutureFirst, ForkPolicy::ParentFirst];

    /// A short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ForkPolicy::FutureFirst => "future-first",
            ForkPolicy::ParentFirst => "parent-first",
        }
    }
}

impl std::fmt::Display for ForkPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_default() {
        assert_eq!(ForkPolicy::FutureFirst.label(), "future-first");
        assert_eq!(ForkPolicy::ParentFirst.to_string(), "parent-first");
        assert_eq!(ForkPolicy::default(), ForkPolicy::FutureFirst);
        assert_eq!(ForkPolicy::ALL.len(), 2);
    }
}
