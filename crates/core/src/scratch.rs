//! Reusable simulation state, so repeated runs allocate nothing per step.
//!
//! A [`SimScratch`] owns every buffer [`crate::ParallelSimulator`] needs
//! during a run: the per-processor deques and caches, the readiness
//! tracker, the sequential-predecessor table, the steal-candidate list and
//! the set of processors with non-empty deques. A sweep that simulates the
//! same (or similarly sized) DAGs over and over passes one scratch to
//! [`crate::ParallelSimulator::run_with_scratch`] and pays for allocation
//! only until every buffer reaches its steady-state capacity — after that,
//! a whole run performs O(1) allocations (the returned report) and a step
//! performs none.

use crate::ready::ReadyTracker;
use crate::report::ProcStats;
use wsf_cache::{CachePolicy, CacheSim};
use wsf_dag::NodeId;
use wsf_deque::SimDeque;

/// Per-processor simulation state (deque, current node, private cache).
pub(crate) struct Proc {
    pub(crate) deque: SimDeque<NodeId>,
    /// The node currently being executed and its remaining weight.
    pub(crate) current: Option<(NodeId, u32)>,
    pub(crate) last_completed: Option<NodeId>,
    pub(crate) cache: CacheSim,
    pub(crate) stats: ProcStats,
}

/// The set of processors whose deques are non-empty, maintained
/// incrementally as pushes, pops and steals happen.
///
/// Membership is a boolean per processor (O(1) queries — this is how the
/// simulator validates a scheduler's victim choice) and the members
/// themselves are kept in a sorted vector so the candidate list handed to
/// [`crate::Scheduler::choose_victim`] is produced in ascending processor
/// order, exactly as the previous rebuild-every-step code did, in
/// O(candidates) time and with zero allocation.
#[derive(Default)]
pub(crate) struct NonEmptySet {
    members: Vec<usize>,
    present: Vec<bool>,
}

impl NonEmptySet {
    /// Empties the set and re-sizes it for `n` processors.
    pub(crate) fn reset(&mut self, n: usize) {
        self.members.clear();
        self.members.reserve(n);
        self.present.clear();
        self.present.resize(n, false);
    }

    /// Whether processor `q` currently has a non-empty deque.
    #[inline]
    pub(crate) fn contains(&self, q: usize) -> bool {
        self.present.get(q).copied().unwrap_or(false)
    }

    /// The members in ascending order.
    #[inline]
    pub(crate) fn members(&self) -> &[usize] {
        &self.members
    }

    /// Records whether `q`'s deque is non-empty after an operation on it.
    pub(crate) fn sync(&mut self, q: usize, nonempty: bool) {
        if self.present[q] == nonempty {
            return;
        }
        self.present[q] = nonempty;
        let pos = self.members.partition_point(|&m| m < q);
        if nonempty {
            self.members.insert(pos, q);
        } else {
            self.members.remove(pos);
        }
    }
}

/// Reusable buffers for [`crate::ParallelSimulator::run_with_scratch`].
///
/// Create one with [`SimScratch::new`] and pass it to every run of a sweep;
/// the buffers are re-initialized (not re-allocated) per run. The scratch
/// remembers the cache configuration its processors were built with and
/// transparently rebuilds them when a run uses a different configuration.
///
/// ```
/// use wsf_core::{ForkPolicy, ParallelSimulator, RandomScheduler, SimConfig, SimScratch};
/// use wsf_dag::DagBuilder;
///
/// let mut b = DagBuilder::new();
/// let main = b.main_thread();
/// let f = b.fork(main);
/// b.chain(f.future_thread, 3);
/// b.task(main);
/// b.touch_thread(main, f.future_thread);
/// b.task(main);
/// let dag = b.finish().unwrap();
///
/// let sim = ParallelSimulator::new(SimConfig::new(2, 8, ForkPolicy::FutureFirst));
/// let seq = sim.sequential(&dag);
/// let mut scratch = SimScratch::new();
/// for seed in 0..4 {
///     let mut sched = RandomScheduler::new(seed);
///     let report = sim.run_with_scratch(&dag, &seq, &mut sched, false, &mut scratch);
///     assert!(report.completed);
/// }
/// ```
#[derive(Default)]
pub struct SimScratch {
    pub(crate) procs: Vec<Proc>,
    pub(crate) nonempty: NonEmptySet,
    pub(crate) candidates: Vec<usize>,
    /// Per-candidate deque depths, parallel to `candidates` (the
    /// [`crate::StealContext`] load view).
    pub(crate) depths: Vec<usize>,
    /// Per-candidate "victim's top block is resident in the thief's cache",
    /// parallel to `candidates`; filled only for schedulers that ask for it
    /// via [`crate::Scheduler::wants_residency`].
    pub(crate) resident: Vec<bool>,
    /// Staging buffer for multi-entry steals ([`crate::StealAmount::Half`]).
    pub(crate) stolen: Vec<NodeId>,
    pub(crate) enabled: Vec<NodeId>,
    pub(crate) seq_prev: Vec<Option<NodeId>>,
    pub(crate) tracker: ReadyTracker,
    /// The `(policy, lines)` the current `procs` caches were built with.
    cache_config: Option<(CachePolicy, usize)>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Prepares the per-processor state for a run with `p_count` processors
    /// and the given cache configuration, reusing existing storage when the
    /// configuration matches.
    ///
    /// `block_space` is the DAG's dense block range (see
    /// `wsf_dag::Dag::block_space`): it seeds the direct-mapped block→slot
    /// index of large-capacity caches. It is a pre-sizing hint only — the
    /// caches stay correct for any block id — so a scratch built for one
    /// DAG is reused as-is for another with the same `(policy, lines)`; the
    /// per-run [`wsf_cache::CacheSim::reset`] is O(1) (a generation bump)
    /// and keeps the arena and index buffers allocated, preserving the
    /// allocation-free steady state that `crates/core/tests/alloc_free.rs`
    /// locks in.
    pub(crate) fn reset_procs(
        &mut self,
        p_count: usize,
        policy: CachePolicy,
        lines: usize,
        block_space: usize,
    ) {
        if self.cache_config != Some((policy, lines)) || self.procs.len() != p_count {
            self.procs.clear();
            self.procs.extend((0..p_count).map(|_| Proc {
                deque: SimDeque::new(),
                current: None,
                last_completed: None,
                cache: CacheSim::with_block_hint(policy, lines, block_space),
                stats: ProcStats::default(),
            }));
            self.cache_config = Some((policy, lines));
        } else {
            for proc in &mut self.procs {
                proc.deque.clear();
                proc.current = None;
                proc.last_completed = None;
                proc.cache.reset();
                proc.stats = ProcStats::default();
            }
        }
        self.nonempty.reset(p_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonempty_set_keeps_members_sorted() {
        let mut s = NonEmptySet::default();
        s.reset(8);
        for q in [5, 1, 7, 3] {
            s.sync(q, true);
        }
        assert_eq!(s.members(), &[1, 3, 5, 7]);
        assert!(s.contains(5) && !s.contains(0));
        s.sync(5, false);
        s.sync(5, false); // idempotent
        assert_eq!(s.members(), &[1, 3, 7]);
        s.sync(1, true); // already present: no duplicate
        assert_eq!(s.members(), &[1, 3, 7]);
        assert!(!s.contains(9), "out-of-range queries are false");
    }

    #[test]
    fn reset_procs_reuses_matching_config() {
        let mut scratch = SimScratch::new();
        scratch.reset_procs(4, CachePolicy::Lru, 8, 64);
        scratch.procs[2].stats.steals = 9;
        scratch.reset_procs(4, CachePolicy::Lru, 8, 64);
        assert_eq!(scratch.procs.len(), 4);
        assert_eq!(scratch.procs[2].stats.steals, 0, "stats cleared on reuse");
        scratch.reset_procs(2, CachePolicy::Lru, 16, 64);
        assert_eq!(scratch.procs.len(), 2);
        assert_eq!(scratch.procs[0].cache.capacity(), 16);
    }

    #[test]
    fn reset_procs_reuses_caches_across_differing_block_spaces() {
        // The block-space hint pre-sizes the index; a different hint with
        // the same (policy, lines) must not force a rebuild.
        let mut scratch = SimScratch::new();
        scratch.reset_procs(2, CachePolicy::Lru, 4096, 64);
        scratch.procs[0].cache.access(63);
        scratch.reset_procs(2, CachePolicy::Lru, 4096, 1 << 16);
        assert!(!scratch.procs[0].cache.contains(63), "reset cleared it");
        // Blocks far past the original hint still work (index grows).
        assert!(scratch.procs[0].cache.access(60_000).is_miss());
        assert!(scratch.procs[0].cache.contains(60_000));
    }
}
