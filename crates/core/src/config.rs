//! Configuration of the execution simulator.

use crate::policy::ForkPolicy;
use wsf_cache::CachePolicy;

/// Configuration of a simulated parallel execution.
#[derive(Copy, Clone, Debug)]
pub struct SimConfig {
    /// Number of simulated processors `P`.
    pub processors: usize,
    /// Cache lines per processor `C`.
    pub cache_lines: usize,
    /// Cache replacement policy (the paper's model is fully associative
    /// LRU).
    pub cache_policy: CachePolicy,
    /// Which child of a fork is executed first.
    pub fork_policy: ForkPolicy,
    /// Seed for the default random steal scheduler.
    pub seed: u64,
    /// Upper bound on simulated steps before the simulator gives up and
    /// reports an incomplete execution (guards against adversary scripts
    /// that deadlock the computation). `None` selects an automatic bound
    /// proportional to the DAG's work.
    pub max_steps: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            processors: 2,
            cache_lines: 8,
            cache_policy: CachePolicy::Lru,
            fork_policy: ForkPolicy::FutureFirst,
            seed: 0x5eed,
            max_steps: None,
        }
    }
}

impl SimConfig {
    /// Convenience constructor for the common case.
    pub fn new(processors: usize, cache_lines: usize, fork_policy: ForkPolicy) -> Self {
        SimConfig {
            processors,
            cache_lines,
            fork_policy,
            ..SimConfig::default()
        }
    }

    /// Returns a copy with a different seed (used for expectation-style
    /// experiments that average over many schedules).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The step budget for a DAG with total work `work`.
    pub fn step_budget(&self, work: u64) -> u64 {
        self.max_steps
            .unwrap_or_else(|| work.saturating_mul(self.processors as u64 + 2) * 4 + 10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = SimConfig::default();
        assert_eq!(c.processors, 2);
        assert_eq!(c.cache_lines, 8);
        assert_eq!(c.fork_policy, ForkPolicy::FutureFirst);
        assert!(c.max_steps.is_none());
        assert!(c.step_budget(100) > 100);
    }

    #[test]
    fn explicit_budget_wins() {
        let mut c = SimConfig::new(4, 16, ForkPolicy::ParentFirst);
        assert_eq!(c.processors, 4);
        c.max_steps = Some(123);
        assert_eq!(c.step_budget(1_000_000), 123);
        let seeded = c.with_seed(99);
        assert_eq!(seeded.seed, 99);
    }
}
