//! Steal scheduling: who is awake, and whom a thief steals from.
//!
//! The upper-bound theorems of the paper are statements *in expectation*
//! over the random choices of the work-stealing scheduler; the lower-bound
//! theorems exhibit specific adversarial schedules ("processor 2 falls
//! asleep just before executing w; processor 1 steals from it; ...").
//! The [`Scheduler`] trait abstracts over both: [`RandomScheduler`] picks
//! victims uniformly at random from a seeded RNG, while
//! [`ScriptedScheduler`] replays the adversarial scenarios used in the
//! proofs of Theorems 9 and 10.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use wsf_dag::NodeId;

/// Controls processor wake state and steal-victim selection during a
/// simulated execution.
pub trait Scheduler {
    /// Called whenever `proc` completes `node` at `step`.
    fn on_complete(&mut self, _proc: usize, _node: NodeId, _step: u64) {}

    /// Called when a step passes in which no awake processor made progress
    /// and no work is in flight (the execution would otherwise be stuck).
    fn on_stalled(&mut self, _step: u64) {}

    /// Whether `proc` may act during `step`.
    fn is_awake(&mut self, _proc: usize, _step: u64) -> bool {
        true
    }

    /// Chooses a steal victim for `thief` among `candidates` (processors
    /// with non-empty deques, excluding the thief itself). Returning `None`
    /// means the thief idles this step.
    fn choose_victim(&mut self, thief: usize, candidates: &[usize]) -> Option<usize>;
}

/// The default scheduler: every processor is always awake and victims are
/// chosen uniformly at random, as in the Arora–Blumofe–Plaxton analysis the
/// paper builds on.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    /// Creates a scheduler seeded with `seed` (deterministic per seed).
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose_victim(&mut self, _thief: usize, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        }
    }
}

/// A scheduler that always steals from the lowest-numbered candidate.
/// Useful for fully deterministic tests.
#[derive(Clone, Debug, Default)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn choose_victim(&mut self, _thief: usize, candidates: &[usize]) -> Option<usize> {
        candidates.first().copied()
    }
}

/// A deterministic, steal-frugal scheduler: a thief must sit out
/// `patience` consecutive steal opportunities before it is allowed to
/// steal, and then always robs the lowest-numbered candidate.
///
/// Parsimonious work stealing (Arora–Blumofe–Plaxton, and the model of
/// Section 3) already steals only when a processor's own deque is empty;
/// this scheduler is the *steal-frugal* deterministic baseline on top of
/// that rule — it trades makespan for locality by letting busy processors
/// run ahead instead of eagerly migrating work, and it makes experiment
/// tables reproducible byte for byte because no randomness is involved.
/// `patience = 0` behaves exactly like [`GreedyScheduler`].
#[derive(Clone, Debug)]
pub struct ParsimoniousScheduler {
    patience: u32,
    waited: Vec<u32>,
}

impl ParsimoniousScheduler {
    /// Creates a scheduler whose thieves wait out `patience` steal
    /// opportunities before actually stealing.
    pub fn new(patience: u32) -> Self {
        ParsimoniousScheduler {
            patience,
            waited: Vec::new(),
        }
    }

    fn waited_mut(&mut self, proc: usize) -> &mut u32 {
        if self.waited.len() <= proc {
            self.waited.resize(proc + 1, 0);
        }
        &mut self.waited[proc]
    }
}

impl Scheduler for ParsimoniousScheduler {
    fn on_complete(&mut self, proc: usize, _node: NodeId, _step: u64) {
        // The processor had work, so its next idle phase starts from a
        // fresh waiting budget.
        *self.waited_mut(proc) = 0;
    }

    fn choose_victim(&mut self, thief: usize, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let patience = self.patience;
        let waited = self.waited_mut(thief);
        if *waited < patience {
            *waited += 1;
            return None;
        }
        *waited = 0;
        candidates.first().copied()
    }
}

/// When a sleeping processor wakes up again.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WakeCondition {
    /// Wake once the given node has been executed (by anyone).
    AfterNode(NodeId),
    /// Wake when the execution would otherwise be stuck: no awake processor
    /// can make progress. Models the proofs' "after p1 finishes, p2 wakes
    /// up".
    WhenStalled,
    /// Wake at the given absolute step.
    AtStep(u64),
    /// Never wake up again ("falls asleep forever").
    Never,
}

/// One scripted sleep directive: when `proc` completes `after`, it falls
/// asleep until `until`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SleepDirective {
    /// The processor that falls asleep.
    pub proc: usize,
    /// The node whose completion (by that processor) triggers the sleep.
    pub after: NodeId,
    /// When the processor wakes up again.
    pub until: WakeCondition,
}

/// A deterministic, scripted adversary.
///
/// Built from a list of [`SleepDirective`]s plus per-thief victim
/// preference lists. Victim preferences are consulted in order; if none of
/// the preferred victims is a candidate, the lowest-numbered candidate is
/// used (set `strict_victims` to make the thief idle instead).
#[derive(Clone, Debug, Default)]
pub struct ScriptedScheduler {
    sleep_after: HashMap<(usize, u32), WakeCondition>,
    victim_preference: HashMap<usize, Vec<usize>>,
    strict_victims: bool,
    asleep: HashMap<usize, WakeCondition>,
    executed_nodes: std::collections::HashSet<u32>,
}

impl ScriptedScheduler {
    /// Creates an empty script (equivalent to [`GreedyScheduler`]).
    pub fn new() -> Self {
        ScriptedScheduler::default()
    }

    /// Puts `proc` to sleep from the very beginning of the execution, until
    /// `until` holds. Used to keep a processor out of the race for the first
    /// few steals while the proof's scenario is being set up.
    pub fn initially_asleep(mut self, proc: usize, until: WakeCondition) -> Self {
        self.asleep.insert(proc, until);
        self
    }

    /// Adds a sleep directive.
    pub fn sleep(mut self, directive: SleepDirective) -> Self {
        self.sleep_after
            .insert((directive.proc, directive.after.0), directive.until);
        self
    }

    /// Adds a sleep directive (convenience form).
    pub fn sleep_after(self, proc: usize, after: NodeId, until: WakeCondition) -> Self {
        self.sleep(SleepDirective { proc, after, until })
    }

    /// Sets the victim preference order for `thief`.
    pub fn prefer_victims(mut self, thief: usize, victims: Vec<usize>) -> Self {
        self.victim_preference.insert(thief, victims);
        self
    }

    /// Makes thieves idle rather than fall back to an arbitrary victim when
    /// none of their preferred victims has work.
    pub fn strict_victims(mut self) -> Self {
        self.strict_victims = true;
        self
    }

    fn wake_ready(&mut self, step: u64) {
        let executed = &self.executed_nodes;
        self.asleep.retain(|_, cond| match cond {
            WakeCondition::AfterNode(n) => !executed.contains(&n.0),
            WakeCondition::AtStep(s) => step < *s,
            WakeCondition::WhenStalled | WakeCondition::Never => true,
        });
    }
}

impl Scheduler for ScriptedScheduler {
    fn on_complete(&mut self, proc: usize, node: NodeId, step: u64) {
        self.executed_nodes.insert(node.0);
        if let Some(&until) = self.sleep_after.get(&(proc, node.0)) {
            self.asleep.insert(proc, until);
        }
        self.wake_ready(step);
    }

    fn on_stalled(&mut self, _step: u64) {
        // Wake exactly one stalled sleeper (the lowest-numbered), matching
        // the proofs' one-at-a-time wake-ups.
        if let Some(&proc) = self
            .asleep
            .iter()
            .filter(|(_, c)| matches!(c, WakeCondition::WhenStalled))
            .map(|(p, _)| p)
            .min()
        {
            self.asleep.remove(&proc);
        }
    }

    fn is_awake(&mut self, proc: usize, step: u64) -> bool {
        self.wake_ready(step);
        !self.asleep.contains_key(&proc)
    }

    fn choose_victim(&mut self, thief: usize, candidates: &[usize]) -> Option<usize> {
        if let Some(prefs) = self.victim_preference.get(&thief) {
            for &p in prefs {
                if candidates.contains(&p) {
                    return Some(p);
                }
            }
            if self.strict_victims {
                return None;
            }
        }
        candidates.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let mut a = RandomScheduler::new(7);
        let mut b = RandomScheduler::new(7);
        let candidates = [0, 1, 2, 3, 4];
        for _ in 0..32 {
            assert_eq!(
                a.choose_victim(9, &candidates),
                b.choose_victim(9, &candidates)
            );
        }
        assert_eq!(a.choose_victim(9, &[]), None);
    }

    #[test]
    fn parsimonious_scheduler_waits_then_steals_deterministically() {
        let mut s = ParsimoniousScheduler::new(2);
        let candidates = [1usize, 3];
        // Two refusals, then a steal from the lowest candidate.
        assert_eq!(s.choose_victim(0, &candidates), None);
        assert_eq!(s.choose_victim(0, &candidates), None);
        assert_eq!(s.choose_victim(0, &candidates), Some(1));
        // The budget resets after the granted steal.
        assert_eq!(s.choose_victim(0, &candidates), None);
        // Completing a node also resets an in-progress wait.
        assert_eq!(s.choose_victim(2, &candidates), None);
        s.on_complete(2, NodeId(9), 5);
        assert_eq!(s.choose_victim(2, &candidates), None);
        // An empty candidate list never consumes the waiting budget.
        assert_eq!(s.choose_victim(0, &[]), None);
        // patience = 0 behaves like GreedyScheduler.
        let mut zero = ParsimoniousScheduler::new(0);
        assert_eq!(zero.choose_victim(7, &candidates), Some(1));
        assert!(zero.is_awake(7, 0));
    }

    #[test]
    fn greedy_scheduler_picks_first() {
        let mut g = GreedyScheduler;
        assert_eq!(g.choose_victim(0, &[3, 1, 2]), Some(3));
        assert_eq!(g.choose_victim(0, &[]), None);
        assert!(g.is_awake(0, 0));
    }

    #[test]
    fn scripted_sleep_and_wake_on_node() {
        let mut s =
            ScriptedScheduler::new().sleep_after(1, NodeId(5), WakeCondition::AfterNode(NodeId(9)));
        assert!(s.is_awake(1, 0));
        s.on_complete(1, NodeId(5), 1);
        assert!(!s.is_awake(1, 2));
        // Someone else completes node 9: processor 1 wakes.
        s.on_complete(0, NodeId(9), 3);
        assert!(s.is_awake(1, 4));
    }

    #[test]
    fn scripted_sleep_until_step_and_never() {
        let mut s = ScriptedScheduler::new()
            .sleep_after(0, NodeId(1), WakeCondition::AtStep(10))
            .sleep_after(1, NodeId(2), WakeCondition::Never);
        s.on_complete(0, NodeId(1), 0);
        s.on_complete(1, NodeId(2), 0);
        assert!(!s.is_awake(0, 5));
        assert!(s.is_awake(0, 10));
        assert!(!s.is_awake(1, 1_000_000));
    }

    #[test]
    fn scripted_wake_when_stalled_wakes_one_at_a_time() {
        let mut s = ScriptedScheduler::new()
            .sleep_after(0, NodeId(1), WakeCondition::WhenStalled)
            .sleep_after(1, NodeId(2), WakeCondition::WhenStalled);
        s.on_complete(0, NodeId(1), 0);
        s.on_complete(1, NodeId(2), 0);
        assert!(!s.is_awake(0, 1));
        assert!(!s.is_awake(1, 1));
        s.on_stalled(2);
        assert!(s.is_awake(0, 3), "lowest-numbered sleeper wakes first");
        assert!(!s.is_awake(1, 3));
        s.on_stalled(4);
        assert!(s.is_awake(1, 5));
    }

    #[test]
    fn initially_asleep_until_node() {
        let mut s =
            ScriptedScheduler::new().initially_asleep(2, WakeCondition::AfterNode(NodeId(4)));
        assert!(!s.is_awake(2, 0));
        assert!(s.is_awake(0, 0));
        s.on_complete(0, NodeId(4), 1);
        assert!(s.is_awake(2, 2));
    }

    #[test]
    fn scripted_victim_preferences() {
        let mut s = ScriptedScheduler::new().prefer_victims(2, vec![7, 5]);
        assert_eq!(s.choose_victim(2, &[4, 5, 6]), Some(5));
        assert_eq!(s.choose_victim(2, &[4, 6]), Some(4), "falls back to first");
        let mut strict = ScriptedScheduler::new()
            .prefer_victims(2, vec![7])
            .strict_victims();
        assert_eq!(strict.choose_victim(2, &[4, 6]), None);
        // Thieves without preferences behave greedily.
        assert_eq!(s.choose_victim(0, &[4, 6]), Some(4));
    }
}
