//! Steal scheduling: who is awake, and whom a thief steals from.
//!
//! The upper-bound theorems of the paper are statements *in expectation*
//! over the random choices of the work-stealing scheduler; the lower-bound
//! theorems exhibit specific adversarial schedules ("processor 2 falls
//! asleep just before executing w; processor 1 steals from it; ...").
//! The [`Scheduler`] trait abstracts over both — and, since the policy
//! refactor, over a whole *space* of steal policies:
//!
//! * [`PolicyScheduler`] is assembled from orthogonal dimensions — a
//!   [`VictimOrder`] (who to rob), a [`StealAmount`] (how much to take),
//!   a patience budget (how long to sit out before robbing anyone) and a
//!   locality heuristic (prefer victims whose top block is already resident
//!   in the thief's cache). The analysis tournament (E19) enumerates this
//!   space and uses the simulator as a fitness oracle over it.
//! * [`RandomScheduler`] / [`ParsimoniousScheduler`] are thin aliases over
//!   fixed `PolicyScheduler` configurations (uniform-random victims as in
//!   the Arora–Blumofe–Plaxton analysis; deterministic steal-frugal
//!   lowest-id), kept as named types because the theorem conformance tests
//!   and every experiment table refer to them.
//! * [`ScriptedScheduler`] replays the adversarial scenarios used in the
//!   proofs of Theorems 9 and 10.
//!
//! Victim choice sees a [`StealContext`] — the candidate list plus a
//! per-victim deque-depth view and (when the scheduler asks for it via
//! [`Scheduler::wants_residency`]) a per-victim "is the victim's top block
//! resident in the thief's cache" probe surfaced from the simulator's
//! per-processor cache state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use wsf_dag::NodeId;

/// How many deque entries a successful steal transfers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum StealAmount {
    /// Classic work stealing: take the single top entry.
    #[default]
    One,
    /// Take the top `ceil(len/2)` entries; the oldest becomes the thief's
    /// current node, the rest go into the thief's deque preserving their
    /// age order (oldest nearest the top).
    Half,
}

/// The victim-selection rule of a [`PolicyScheduler`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum VictimOrder {
    /// Uniformly random among the eligible candidates, from a deterministic
    /// RNG seeded with the given seed (the ABP baseline).
    Random(u64),
    /// Always the lowest-numbered eligible candidate (deterministic).
    LowestId,
    /// Cycle through the eligible candidates: the smallest candidate id
    /// strictly greater than the previously chosen victim, wrapping around.
    RoundRobin,
    /// The eligible candidate with the deepest deque (ties break to the
    /// lowest id) — steal where the most work is queued.
    MostLoaded,
    /// The previously robbed victim again while it remains eligible
    /// (affinity), otherwise the lowest-numbered eligible candidate.
    LastVictim,
}

/// A full point in the composable steal-policy space.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PolicyConfig {
    /// Victim-selection rule.
    pub order: VictimOrder,
    /// How much a successful steal transfers.
    pub amount: StealAmount,
    /// How many non-empty steal opportunities a thief sits out before it is
    /// allowed to steal (0 = steal eagerly). An empty candidate list never
    /// consumes the budget; completing a node resets it.
    pub patience: u32,
    /// Restrict victim selection to candidates whose top block is resident
    /// in the thief's cache, whenever at least one such candidate exists.
    pub prefer_cached: bool,
}

impl PolicyConfig {
    /// The ABP baseline: uniform-random victims, steal one, no patience.
    pub fn ws_random(seed: u64) -> Self {
        PolicyConfig {
            order: VictimOrder::Random(seed),
            amount: StealAmount::One,
            patience: 0,
            prefer_cached: false,
        }
    }

    /// The deterministic steal-frugal baseline: lowest-id victims, steal
    /// one, the given patience.
    pub fn parsimonious(patience: u32) -> Self {
        PolicyConfig {
            order: VictimOrder::LowestId,
            amount: StealAmount::One,
            patience,
            prefer_cached: false,
        }
    }

    /// `ws-half`, promoted from the E19 tournament: uniform-random victims
    /// stealing half the victim's deque. On the Theorem-12/16 suite it
    /// strictly dominates [`PolicyConfig::ws_random`] — fewer deviations,
    /// steals, extra misses *and* a shorter makespan (see
    /// `docs/EXPERIMENTS.md` §E19).
    pub fn ws_half(seed: u64) -> Self {
        PolicyConfig {
            order: VictimOrder::Random(seed),
            amount: StealAmount::Half,
            patience: 0,
            prefer_cached: false,
        }
    }

    /// `ws-rr-eager`, promoted from the E19 tournament: round-robin victims
    /// with patience 1 — the miss-minimizer of the space (~25 % fewer extra
    /// misses than ws-random on the E19 suite at ~2 % makespan cost).
    pub fn rr_eager() -> Self {
        PolicyConfig {
            order: VictimOrder::RoundRobin,
            amount: StealAmount::One,
            patience: 1,
            prefer_cached: false,
        }
    }

    /// `ws-loaded-frugal`, promoted from the E19 tournament: most-loaded
    /// victims, steal-half, patience 16 — the steal-frugal extreme (~35 %
    /// fewer steals and ~18 % fewer extra misses than ws-random, traded
    /// for a longer makespan).
    pub fn loaded_frugal() -> Self {
        PolicyConfig {
            order: VictimOrder::MostLoaded,
            amount: StealAmount::Half,
            patience: 16,
            prefer_cached: false,
        }
    }
}

/// What a thief sees when choosing a victim: the candidate processors
/// (non-empty deques, ascending id, excluding the thief) plus per-candidate
/// views the policy dimensions key on.
///
/// `depths` and `resident` are parallel to `candidates`. Either may be
/// empty when the caller did not (or could not) provide that view — the
/// accessors then answer `0` / `false`, which every policy treats as "no
/// information" and degrades gracefully from.
#[derive(Copy, Clone, Debug)]
pub struct StealContext<'a> {
    candidates: &'a [usize],
    depths: &'a [usize],
    resident: &'a [bool],
}

impl<'a> StealContext<'a> {
    /// Builds a context from parallel slices (`depths`/`resident` may be
    /// empty when that view is not available).
    pub fn new(candidates: &'a [usize], depths: &'a [usize], resident: &'a [bool]) -> Self {
        StealContext {
            candidates,
            depths,
            resident,
        }
    }

    /// A context carrying only the candidate list (tests, simple callers).
    pub fn bare(candidates: &'a [usize]) -> Self {
        StealContext::new(candidates, &[], &[])
    }

    /// The candidate processors, in ascending id order.
    #[inline]
    pub fn candidates(&self) -> &'a [usize] {
        self.candidates
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether there are no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Deque depth of the `i`-th candidate (0 when unknown).
    #[inline]
    pub fn depth(&self, i: usize) -> usize {
        self.depths.get(i).copied().unwrap_or(0)
    }

    /// Whether the `i`-th candidate's top block is resident in the thief's
    /// cache (false when unknown or not probed).
    #[inline]
    pub fn top_resident(&self, i: usize) -> bool {
        self.resident.get(i).copied().unwrap_or(false)
    }

    /// Whether any candidate's top block is resident in the thief's cache.
    #[inline]
    pub fn any_resident(&self) -> bool {
        self.resident.iter().any(|&r| r)
    }
}

/// Controls processor wake state and steal-victim selection during a
/// simulated execution.
pub trait Scheduler {
    /// Called whenever `proc` completes `node` at `step`.
    fn on_complete(&mut self, _proc: usize, _node: NodeId, _step: u64) {}

    /// Called when a step passes in which no awake processor made progress
    /// and no work is in flight (the execution would otherwise be stuck).
    fn on_stalled(&mut self, _step: u64) {}

    /// Whether `proc` may act during `step`.
    fn is_awake(&mut self, _proc: usize, _step: u64) -> bool {
        true
    }

    /// Chooses a steal victim for `thief` among the context's candidates
    /// (processors with non-empty deques, excluding the thief itself).
    /// Returning `None` means the thief idles this step.
    fn choose_victim(&mut self, thief: usize, ctx: &StealContext<'_>) -> Option<usize>;

    /// Whether this scheduler wants the (more expensive) per-candidate
    /// top-block cache-residency probe filled into its [`StealContext`].
    /// Schedulers that never read it leave the probe off the hot path.
    fn wants_residency(&self) -> bool {
        false
    }

    /// How much a successful steal by this scheduler transfers.
    fn steal_amount(&self) -> StealAmount {
        StealAmount::One
    }
}

/// A scheduler assembled from the orthogonal policy dimensions of
/// [`PolicyConfig`]: victim order × steal amount × patience × locality.
///
/// Fixed configurations reproduce the named baselines exactly —
/// `PolicyConfig::ws_random(seed)` is step-for-step [`RandomScheduler`]
/// (consuming one RNG draw per non-empty victim choice and none on an
/// empty one), `PolicyConfig::parsimonious(p)` is step-for-step
/// [`ParsimoniousScheduler`]; the equivalence proptests in
/// `crates/core/tests/policy_equivalence.rs` pin both.
#[derive(Clone, Debug)]
pub struct PolicyScheduler {
    config: PolicyConfig,
    rng: Option<SmallRng>,
    /// Per-thief consecutive sat-out steal opportunities (grown lazily; only
    /// touched when `patience > 0`).
    waited: Vec<u32>,
    /// Per-thief previously chosen victim + 1 (0 = none yet; grown lazily;
    /// only touched by the RoundRobin / LastVictim orders).
    prev_victim: Vec<usize>,
}

impl PolicyScheduler {
    /// Creates a scheduler for one point of the policy space.
    pub fn new(config: PolicyConfig) -> Self {
        let rng = match config.order {
            VictimOrder::Random(seed) => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        PolicyScheduler {
            config,
            rng,
            waited: Vec::new(),
            prev_victim: Vec::new(),
        }
    }

    /// The configuration this scheduler was assembled from.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    fn slot(vec: &mut Vec<u32>, i: usize) -> &mut u32 {
        if vec.len() <= i {
            vec.resize(i + 1, 0);
        }
        &mut vec[i]
    }

    fn prev_slot(&mut self, thief: usize) -> &mut usize {
        if self.prev_victim.len() <= thief {
            self.prev_victim.resize(thief + 1, 0);
        }
        &mut self.prev_victim[thief]
    }
}

impl Scheduler for PolicyScheduler {
    fn on_complete(&mut self, proc: usize, _node: NodeId, _step: u64) {
        // The processor had work, so its next idle phase starts from a
        // fresh waiting budget. (Skipped entirely for patience 0 so eager
        // configurations — the ws-random alias in particular — never touch
        // or grow the bookkeeping vector.)
        if self.config.patience > 0 {
            *Self::slot(&mut self.waited, proc) = 0;
        }
    }

    fn choose_victim(&mut self, thief: usize, ctx: &StealContext<'_>) -> Option<usize> {
        let n = ctx.len();
        if n == 0 {
            return None;
        }
        if self.config.patience > 0 {
            let patience = self.config.patience;
            let waited = Self::slot(&mut self.waited, thief);
            if *waited < patience {
                *waited += 1;
                return None;
            }
            *waited = 0;
        }
        // Locality heuristic: when asked for and at least one candidate's
        // top block is resident in the thief's cache, only those candidates
        // are eligible. Otherwise every candidate is.
        let filtered = self.config.prefer_cached && ctx.any_resident();
        let eligible = |i: usize| !filtered || ctx.top_resident(i);
        let chosen_idx = match self.config.order {
            VictimOrder::Random(_) => {
                let rng = self.rng.as_mut().expect("Random order carries an RNG");
                if filtered {
                    let m = (0..n).filter(|&i| eligible(i)).count();
                    let k = rng.gen_range(0..m);
                    (0..n).filter(|&i| eligible(i)).nth(k)
                } else {
                    // Exactly one draw per non-empty choice: this is the
                    // RNG-consumption contract the RandomScheduler alias
                    // (and with it every existing table's bytes) relies on.
                    Some(rng.gen_range(0..n))
                }
            }
            VictimOrder::LowestId => (0..n).find(|&i| eligible(i)),
            VictimOrder::RoundRobin => {
                let prev = *self.prev_slot(thief);
                // Smallest eligible candidate id strictly greater than the
                // previous victim (prev stores id + 1, so `>= prev` is
                // `> previous id`); wrap to the smallest eligible.
                (0..n)
                    .find(|&i| eligible(i) && ctx.candidates()[i] >= prev)
                    .or_else(|| (0..n).find(|&i| eligible(i)))
            }
            VictimOrder::MostLoaded => (0..n)
                .filter(|&i| eligible(i))
                .max_by(|&a, &b| ctx.depth(a).cmp(&ctx.depth(b)).then(b.cmp(&a))),
            VictimOrder::LastVictim => {
                let prev = *self.prev_slot(thief);
                (0..n)
                    .find(|&i| eligible(i) && ctx.candidates()[i] + 1 == prev)
                    .or_else(|| (0..n).find(|&i| eligible(i)))
            }
        };
        let victim = chosen_idx.map(|i| ctx.candidates()[i]);
        if let Some(v) = victim {
            match self.config.order {
                VictimOrder::RoundRobin | VictimOrder::LastVictim => {
                    *self.prev_slot(thief) = v + 1;
                }
                _ => {}
            }
        }
        victim
    }

    fn wants_residency(&self) -> bool {
        self.config.prefer_cached
    }

    fn steal_amount(&self) -> StealAmount {
        self.config.amount
    }
}

/// The default scheduler: every processor is always awake and victims are
/// chosen uniformly at random, as in the Arora–Blumofe–Plaxton analysis the
/// paper builds on. A thin alias over
/// [`PolicyConfig::ws_random`] — see [`PolicyScheduler`].
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    inner: PolicyScheduler,
}

impl RandomScheduler {
    /// Creates a scheduler seeded with `seed` (deterministic per seed).
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            inner: PolicyScheduler::new(PolicyConfig::ws_random(seed)),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose_victim(&mut self, thief: usize, ctx: &StealContext<'_>) -> Option<usize> {
        self.inner.choose_victim(thief, ctx)
    }
}

/// A scheduler that always steals from the lowest-numbered candidate.
/// Useful for fully deterministic tests. Behaves exactly like
/// `PolicyScheduler` with [`VictimOrder::LowestId`] and zero patience.
#[derive(Clone, Debug, Default)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn choose_victim(&mut self, _thief: usize, ctx: &StealContext<'_>) -> Option<usize> {
        ctx.candidates().first().copied()
    }
}

/// A deterministic, steal-frugal scheduler: a thief must sit out
/// `patience` consecutive steal opportunities before it is allowed to
/// steal, and then always robs the lowest-numbered candidate.
///
/// Parsimonious work stealing (Arora–Blumofe–Plaxton, and the model of
/// Section 3) already steals only when a processor's own deque is empty;
/// this scheduler is the *steal-frugal* deterministic baseline on top of
/// that rule — it trades makespan for locality by letting busy processors
/// run ahead instead of eagerly migrating work, and it makes experiment
/// tables reproducible byte for byte because no randomness is involved.
/// `patience = 0` behaves exactly like [`GreedyScheduler`]. A thin alias
/// over [`PolicyConfig::parsimonious`] — see [`PolicyScheduler`].
#[derive(Clone, Debug)]
pub struct ParsimoniousScheduler {
    inner: PolicyScheduler,
}

impl ParsimoniousScheduler {
    /// Creates a scheduler whose thieves wait out `patience` steal
    /// opportunities before actually stealing.
    pub fn new(patience: u32) -> Self {
        ParsimoniousScheduler {
            inner: PolicyScheduler::new(PolicyConfig::parsimonious(patience)),
        }
    }
}

impl Scheduler for ParsimoniousScheduler {
    fn on_complete(&mut self, proc: usize, node: NodeId, step: u64) {
        self.inner.on_complete(proc, node, step);
    }

    fn choose_victim(&mut self, thief: usize, ctx: &StealContext<'_>) -> Option<usize> {
        self.inner.choose_victim(thief, ctx)
    }
}

/// When a sleeping processor wakes up again.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WakeCondition {
    /// Wake once the given node has been executed (by anyone).
    AfterNode(NodeId),
    /// Wake when the execution would otherwise be stuck: no awake processor
    /// can make progress. Models the proofs' "after p1 finishes, p2 wakes
    /// up".
    WhenStalled,
    /// Wake at the given absolute step.
    AtStep(u64),
    /// Never wake up again ("falls asleep forever").
    Never,
}

/// One scripted sleep directive: when `proc` completes `after`, it falls
/// asleep until `until`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SleepDirective {
    /// The processor that falls asleep.
    pub proc: usize,
    /// The node whose completion (by that processor) triggers the sleep.
    pub after: NodeId,
    /// When the processor wakes up again.
    pub until: WakeCondition,
}

/// A deterministic, scripted adversary.
///
/// Built from a list of [`SleepDirective`]s plus per-thief victim
/// preference lists. Victim preferences are consulted in order; if none of
/// the preferred victims is a candidate, the lowest-numbered candidate is
/// used (set `strict_victims` to make the thief idle instead).
#[derive(Clone, Debug, Default)]
pub struct ScriptedScheduler {
    sleep_after: HashMap<(usize, u32), WakeCondition>,
    victim_preference: HashMap<usize, Vec<usize>>,
    strict_victims: bool,
    asleep: HashMap<usize, WakeCondition>,
    executed_nodes: std::collections::HashSet<u32>,
}

impl ScriptedScheduler {
    /// Creates an empty script (equivalent to [`GreedyScheduler`]).
    pub fn new() -> Self {
        ScriptedScheduler::default()
    }

    /// Puts `proc` to sleep from the very beginning of the execution, until
    /// `until` holds. Used to keep a processor out of the race for the first
    /// few steals while the proof's scenario is being set up.
    pub fn initially_asleep(mut self, proc: usize, until: WakeCondition) -> Self {
        self.asleep.insert(proc, until);
        self
    }

    /// Adds a sleep directive.
    pub fn sleep(mut self, directive: SleepDirective) -> Self {
        self.sleep_after
            .insert((directive.proc, directive.after.0), directive.until);
        self
    }

    /// Adds a sleep directive (convenience form).
    pub fn sleep_after(self, proc: usize, after: NodeId, until: WakeCondition) -> Self {
        self.sleep(SleepDirective { proc, after, until })
    }

    /// Sets the victim preference order for `thief`.
    pub fn prefer_victims(mut self, thief: usize, victims: Vec<usize>) -> Self {
        self.victim_preference.insert(thief, victims);
        self
    }

    /// Makes thieves idle rather than fall back to an arbitrary victim when
    /// none of their preferred victims has work.
    pub fn strict_victims(mut self) -> Self {
        self.strict_victims = true;
        self
    }

    fn wake_ready(&mut self, step: u64) {
        let executed = &self.executed_nodes;
        self.asleep.retain(|_, cond| match cond {
            WakeCondition::AfterNode(n) => !executed.contains(&n.0),
            WakeCondition::AtStep(s) => step < *s,
            WakeCondition::WhenStalled | WakeCondition::Never => true,
        });
    }
}

impl Scheduler for ScriptedScheduler {
    fn on_complete(&mut self, proc: usize, node: NodeId, step: u64) {
        self.executed_nodes.insert(node.0);
        if let Some(&until) = self.sleep_after.get(&(proc, node.0)) {
            self.asleep.insert(proc, until);
        }
        self.wake_ready(step);
    }

    fn on_stalled(&mut self, _step: u64) {
        // Wake exactly one stalled sleeper (the lowest-numbered), matching
        // the proofs' one-at-a-time wake-ups.
        if let Some(&proc) = self
            .asleep
            .iter()
            .filter(|(_, c)| matches!(c, WakeCondition::WhenStalled))
            .map(|(p, _)| p)
            .min()
        {
            self.asleep.remove(&proc);
        }
    }

    fn is_awake(&mut self, proc: usize, step: u64) -> bool {
        self.wake_ready(step);
        !self.asleep.contains_key(&proc)
    }

    fn choose_victim(&mut self, thief: usize, ctx: &StealContext<'_>) -> Option<usize> {
        let candidates = ctx.candidates();
        if let Some(prefs) = self.victim_preference.get(&thief) {
            for &p in prefs {
                if candidates.contains(&p) {
                    return Some(p);
                }
            }
            if self.strict_victims {
                return None;
            }
        }
        candidates.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(candidates: &[usize]) -> StealContext<'_> {
        StealContext::bare(candidates)
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let mut a = RandomScheduler::new(7);
        let mut b = RandomScheduler::new(7);
        let candidates = [0, 1, 2, 3, 4];
        for _ in 0..32 {
            assert_eq!(
                a.choose_victim(9, &ctx(&candidates)),
                b.choose_victim(9, &ctx(&candidates))
            );
        }
        assert_eq!(a.choose_victim(9, &ctx(&[])), None);
    }

    #[test]
    fn parsimonious_scheduler_waits_then_steals_deterministically() {
        let mut s = ParsimoniousScheduler::new(2);
        let candidates = [1usize, 3];
        // Two refusals, then a steal from the lowest candidate.
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), None);
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), None);
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), Some(1));
        // The budget resets after the granted steal.
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), None);
        // Completing a node also resets an in-progress wait.
        assert_eq!(s.choose_victim(2, &ctx(&candidates)), None);
        s.on_complete(2, NodeId(9), 5);
        assert_eq!(s.choose_victim(2, &ctx(&candidates)), None);
        // An empty candidate list never consumes the waiting budget.
        assert_eq!(s.choose_victim(0, &ctx(&[])), None);
        // patience = 0 behaves like GreedyScheduler.
        let mut zero = ParsimoniousScheduler::new(0);
        assert_eq!(zero.choose_victim(7, &ctx(&candidates)), Some(1));
        assert!(zero.is_awake(7, 0));
    }

    #[test]
    fn greedy_scheduler_picks_first() {
        let mut g = GreedyScheduler;
        assert_eq!(g.choose_victim(0, &ctx(&[3, 1, 2])), Some(3));
        assert_eq!(g.choose_victim(0, &ctx(&[])), None);
        assert!(g.is_awake(0, 0));
    }

    #[test]
    fn round_robin_cycles_through_candidates() {
        let mut s = PolicyScheduler::new(PolicyConfig {
            order: VictimOrder::RoundRobin,
            amount: StealAmount::One,
            patience: 0,
            prefer_cached: false,
        });
        let candidates = [1usize, 3, 5];
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), Some(1));
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), Some(3));
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), Some(5));
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), Some(1), "wraps");
        // The cursor survives candidate-set changes: after victim 1 the next
        // strictly-greater candidate is taken even if the set shrank.
        assert_eq!(s.choose_victim(0, &ctx(&[5])), Some(5));
        // Cursors are per-thief.
        assert_eq!(s.choose_victim(2, &ctx(&candidates)), Some(1));
    }

    #[test]
    fn most_loaded_picks_deepest_deque_ties_to_lowest() {
        let mut s = PolicyScheduler::new(PolicyConfig {
            order: VictimOrder::MostLoaded,
            amount: StealAmount::One,
            patience: 0,
            prefer_cached: false,
        });
        let candidates = [1usize, 3, 5];
        let depths = [2usize, 7, 7];
        assert_eq!(
            s.choose_victim(0, &StealContext::new(&candidates, &depths, &[])),
            Some(3),
            "deepest wins, tie breaks to the lowest id"
        );
        // Without a depth view everything ties: lowest id.
        assert_eq!(s.choose_victim(0, &ctx(&candidates)), Some(1));
    }

    #[test]
    fn last_victim_affinity_sticks_until_victim_drains() {
        let mut s = PolicyScheduler::new(PolicyConfig {
            order: VictimOrder::LastVictim,
            amount: StealAmount::One,
            patience: 0,
            prefer_cached: false,
        });
        assert_eq!(s.choose_victim(0, &ctx(&[1, 3, 5])), Some(1));
        assert_eq!(s.choose_victim(0, &ctx(&[1, 3, 5])), Some(1), "sticky");
        assert_eq!(
            s.choose_victim(0, &ctx(&[3, 5])),
            Some(3),
            "falls back to the lowest when the old victim drained"
        );
        assert_eq!(s.choose_victim(0, &ctx(&[3, 5])), Some(3), "re-anchors");
    }

    #[test]
    fn prefer_cached_filters_to_resident_candidates() {
        let mut s = PolicyScheduler::new(PolicyConfig {
            order: VictimOrder::LowestId,
            amount: StealAmount::One,
            patience: 0,
            prefer_cached: true,
        });
        assert!(s.wants_residency());
        let candidates = [1usize, 3, 5];
        let resident = [false, true, true];
        assert_eq!(
            s.choose_victim(0, &StealContext::new(&candidates, &[], &resident)),
            Some(3),
            "lowest resident candidate wins over a lower non-resident one"
        );
        // No resident candidate: the filter disengages entirely.
        assert_eq!(
            s.choose_victim(0, &StealContext::new(&candidates, &[], &[false; 3])),
            Some(1)
        );
    }

    #[test]
    fn policy_half_and_residency_surface_through_the_trait() {
        let half = PolicyScheduler::new(PolicyConfig {
            order: VictimOrder::LowestId,
            amount: StealAmount::Half,
            patience: 0,
            prefer_cached: false,
        });
        assert_eq!(half.steal_amount(), StealAmount::Half);
        assert!(!half.wants_residency());
        let one = RandomScheduler::new(0);
        assert_eq!(Scheduler::steal_amount(&one), StealAmount::One);
        assert!(!Scheduler::wants_residency(&one));
    }

    #[test]
    fn scripted_sleep_and_wake_on_node() {
        let mut s =
            ScriptedScheduler::new().sleep_after(1, NodeId(5), WakeCondition::AfterNode(NodeId(9)));
        assert!(s.is_awake(1, 0));
        s.on_complete(1, NodeId(5), 1);
        assert!(!s.is_awake(1, 2));
        // Someone else completes node 9: processor 1 wakes.
        s.on_complete(0, NodeId(9), 3);
        assert!(s.is_awake(1, 4));
    }

    #[test]
    fn scripted_sleep_until_step_and_never() {
        let mut s = ScriptedScheduler::new()
            .sleep_after(0, NodeId(1), WakeCondition::AtStep(10))
            .sleep_after(1, NodeId(2), WakeCondition::Never);
        s.on_complete(0, NodeId(1), 0);
        s.on_complete(1, NodeId(2), 0);
        assert!(!s.is_awake(0, 5));
        assert!(s.is_awake(0, 10));
        assert!(!s.is_awake(1, 1_000_000));
    }

    #[test]
    fn scripted_wake_when_stalled_wakes_one_at_a_time() {
        let mut s = ScriptedScheduler::new()
            .sleep_after(0, NodeId(1), WakeCondition::WhenStalled)
            .sleep_after(1, NodeId(2), WakeCondition::WhenStalled);
        s.on_complete(0, NodeId(1), 0);
        s.on_complete(1, NodeId(2), 0);
        assert!(!s.is_awake(0, 1));
        assert!(!s.is_awake(1, 1));
        s.on_stalled(2);
        assert!(s.is_awake(0, 3), "lowest-numbered sleeper wakes first");
        assert!(!s.is_awake(1, 3));
        s.on_stalled(4);
        assert!(s.is_awake(1, 5));
    }

    #[test]
    fn initially_asleep_until_node() {
        let mut s =
            ScriptedScheduler::new().initially_asleep(2, WakeCondition::AfterNode(NodeId(4)));
        assert!(!s.is_awake(2, 0));
        assert!(s.is_awake(0, 0));
        s.on_complete(0, NodeId(4), 1);
        assert!(s.is_awake(2, 2));
    }

    #[test]
    fn scripted_victim_preferences() {
        let mut s = ScriptedScheduler::new().prefer_victims(2, vec![7, 5]);
        assert_eq!(s.choose_victim(2, &ctx(&[4, 5, 6])), Some(5));
        assert_eq!(
            s.choose_victim(2, &ctx(&[4, 6])),
            Some(4),
            "falls back to first"
        );
        let mut strict = ScriptedScheduler::new()
            .prefer_victims(2, vec![7])
            .strict_victims();
        assert_eq!(strict.choose_victim(2, &ctx(&[4, 6])), None);
        // Thieves without preferences behave greedily.
        assert_eq!(s.choose_victim(0, &ctx(&[4, 6])), Some(4));
    }
}
