//! # wsf-core — a parsimonious work-stealing execution simulator
//!
//! This crate implements the scheduler and cost model of *"Well-Structured
//! Futures and Cache Locality"* (Herlihy & Liu, PPoPP 2014):
//!
//! * [`SequentialExecutor`] runs a computation DAG on one simulated
//!   processor with the parsimonious work-stealing rule, producing the
//!   baseline node order and cache-miss count;
//! * [`ParallelSimulator`] runs the DAG on `P` simulated processors, each
//!   with a private deque and a private cache, under either the
//!   *future-first* or *parent-first* [`ForkPolicy`], with steal victims
//!   chosen by a [`Scheduler`] (seeded random by default, or a scripted
//!   adversary reproducing the executions in the lower-bound proofs);
//! * [`ExecutionReport`] exposes the quantities the paper's theorems bound:
//!   deviations, steals and cache misses beyond the sequential execution;
//! * [`bounds`] holds the theorem formulas themselves for comparison;
//! * [`SimScratch`] is the reusable buffer arena behind
//!   [`ParallelSimulator::run_with_scratch`]: sweeps that simulate many
//!   DAGs pass one scratch to every run and pay zero per-step heap
//!   allocation in steady state (see the `alloc_free` integration test).
//!
//! ```
//! use wsf_core::{ForkPolicy, ParallelSimulator, SequentialExecutor, SimConfig};
//! use wsf_dag::DagBuilder;
//!
//! // A small structured single-touch computation.
//! let mut b = DagBuilder::new();
//! let main = b.main_thread();
//! let f = b.fork(main);
//! b.chain(f.future_thread, 3);
//! b.task(main);
//! b.touch_thread(main, f.future_thread);
//! b.task(main);
//! let dag = b.finish().unwrap();
//!
//! let seq = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
//! assert_eq!(seq.order.len(), dag.num_nodes());
//!
//! let par = ParallelSimulator::new(SimConfig::new(2, 8, ForkPolicy::FutureFirst)).run(&dag);
//! assert!(par.completed);
//! assert_eq!(par.executed(), dag.num_nodes() as u64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
mod config;
mod parallel;
mod policy;
mod ready;
mod report;
mod scheduler;
mod scratch;
mod sequential;

pub use config::SimConfig;
pub use parallel::ParallelSimulator;
pub use policy::ForkPolicy;
pub use ready::{schedule_enabled, Continuation, ReadyTracker};
pub use report::{ExecutionReport, ProcStats, SeqReport, TraceEvent};
pub use scheduler::{
    GreedyScheduler, ParsimoniousScheduler, PolicyConfig, PolicyScheduler, RandomScheduler,
    Scheduler, ScriptedScheduler, SleepDirective, StealAmount, StealContext, VictimOrder,
    WakeCondition,
};
pub use scratch::SimScratch;
pub use sequential::SequentialExecutor;
