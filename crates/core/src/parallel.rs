//! The simulated parallel work-stealing execution.
//!
//! `P` simulated processors execute the DAG in discrete time steps. Each
//! processor owns a deque of ready nodes and a private cache. In each step
//! an awake processor either works one unit on its current node (completing
//! it when its weight is exhausted) or, if it has nothing to do, attempts
//! one steal from the top of another processor's deque. Completing a node
//! enables its children; the parsimonious rule
//! ([`crate::ready::schedule_enabled`]) decides which enabled child the
//! processor continues with and which it pushes.
//!
//! The simulator counts, per processor, executed nodes, successful and
//! failed steals, cache hits/misses and *deviations* (nodes not executed
//! immediately after their predecessor in the sequential order, by the same
//! processor), which are exactly the quantities bounded by the paper's
//! theorems.
//!
//! The hot loop is allocation-free in steady state: every buffer lives in a
//! [`SimScratch`] that callers may reuse across runs, the set of non-empty
//! deques is maintained incrementally (so victim selection costs
//! O(candidates), not O(P) plus an allocation), and the trace vector is
//! pre-sized to the node count when tracing is requested.

use crate::config::SimConfig;
use crate::ready::{schedule_enabled, ReadyTracker};
use crate::report::{ExecutionReport, SeqReport, TraceEvent};
use crate::scheduler::{RandomScheduler, Scheduler, StealAmount, StealContext};
use crate::scratch::{NonEmptySet, Proc, SimScratch};
use crate::sequential::SequentialExecutor;
use wsf_dag::{Dag, NodeId};

/// A simulated parallel execution of a computation DAG under parsimonious
/// work stealing.
#[derive(Copy, Clone, Debug)]
pub struct ParallelSimulator {
    config: SimConfig,
}

impl ParallelSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        ParallelSimulator { config }
    }

    /// The configuration this simulator runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the DAG with the default random steal scheduler, computing the
    /// sequential baseline (same fork policy) internally for deviation
    /// counting.
    pub fn run(&self, dag: &Dag) -> ExecutionReport {
        let seq = self.sequential(dag);
        let mut scheduler = RandomScheduler::new(self.config.seed);
        let mut scratch = SimScratch::new();
        // Concrete scheduler type: monomorphized, fully inlined loop.
        self.run_with_scratch(dag, &seq, &mut scheduler, false, &mut scratch)
    }

    /// Runs the DAG with a caller-supplied scheduler (e.g. a scripted
    /// adversary), computing the sequential baseline internally.
    pub fn run_with(&self, dag: &Dag, scheduler: &mut dyn Scheduler) -> ExecutionReport {
        let seq = self.sequential(dag);
        self.run_against(dag, &seq, scheduler, false)
    }

    /// The sequential baseline execution matching this simulator's fork
    /// policy, cache policy and cache size.
    pub fn sequential(&self, dag: &Dag) -> SeqReport {
        SequentialExecutor::new(self.config.fork_policy)
            .with_cache_lines(self.config.cache_lines)
            .with_cache_policy(self.config.cache_policy)
            .run(dag)
    }

    /// Runs the DAG against a precomputed sequential baseline.
    ///
    /// `record_trace` additionally records every completion event (step,
    /// processor, node), which the tests and some experiments use to verify
    /// execution orders node by node.
    pub fn run_against(
        &self,
        dag: &Dag,
        seq: &SeqReport,
        scheduler: &mut dyn Scheduler,
        record_trace: bool,
    ) -> ExecutionReport {
        let mut scratch = SimScratch::new();
        self.run_with_scratch(dag, seq, scheduler, record_trace, &mut scratch)
    }

    /// Like [`ParallelSimulator::run_against`], but reusing the buffers in
    /// `scratch`. Sweeps that simulate many DAGs should create one scratch
    /// and pass it to every run: after the first run no per-step (and, with
    /// a stable configuration, almost no per-run) heap allocation happens.
    ///
    /// The method is generic over the scheduler type so concrete callers
    /// (e.g. the analysis sweeps with a [`RandomScheduler`]) get a
    /// monomorphized loop with the scheduler inlined — `is_awake` folds to
    /// a constant for always-awake schedulers — while `&mut dyn Scheduler`
    /// callers keep working unchanged.
    pub fn run_with_scratch<S: Scheduler + ?Sized>(
        &self,
        dag: &Dag,
        seq: &SeqReport,
        scheduler: &mut S,
        record_trace: bool,
        scratch: &mut SimScratch,
    ) -> ExecutionReport {
        let p_count = self.config.processors.max(1);
        scratch.reset_procs(
            p_count,
            self.config.cache_policy,
            self.config.cache_lines,
            dag.block_space(),
        );
        seq.predecessors_into(&mut scratch.seq_prev);
        scratch.tracker.reset(dag);
        let SimScratch {
            procs,
            nonempty,
            candidates,
            depths,
            resident,
            stolen,
            enabled,
            seq_prev,
            tracker,
            ..
        } = scratch;
        // The residency probe costs a peek + cache lookup per candidate per
        // steal attempt; only locality-aware policies pay for it.
        let wants_residency = scheduler.wants_residency();
        let steal_amount = scheduler.steal_amount();

        let mut trace = if record_trace {
            Some(Vec::with_capacity(dag.num_nodes()))
        } else {
            None
        };

        // The computation starts with the root node on processor 0.
        procs[0].current = Some((dag.root(), dag.node(dag.root()).weight()));

        let total = dag.num_nodes();
        let budget = self.config.step_budget(dag.work());
        let mut step: u64 = 0;
        let mut makespan = 0;

        while tracker.executed_count() < total && step < budget {
            let mut progressed = false;

            for p in 0..p_count {
                // Fast path: an idle processor with nothing to steal does
                // nothing this step no matter what the scheduler says, so
                // skip the scheduler calls entirely. (`is_awake` and
                // `choose_victim` are queries; deferring them over a no-op
                // step is unobservable — sleep conditions are monotone and
                // no scheduler consumes randomness on an empty candidate
                // list.)
                if procs[p].current.is_none() {
                    let members = nonempty.members();
                    let no_victims = members.is_empty() || (members.len() == 1 && members[0] == p);
                    if no_victims {
                        continue;
                    }
                }
                if !scheduler.is_awake(p, step) {
                    continue;
                }
                match procs[p].current {
                    Some((node, remaining)) => {
                        progressed = true;
                        if remaining > 1 {
                            procs[p].current = Some((node, remaining - 1));
                        } else {
                            procs[p].current = None;
                            self.complete(
                                dag,
                                tracker,
                                &mut procs[p],
                                seq_prev,
                                enabled,
                                nonempty,
                                scheduler,
                                p,
                                node,
                                step,
                                &mut trace,
                            );
                            makespan = step + 1;
                        }
                    }
                    None => {
                        // Idle processor: its own deque is drained at
                        // completion time, so the only way to obtain work is
                        // to steal from the top of another processor's
                        // deque. The candidate list is copied from the
                        // incrementally-maintained non-empty set (ascending
                        // processor order, O(candidates), no allocation);
                        // the per-candidate depth and residency views are
                        // rebuilt into reusable scratch buffers.
                        candidates.clear();
                        candidates.extend(nonempty.members().iter().copied().filter(|&q| q != p));
                        depths.clear();
                        depths.extend(candidates.iter().map(|&q| procs[q].deque.len()));
                        resident.clear();
                        if wants_residency {
                            resident.extend(candidates.iter().map(|&q| {
                                procs[q].deque.peek_top().is_some_and(|&n| {
                                    dag.block_of(n)
                                        .is_some_and(|b| procs[p].cache.contains(b.0))
                                })
                            }));
                        }
                        let ctx = StealContext::new(candidates, depths, resident);
                        match scheduler.choose_victim(p, &ctx) {
                            // Validate the choice by membership instead of a
                            // linear re-scan of the candidate list.
                            Some(victim) if victim != p && nonempty.contains(victim) => {
                                match steal_amount {
                                    StealAmount::One => {
                                        let taken = procs[victim].deque.steal_top();
                                        nonempty.sync(victim, !procs[victim].deque.is_empty());
                                        match taken {
                                            Some(node) => {
                                                procs[p].current =
                                                    Some((node, dag.node(node).weight()));
                                                procs[p].stats.steals += 1;
                                                progressed = true;
                                            }
                                            None => procs[p].stats.failed_steals += 1,
                                        }
                                    }
                                    StealAmount::Half => {
                                        // Transfer the top ceil(len/2)
                                        // entries: the oldest becomes the
                                        // thief's current node, the rest go
                                        // into its deque oldest-topmost, so
                                        // both deques keep their age order.
                                        let take = procs[victim].deque.len().div_ceil(2);
                                        stolen.clear();
                                        for _ in 0..take {
                                            match procs[victim].deque.steal_top() {
                                                Some(n) => stolen.push(n),
                                                None => break,
                                            }
                                        }
                                        nonempty.sync(victim, !procs[victim].deque.is_empty());
                                        match stolen.first().copied() {
                                            Some(node) => {
                                                procs[p].current =
                                                    Some((node, dag.node(node).weight()));
                                                for &n in &stolen[1..] {
                                                    procs[p].deque.push_bottom(n);
                                                }
                                                nonempty.sync(p, !procs[p].deque.is_empty());
                                                procs[p].stats.steals += 1;
                                                progressed = true;
                                            }
                                            None => procs[p].stats.failed_steals += 1,
                                        }
                                    }
                                }
                            }
                            _ => {
                                if !candidates.is_empty() {
                                    procs[p].stats.failed_steals += 1;
                                }
                            }
                        }
                    }
                }
            }

            if !progressed {
                scheduler.on_stalled(step);
            }
            step += 1;
        }

        // Cache statistics are folded into the per-processor stats once per
        // run, not once per completion.
        for proc in procs.iter_mut() {
            proc.stats.cache = proc.cache.stats();
        }
        ExecutionReport {
            per_proc: procs.iter().map(|p| p.stats.clone()).collect(),
            makespan,
            completed: tracker.executed_count() == total,
            trace,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn complete<S: Scheduler + ?Sized>(
        &self,
        dag: &Dag,
        tracker: &mut ReadyTracker,
        proc: &mut Proc,
        seq_prev: &[Option<NodeId>],
        enabled: &mut Vec<NodeId>,
        nonempty: &mut NonEmptySet,
        scheduler: &mut S,
        p: usize,
        node: NodeId,
        step: u64,
        trace: &mut Option<Vec<TraceEvent>>,
    ) {
        proc.cache.access_opt(dag.block_of(node).map(|b| b.0));
        proc.stats.executed += 1;

        // A node is a deviation unless this same processor executed its
        // sequential predecessor immediately before it.
        let expected = seq_prev.get(node.index()).copied().flatten();
        if proc.last_completed != expected {
            proc.stats.deviations += 1;
        }
        proc.last_completed = Some(node);
        if let Some(t) = trace.as_mut() {
            t.push(TraceEvent {
                step,
                proc: p,
                node,
            });
        }

        tracker.complete_into(dag, node, enabled);
        let cont = schedule_enabled(dag, node, enabled, self.config.fork_policy);
        if let Some(push) = cont.push {
            proc.deque.push_bottom(push);
        }
        // Continue with the chosen child, otherwise fall back to the bottom
        // of the own deque (the parsimonious rule).
        let next = cont.next.or_else(|| proc.deque.pop_bottom());
        proc.current = next.map(|n| (n, dag.node(n).weight()));
        nonempty.sync(p, !proc.deque.is_empty());

        scheduler.on_complete(p, node, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ForkPolicy;
    use crate::scheduler::GreedyScheduler;
    use wsf_dag::{Block, DagBuilder};

    /// A balanced fork-join tree of depth `depth` where every leaf touches a
    /// distinct block.
    fn fork_tree(depth: usize) -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        // Recursively spawn: thread spawns two children at each level.
        fn expand(
            b: &mut DagBuilder,
            thread: wsf_dag::ThreadId,
            depth: usize,
            next_block: &mut u32,
        ) {
            if depth == 0 {
                let n = b.task(thread);
                b.set_block(n, Block(*next_block));
                *next_block += 1;
                return;
            }
            let f = b.fork(thread);
            expand(b, f.future_thread, depth - 1, next_block);
            b.task(thread);
            expand(b, thread, depth - 1, next_block);
            b.touch_thread(thread, f.future_thread);
        }
        let mut blocks = 0;
        expand(&mut b, main, depth, &mut blocks);
        b.task(main);
        b.finish().unwrap()
    }

    #[test]
    fn single_processor_run_matches_sequential_order() {
        let dag = fork_tree(3);
        let config = SimConfig {
            processors: 1,
            ..SimConfig::default()
        };
        let sim = ParallelSimulator::new(config);
        let seq = sim.sequential(&dag);
        let mut sched = GreedyScheduler;
        let report = sim.run_against(&dag, &seq, &mut sched, true);

        assert!(report.completed);
        assert_eq!(report.executed(), dag.num_nodes() as u64);
        assert_eq!(report.deviations(), 0, "one processor cannot deviate");
        assert_eq!(report.steals(), 0);
        assert_eq!(report.cache_misses(), seq.cache_misses());

        let trace = report.trace.unwrap();
        let order: Vec<NodeId> = trace.iter().map(|e| e.node).collect();
        assert_eq!(order, seq.order);
    }

    #[test]
    fn parallel_run_executes_every_node_exactly_once() {
        let dag = fork_tree(4);
        for processors in [2, 3, 4, 8] {
            for policy in ForkPolicy::ALL {
                let config = SimConfig {
                    processors,
                    fork_policy: policy,
                    ..SimConfig::default()
                };
                let report = ParallelSimulator::new(config).run(&dag);
                assert!(report.completed, "P={processors} {policy}");
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
        }
    }

    #[test]
    fn parallel_run_is_deterministic_for_a_seed() {
        let dag = fork_tree(4);
        let config = SimConfig {
            processors: 4,
            seed: 42,
            ..SimConfig::default()
        };
        let a = ParallelSimulator::new(config).run(&dag);
        let b = ParallelSimulator::new(config).run(&dag);
        assert_eq!(a.deviations(), b.deviations());
        assert_eq!(a.cache_misses(), b.cache_misses());
        assert_eq!(a.steals(), b.steals());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_state() {
        // The same (dag, seed, config) run through one reused scratch must
        // produce exactly the report a fresh-state run produces — including
        // across intervening runs with different configurations.
        let dag = fork_tree(5);
        let mut scratch = SimScratch::new();
        for processors in [1usize, 3, 4] {
            for policy in ForkPolicy::ALL {
                let config = SimConfig {
                    processors,
                    fork_policy: policy,
                    seed: 7,
                    ..SimConfig::default()
                };
                let sim = ParallelSimulator::new(config);
                let seq = sim.sequential(&dag);
                let mut fresh_sched = RandomScheduler::new(config.seed);
                let fresh = sim.run_against(&dag, &seq, &mut fresh_sched, true);
                let mut reused_sched = RandomScheduler::new(config.seed);
                let reused =
                    sim.run_with_scratch(&dag, &seq, &mut reused_sched, true, &mut scratch);
                assert_eq!(fresh.makespan, reused.makespan);
                assert_eq!(fresh.deviations(), reused.deviations());
                assert_eq!(fresh.steals(), reused.steals());
                assert_eq!(fresh.cache_misses(), reused.cache_misses());
                assert_eq!(fresh.trace, reused.trace, "identical node-by-node order");
            }
        }
    }

    #[test]
    fn deviations_are_bounded_by_executed_nodes() {
        let dag = fork_tree(5);
        let config = SimConfig {
            processors: 4,
            ..SimConfig::default()
        };
        let report = ParallelSimulator::new(config).run(&dag);
        assert!(report.deviations() <= report.executed());
        assert!(report.busy_processors() >= 1);
    }

    #[test]
    fn work_is_actually_distributed_with_greedy_stealing() {
        let dag = fork_tree(6);
        let config = SimConfig {
            processors: 4,
            ..SimConfig::default()
        };
        let sim = ParallelSimulator::new(config);
        let seq = sim.sequential(&dag);
        let mut sched = GreedyScheduler;
        let report = sim.run_against(&dag, &seq, &mut sched, false);
        assert!(report.completed);
        assert!(report.steals() > 0, "thieves find work in a wide tree");
        assert!(report.busy_processors() > 1);
        assert!(
            report.makespan < dag.num_nodes() as u64,
            "parallelism shortens the makespan"
        );
    }

    #[test]
    fn weighted_nodes_take_multiple_steps() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let n = b.task(main);
        b.set_weight(n, 10);
        b.task(main);
        let dag = b.finish().unwrap();
        let config = SimConfig {
            processors: 1,
            ..SimConfig::default()
        };
        let report = ParallelSimulator::new(config).run(&dag);
        assert!(report.completed);
        assert!(report.makespan >= 12, "weights contribute to the makespan");
    }

    #[test]
    fn incomplete_when_budget_too_small() {
        let dag = fork_tree(3);
        let config = SimConfig {
            processors: 2,
            max_steps: Some(3),
            ..SimConfig::default()
        };
        let report = ParallelSimulator::new(config).run(&dag);
        assert!(!report.completed);
        assert!(report.executed() < dag.num_nodes() as u64);
    }
}
