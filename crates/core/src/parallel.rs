//! The simulated parallel work-stealing execution.
//!
//! `P` simulated processors execute the DAG in discrete time steps. Each
//! processor owns a deque of ready nodes and a private cache. In each step
//! an awake processor either works one unit on its current node (completing
//! it when its weight is exhausted) or, if it has nothing to do, attempts
//! one steal from the top of another processor's deque. Completing a node
//! enables its children; the parsimonious rule
//! ([`crate::ready::schedule_enabled`]) decides which enabled child the
//! processor continues with and which it pushes.
//!
//! The simulator counts, per processor, executed nodes, successful and
//! failed steals, cache hits/misses and *deviations* (nodes not executed
//! immediately after their predecessor in the sequential order, by the same
//! processor), which are exactly the quantities bounded by the paper's
//! theorems.

use crate::config::SimConfig;
use crate::ready::{schedule_enabled, ReadyTracker};
use crate::report::{ExecutionReport, ProcStats, SeqReport, TraceEvent};
use crate::scheduler::{RandomScheduler, Scheduler};
use crate::sequential::SequentialExecutor;
use wsf_cache::CacheSim;
use wsf_dag::{Dag, NodeId};
use wsf_deque::SimDeque;

/// A simulated parallel execution of a computation DAG under parsimonious
/// work stealing.
#[derive(Copy, Clone, Debug)]
pub struct ParallelSimulator {
    config: SimConfig,
}

struct Proc {
    deque: SimDeque<NodeId>,
    /// The node currently being executed and its remaining weight.
    current: Option<(NodeId, u32)>,
    last_completed: Option<NodeId>,
    cache: CacheSim,
    stats: ProcStats,
}

impl ParallelSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        ParallelSimulator { config }
    }

    /// The configuration this simulator runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the DAG with the default random steal scheduler, computing the
    /// sequential baseline (same fork policy) internally for deviation
    /// counting.
    pub fn run(&self, dag: &Dag) -> ExecutionReport {
        let seq = self.sequential(dag);
        let mut scheduler = RandomScheduler::new(self.config.seed);
        self.run_against(dag, &seq, &mut scheduler, false)
    }

    /// Runs the DAG with a caller-supplied scheduler (e.g. a scripted
    /// adversary), computing the sequential baseline internally.
    pub fn run_with(&self, dag: &Dag, scheduler: &mut dyn Scheduler) -> ExecutionReport {
        let seq = self.sequential(dag);
        self.run_against(dag, &seq, scheduler, false)
    }

    /// The sequential baseline execution matching this simulator's fork
    /// policy, cache policy and cache size.
    pub fn sequential(&self, dag: &Dag) -> SeqReport {
        SequentialExecutor::new(self.config.fork_policy)
            .with_cache_lines(self.config.cache_lines)
            .with_cache_policy(self.config.cache_policy)
            .run(dag)
    }

    /// Runs the DAG against a precomputed sequential baseline.
    ///
    /// `record_trace` additionally records every completion event (step,
    /// processor, node), which the tests and some experiments use to verify
    /// execution orders node by node.
    pub fn run_against(
        &self,
        dag: &Dag,
        seq: &SeqReport,
        scheduler: &mut dyn Scheduler,
        record_trace: bool,
    ) -> ExecutionReport {
        let p_count = self.config.processors.max(1);
        let seq_prev = seq.predecessors();
        let mut tracker = ReadyTracker::new(dag);
        let mut procs: Vec<Proc> = (0..p_count)
            .map(|_| Proc {
                deque: SimDeque::new(),
                current: None,
                last_completed: None,
                cache: CacheSim::new(self.config.cache_policy, self.config.cache_lines),
                stats: ProcStats::default(),
            })
            .collect();
        let mut trace = if record_trace { Some(Vec::new()) } else { None };

        // The computation starts with the root node on processor 0.
        procs[0].current = Some((dag.root(), dag.node(dag.root()).weight()));

        let total = dag.num_nodes();
        let budget = self.config.step_budget(dag.work());
        let mut step: u64 = 0;
        let mut makespan = 0;

        while tracker.executed_count() < total && step < budget {
            let mut progressed = false;

            for p in 0..p_count {
                if !scheduler.is_awake(p, step) {
                    continue;
                }
                match procs[p].current {
                    Some((node, remaining)) => {
                        progressed = true;
                        if remaining > 1 {
                            procs[p].current = Some((node, remaining - 1));
                        } else {
                            procs[p].current = None;
                            self.complete(
                                dag,
                                &mut tracker,
                                &mut procs[p],
                                &seq_prev,
                                scheduler,
                                p,
                                node,
                                step,
                                &mut trace,
                            );
                            makespan = step + 1;
                        }
                    }
                    None => {
                        // Idle processor: its own deque is drained at
                        // completion time, so the only way to obtain work is
                        // to steal from the top of another processor's deque.
                        let candidates: Vec<usize> = (0..p_count)
                            .filter(|&q| q != p && !procs[q].deque.is_empty())
                            .collect();
                        match scheduler.choose_victim(p, &candidates) {
                            Some(victim) if candidates.contains(&victim) => {
                                let stolen = procs[victim].deque.steal_top();
                                match stolen {
                                    Some(node) => {
                                        procs[p].current = Some((node, dag.node(node).weight()));
                                        procs[p].stats.steals += 1;
                                        progressed = true;
                                    }
                                    None => procs[p].stats.failed_steals += 1,
                                }
                            }
                            _ => {
                                if !candidates.is_empty() {
                                    procs[p].stats.failed_steals += 1;
                                }
                            }
                        }
                    }
                }
            }

            if !progressed {
                scheduler.on_stalled(step);
            }
            step += 1;
        }

        ExecutionReport {
            per_proc: procs.into_iter().map(|p| p.stats).collect(),
            makespan,
            completed: tracker.executed_count() == total,
            trace,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn complete(
        &self,
        dag: &Dag,
        tracker: &mut ReadyTracker,
        proc: &mut Proc,
        seq_prev: &[Option<NodeId>],
        scheduler: &mut dyn Scheduler,
        p: usize,
        node: NodeId,
        step: u64,
        trace: &mut Option<Vec<TraceEvent>>,
    ) {
        proc.cache.access_opt(dag.block_of(node).map(|b| b.0));
        proc.stats.executed += 1;

        // A node is a deviation unless this same processor executed its
        // sequential predecessor immediately before it.
        let expected = seq_prev.get(node.index()).copied().flatten();
        if proc.last_completed != expected {
            proc.stats.deviations += 1;
        }
        proc.last_completed = Some(node);
        if let Some(t) = trace.as_mut() {
            t.push(TraceEvent {
                step,
                proc: p,
                node,
            });
        }

        let enabled = tracker.complete(dag, node);
        let cont = schedule_enabled(dag, node, &enabled, self.config.fork_policy);
        if let Some(push) = cont.push {
            proc.deque.push_bottom(push);
        }
        // Continue with the chosen child, otherwise fall back to the bottom
        // of the own deque (the parsimonious rule).
        let next = cont.next.or_else(|| proc.deque.pop_bottom());
        proc.current = next.map(|n| (n, dag.node(n).weight()));
        proc.stats.cache = proc.cache.stats();

        scheduler.on_complete(p, node, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ForkPolicy;
    use crate::scheduler::GreedyScheduler;
    use wsf_dag::{Block, DagBuilder};

    /// A balanced fork-join tree of depth `depth` where every leaf touches a
    /// distinct block.
    fn fork_tree(depth: usize) -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        // Recursively spawn: thread spawns two children at each level.
        fn expand(
            b: &mut DagBuilder,
            thread: wsf_dag::ThreadId,
            depth: usize,
            next_block: &mut u32,
        ) {
            if depth == 0 {
                let n = b.task(thread);
                b.set_block(n, Block(*next_block));
                *next_block += 1;
                return;
            }
            let f = b.fork(thread);
            expand(b, f.future_thread, depth - 1, next_block);
            b.task(thread);
            expand(b, thread, depth - 1, next_block);
            b.touch_thread(thread, f.future_thread);
        }
        let mut blocks = 0;
        expand(&mut b, main, depth, &mut blocks);
        b.task(main);
        b.finish().unwrap()
    }

    #[test]
    fn single_processor_run_matches_sequential_order() {
        let dag = fork_tree(3);
        let config = SimConfig {
            processors: 1,
            ..SimConfig::default()
        };
        let sim = ParallelSimulator::new(config);
        let seq = sim.sequential(&dag);
        let mut sched = GreedyScheduler;
        let report = sim.run_against(&dag, &seq, &mut sched, true);

        assert!(report.completed);
        assert_eq!(report.executed(), dag.num_nodes() as u64);
        assert_eq!(report.deviations(), 0, "one processor cannot deviate");
        assert_eq!(report.steals(), 0);
        assert_eq!(report.cache_misses(), seq.cache_misses());

        let trace = report.trace.unwrap();
        let order: Vec<NodeId> = trace.iter().map(|e| e.node).collect();
        assert_eq!(order, seq.order);
    }

    #[test]
    fn parallel_run_executes_every_node_exactly_once() {
        let dag = fork_tree(4);
        for processors in [2, 3, 4, 8] {
            for policy in ForkPolicy::ALL {
                let config = SimConfig {
                    processors,
                    fork_policy: policy,
                    ..SimConfig::default()
                };
                let report = ParallelSimulator::new(config).run(&dag);
                assert!(report.completed, "P={processors} {policy}");
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
        }
    }

    #[test]
    fn parallel_run_is_deterministic_for_a_seed() {
        let dag = fork_tree(4);
        let config = SimConfig {
            processors: 4,
            seed: 42,
            ..SimConfig::default()
        };
        let a = ParallelSimulator::new(config).run(&dag);
        let b = ParallelSimulator::new(config).run(&dag);
        assert_eq!(a.deviations(), b.deviations());
        assert_eq!(a.cache_misses(), b.cache_misses());
        assert_eq!(a.steals(), b.steals());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn deviations_are_bounded_by_executed_nodes() {
        let dag = fork_tree(5);
        let config = SimConfig {
            processors: 4,
            ..SimConfig::default()
        };
        let report = ParallelSimulator::new(config).run(&dag);
        assert!(report.deviations() <= report.executed());
        assert!(report.busy_processors() >= 1);
    }

    #[test]
    fn work_is_actually_distributed_with_greedy_stealing() {
        let dag = fork_tree(6);
        let config = SimConfig {
            processors: 4,
            ..SimConfig::default()
        };
        let sim = ParallelSimulator::new(config);
        let seq = sim.sequential(&dag);
        let mut sched = GreedyScheduler;
        let report = sim.run_against(&dag, &seq, &mut sched, false);
        assert!(report.completed);
        assert!(report.steals() > 0, "thieves find work in a wide tree");
        assert!(report.busy_processors() > 1);
        assert!(
            report.makespan < dag.num_nodes() as u64,
            "parallelism shortens the makespan"
        );
    }

    #[test]
    fn weighted_nodes_take_multiple_steps() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let n = b.task(main);
        b.set_weight(n, 10);
        b.task(main);
        let dag = b.finish().unwrap();
        let config = SimConfig {
            processors: 1,
            ..SimConfig::default()
        };
        let report = ParallelSimulator::new(config).run(&dag);
        assert!(report.completed);
        assert!(report.makespan >= 12, "weights contribute to the makespan");
    }

    #[test]
    fn incomplete_when_budget_too_small() {
        let dag = fork_tree(3);
        let config = SimConfig {
            processors: 2,
            max_steps: Some(3),
            ..SimConfig::default()
        };
        let report = ParallelSimulator::new(config).run(&dag);
        assert!(!report.completed);
        assert!(report.executed() < dag.num_nodes() as u64);
    }
}
