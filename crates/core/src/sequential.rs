//! The sequential (single-processor) execution.
//!
//! The baseline against which both cache misses and deviations are counted
//! is the execution of the DAG by a *single* processor running the same
//! parsimonious work-stealing scheduler (and the same fork policy): at a
//! fork it executes one child and pushes the other onto its deque, and when
//! it runs out of ready successors it pops the bottom of its deque.

use crate::policy::ForkPolicy;
use crate::ready::{schedule_enabled, ReadyTracker};
use crate::report::SeqReport;
use wsf_cache::{CachePolicy, CacheSim};
use wsf_dag::{Dag, NodeId};
use wsf_deque::SimDeque;

/// Executes a computation DAG on one simulated processor.
#[derive(Copy, Clone, Debug)]
pub struct SequentialExecutor {
    fork_policy: ForkPolicy,
    cache_policy: CachePolicy,
    cache_lines: usize,
}

impl SequentialExecutor {
    /// Creates an executor with the given fork policy, an LRU cache and the
    /// default number of cache lines (8).
    pub fn new(fork_policy: ForkPolicy) -> Self {
        SequentialExecutor {
            fork_policy,
            cache_policy: CachePolicy::Lru,
            cache_lines: 8,
        }
    }

    /// Sets the number of cache lines `C`.
    pub fn with_cache_lines(mut self, lines: usize) -> Self {
        self.cache_lines = lines;
        self
    }

    /// Sets the cache replacement policy.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// The fork policy used at forks.
    pub fn fork_policy(&self) -> ForkPolicy {
        self.fork_policy
    }

    /// Runs the sequential execution and returns its node order and cache
    /// statistics.
    ///
    /// # Panics
    /// Panics if the execution does not visit every node, which indicates a
    /// malformed DAG (builder-produced DAGs always complete).
    pub fn run(&self, dag: &Dag) -> SeqReport {
        let mut tracker = ReadyTracker::new(dag);
        let mut deque: SimDeque<NodeId> = SimDeque::new();
        // Workload blocks are allocated densely from 0, so the DAG's block
        // space selects the direct-mapped cache index at large capacities.
        let mut cache =
            CacheSim::with_block_hint(self.cache_policy, self.cache_lines, dag.block_space());
        let mut order = Vec::with_capacity(dag.num_nodes());

        let mut current = Some(dag.root());
        let mut enabled = Vec::with_capacity(2);
        while let Some(node) = current {
            debug_assert!(tracker.is_ready(node), "executing a non-ready node");
            cache.access_opt(dag.block_of(node).map(|b| b.0));
            order.push(node);

            tracker.complete_into(dag, node, &mut enabled);
            let cont = schedule_enabled(dag, node, &enabled, self.fork_policy);
            if let Some(push) = cont.push {
                deque.push_bottom(push);
            }
            current = cont.next.or_else(|| deque.pop_bottom());
        }

        assert_eq!(
            tracker.executed_count(),
            dag.num_nodes(),
            "sequential execution did not reach every node"
        );
        SeqReport {
            order,
            cache: cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_dag::{Block, DagBuilder};

    /// The paper's Figure 4-style DAG: two nested futures, each touched by
    /// the main thread after the corresponding fork's right child.
    fn nested_two_futures() -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f1 = b.fork(main);
        b.chain(f1.future_thread, 2);
        let f2 = b.fork(main);
        b.chain(f2.future_thread, 2);
        b.task(main);
        b.touch_thread(main, f2.future_thread);
        b.touch_thread(main, f1.future_thread);
        b.task(main);
        b.finish().unwrap()
    }

    #[test]
    fn visits_every_node_exactly_once() {
        let dag = nested_two_futures();
        for policy in ForkPolicy::ALL {
            let report = SequentialExecutor::new(policy).run(&dag);
            assert_eq!(report.order.len(), dag.num_nodes());
            let mut sorted: Vec<_> = report.order.iter().map(|n| n.index()).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), dag.num_nodes());
            // Execution order must respect dependencies.
            let mut pos = vec![usize::MAX; dag.num_nodes()];
            for (i, n) in report.order.iter().enumerate() {
                pos[n.index()] = i;
            }
            for id in dag.node_ids() {
                for e in dag.node(id).out_edges() {
                    assert!(pos[id.index()] < pos[e.node.index()]);
                }
            }
        }
    }

    #[test]
    fn future_first_dives_into_the_future_thread() {
        let dag = nested_two_futures();
        let report = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
        let fork = dag.forks().next().unwrap();
        let left = dag.left_child(fork).unwrap();
        let right = dag.right_child(fork).unwrap();
        let pos = |n: NodeId| report.order.iter().position(|&x| x == n).unwrap();
        assert!(
            pos(left) < pos(right),
            "future thread runs before the parent continuation"
        );
    }

    #[test]
    fn parent_first_defers_the_future_thread() {
        let dag = nested_two_futures();
        let report = SequentialExecutor::new(ForkPolicy::ParentFirst).run(&dag);
        let fork = dag.forks().next().unwrap();
        let left = dag.left_child(fork).unwrap();
        let right = dag.right_child(fork).unwrap();
        let pos = |n: NodeId| report.order.iter().position(|&x| x == n).unwrap();
        assert!(
            pos(right) < pos(left),
            "parent continuation runs before the future thread"
        );
    }

    #[test]
    fn lemma4_future_parent_before_local_parent() {
        // Lemma 4: under future-first, every touch's future parent executes
        // before its local parent, and the fork's right child immediately
        // follows the future thread's last node.
        let dag = nested_two_futures();
        let report = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
        let pos = |n: NodeId| report.order.iter().position(|&x| x == n).unwrap();
        for touch in dag.touches() {
            let fp = dag.future_parent(touch).unwrap();
            let lp = dag.local_parent(touch).unwrap();
            assert!(pos(fp) < pos(lp), "future parent executes first");
            let fork = dag.corresponding_fork(touch).unwrap();
            let right = dag.right_child(fork).unwrap();
            let last_of_future = dag
                .thread(dag.future_thread_of_touch(touch).unwrap())
                .last();
            assert_eq!(
                pos(right),
                pos(last_of_future) + 1,
                "right child immediately follows the future thread"
            );
        }
    }

    #[test]
    fn cache_counts_reflect_blocks() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        // Access blocks 0,1,0,1 with a 2-line cache: 2 misses, 2 hits.
        for blk in [0u32, 1, 0, 1] {
            b.task_block(main, Block(blk));
        }
        let dag = b.finish().unwrap();
        let report = SequentialExecutor::new(ForkPolicy::FutureFirst)
            .with_cache_lines(2)
            .run(&dag);
        assert_eq!(report.cache.misses, 2);
        assert_eq!(report.cache.hits, 2);
        // The root and final nodes have no block: counted as silent.
        assert_eq!(report.cache.silent as usize, dag.num_nodes() - 4);
    }

    #[test]
    fn sentinel_high_block_ids_run_at_large_capacities() {
        // apps::map_reduce tags its accumulator with Block(u32::MAX - 1),
        // making the DAG's declared block space u32::MAX. The dense-index
        // fast path must fall back to hashing instead of allocating
        // O(largest id) memory — this used to OOM at any C > the scan
        // crossover.
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        for blk in [0u32, 1, u32::MAX - 1, 0, u32::MAX - 1] {
            b.task_block(main, Block(blk));
        }
        let dag = b.finish().unwrap();
        assert_eq!(dag.block_space(), u32::MAX as usize);
        for lines in [256usize, 4096] {
            let report = SequentialExecutor::new(ForkPolicy::FutureFirst)
                .with_cache_lines(lines)
                .run(&dag);
            assert_eq!(report.cache.misses, 3, "C={lines}: only cold misses");
            assert_eq!(report.cache.hits, 2);
        }
    }

    #[test]
    fn builder_accessors() {
        let e = SequentialExecutor::new(ForkPolicy::ParentFirst)
            .with_cache_lines(32)
            .with_cache_policy(CachePolicy::Fifo);
        assert_eq!(e.fork_policy(), ForkPolicy::ParentFirst);
    }
}
