//! Execution reports produced by the executors.

use wsf_cache::CacheStats;
use wsf_dag::NodeId;

/// Result of a sequential (single-processor) execution.
///
/// The sequential execution defines both the baseline cache-miss count and
/// the node order against which *deviations* of parallel executions are
/// counted.
#[derive(Clone, Debug)]
pub struct SeqReport {
    /// The nodes in execution order.
    pub order: Vec<NodeId>,
    /// Cache statistics of the single processor.
    pub cache: CacheStats,
}

impl SeqReport {
    /// Number of cache misses of the sequential execution.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses
    }

    /// For every node, the node executed immediately before it in the
    /// sequential order (`None` for the first node). Indexed by
    /// `NodeId::index`.
    pub fn predecessors(&self) -> Vec<Option<NodeId>> {
        let mut prev = Vec::new();
        self.predecessors_into(&mut prev);
        prev
    }

    /// Writes the predecessor table into `prev` (cleared first), reusing its
    /// storage. See [`SeqReport::predecessors`].
    pub fn predecessors_into(&self, prev: &mut Vec<Option<NodeId>>) {
        let max_index = self
            .order
            .iter()
            .map(|n| n.index())
            .max()
            .map_or(0, |m| m + 1);
        prev.clear();
        prev.resize(max_index, None);
        for pair in self.order.windows(2) {
            prev[pair[1].index()] = Some(pair[0]);
        }
    }
}

/// Per-processor statistics of a parallel execution.
#[derive(Clone, Debug, Default)]
pub struct ProcStats {
    /// Number of nodes this processor executed.
    pub executed: u64,
    /// Number of successful steals this processor performed.
    pub steals: u64,
    /// Number of failed steal attempts.
    pub failed_steals: u64,
    /// Number of deviations among the nodes this processor executed.
    pub deviations: u64,
    /// Cache statistics of this processor's private cache.
    pub cache: CacheStats,
}

/// A single completion event of a traced execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time step at which the node completed.
    pub step: u64,
    /// The processor that executed the node.
    pub proc: usize,
    /// The node.
    pub node: NodeId,
}

/// Result of a simulated parallel execution.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Per-processor statistics.
    pub per_proc: Vec<ProcStats>,
    /// Number of simulated steps until the last node completed.
    pub makespan: u64,
    /// Whether every node was executed within the step budget. `false`
    /// indicates the schedule (usually a scripted adversary) deadlocked.
    pub completed: bool,
    /// Completion trace, present only for traced runs.
    pub trace: Option<Vec<TraceEvent>>,
}

impl ExecutionReport {
    /// Total number of nodes executed across all processors.
    pub fn executed(&self) -> u64 {
        self.per_proc.iter().map(|p| p.executed).sum()
    }

    /// Total number of successful steals.
    pub fn steals(&self) -> u64 {
        self.per_proc.iter().map(|p| p.steals).sum()
    }

    /// Total number of deviations (drifted nodes) relative to the
    /// sequential execution with the same fork policy.
    pub fn deviations(&self) -> u64 {
        self.per_proc.iter().map(|p| p.deviations).sum()
    }

    /// Aggregate cache statistics over all processors.
    pub fn cache(&self) -> CacheStats {
        self.per_proc.iter().map(|p| p.cache).sum()
    }

    /// Total number of cache misses over all processors.
    pub fn cache_misses(&self) -> u64 {
        self.cache().misses
    }

    /// Cache misses incurred beyond the sequential execution `seq`
    /// (clamped at zero: a parallel execution can occasionally miss less,
    /// e.g. when a stolen subcomputation fits its thief's cache).
    pub fn additional_misses(&self, seq: &SeqReport) -> u64 {
        self.cache_misses().saturating_sub(seq.cache_misses())
    }

    /// Signed difference in cache misses against the sequential execution.
    pub fn miss_delta(&self, seq: &SeqReport) -> i64 {
        self.cache_misses() as i64 - seq.cache_misses() as i64
    }

    /// Number of processors that executed at least one node.
    pub fn busy_processors(&self) -> usize {
        self.per_proc.iter().filter(|p| p.executed > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(order: &[u32]) -> SeqReport {
        SeqReport {
            order: order.iter().map(|&i| NodeId(i)).collect(),
            cache: CacheStats {
                hits: 0,
                misses: 3,
                silent: 0,
            },
        }
    }

    #[test]
    fn predecessors_follow_order() {
        let s = seq(&[0, 2, 1, 3]);
        let prev = s.predecessors();
        assert_eq!(prev[0], None);
        assert_eq!(prev[2], Some(NodeId(0)));
        assert_eq!(prev[1], Some(NodeId(2)));
        assert_eq!(prev[3], Some(NodeId(1)));
        assert_eq!(s.cache_misses(), 3);
    }

    #[test]
    fn report_aggregates_processors() {
        let report = ExecutionReport {
            per_proc: vec![
                ProcStats {
                    executed: 5,
                    steals: 1,
                    failed_steals: 2,
                    deviations: 2,
                    cache: CacheStats {
                        hits: 1,
                        misses: 4,
                        silent: 0,
                    },
                },
                ProcStats {
                    executed: 3,
                    steals: 0,
                    failed_steals: 0,
                    deviations: 1,
                    cache: CacheStats {
                        hits: 2,
                        misses: 1,
                        silent: 0,
                    },
                },
                ProcStats::default(),
            ],
            makespan: 9,
            completed: true,
            trace: None,
        };
        assert_eq!(report.executed(), 8);
        assert_eq!(report.steals(), 1);
        assert_eq!(report.deviations(), 3);
        assert_eq!(report.cache_misses(), 5);
        assert_eq!(report.busy_processors(), 2);

        let s = seq(&[0, 1, 2]);
        assert_eq!(report.additional_misses(&s), 2);
        assert_eq!(report.miss_delta(&s), 2);

        let expensive_seq = SeqReport {
            order: vec![],
            cache: CacheStats {
                hits: 0,
                misses: 100,
                silent: 0,
            },
        };
        assert_eq!(report.additional_misses(&expensive_seq), 0);
        assert_eq!(report.miss_delta(&expensive_seq), -95);
    }

    #[test]
    fn empty_order_has_no_predecessors() {
        let s = SeqReport {
            order: vec![],
            cache: CacheStats::default(),
        };
        assert!(s.predecessors().is_empty());
    }
}
