//! The asymptotic bounds stated by the paper, as concrete formulas.
//!
//! The experiment harness compares measured deviation / additional-miss
//! counts against these expressions (up to constant factors); keeping them
//! in one place documents exactly which quantity each theorem bounds.

/// Theorem 8: expected deviations of work stealing on a structured
/// single-touch computation with the future-first policy — `O(P·T∞²)`.
pub fn thm8_deviations(processors: u64, span: u64) -> u64 {
    processors.saturating_mul(span.saturating_mul(span))
}

/// Theorem 8: expected additional cache misses — `O(C·P·T∞²)`.
pub fn thm8_additional_misses(cache_lines: u64, processors: u64, span: u64) -> u64 {
    cache_lines.saturating_mul(thm8_deviations(processors, span))
}

/// Theorem 9: deviations attainable on the Figure 6(c) construction —
/// `Ω(P·T∞²)`.
pub fn thm9_deviations(processors: u64, span: u64) -> u64 {
    thm8_deviations(processors, span)
}

/// Theorem 10: deviations attainable with the parent-first policy on the
/// Figure 8 construction — `Ω(t·T∞)`.
pub fn thm10_deviations(touches: u64, span: u64) -> u64 {
    touches.saturating_mul(span)
}

/// Theorem 10: additional cache misses attainable with the parent-first
/// policy — `Ω(C·t·T∞)`.
pub fn thm10_additional_misses(cache_lines: u64, touches: u64, span: u64) -> u64 {
    cache_lines.saturating_mul(thm10_deviations(touches, span))
}

/// Theorem 12: the future-first upper bound extends verbatim from
/// structured single-touch to structured *local-touch* computations —
/// `O(P·T∞²)` expected deviations. The formula is Theorem 8's; the alias
/// documents which theorem an experiment over pipelines, streaming sorts or
/// stencils is actually checking.
pub fn thm12_deviations(processors: u64, span: u64) -> u64 {
    thm8_deviations(processors, span)
}

/// Theorem 12: expected additional cache misses on structured local-touch
/// computations — `O(C·P·T∞²)`.
pub fn thm12_additional_misses(cache_lines: u64, processors: u64, span: u64) -> u64 {
    thm8_additional_misses(cache_lines, processors, span)
}

/// Theorem 16: the future-first upper bound survives adding a *super final
/// node* (Definition 13) — structured single-touch computations whose
/// side-effect threads are synchronized only by the final node still incur
/// `O(P·T∞²)` expected deviations. The formula is Theorem 8's; the alias
/// documents which theorem a super-final experiment (E6, E16 at
/// `steps = 1`) is actually checking.
pub fn thm16_deviations(processors: u64, span: u64) -> u64 {
    thm8_deviations(processors, span)
}

/// Theorem 16: expected additional cache misses on structured single-touch
/// computations with a super final node — `O(C·P·T∞²)`.
pub fn thm16_additional_misses(cache_lines: u64, processors: u64, span: u64) -> u64 {
    thm8_additional_misses(cache_lines, processors, span)
}

/// Theorem 18: the Theorem 12 local-touch bound with a *super final node*
/// (Definition 17) — `O(P·T∞²)` expected deviations. The formula is
/// Theorem 8's; the alias documents which theorem an experiment over
/// symmetric-exchange stencils (E16 at `steps > 1`) is actually checking.
pub fn thm18_deviations(processors: u64, span: u64) -> u64 {
    thm8_deviations(processors, span)
}

/// Theorem 18: expected additional cache misses on structured local-touch
/// computations with a super final node — `O(C·P·T∞²)`.
pub fn thm18_additional_misses(cache_lines: u64, processors: u64, span: u64) -> u64 {
    thm8_additional_misses(cache_lines, processors, span)
}

/// Spoonhower et al.'s bound for general (unstructured) futures under work
/// stealing: `Ω(P·T∞ + t·T∞)` deviations.
pub fn unstructured_deviations(processors: u64, touches: u64, span: u64) -> u64 {
    processors
        .saturating_mul(span)
        .saturating_add(touches.saturating_mul(span))
}

/// The additional-miss form of the unstructured bound:
/// `Ω(C·P·T∞ + C·t·T∞)`.
pub fn unstructured_additional_misses(
    cache_lines: u64,
    processors: u64,
    touches: u64,
    span: u64,
) -> u64 {
    cache_lines.saturating_mul(unstructured_deviations(processors, touches, span))
}

/// Acar, Blelloch and Blumofe's bridge between the two measures: the number
/// of additional cache misses of a work-stealing execution is at most `C`
/// times its number of deviations (for any simple replacement policy).
pub fn misses_from_deviations(cache_lines: u64, deviations: u64) -> u64 {
    cache_lines.saturating_mul(deviations)
}

/// Expected number of steals of parsimonious work stealing
/// (Arora–Blumofe–Plaxton): `O(P·T∞)`.
pub fn expected_steals(processors: u64, span: u64) -> u64 {
    processors.saturating_mul(span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_scale_as_stated() {
        assert_eq!(thm8_deviations(4, 10), 400);
        assert_eq!(thm8_additional_misses(8, 4, 10), 3200);
        assert_eq!(thm9_deviations(3, 7), thm8_deviations(3, 7));
        assert_eq!(thm12_deviations(4, 10), thm8_deviations(4, 10));
        assert_eq!(thm12_additional_misses(8, 4, 10), 3200);
        assert_eq!(thm16_deviations(4, 10), thm8_deviations(4, 10));
        assert_eq!(thm16_additional_misses(8, 4, 10), 3200);
        assert_eq!(thm18_deviations(4, 10), thm8_deviations(4, 10));
        assert_eq!(thm18_additional_misses(8, 4, 10), 3200);
        assert_eq!(thm10_deviations(16, 10), 160);
        assert_eq!(thm10_additional_misses(8, 16, 10), 1280);
        assert_eq!(unstructured_deviations(4, 16, 10), 200);
        assert_eq!(unstructured_additional_misses(2, 4, 16, 10), 400);
        assert_eq!(misses_from_deviations(8, 5), 40);
        assert_eq!(expected_steals(4, 100), 400);
    }

    #[test]
    fn structured_bound_beats_unstructured_when_touches_dominate() {
        // The whole point of the paper: once t >> P·T∞, the structured
        // single-touch bound O(P·T∞²) is far below Ω(t·T∞).
        let (p, c, span) = (4u64, 8u64, 100u64);
        let touches = 1_000_000u64;
        assert!(
            thm8_additional_misses(c, p, span)
                < unstructured_additional_misses(c, p, touches, span)
        );
    }

    #[test]
    fn saturating_behaviour_on_huge_inputs() {
        assert_eq!(thm8_deviations(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(unstructured_deviations(u64::MAX, u64::MAX, 2), u64::MAX);
    }
}
