//! Property-based tests of the cache simulators against a reference model.

use proptest::prelude::*;
use wsf_cache::{Cache, CachePolicy, CacheSim, FifoCache, LruCache};

/// A straightforward reference implementation of fully associative LRU kept
/// deliberately different in structure from `LruCache` (timestamps instead
/// of a recency vector).
struct ReferenceLru {
    capacity: usize,
    clock: u64,
    resident: Vec<(u32, u64)>,
}

impl ReferenceLru {
    fn new(capacity: usize) -> Self {
        ReferenceLru {
            capacity,
            clock: 0,
            resident: Vec::new(),
        }
    }

    fn access(&mut self, block: u32) -> bool {
        self.clock += 1;
        if let Some(entry) = self.resident.iter_mut().find(|(b, _)| *b == block) {
            entry.1 = self.clock;
            return true;
        }
        if self.resident.len() == self.capacity {
            let idx = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.resident.swap_remove(idx);
        }
        self.resident.push((block, self.clock));
        false
    }
}

fn trace_strategy() -> impl Strategy<Value = (usize, Vec<u32>)> {
    (1usize..24, proptest::collection::vec(0u32..40, 1..400))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_matches_reference_model((capacity, trace) in trace_strategy()) {
        let mut lru = LruCache::new(capacity);
        let mut reference = ReferenceLru::new(capacity);
        for &block in &trace {
            let got_hit = lru.access(block).is_hit();
            let want_hit = reference.access(block);
            prop_assert_eq!(got_hit, want_hit, "block {} diverged", block);
        }
        prop_assert!(lru.len() <= capacity);
    }

    #[test]
    fn lru_inclusion_property((capacity, trace) in trace_strategy()) {
        // A larger LRU cache never misses more often than a smaller one
        // (the classic stack/inclusion property of LRU).
        let mut small = CacheSim::new(CachePolicy::Lru, capacity);
        let mut large = CacheSim::new(CachePolicy::Lru, capacity + 4);
        for &block in &trace {
            small.access(block);
            large.access(block);
        }
        prop_assert!(large.stats().misses <= small.stats().misses);
    }

    #[test]
    fn miss_counts_are_bounded_by_accesses((capacity, trace) in trace_strategy()) {
        let distinct = {
            let mut blocks = trace.clone();
            blocks.sort_unstable();
            blocks.dedup();
            blocks.len() as u64
        };
        for policy in [CachePolicy::Lru, CachePolicy::Fifo] {
            let mut sim = CacheSim::new(policy, capacity);
            for &block in &trace {
                sim.access(block);
            }
            let stats = sim.stats();
            prop_assert_eq!(stats.accesses(), trace.len() as u64);
            prop_assert!(stats.misses >= distinct.min(trace.len() as u64) && stats.misses >= 1);
            prop_assert!(stats.misses <= trace.len() as u64);
            // Compulsory misses: at least one miss per distinct block.
            prop_assert!(stats.misses >= distinct);
        }
    }

    #[test]
    fn fifo_occupancy_never_exceeds_capacity((capacity, trace) in trace_strategy()) {
        let mut fifo = FifoCache::new(capacity);
        for &block in &trace {
            fifo.access(block);
            prop_assert!(fifo.len() <= capacity);
            prop_assert!(fifo.contains(block));
        }
    }

    #[test]
    fn resident_blocks_are_consistent_with_contains((capacity, trace) in trace_strategy()) {
        let mut lru = LruCache::new(capacity);
        for &block in &trace {
            lru.access(block);
        }
        for block in lru.resident_blocks() {
            prop_assert!(lru.contains(block));
        }
        prop_assert_eq!(lru.resident_blocks().len(), lru.len());
    }
}
