//! Differential wall for the trace-replay layer: [`wsf_cache::replay`]
//! must be **exactly equal**, access for access, to driving one private
//! [`CacheSim`] per lane by hand, and [`wsf_cache::replay_curves`] must be
//! exactly the per-capacity sweep of those replays — on random multi-lane
//! traces (proptest) with silent accesses, flushes, and the
//! `u32::MAX - 1` sentinel block id that forces a dense→hash index
//! migration. The runtime analogue of `stack_distance_differential.rs`:
//! this wall is what licenses the hardware-validation loop (E21) to treat
//! a replayed runtime trace as having *the* simulated miss count, not an
//! approximation of it.

use proptest::prelude::*;
use wsf_cache::{
    replay, replay_curves, CachePolicy, CacheSim, CacheStats, ReplayOp, StackDistanceSim,
};

/// The capacities the curve is probed at: both sides of the
/// indexed-representation crossover, the paper's C = 16 (±1), and the
/// legacy sweep grid (same grid as `stack_distance_differential.rs`).
const CAPACITIES: [usize; 9] = [1, 2, 15, 16, 17, 64, 256, 4096, 32768];

/// Hand-drives one fresh `CacheSim` per lane — the reference `replay`
/// must reproduce field-for-field.
fn direct_per_lane(
    lanes: &[Vec<ReplayOp>],
    policy: CachePolicy,
    capacity: usize,
    block_space: usize,
) -> Vec<CacheStats> {
    lanes
        .iter()
        .map(|ops| {
            let mut sim = CacheSim::with_block_hint(policy, capacity, block_space);
            for op in ops {
                match *op {
                    ReplayOp::Access(block) => {
                        sim.access_opt(block);
                    }
                    ReplayOp::Flush => sim.flush(),
                }
            }
            sim.stats()
        })
        .collect()
}

fn assert_replay_differential(lanes: &[Vec<ReplayOp>], block_space: usize) {
    // Fixed-capacity replay vs direct simulation, both policies.
    for policy in [CachePolicy::Lru, CachePolicy::Fifo] {
        for capacity in CAPACITIES {
            let summary = replay(lanes, policy, capacity, block_space);
            let direct = direct_per_lane(lanes, policy, capacity, block_space);
            assert_eq!(
                summary.per_lane, direct,
                "replay diverged from direct simulation ({policy:?}, C = {capacity})"
            );
            assert_eq!(
                summary.total,
                direct.iter().copied().sum::<CacheStats>(),
                "total is not the lane sum ({policy:?}, C = {capacity})"
            );
        }
    }

    // One-pass curve vs the per-capacity LRU replays, and vs hand-driven
    // per-lane profilers merged the same way.
    let curve = replay_curves(lanes, block_space);
    for capacity in CAPACITIES {
        let fixed = replay(lanes, CachePolicy::Lru, capacity, block_space);
        assert_eq!(
            curve.stats_at(capacity),
            fixed.total,
            "curve diverged from fixed-capacity replay at C = {capacity}"
        );
    }
    let mut merged = StackDistanceSim::new().curve();
    for ops in lanes {
        let mut sd = StackDistanceSim::with_block_hint(block_space);
        for op in ops {
            match *op {
                ReplayOp::Access(block) => {
                    sd.access_opt(block);
                }
                ReplayOp::Flush => sd.flush(),
            }
        }
        merged.merge(&sd.curve());
    }
    assert_eq!(curve, merged, "replay_curves is not the per-lane merge");
}

/// Decodes a raw `(tag, block)` pair, weighted ~8:1:1:1 between plain
/// accesses, silent instructions, the sentinel id, and flushes (same
/// decoding as the stack-distance differential suite).
fn decode_op((tag, block): (u8, u32)) -> ReplayOp {
    match tag {
        0..=7 => ReplayOp::Access(Some(block)),
        8 => ReplayOp::Access(None),
        9 => ReplayOp::Access(Some(u32::MAX - 1)),
        _ => ReplayOp::Flush,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_multi_lane_traces_replay_exactly(
        (raw_lanes, space) in (
            proptest::collection::vec(
                proptest::collection::vec((0u8..11, 0u32..300), 0..120),
                1..6,
            ),
            1usize..400,
        )
    ) {
        let lanes: Vec<Vec<ReplayOp>> = raw_lanes
            .into_iter()
            .map(|raw| raw.into_iter().map(decode_op).collect())
            .collect();
        assert_replay_differential(&lanes, space);
    }
}

#[test]
fn empty_and_silent_only_lanes_replay_exactly() {
    let lanes = vec![
        vec![],
        vec![ReplayOp::Access(None); 5],
        vec![ReplayOp::Flush, ReplayOp::Access(None), ReplayOp::Flush],
    ];
    assert_replay_differential(&lanes, 4);
    let summary = replay(&lanes, CachePolicy::Lru, 16, 4);
    assert_eq!(summary.total.misses, 0, "silent lanes cannot miss");
    assert_eq!(summary.total.silent, 6);
}

#[test]
fn sentinel_block_migrates_the_index_mid_replay() {
    // A dense run, then the sentinel, then dense again: the replay-side
    // simulators must survive the dense→hash migration exactly as the
    // direct ones do (the failure mode PR 4 fixed in the caches proper).
    let lane: Vec<ReplayOp> = (0..40u32)
        .map(|b| ReplayOp::Access(Some(b % 10)))
        .chain([ReplayOp::Access(Some(u32::MAX - 1))])
        .chain((0..40u32).map(|b| ReplayOp::Access(Some(b % 13))))
        .collect();
    assert_replay_differential(&[lane], 10);
}
