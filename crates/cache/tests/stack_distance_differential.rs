//! Differential wall for the one-pass stack-distance profiler: its derived
//! per-capacity hit/miss counts must be **exactly equal** to running an
//! LRU [`CacheSim`] once per capacity over the same trace — on the
//! Theorem-12/16 workload traces the experiments actually sweep, on random
//! traces (proptest), with interleaved `flush()`es, and with the
//! `u32::MAX - 1` sentinel block id that forces a dense→hash index
//! migration (the failure mode PR 4 fixed in the caches proper).
//!
//! This wall is what licenses E15/E16/E17 to replace their per-capacity
//! re-simulation loops with one profiler pass: any discrepancy at any of
//! the probed capacities is a hard failure, not a tolerance.

// The proptest! block below nests deeply enough to hit the default limit.
#![recursion_limit = "512"]

use proptest::prelude::*;
use wsf_cache::{BlockId, CachePolicy, CacheSim, StackDistanceSim};
use wsf_core::{ForkPolicy, SequentialExecutor};
use wsf_dag::Dag;
use wsf_workloads::{apps, backpressure, sort, stencil};

/// The capacities the per-capacity reference simulators run at: both sides
/// of the indexed-representation crossover, the paper's C = 16 (±1), and
/// the legacy sweep grid.
const CAPACITIES: [usize; 9] = [1, 2, 15, 16, 17, 64, 256, 4096, 32768];

/// One step of a differential trace.
#[derive(Copy, Clone, Debug)]
enum TraceOp {
    /// Access a block (`None` = silent instruction).
    Access(Option<BlockId>),
    /// Forget residency, keep statistics (`CacheSim::flush`).
    Flush,
}

/// Runs `ops` through one stack-distance profiler and one `CacheSim` per
/// probed capacity, then asserts the profiler reproduces every reference
/// simulator's statistics exactly. `block_space` seeds the dense-index
/// hint on both sides; the profiler is additionally checked in its
/// hash-index flavor so both index paths are pinned.
fn assert_differential(ops: &[TraceOp], block_space: usize) {
    let mut sd_hint = StackDistanceSim::with_block_hint(block_space);
    let mut sd_hash = StackDistanceSim::new();
    let mut sims: Vec<CacheSim> = CAPACITIES
        .iter()
        .map(|&c| CacheSim::with_block_hint(CachePolicy::Lru, c, block_space))
        .collect();
    for op in ops {
        match *op {
            TraceOp::Access(block) => {
                sd_hint.access_opt(block);
                sd_hash.access_opt(block);
                for sim in &mut sims {
                    sim.access_opt(block);
                }
            }
            TraceOp::Flush => {
                sd_hint.flush();
                sd_hash.flush();
                for sim in &mut sims {
                    sim.flush();
                }
            }
        }
    }
    let curve_hint = sd_hint.curve();
    let curve_hash = sd_hash.curve();
    assert_eq!(curve_hint, curve_hash, "index flavor changed the curve");
    for sim in &sims {
        let c = sim.capacity();
        assert_eq!(
            curve_hint.stats_at(c),
            sim.stats(),
            "stack-distance profile diverged from CacheSim at C = {c}"
        );
    }
}

/// The sequential block trace of `dag` (the trace E15/E16/E17 profile),
/// with a flush inserted at each third to exercise residency clears.
fn workload_ops(dag: &Dag, flushes: bool) -> (Vec<TraceOp>, usize) {
    let seq = SequentialExecutor::new(ForkPolicy::FutureFirst).run(dag);
    let third = (seq.order.len() / 3).max(1);
    let mut ops = Vec::with_capacity(seq.order.len() + 2);
    for (i, &node) in seq.order.iter().enumerate() {
        if flushes && i > 0 && i % third == 0 {
            ops.push(TraceOp::Flush);
        }
        ops.push(TraceOp::Access(dag.block_of(node).map(|b| b.0)));
    }
    (ops, dag.block_space())
}

fn suite_workloads() -> Vec<(&'static str, Dag)> {
    vec![
        ("mergesort", sort::mergesort(64, 8)),
        ("mergesort-streaming", sort::mergesort_streaming(64, 8, 16)),
        ("stencil", stencil::stencil(3, 2, 3)),
        (
            "pipeline-window4",
            backpressure::batched_pipeline(2, 4, 4, 3),
        ),
        ("exchange", stencil::stencil_exchange(3, 2, 2)),
        ("exchange-1step", stencil::stencil_exchange(4, 2, 1)),
        // map_reduce parks its accumulator at the sentinel id
        // `u32::MAX - 1`, so its trace migrates the dense index mid-pass.
        ("map-reduce-sentinel", apps::map_reduce(4, 3)),
    ]
}

#[test]
fn suite_workload_traces_match_cache_sim_at_every_capacity() {
    for (name, dag) in suite_workloads() {
        for flushes in [false, true] {
            let (ops, space) = workload_ops(&dag, flushes);
            eprintln!("workload {name}: {} ops, flushes={flushes}", ops.len());
            assert_differential(&ops, space);
        }
    }
}

/// Full-scale E15 mergesort trace (65 536 keys): slow, run with
/// `cargo test -- --ignored` when touching the profiler internals.
#[test]
#[ignore = "full-scale trace; minutes-long under the per-capacity reference sims"]
fn full_scale_mergesort_trace_matches_cache_sim() {
    let dag = sort::mergesort(65_536, 64);
    let (ops, space) = workload_ops(&dag, true);
    assert_differential(&ops, space);
}

/// Decodes a raw `(tag, block)` pair into a [`TraceOp`], weighted ~8:1:1:1
/// between plain accesses, silent instructions, the sentinel id, and
/// flushes.
fn decode_op((tag, block): (u8, u32)) -> TraceOp {
    match tag {
        0..=7 => TraceOp::Access(Some(block)),
        8 => TraceOp::Access(None),
        9 => TraceOp::Access(Some(u32::MAX - 1)),
        _ => TraceOp::Flush,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_traces_match_cache_sim_at_every_capacity(
        (raw, space) in (proptest::collection::vec((0u8..11, 0u32..300), 1..400), 1usize..400)
    ) {
        let ops: Vec<TraceOp> = raw.into_iter().map(decode_op).collect();
        assert_differential(&ops, space);
    }

    // The profiler's distances themselves, against a naive MRU-stack
    // model: distance = 1-based depth of the block in a move-to-front
    // list (the textbook definition Mattson's algorithm accelerates).
    #[test]
    fn distances_match_naive_mru_stack_model(
        trace in proptest::collection::vec(0u32..64, 1..500)
    ) {
        let mut sd = StackDistanceSim::new();
        let mut stack: Vec<u32> = Vec::new();
        for &block in &trace {
            let expected = stack.iter().position(|&b| b == block).map(|depth| {
                stack.remove(depth);
                depth as u32 + 1
            });
            stack.insert(0, block);
            prop_assert_eq!(sd.access(block), expected, "block {}", block);
        }
    }
}
