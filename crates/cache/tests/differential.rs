//! Differential property tests: the indexed O(1) representations must be
//! **access-for-access identical** to the seed scan representations — not
//! just the same miss counts, but the same [`AccessOutcome`] (including
//! which block each miss evicts) at every single step, across random
//! traces, capacities straddling the crossover, and block ranges both
//! inside and outside a declared dense space.
//!
//! This is the contract that makes the representation switch invisible:
//! every cache-miss table in the repository is reproduced bit-for-bit no
//! matter which representation the capacity selects.

use proptest::prelude::*;
use wsf_cache::{AccessOutcome, Cache, FifoCache, LruCache, SCAN_CROSSOVER};

/// Runs `trace` through `a` and `b`, asserting identical outcomes step by
/// step and identical final residency.
fn assert_lockstep<A: Cache, B: Cache>(a: &mut A, b: &mut B, trace: &[u32]) {
    for (i, &block) in trace.iter().enumerate() {
        let got_a = a.access(block);
        let got_b = b.access(block);
        assert_eq!(
            got_a, got_b,
            "outcome diverged at access {i} (block {block})"
        );
        assert_eq!(a.len(), b.len());
        assert_eq!(a.contains(block), b.contains(block));
    }
    let mut res_a = Vec::new();
    let mut res_b = Vec::new();
    a.resident_into(&mut res_a);
    b.resident_into(&mut res_b);
    assert_eq!(res_a, res_b, "final residency (in order) diverged");
}

/// Capacities on both sides of the crossover, block ids spilling past the
/// declared dense space, and traces long enough to force evictions.
fn trace_strategy() -> impl Strategy<Value = (usize, usize, Vec<u32>)> {
    (
        1usize..(3 * SCAN_CROSSOVER),
        1usize..200,
        proptest::collection::vec(0u32..300, 1..600),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_lru_matches_scan_lru((capacity, space, trace) in trace_strategy()) {
        let mut scan = LruCache::scan(capacity);
        let mut hashed = LruCache::indexed(capacity);
        assert_lockstep(&mut scan, &mut hashed, &trace);

        let mut scan = LruCache::scan(capacity);
        let mut dense = LruCache::indexed_dense(capacity, space);
        assert_lockstep(&mut scan, &mut dense, &trace);
    }

    #[test]
    fn indexed_fifo_matches_scan_fifo((capacity, space, trace) in trace_strategy()) {
        let mut scan = FifoCache::scan(capacity);
        let mut hashed = FifoCache::indexed(capacity);
        assert_lockstep(&mut scan, &mut hashed, &trace);

        let mut scan = FifoCache::scan(capacity);
        let mut dense = FifoCache::indexed_dense(capacity, space);
        assert_lockstep(&mut scan, &mut dense, &trace);
    }

    #[test]
    fn adaptive_constructor_matches_forced_scan((capacity, _space, trace) in trace_strategy()) {
        // Whatever representation `new` picks must reproduce the scan
        // outcomes exactly.
        let mut scan = LruCache::scan(capacity);
        let mut adaptive = LruCache::new(capacity);
        prop_assert_eq!(adaptive.is_indexed(), capacity > SCAN_CROSSOVER);
        assert_lockstep(&mut scan, &mut adaptive, &trace);
    }

    #[test]
    fn clear_preserves_equivalence((capacity, space, trace) in trace_strategy()) {
        // Interleave clears: generation-stamped dense clearing must behave
        // exactly like wiping the scan vector.
        let mut scan = LruCache::scan(capacity);
        let mut dense = LruCache::indexed_dense(capacity, space);
        let third = (trace.len() / 3).max(1);
        for (i, chunk) in trace.chunks(third).enumerate() {
            assert_lockstep(&mut scan, &mut dense, chunk);
            if i % 2 == 0 {
                scan.clear();
                dense.clear();
                prop_assert!(dense.is_empty());
            }
        }
    }

    #[test]
    fn eviction_outcomes_carry_identical_blocks((capacity, _space, trace) in trace_strategy()) {
        // Focused check of the evicted-block payload: collect only the
        // misses-with-eviction and compare the victim sequences.
        let mut scan = LruCache::scan(capacity);
        let mut indexed = LruCache::indexed(capacity);
        let victims = |c: &mut LruCache, t: &[u32]| -> Vec<u32> {
            t.iter()
                .filter_map(|&b| match c.access(b) {
                    AccessOutcome::Miss { evicted: Some(v) } => Some(v),
                    _ => None,
                })
                .collect()
        };
        prop_assert_eq!(victims(&mut scan, &trace), victims(&mut indexed, &trace));
    }
}
