//! Fully associative LRU cache — the paper's cache model.

use crate::adaptive::{Adaptive, ScanRepr};
use crate::{AccessOutcome, BlockId, Cache, ResidentIter};

/// The seed scan representation: resident blocks ordered from least
/// recently used (front) to most recently used (back).
///
/// Capacities in the paper's experiments are small (tens of lines), and
/// below [`crate::SCAN_CROSSOVER`] the O(C) position-scan plus shift is measurably
/// faster in practice than any linked structure — the whole vector is a
/// couple of cache lines. Above the crossover it degrades quadratically
/// with the working set, which is what the indexed representation fixes.
#[derive(Clone, Debug)]
pub(crate) struct ScanLru {
    order: Vec<BlockId>,
    capacity: usize,
}

impl ScanRepr for ScanLru {
    const MOVE_ON_HIT: bool = true;

    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ScanLru {
            order: Vec::with_capacity(capacity),
            capacity,
        }
    }

    #[inline]
    fn access(&mut self, block: BlockId) -> AccessOutcome {
        if let Some(pos) = self.order.iter().position(|&b| b == block) {
            self.order.remove(pos);
            self.order.push(block);
            return AccessOutcome::Hit;
        }
        let evicted = if self.order.len() == self.capacity {
            Some(self.order.remove(0))
        } else {
            None
        };
        self.order.push(block);
        AccessOutcome::Miss { evicted }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.order.contains(&block)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn clear(&mut self) {
        self.order.clear();
    }

    fn iter(&self) -> ResidentIter<'_> {
        ResidentIter::slice(&self.order)
    }

    fn front(&self) -> Option<BlockId> {
        self.order.first().copied()
    }

    fn back(&self) -> Option<BlockId> {
        self.order.last().copied()
    }
}

/// A fully associative cache of `capacity` lines with least-recently-used
/// replacement.
///
/// The representation is capacity-adaptive (see the private `adaptive` module): at or
/// below [`crate::SCAN_CROSSOVER`] lines the recency order is a plain vector
/// scanned per access (fastest at the paper's C = 16), above it an indexed
/// slot arena with an intrusive recency list and a block→slot map gives
/// O(1) amortized access and eviction at any capacity. Both representations
/// produce access-for-access identical [`AccessOutcome`] sequences (LRU is
/// deterministic), which the differential suite in
/// `crates/cache/tests/differential.rs` locks in.
#[derive(Clone, Debug)]
pub struct LruCache {
    repr: Adaptive<ScanLru>,
}

impl LruCache {
    /// Creates an empty cache with `capacity` lines, picking the
    /// representation by capacity (scan at or below [`crate::SCAN_CROSSOVER`],
    /// hash-indexed above).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            repr: Adaptive::new(capacity),
        }
    }

    /// Like [`LruCache::new`], but workloads with a dense block range
    /// `0..block_space` (everything built on `BlockAlloc`) get the
    /// direct-mapped index instead of the hash map when the indexed
    /// representation is selected. (Disproportionate spaces fall back to
    /// hashing — see [`LruCache::indexed_dense`].)
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_block_hint(capacity: usize, block_space: usize) -> Self {
        LruCache {
            repr: Adaptive::with_block_hint(capacity, block_space),
        }
    }

    /// Forces the seed scan representation at any capacity (the benchmark
    /// baseline and the differential-test reference).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn scan(capacity: usize) -> Self {
        LruCache {
            repr: Adaptive::scan(capacity),
        }
    }

    /// Forces the indexed representation with a hash block index.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn indexed(capacity: usize) -> Self {
        LruCache {
            repr: Adaptive::indexed(capacity),
        }
    }

    /// Forces the indexed representation with a direct-mapped index
    /// pre-sized for blocks in `0..block_space`. Blocks outside the range
    /// stay correct: the index grows on demand, and sentinel-high outliers
    /// (or an absurdly large declared space) switch it to the hash index
    /// instead of paying O(largest id) memory.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn indexed_dense(capacity: usize, block_space: usize) -> Self {
        LruCache {
            repr: Adaptive::indexed_dense(capacity, block_space),
        }
    }

    /// Indexed representation whose dense index keys blocks by
    /// `block / stride` — used by the set-associative cache, where one set
    /// only ever sees blocks congruent to its own index.
    pub(crate) fn indexed_dense_strided(capacity: usize, block_space: usize, stride: u32) -> Self {
        LruCache {
            repr: Adaptive::indexed_dense_strided(capacity, block_space, stride),
        }
    }

    /// Whether this cache uses the indexed (O(1)) representation.
    pub fn is_indexed(&self) -> bool {
        self.repr.is_indexed()
    }

    /// The least recently used resident block, if any.
    pub fn lru_block(&self) -> Option<BlockId> {
        self.repr.front_block()
    }

    /// The most recently used resident block, if any.
    pub fn mru_block(&self) -> Option<BlockId> {
        self.repr.back_block()
    }

    /// Borrowing iterator over the resident blocks in recency order (least
    /// recently used first).
    pub fn resident_iter(&self) -> ResidentIter<'_> {
        self.repr.resident_iter()
    }
}

impl Cache for LruCache {
    #[inline]
    fn access(&mut self, block: BlockId) -> AccessOutcome {
        self.repr.access(block)
    }

    fn contains(&self, block: BlockId) -> bool {
        self.repr.contains(block)
    }

    fn capacity(&self) -> usize {
        self.repr.capacity()
    }

    fn len(&self) -> usize {
        self.repr.len()
    }

    fn clear(&mut self) {
        self.repr.clear()
    }

    fn resident_into(&self, out: &mut Vec<BlockId>) {
        out.clear();
        out.extend(self.resident_iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SCAN_CROSSOVER;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics_indexed() {
        let _ = LruCache::indexed(0);
    }

    #[test]
    fn representation_is_capacity_adaptive() {
        assert!(!LruCache::new(SCAN_CROSSOVER).is_indexed());
        assert!(LruCache::new(SCAN_CROSSOVER + 1).is_indexed());
        assert!(!LruCache::with_block_hint(16, 1 << 20).is_indexed());
        assert!(LruCache::with_block_hint(4096, 64).is_indexed());
        assert!(!LruCache::scan(4096).is_indexed());
    }

    #[test]
    fn sentinel_high_block_hints_construct_cheaply() {
        // map_reduce declares a block space of u32::MAX (its accumulator
        // block is a sentinel-high id); the hint must not allocate O(id).
        let mut c = LruCache::with_block_hint(256, u32::MAX as usize);
        assert!(c.is_indexed());
        assert!(c.access(u32::MAX - 1).is_miss());
        assert!(c.access(u32::MAX - 1).is_hit());
    }

    #[test]
    fn evicts_least_recently_used() {
        for mut c in [
            LruCache::scan(3),
            LruCache::indexed(3),
            LruCache::indexed_dense(3, 8),
        ] {
            c.access(1);
            c.access(2);
            c.access(3);
            // touch 1 so that 2 becomes LRU
            assert!(c.access(1).is_hit());
            let out = c.access(4);
            assert_eq!(out.evicted(), Some(2));
            assert!(c.contains(1));
            assert!(c.contains(3));
            assert!(c.contains(4));
            assert!(!c.contains(2));
        }
    }

    #[test]
    fn lru_and_mru_tracking() {
        for mut c in [LruCache::scan(3), LruCache::indexed(3)] {
            assert_eq!(c.lru_block(), None);
            assert_eq!(c.mru_block(), None);
            c.access(5);
            c.access(6);
            c.access(7);
            assert_eq!(c.lru_block(), Some(5));
            assert_eq!(c.mru_block(), Some(7));
            c.access(5);
            assert_eq!(c.lru_block(), Some(6));
            assert_eq!(c.mru_block(), Some(5));
        }
    }

    #[test]
    fn sequential_scan_of_c_plus_one_blocks_thrashes() {
        // The classic LRU pathology exploited by the paper's lower-bound
        // constructions: cyclically accessing C+1 blocks misses every time.
        let c_lines = 8;
        for mut c in [LruCache::scan(c_lines), LruCache::indexed(c_lines)] {
            let mut misses = 0;
            for round in 0..10 {
                for b in 0..=(c_lines as BlockId) {
                    if c.access(b).is_miss() {
                        misses += 1;
                    }
                }
                assert_eq!(misses, (round + 1) * (c_lines as u64 + 1));
            }
        }
    }

    #[test]
    fn working_set_within_capacity_only_cold_misses() {
        for mut c in [LruCache::scan(8), LruCache::indexed_dense(8, 8)] {
            let mut misses = 0;
            for _ in 0..5 {
                for b in 0..8 {
                    if c.access(b).is_miss() {
                        misses += 1;
                    }
                }
            }
            assert_eq!(misses, 8, "only compulsory misses");
        }
    }

    #[test]
    fn resident_blocks_reports_in_recency_order() {
        for mut c in [LruCache::scan(4), LruCache::indexed(4)] {
            for b in [1, 2, 3] {
                c.access(b);
            }
            c.access(2);
            assert_eq!(c.resident_blocks(), vec![1, 3, 2]);
            assert_eq!(c.resident_iter().collect::<Vec<_>>(), vec![1, 3, 2]);
            assert_eq!(c.len(), 3);
            assert_eq!(c.capacity(), 4);
        }
    }

    #[test]
    fn clear_resets_both_representations() {
        for mut c in [LruCache::scan(4), LruCache::indexed(4)] {
            c.access(1);
            c.access(2);
            c.clear();
            assert!(c.is_empty());
            assert!(!c.contains(1));
            assert_eq!(c.lru_block(), None);
            assert!(c.access(1).is_miss());
        }
    }

    #[test]
    fn large_capacity_indexed_lru_holds_the_working_set() {
        let capacity = 5_000;
        let mut c = LruCache::new(capacity);
        assert!(c.is_indexed());
        let mut misses = 0u64;
        for _ in 0..3 {
            for b in 0..capacity as BlockId {
                if c.access(b).is_miss() {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, capacity as u64, "only compulsory misses");
        assert_eq!(c.len(), capacity);
    }
}
