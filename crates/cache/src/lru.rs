//! Fully associative LRU cache — the paper's cache model.

use crate::{AccessOutcome, BlockId, Cache};

/// A fully associative cache of `capacity` lines with least-recently-used
/// replacement.
///
/// The recency order is kept in a vector with the most recently used block
/// at the back. Capacities in the paper's experiments are small (tens of
/// lines), so the O(C) shift per access is faster in practice than a linked
/// structure and keeps the implementation obviously correct.
#[derive(Clone, Debug)]
pub struct LruCache {
    /// Resident blocks ordered from least recently used (front) to most
    /// recently used (back).
    order: Vec<BlockId>,
    capacity: usize,
}

impl LruCache {
    /// Creates an empty cache with `capacity` lines.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            order: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// The least recently used resident block, if any.
    pub fn lru_block(&self) -> Option<BlockId> {
        self.order.first().copied()
    }

    /// The most recently used resident block, if any.
    pub fn mru_block(&self) -> Option<BlockId> {
        self.order.last().copied()
    }
}

impl Cache for LruCache {
    fn access(&mut self, block: BlockId) -> AccessOutcome {
        if let Some(pos) = self.order.iter().position(|&b| b == block) {
            self.order.remove(pos);
            self.order.push(block);
            return AccessOutcome::Hit;
        }
        let evicted = if self.order.len() == self.capacity {
            Some(self.order.remove(0))
        } else {
            None
        };
        self.order.push(block);
        AccessOutcome::Miss { evicted }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.order.contains(&block)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn clear(&mut self) {
        self.order.clear();
    }

    fn resident_blocks(&self) -> Vec<BlockId> {
        self.order.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.access(1);
        c.access(2);
        c.access(3);
        // touch 1 so that 2 becomes LRU
        assert!(c.access(1).is_hit());
        let out = c.access(4);
        assert_eq!(out.evicted(), Some(2));
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(c.contains(4));
        assert!(!c.contains(2));
    }

    #[test]
    fn lru_and_mru_tracking() {
        let mut c = LruCache::new(3);
        assert_eq!(c.lru_block(), None);
        assert_eq!(c.mru_block(), None);
        c.access(5);
        c.access(6);
        c.access(7);
        assert_eq!(c.lru_block(), Some(5));
        assert_eq!(c.mru_block(), Some(7));
        c.access(5);
        assert_eq!(c.lru_block(), Some(6));
        assert_eq!(c.mru_block(), Some(5));
    }

    #[test]
    fn sequential_scan_of_c_plus_one_blocks_thrashes() {
        // The classic LRU pathology exploited by the paper's lower-bound
        // constructions: cyclically accessing C+1 blocks misses every time.
        let c_lines = 8;
        let mut c = LruCache::new(c_lines);
        let mut misses = 0;
        for round in 0..10 {
            for b in 0..=(c_lines as BlockId) {
                if c.access(b).is_miss() {
                    misses += 1;
                }
            }
            assert_eq!(misses, (round + 1) * (c_lines as u64 + 1));
        }
    }

    #[test]
    fn working_set_within_capacity_only_cold_misses() {
        let mut c = LruCache::new(8);
        let mut misses = 0;
        for _ in 0..5 {
            for b in 0..8 {
                if c.access(b).is_miss() {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 8, "only compulsory misses");
    }

    #[test]
    fn resident_blocks_reports_in_recency_order() {
        let mut c = LruCache::new(4);
        for b in [1, 2, 3] {
            c.access(b);
        }
        c.access(2);
        assert_eq!(c.resident_blocks(), vec![1, 3, 2]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.capacity(), 4);
    }
}
