//! # wsf-cache — software cache simulators
//!
//! The cache model of *"Well-Structured Futures and Cache Locality"*
//! (Herlihy & Liu, PPoPP 2014, Section 3): each processor owns a fully
//! associative cache of `C` lines, each holding one memory block, managed
//! with the LRU replacement policy. Every instruction (DAG node) accesses
//! at most one block. The cache locality of an execution is the number of
//! cache misses it incurs.
//!
//! This crate provides that model ([`LruCache`]) plus two variants used to
//! check the paper's remark that its upper bounds hold for *all simple
//! cache replacement policies*: a FIFO cache ([`FifoCache`]) and a
//! set-associative LRU cache ([`SetAssociativeCache`]). All of them
//! implement the [`Cache`] trait and can be driven through the
//! bookkeeping wrapper [`CacheSim`].
//!
//! ```
//! use wsf_cache::{Cache, CachePolicy, CacheSim};
//!
//! let mut sim = CacheSim::new(CachePolicy::Lru, 2);
//! assert!(sim.access(1).is_miss());
//! assert!(sim.access(2).is_miss());
//! assert!(sim.access(1).is_hit());
//! assert!(sim.access(3).is_miss()); // evicts block 2 (least recently used)
//! assert!(sim.access(2).is_miss());
//! assert_eq!(sim.stats().misses, 4);
//! assert_eq!(sim.stats().hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fifo;
mod lru;
mod set_assoc;
mod sim;
mod stats;

pub use fifo::FifoCache;
pub use lru::LruCache;
pub use set_assoc::SetAssociativeCache;
pub use sim::{CachePolicy, CacheSim};
pub use stats::CacheStats;

/// A memory block identifier. Blocks are the unit of cache occupancy: each
/// cache line holds exactly one block.
pub type BlockId = u32;

/// The outcome of a single cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was already cached.
    Hit,
    /// The block was not cached; it has been loaded, evicting `evicted` if
    /// the cache was full.
    Miss {
        /// The block that was evicted to make room, if any.
        evicted: Option<BlockId>,
    },
}

impl AccessOutcome {
    /// Whether the access hit the cache.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether the access missed the cache.
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// The evicted block, if the access was a miss that evicted one.
    pub fn evicted(self) -> Option<BlockId> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => evicted,
        }
    }
}

/// Common interface of all simulated caches.
pub trait Cache {
    /// Accesses `block`, updating replacement state, and reports whether it
    /// was a hit or a miss.
    fn access(&mut self, block: BlockId) -> AccessOutcome;

    /// Whether `block` is currently resident.
    fn contains(&self, block: BlockId) -> bool;

    /// Number of cache lines.
    fn capacity(&self) -> usize;

    /// Number of lines currently occupied.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the cache.
    fn clear(&mut self);

    /// The resident blocks, in an implementation-defined order.
    fn resident_blocks(&self) -> Vec<BlockId>;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise(cache: &mut dyn Cache) {
        assert!(cache.is_empty());
        assert!(cache.access(10).is_miss());
        assert!(cache.contains(10));
        assert!(!cache.contains(11));
        assert!(cache.access(10).is_hit());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert!(!cache.contains(10));
    }

    #[test]
    fn all_policies_implement_the_trait_consistently() {
        exercise(&mut LruCache::new(4));
        exercise(&mut FifoCache::new(4));
        exercise(&mut SetAssociativeCache::new(2, 2));
    }

    #[test]
    fn outcome_helpers() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_miss());
        assert_eq!(AccessOutcome::Hit.evicted(), None);
        let m = AccessOutcome::Miss { evicted: Some(3) };
        assert!(m.is_miss());
        assert_eq!(m.evicted(), Some(3));
        let m = AccessOutcome::Miss { evicted: None };
        assert_eq!(m.evicted(), None);
    }
}
