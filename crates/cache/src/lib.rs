//! # wsf-cache — software cache simulators
//!
//! The cache model of *"Well-Structured Futures and Cache Locality"*
//! (Herlihy & Liu, PPoPP 2014, Section 3): each processor owns a fully
//! associative cache of `C` lines, each holding one memory block, managed
//! with the LRU replacement policy. Every instruction (DAG node) accesses
//! at most one block. The cache locality of an execution is the number of
//! cache misses it incurs.
//!
//! This crate provides that model ([`LruCache`]) plus two variants used to
//! check the paper's remark that its upper bounds hold for *all simple
//! cache replacement policies*: a FIFO cache ([`FifoCache`]) and a
//! set-associative LRU cache ([`SetAssociativeCache`]). All of them
//! implement the [`Cache`] trait and can be driven through the
//! bookkeeping wrapper [`CacheSim`].
//!
//! ## Representations
//!
//! The paper's experiments run at C = 16, where a linear scan of the
//! recency vector beats any pointer structure. Reproducing the theorems at
//! realistic capacities (thousands of lines) needs O(1) accesses, so every
//! policy is **capacity-adaptive**: at or below [`SCAN_CROSSOVER`] lines it
//! keeps the seed scan representation, above it it switches to an indexed
//! slot arena (intrusive recency list + block→slot index, hash or
//! direct-mapped — see the private `indexed` module's docs) with O(1)
//! amortized access and eviction. The two representations are
//! access-for-access identical; `tests/differential.rs` proves it
//! property-style.
//!
//! ```
//! use wsf_cache::{Cache, CachePolicy, CacheSim};
//!
//! let mut sim = CacheSim::new(CachePolicy::Lru, 2);
//! assert!(sim.access(1).is_miss());
//! assert!(sim.access(2).is_miss());
//! assert!(sim.access(1).is_hit());
//! assert!(sim.access(3).is_miss()); // evicts block 2 (least recently used)
//! assert!(sim.access(2).is_miss());
//! assert_eq!(sim.stats().misses, 4);
//! assert_eq!(sim.stats().hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adaptive;
mod fifo;
mod indexed;
mod lru;
pub mod replay;
mod set_assoc;
mod sim;
pub mod stack_distance;
mod stats;

pub use fifo::FifoCache;
pub use lru::LruCache;
pub use replay::{replay, replay_curves, ReplayOp, ReplaySummary};
pub use set_assoc::SetAssociativeCache;
pub use sim::{CachePolicy, CacheSim, StackDistanceSim};
pub use stack_distance::{MissRatioCurve, StackDistance};
pub use stats::CacheStats;

/// A memory block identifier. Blocks are the unit of cache occupancy: each
/// cache line holds exactly one block.
pub type BlockId = u32;

/// Largest capacity at which the scan representation is used; above it the
/// indexed representation takes over.
///
/// Measured on the reference container (see `BENCH_simulator.json` and the
/// `cache_model` bench): against the *hash* block index the scan vector
/// wins up to ~48–64 lines (the whole recency state is a couple of cache
/// lines and the branch-free scan beats hashing); against the
/// *direct-mapped* index it only wins below ~16–32, and C = 16 — the
/// paper's capacity — is a tie. 64 is the conservative ceiling: every toy
/// capacity keeps the seed representation, and above it the indexed arena
/// wins decisively (~11x at C = 1024, ~600x at C = 32768, dense index).
pub const SCAN_CROSSOVER: usize = 64;

/// The outcome of a single cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was already cached.
    Hit,
    /// The block was not cached; it has been loaded, evicting `evicted` if
    /// the cache was full.
    Miss {
        /// The block that was evicted to make room, if any.
        evicted: Option<BlockId>,
    },
}

impl AccessOutcome {
    /// Whether the access hit the cache.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether the access missed the cache.
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// The evicted block, if the access was a miss that evicted one.
    pub fn evicted(self) -> Option<BlockId> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => evicted,
        }
    }
}

/// Common interface of all simulated caches.
pub trait Cache {
    /// Accesses `block`, updating replacement state, and reports whether it
    /// was a hit or a miss.
    fn access(&mut self, block: BlockId) -> AccessOutcome;

    /// Whether `block` is currently resident.
    fn contains(&self, block: BlockId) -> bool;

    /// Number of cache lines.
    fn capacity(&self) -> usize;

    /// Number of lines currently occupied.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the cache.
    fn clear(&mut self);

    /// Replaces the contents of `out` with the resident blocks, in an
    /// implementation-defined order. The borrowing form of
    /// [`Cache::resident_blocks`]: callers that poll residency repeatedly
    /// reuse one buffer instead of allocating a vector per call.
    fn resident_into(&self, out: &mut Vec<BlockId>);

    /// The resident blocks, in an implementation-defined order.
    ///
    /// Thin allocating wrapper over [`Cache::resident_into`], kept for
    /// tests and one-shot inspection.
    fn resident_blocks(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.len());
        self.resident_into(&mut out);
        out
    }
}

/// Borrowing iterator over a cache's resident blocks.
///
/// Returned by `resident_iter()` on the concrete cache types; the variants
/// cover the scan representations (contiguous storage) and the indexed
/// representation (intrusive-list walk).
pub struct ResidentIter<'a> {
    inner: ResidentIterInner<'a>,
}

enum ResidentIterInner<'a> {
    Slice(std::slice::Iter<'a, BlockId>),
    Deque(std::collections::vec_deque::Iter<'a, BlockId>),
    Linked(indexed::ResidentIter<'a>),
}

impl<'a> ResidentIter<'a> {
    pub(crate) fn slice(blocks: &'a [BlockId]) -> Self {
        ResidentIter {
            inner: ResidentIterInner::Slice(blocks.iter()),
        }
    }

    pub(crate) fn deque(blocks: &'a std::collections::VecDeque<BlockId>) -> Self {
        ResidentIter {
            inner: ResidentIterInner::Deque(blocks.iter()),
        }
    }

    pub(crate) fn linked(iter: indexed::ResidentIter<'a>) -> Self {
        ResidentIter {
            inner: ResidentIterInner::Linked(iter),
        }
    }
}

impl Iterator for ResidentIter<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        match &mut self.inner {
            ResidentIterInner::Slice(it) => it.next().copied(),
            ResidentIterInner::Deque(it) => it.next().copied(),
            ResidentIterInner::Linked(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise(cache: &mut dyn Cache) {
        assert!(cache.is_empty());
        assert!(cache.access(10).is_miss());
        assert!(cache.contains(10));
        assert!(!cache.contains(11));
        assert!(cache.access(10).is_hit());
        assert_eq!(cache.len(), 1);
        let mut buf = vec![99, 98];
        cache.resident_into(&mut buf);
        assert_eq!(buf, vec![10], "resident_into replaces the buffer");
        assert_eq!(cache.resident_blocks(), vec![10]);
        cache.clear();
        assert!(cache.is_empty());
        assert!(!cache.contains(10));
    }

    #[test]
    fn all_policies_implement_the_trait_consistently() {
        exercise(&mut LruCache::new(4));
        exercise(&mut LruCache::indexed(4));
        exercise(&mut FifoCache::new(4));
        exercise(&mut FifoCache::indexed(4));
        exercise(&mut SetAssociativeCache::new(2, 2));
    }

    #[test]
    fn outcome_helpers() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_miss());
        assert_eq!(AccessOutcome::Hit.evicted(), None);
        let m = AccessOutcome::Miss { evicted: Some(3) };
        assert!(m.is_miss());
        assert_eq!(m.evicted(), Some(3));
        let m = AccessOutcome::Miss { evicted: None };
        assert_eq!(m.evicted(), None);
    }
}
