//! A policy-selectable cache with hit/miss accounting, and the one-pass
//! stack-distance profiler behind the same driving surface.

use crate::stack_distance::{MissRatioCurve, StackDistance};
use crate::{AccessOutcome, BlockId, Cache, CacheStats, FifoCache, LruCache, SetAssociativeCache};

/// Which replacement policy a [`CacheSim`] uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Fully associative least-recently-used (the paper's model).
    #[default]
    Lru,
    /// Fully associative first-in-first-out.
    Fifo,
    /// Set-associative LRU with the given number of sets; the total
    /// capacity is still the number of lines passed to [`CacheSim::new`],
    /// split evenly across sets.
    SetAssociative {
        /// Number of sets; must divide the line count.
        sets: usize,
    },
}

enum Inner {
    Lru(LruCache),
    Fifo(FifoCache),
    SetAssoc(SetAssociativeCache),
}

/// Dispatches a method call to the concrete cache behind [`Inner`].
///
/// This used to go through `&mut dyn Cache`, which put a virtual call on
/// the simulator's per-step path; the macro keeps the three-way `match`
/// in every method body instead, so each arm calls the concrete type's
/// method directly and inlines.
macro_rules! on_cache {
    ($self:expr, $cache:ident => $body:expr) => {
        match &$self.inner {
            Inner::Lru($cache) => $body,
            Inner::Fifo($cache) => $body,
            Inner::SetAssoc($cache) => $body,
        }
    };
    (mut $self:expr, $cache:ident => $body:expr) => {
        match &mut $self.inner {
            Inner::Lru($cache) => $body,
            Inner::Fifo($cache) => $body,
            Inner::SetAssoc($cache) => $body,
        }
    };
}

/// A simulated processor cache: a replacement policy plus hit/miss/silent
/// accounting. This is the object the execution simulator attaches to each
/// simulated processor.
///
/// The underlying cache is capacity-adaptive (see the crate docs): give the
/// constructor a dense-block-range hint with [`CacheSim::with_block_hint`]
/// to get the direct-mapped index at large capacities — the execution
/// simulators pass the DAG's block space automatically.
pub struct CacheSim {
    inner: Inner,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a cache of `lines` lines managed by `policy`.
    ///
    /// # Panics
    /// Panics if `lines` is zero, or if a set-associative policy's set count
    /// does not evenly divide `lines`.
    pub fn new(policy: CachePolicy, lines: usize) -> Self {
        assert!(lines > 0, "cache capacity must be positive");
        let inner = match policy {
            CachePolicy::Lru => Inner::Lru(LruCache::new(lines)),
            CachePolicy::Fifo => Inner::Fifo(FifoCache::new(lines)),
            CachePolicy::SetAssociative { sets } => {
                assert!(
                    sets > 0 && lines.is_multiple_of(sets),
                    "set count must divide the number of lines"
                );
                Inner::SetAssoc(SetAssociativeCache::new(sets, lines / sets))
            }
        };
        CacheSim {
            inner,
            stats: CacheStats::default(),
        }
    }

    /// Like [`CacheSim::new`], for workloads whose blocks densely cover
    /// `0..block_space`: capacities above the scan crossover get the
    /// direct-mapped block index instead of the hash map. Behavior is
    /// identical either way; only the lookup cost differs.
    ///
    /// # Panics
    /// Same conditions as [`CacheSim::new`].
    pub fn with_block_hint(policy: CachePolicy, lines: usize, block_space: usize) -> Self {
        assert!(lines > 0, "cache capacity must be positive");
        let inner = match policy {
            CachePolicy::Lru => Inner::Lru(LruCache::with_block_hint(lines, block_space)),
            CachePolicy::Fifo => Inner::Fifo(FifoCache::with_block_hint(lines, block_space)),
            CachePolicy::SetAssociative { sets } => {
                assert!(
                    sets > 0 && lines.is_multiple_of(sets),
                    "set count must divide the number of lines"
                );
                Inner::SetAssoc(SetAssociativeCache::with_block_hint(
                    sets,
                    lines / sets,
                    block_space,
                ))
            }
        };
        CacheSim {
            inner,
            stats: CacheStats::default(),
        }
    }

    /// Accesses `block`, updating the statistics.
    #[inline]
    pub fn access(&mut self, block: BlockId) -> AccessOutcome {
        let outcome = on_cache!(mut self, c => c.access(block));
        if outcome.is_hit() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        outcome
    }

    /// Records an instruction that performs no memory access.
    #[inline]
    pub fn access_none(&mut self) {
        self.stats.silent += 1;
    }

    /// Accesses `block` if it is `Some`, otherwise records a silent
    /// instruction. Returns the outcome for real accesses.
    #[inline]
    pub fn access_opt(&mut self, block: Option<BlockId>) -> Option<AccessOutcome> {
        match block {
            Some(b) => Some(self.access(b)),
            None => {
                self.access_none();
                None
            }
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The number of misses so far.
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: BlockId) -> bool {
        on_cache!(self, c => c.contains(block))
    }

    /// The cache capacity in lines.
    pub fn capacity(&self) -> usize {
        on_cache!(self, c => c.capacity())
    }

    /// Replaces the contents of `out` with the resident blocks (the
    /// borrowing form of [`CacheSim::resident_blocks`]).
    pub fn resident_into(&self, out: &mut Vec<BlockId>) {
        on_cache!(self, c => c.resident_into(out));
    }

    /// The resident blocks.
    pub fn resident_blocks(&self) -> Vec<BlockId> {
        on_cache!(self, c => c.resident_blocks())
    }

    /// Empties the cache but keeps the statistics.
    pub fn flush(&mut self) {
        on_cache!(mut self, c => c.clear());
    }

    /// Empties the cache and resets the statistics.
    ///
    /// O(1) for every representation (the indexed caches clear by bumping
    /// an index generation), and never releases storage — a
    /// `wsf_core::SimScratch` resetting its processors between runs reuses
    /// the arena and index buffers as-is.
    pub fn reset(&mut self) {
        self.flush();
        self.stats = CacheStats::default();
    }
}

/// Drives a [`StackDistance`] profiler through the same surface as
/// [`CacheSim`]: `access` / `access_none` / `access_opt` / `flush` /
/// `reset`, with silent-access accounting. One pass over a trace yields —
/// via [`StackDistanceSim::curve`] — the exact [`CacheStats`] a fully
/// associative LRU `CacheSim` of *any* capacity would report on the same
/// trace, including interleaved `flush()`es (the profiler's residency
/// clear mirrors them).
///
/// Only the LRU policy has the inclusion property the one-pass profile
/// relies on, so there is no policy parameter: this is the one-pass
/// counterpart of `CacheSim::new(CachePolicy::Lru, c)` for all `c` at
/// once.
#[derive(Debug, Default)]
pub struct StackDistanceSim {
    sd: StackDistance,
    silent: u64,
}

impl StackDistanceSim {
    /// A profiler accepting arbitrary block ids.
    pub fn new() -> Self {
        StackDistanceSim {
            sd: StackDistance::new(),
            silent: 0,
        }
    }

    /// Like [`StackDistanceSim::new`], for traces whose blocks densely
    /// cover `0..block_space` — same hint contract as
    /// [`CacheSim::with_block_hint`].
    pub fn with_block_hint(block_space: usize) -> Self {
        StackDistanceSim {
            sd: StackDistance::with_block_hint(block_space),
            silent: 0,
        }
    }

    /// Accesses `block`; returns its stack distance (`None` when cold).
    #[inline]
    pub fn access(&mut self, block: BlockId) -> Option<u32> {
        self.sd.access(block)
    }

    /// Records an instruction that performs no memory access.
    #[inline]
    pub fn access_none(&mut self) {
        self.silent += 1;
    }

    /// Accesses `block` if it is `Some`, otherwise records a silent
    /// instruction.
    #[inline]
    pub fn access_opt(&mut self, block: Option<BlockId>) -> Option<u32> {
        match block {
            Some(b) => self.access(b),
            None => {
                self.access_none();
                None
            }
        }
    }

    /// Forgets residency but keeps accumulated counts — the profiler-side
    /// equivalent of [`CacheSim::flush`] at every capacity at once.
    pub fn flush(&mut self) {
        self.sd.clear();
    }

    /// Forgets residency and all counts; O(1) and allocation-free (see
    /// [`StackDistance::reset`]).
    pub fn reset(&mut self) {
        self.sd.reset();
        self.silent = 0;
    }

    /// Total accesses recorded (block accesses; silent ones not included).
    pub fn accesses(&self) -> u64 {
        self.sd.accesses()
    }

    /// The capacity-indexed miss-ratio curve of everything recorded.
    pub fn curve(&self) -> MissRatioCurve {
        self.sd.curve().with_silent(self.silent)
    }

    /// The exact [`CacheStats`] an LRU [`CacheSim`] of `capacity` lines
    /// would have accumulated over the same access sequence.
    pub fn stats_at(&self, capacity: usize) -> CacheStats {
        self.curve().stats_at(capacity)
    }
}

impl std::fmt::Debug for CacheSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSim")
            .field("capacity", &self.capacity())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_policy_counts_hits_and_misses() {
        let mut sim = CacheSim::new(CachePolicy::Lru, 2);
        sim.access(1);
        sim.access(2);
        sim.access(1);
        sim.access(3);
        sim.access_none();
        assert_eq!(sim.stats().misses, 3);
        assert_eq!(sim.stats().hits, 1);
        assert_eq!(sim.stats().silent, 1);
        assert_eq!(sim.misses(), 3);
        assert!(sim.contains(1));
        assert_eq!(sim.capacity(), 2);
    }

    #[test]
    fn access_opt_routes_correctly() {
        let mut sim = CacheSim::new(CachePolicy::Fifo, 2);
        assert!(sim.access_opt(Some(5)).unwrap().is_miss());
        assert!(sim.access_opt(None).is_none());
        assert_eq!(sim.stats().silent, 1);
        assert_eq!(sim.stats().misses, 1);
    }

    #[test]
    fn set_associative_policy_constructs() {
        let mut sim = CacheSim::new(CachePolicy::SetAssociative { sets: 2 }, 4);
        for b in 0..4 {
            sim.access(b);
        }
        assert_eq!(sim.stats().misses, 4);
        assert_eq!(sim.resident_blocks().len(), 4);
        let mut buf = Vec::new();
        sim.resident_into(&mut buf);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    #[should_panic(expected = "set count must divide")]
    fn bad_set_count_panics() {
        let _ = CacheSim::new(CachePolicy::SetAssociative { sets: 3 }, 4);
    }

    #[test]
    #[should_panic(expected = "set count must divide")]
    fn bad_set_count_panics_with_hint() {
        let _ = CacheSim::with_block_hint(CachePolicy::SetAssociative { sets: 3 }, 4, 100);
    }

    #[test]
    fn flush_and_reset() {
        let mut sim = CacheSim::new(CachePolicy::Lru, 2);
        sim.access(1);
        sim.flush();
        assert!(!sim.contains(1));
        assert_eq!(sim.stats().misses, 1, "flush keeps stats");
        sim.reset();
        assert_eq!(sim.stats(), CacheStats::default());
    }

    #[test]
    fn block_hint_matches_plain_behavior_at_large_capacity() {
        for policy in [
            CachePolicy::Lru,
            CachePolicy::Fifo,
            CachePolicy::SetAssociative { sets: 4 },
        ] {
            let lines = 256;
            let mut plain = CacheSim::new(policy, lines);
            let mut hinted = CacheSim::with_block_hint(policy, lines, 512);
            for i in 0..4_000u32 {
                let b = i.wrapping_mul(2_654_435_761) % 512;
                assert_eq!(plain.access(b), hinted.access(b), "{policy:?} access {i}");
            }
            assert_eq!(plain.stats(), hinted.stats());
        }
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(CachePolicy::default(), CachePolicy::Lru);
    }

    #[test]
    fn debug_format_mentions_stats() {
        let sim = CacheSim::new(CachePolicy::Lru, 2);
        let s = format!("{sim:?}");
        assert!(s.contains("CacheSim"));
        assert!(s.contains("capacity"));
    }

    #[test]
    fn stack_distance_sim_matches_cache_sim_stats() {
        let trace = [Some(1u32), Some(2), None, Some(1), Some(3), None, Some(2)];
        let mut sd = StackDistanceSim::new();
        let mut sims: Vec<CacheSim> = [1usize, 2, 3, 8]
            .iter()
            .map(|&c| CacheSim::new(CachePolicy::Lru, c))
            .collect();
        for &b in &trace {
            sd.access_opt(b);
            for sim in &mut sims {
                sim.access_opt(b);
            }
        }
        for sim in &sims {
            assert_eq!(sd.stats_at(sim.capacity()), sim.stats());
        }
        assert_eq!(sd.accesses(), 5);
    }

    #[test]
    fn stack_distance_sim_flush_and_reset_mirror_cache_sim() {
        let mut sd = StackDistanceSim::with_block_hint(16);
        let mut sim = CacheSim::with_block_hint(CachePolicy::Lru, 2, 16);
        for &b in &[4u32, 5, 4] {
            sd.access(b);
            sim.access(b);
        }
        sd.flush();
        sim.flush();
        for &b in &[4u32, 5] {
            sd.access(b);
            sim.access(b);
        }
        assert_eq!(sd.stats_at(2), sim.stats(), "flush keeps counts");
        sd.reset();
        sim.reset();
        assert_eq!(sd.stats_at(2), sim.stats());
        assert_eq!(sd.curve().accesses(), 0);
    }
}
