//! A policy-selectable cache with hit/miss accounting.

use crate::{AccessOutcome, BlockId, Cache, CacheStats, FifoCache, LruCache, SetAssociativeCache};

/// Which replacement policy a [`CacheSim`] uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Fully associative least-recently-used (the paper's model).
    #[default]
    Lru,
    /// Fully associative first-in-first-out.
    Fifo,
    /// Set-associative LRU with the given number of sets; the total
    /// capacity is still the number of lines passed to [`CacheSim::new`],
    /// split evenly across sets.
    SetAssociative {
        /// Number of sets; must divide the line count.
        sets: usize,
    },
}

enum Inner {
    Lru(LruCache),
    Fifo(FifoCache),
    SetAssoc(SetAssociativeCache),
}

/// A simulated processor cache: a replacement policy plus hit/miss/silent
/// accounting. This is the object the execution simulator attaches to each
/// simulated processor.
pub struct CacheSim {
    inner: Inner,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a cache of `lines` lines managed by `policy`.
    ///
    /// # Panics
    /// Panics if `lines` is zero, or if a set-associative policy's set count
    /// does not evenly divide `lines`.
    pub fn new(policy: CachePolicy, lines: usize) -> Self {
        assert!(lines > 0, "cache capacity must be positive");
        let inner = match policy {
            CachePolicy::Lru => Inner::Lru(LruCache::new(lines)),
            CachePolicy::Fifo => Inner::Fifo(FifoCache::new(lines)),
            CachePolicy::SetAssociative { sets } => {
                assert!(
                    sets > 0 && lines.is_multiple_of(sets),
                    "set count must divide the number of lines"
                );
                Inner::SetAssoc(SetAssociativeCache::new(sets, lines / sets))
            }
        };
        CacheSim {
            inner,
            stats: CacheStats::default(),
        }
    }

    fn cache_mut(&mut self) -> &mut dyn Cache {
        match &mut self.inner {
            Inner::Lru(c) => c,
            Inner::Fifo(c) => c,
            Inner::SetAssoc(c) => c,
        }
    }

    fn cache(&self) -> &dyn Cache {
        match &self.inner {
            Inner::Lru(c) => c,
            Inner::Fifo(c) => c,
            Inner::SetAssoc(c) => c,
        }
    }

    /// Accesses `block`, updating the statistics.
    pub fn access(&mut self, block: BlockId) -> AccessOutcome {
        let outcome = self.cache_mut().access(block);
        if outcome.is_hit() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        outcome
    }

    /// Records an instruction that performs no memory access.
    pub fn access_none(&mut self) {
        self.stats.silent += 1;
    }

    /// Accesses `block` if it is `Some`, otherwise records a silent
    /// instruction. Returns the outcome for real accesses.
    pub fn access_opt(&mut self, block: Option<BlockId>) -> Option<AccessOutcome> {
        match block {
            Some(b) => Some(self.access(b)),
            None => {
                self.access_none();
                None
            }
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The number of misses so far.
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: BlockId) -> bool {
        self.cache().contains(block)
    }

    /// The cache capacity in lines.
    pub fn capacity(&self) -> usize {
        self.cache().capacity()
    }

    /// The resident blocks.
    pub fn resident_blocks(&self) -> Vec<BlockId> {
        self.cache().resident_blocks()
    }

    /// Empties the cache but keeps the statistics.
    pub fn flush(&mut self) {
        self.cache_mut().clear();
    }

    /// Empties the cache and resets the statistics.
    pub fn reset(&mut self) {
        self.flush();
        self.stats = CacheStats::default();
    }
}

impl std::fmt::Debug for CacheSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSim")
            .field("capacity", &self.capacity())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_policy_counts_hits_and_misses() {
        let mut sim = CacheSim::new(CachePolicy::Lru, 2);
        sim.access(1);
        sim.access(2);
        sim.access(1);
        sim.access(3);
        sim.access_none();
        assert_eq!(sim.stats().misses, 3);
        assert_eq!(sim.stats().hits, 1);
        assert_eq!(sim.stats().silent, 1);
        assert_eq!(sim.misses(), 3);
        assert!(sim.contains(1));
        assert_eq!(sim.capacity(), 2);
    }

    #[test]
    fn access_opt_routes_correctly() {
        let mut sim = CacheSim::new(CachePolicy::Fifo, 2);
        assert!(sim.access_opt(Some(5)).unwrap().is_miss());
        assert!(sim.access_opt(None).is_none());
        assert_eq!(sim.stats().silent, 1);
        assert_eq!(sim.stats().misses, 1);
    }

    #[test]
    fn set_associative_policy_constructs() {
        let mut sim = CacheSim::new(CachePolicy::SetAssociative { sets: 2 }, 4);
        for b in 0..4 {
            sim.access(b);
        }
        assert_eq!(sim.stats().misses, 4);
        assert_eq!(sim.resident_blocks().len(), 4);
    }

    #[test]
    #[should_panic(expected = "set count must divide")]
    fn bad_set_count_panics() {
        let _ = CacheSim::new(CachePolicy::SetAssociative { sets: 3 }, 4);
    }

    #[test]
    fn flush_and_reset() {
        let mut sim = CacheSim::new(CachePolicy::Lru, 2);
        sim.access(1);
        sim.flush();
        assert!(!sim.contains(1));
        assert_eq!(sim.stats().misses, 1, "flush keeps stats");
        sim.reset();
        assert_eq!(sim.stats(), CacheStats::default());
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(CachePolicy::default(), CachePolicy::Lru);
    }

    #[test]
    fn debug_format_mentions_stats() {
        let sim = CacheSim::new(CachePolicy::Lru, 2);
        let s = format!("{sim:?}");
        assert!(s.contains("CacheSim"));
        assert!(s.contains("capacity"));
    }
}
