//! Set-associative LRU cache.
//!
//! Real hardware caches are set associative rather than fully associative.
//! The paper inherits its miss bound from Acar et al., whose argument also
//! covers set-associative caches; this implementation lets the experiments
//! confirm that the measured trends survive limited associativity.
//!
//! Each set is an independent [`LruCache`] and therefore inherits the
//! capacity-adaptive representation: a cache with thousands of ways per set
//! runs on the indexed O(1) arena, the common few-way sets stay on the scan
//! vector. With a declared dense block range
//! ([`SetAssociativeCache::with_block_hint`]) each set's index is
//! direct-mapped on `block / sets` — a set only ever sees blocks congruent
//! to its own index, so the quotient is a dense per-set key and the index
//! memory stays `O(block space)` overall instead of per set.

use crate::{AccessOutcome, BlockId, Cache, LruCache, SCAN_CROSSOVER};

/// A set-associative cache: `sets` independent LRU sets of `ways` lines
/// each. A block maps to set `block % sets`.
#[derive(Clone, Debug)]
pub struct SetAssociativeCache {
    sets: Vec<LruCache>,
}

impl SetAssociativeCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if either `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "cache must have at least one set");
        assert!(ways > 0, "cache capacity must be positive");
        SetAssociativeCache {
            sets: (0..sets).map(|_| LruCache::new(ways)).collect(),
        }
    }

    /// Like [`SetAssociativeCache::new`], but workloads with a dense block
    /// range `0..block_space` get direct-mapped per-set indexes when the
    /// ways count selects the indexed representation.
    ///
    /// # Panics
    /// Panics if either `sets` or `ways` is zero.
    pub fn with_block_hint(sets: usize, ways: usize, block_space: usize) -> Self {
        assert!(sets > 0, "cache must have at least one set");
        assert!(ways > 0, "cache capacity must be positive");
        SetAssociativeCache {
            sets: (0..sets)
                .map(|_| {
                    if ways <= SCAN_CROSSOVER {
                        LruCache::scan(ways)
                    } else {
                        LruCache::indexed_dense_strided(ways, block_space, sets as u32)
                    }
                })
                .collect(),
        }
    }

    /// The number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The associativity (ways per set).
    pub fn ways(&self) -> usize {
        self.sets[0].capacity()
    }

    fn set_of(&self, block: BlockId) -> usize {
        (block as usize) % self.sets.len()
    }
}

impl Cache for SetAssociativeCache {
    fn access(&mut self, block: BlockId) -> AccessOutcome {
        let set = self.set_of(block);
        self.sets[set].access(block)
    }

    fn contains(&self, block: BlockId) -> bool {
        self.sets[self.set_of(block)].contains(block)
    }

    fn capacity(&self) -> usize {
        self.sets.iter().map(|s| s.capacity()).sum()
    }

    fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    fn clear(&mut self) {
        self.sets.iter_mut().for_each(|s| s.clear());
    }

    fn resident_into(&self, out: &mut Vec<BlockId>) {
        out.clear();
        for set in &self.sets {
            out.extend(set.resident_iter());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_map_to_sets_by_modulo() {
        let mut c = SetAssociativeCache::new(2, 2);
        assert_eq!(c.num_sets(), 2);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity(), 4);
        // Even blocks land in set 0, odd blocks in set 1.
        c.access(0);
        c.access(2);
        c.access(4); // evicts 0 from set 0
        assert!(!c.contains(0));
        assert!(c.contains(2));
        assert!(c.contains(4));
        // Set 1 is untouched.
        c.access(1);
        assert!(c.contains(1));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn conflict_misses_exceed_fully_associative() {
        use crate::LruCache;
        // Four blocks all mapping to the same set of a 4-line 2-way cache
        // conflict; a fully associative 4-line cache holds them all.
        let trace: Vec<BlockId> = (0..4).map(|i| i * 2).cycle().take(40).collect();
        let mut sa = SetAssociativeCache::new(2, 2);
        let mut fa = LruCache::new(4);
        let sa_misses: u32 = trace.iter().map(|&b| sa.access(b).is_miss() as u32).sum();
        let fa_misses: u32 = trace.iter().map(|&b| fa.access(b).is_miss() as u32).sum();
        assert_eq!(fa_misses, 4);
        assert!(sa_misses > fa_misses);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = SetAssociativeCache::new(0, 2);
    }

    #[test]
    fn clear_empties_every_set() {
        let mut c = SetAssociativeCache::new(4, 2);
        for b in 0..8 {
            c.access(b);
        }
        assert_eq!(c.len(), 8);
        c.clear();
        assert!(c.is_empty());
        assert!(c.resident_blocks().is_empty());
    }

    #[test]
    fn wide_sets_use_the_indexed_representation() {
        let ways = SCAN_CROSSOVER * 2;
        let sets = 4;
        let plain = SetAssociativeCache::new(sets, ways);
        let hinted = SetAssociativeCache::with_block_hint(sets, ways, sets * ways * 2);
        assert!(plain.sets.iter().all(LruCache::is_indexed));
        assert!(hinted.sets.iter().all(LruCache::is_indexed));
        // Identical behavior regardless of index flavor.
        let mut plain = plain;
        let mut hinted = hinted;
        for round in 0..3u32 {
            for b in 0..(sets * ways + 64) as BlockId {
                let b = b.wrapping_mul(2_654_435_761) % (2 * (sets * ways) as u32);
                assert_eq!(plain.access(b), hinted.access(b), "round {round} block {b}");
            }
        }
        assert_eq!(plain.len(), hinted.len());
    }

    #[test]
    fn hinted_small_ways_behave_identically_to_plain() {
        let mut a = SetAssociativeCache::new(4, 2);
        let mut b = SetAssociativeCache::with_block_hint(4, 2, 64);
        for block in (0..200u32).map(|i| i * 7 % 40) {
            assert_eq!(a.access(block), b.access(block));
        }
    }
}
