//! Hit/miss accounting shared by every simulated cache.

use std::ops::{Add, AddAssign};

/// Counters accumulated by a [`crate::CacheSim`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit the cache.
    pub hits: u64,
    /// Number of accesses that missed the cache.
    pub misses: u64,
    /// Number of accesses that did not touch memory at all (nodes without a
    /// block annotation).
    pub silent: u64,
}

impl CacheStats {
    /// Total number of memory accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate over memory accesses, or 0 if there were none.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            silent: self.silent + rhs.silent,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_and_miss_rate() {
        let s = CacheStats {
            hits: 6,
            misses: 2,
            silent: 10,
        };
        assert_eq!(s.accesses(), 8);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn add_and_sum() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            silent: 3,
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            silent: 30,
        };
        let c = a + b;
        assert_eq!(c.hits, 11);
        assert_eq!(c.misses, 22);
        assert_eq!(c.silent, 33);

        let mut d = CacheStats::default();
        d += a;
        d += b;
        assert_eq!(d, c);

        let total: CacheStats = [a, b].into_iter().sum();
        assert_eq!(total, c);
    }
}
