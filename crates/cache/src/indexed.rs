//! O(1)-amortized indexed cache core: a slot arena threaded by an
//! intrusive doubly-linked recency list, plus a block→slot index.
//!
//! The scan representations in [`crate::LruCache`] / [`crate::FifoCache`]
//! cost O(C) per access (a position scan plus a front removal that shifts
//! the whole vector). That is measurably *faster* than any linked structure
//! at the paper's C = 16, but it caps sweeps at toy capacities. This module
//! provides the large-C representation both policies switch to above
//! [`crate::SCAN_CROSSOVER`]: every resident block owns a slot in a
//! fixed-size arena, slots are chained in recency (LRU at the head, MRU at
//! the tail — insertion order for FIFO), and a [`BlockIndex`] maps a block
//! id to its slot in O(1). Access, eviction and clearing are all
//! O(1) (amortized for the hash index; exact for the dense index), so the
//! per-access cost is independent of the capacity.
//!
//! Two index flavors cover the two kinds of block spaces the workloads
//! produce:
//!
//! * [`BlockIndex::Hash`] — a hash map for arbitrary (sparse) block ids,
//!   with a pre-sized table and a cheap multiplicative hasher;
//! * [`BlockIndex::Dense`] — a direct-mapped vector for workloads that
//!   declare a dense block range (everything built on
//!   `wsf_workloads::block_alloc::BlockAlloc` allocates ids `0..n`), with
//!   generation-stamped entries so [`IndexedCache::clear`] is O(1) instead
//!   of O(block space). The optional `stride` divides keys first, which
//!   lets a set-associative cache index only the blocks of its own set
//!   without paying the full block space per set.

use crate::{AccessOutcome, BlockId};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Sentinel for "no slot" in the intrusive list links.
const NIL: u32 = u32::MAX;

/// Hard ceiling on direct-mapped index entries (16M keys ≈ 128 MB): a
/// declared block range is a *hint*, and one sentinel-high block id (e.g.
/// `Block(u32::MAX - 1)`, which `wsf_workloads::apps::map_reduce` uses for
/// its accumulator) must not turn the "dense fast path" into a gigabyte
/// allocation. Spaces beyond the ceiling use the hash index; a dense index
/// asked to grow past its per-instance limit migrates to hashing instead.
const DENSE_SPACE_LIMIT: usize = 1 << 24;

/// A minimal multiplicative hasher for `u32` block ids (Fibonacci hashing).
/// Block ids are small dense-ish integers; SipHash's DoS resistance buys
/// nothing here and costs most of the lookup.
#[derive(Clone, Default)]
pub(crate) struct BlockHasher(u64);

impl Hasher for BlockHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u32 keys are ever hashed; fold bytes defensively anyway.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, i: u32) {
        // Rotate (not shift) so the top bits stay populated: hashbrown
        // takes its 7-bit control tag from the top of the hash, and a
        // plain `>> 16` would give every key the same tag, degrading the
        // SIMD group filter to a linear scan of each probed group.
        self.0 = u64::from(i)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_right(16);
    }
}

pub(crate) type BlockHashMap = HashMap<BlockId, u32, BuildHasherDefault<BlockHasher>>;

/// Direct-mapped block→slot index with generation-stamped entries.
///
/// `entries[block / stride]` holds `(generation, slot)`; an entry is live
/// only if its generation matches the index's current one, so clearing is a
/// generation bump, not an O(space) wipe. The vector grows on demand, which
/// keeps the index correct for out-of-range blocks (a declared range is a
/// pre-sizing hint, not a contract).
#[derive(Clone, Debug)]
pub(crate) struct DenseIndex {
    entries: Vec<(u32, u32)>,
    stride: u32,
    generation: u32,
    /// Largest key count this index may grow to; an insert beyond it makes
    /// the owning [`IndexedCache`] migrate to the hash index instead.
    limit: usize,
}

impl DenseIndex {
    fn new(space: usize, stride: u32) -> Self {
        debug_assert!(stride > 0);
        let keys = space.div_ceil(stride.max(1) as usize);
        debug_assert!(keys <= DENSE_SPACE_LIMIT, "caller checks the ceiling");
        // Blocks moderately past the declared range still index densely
        // (the declaration is a hint, not a contract); far outliers
        // trigger the hash migration.
        let limit = (2 * keys).clamp(4_096, DENSE_SPACE_LIMIT);
        DenseIndex {
            entries: vec![(0, NIL); keys],
            stride: stride.max(1),
            generation: 1,
            limit,
        }
    }

    #[inline]
    fn key(&self, block: BlockId) -> usize {
        (block / self.stride) as usize
    }

    #[inline]
    fn get(&self, block: BlockId) -> Option<u32> {
        match self.entries.get(self.key(block)) {
            Some(&(generation, slot)) if generation == self.generation => Some(slot),
            _ => None,
        }
    }

    #[inline]
    fn insert(&mut self, block: BlockId, slot: u32) {
        let key = self.key(block);
        if key >= self.entries.len() {
            self.entries.resize(key + 1, (0, NIL));
        }
        self.entries[key] = (self.generation, slot);
    }

    #[inline]
    fn remove(&mut self, block: BlockId) {
        let key = self.key(block);
        if let Some(entry) = self.entries.get_mut(key) {
            entry.0 = 0;
        }
    }

    fn clear(&mut self) {
        // Generation 0 marks dead entries, so skip it on wrap-around.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.entries.fill((0, NIL));
            self.generation = 1;
        }
    }
}

/// The block→slot index of an [`IndexedCache`].
#[derive(Clone, Debug)]
pub(crate) enum BlockIndex {
    /// Hash map for arbitrary (sparse) block spaces.
    Hash(BlockHashMap),
    /// Direct-mapped vector for declared dense block ranges.
    Dense(DenseIndex),
}

impl BlockIndex {
    /// A hash index pre-sized for roughly `entries` live keys (`0` defers
    /// sizing to the first inserts).
    pub(crate) fn new_hash(entries: usize) -> Self {
        BlockIndex::Hash(BlockHashMap::with_capacity_and_hasher(
            entries,
            BuildHasherDefault::default(),
        ))
    }

    /// A direct-mapped index for blocks densely covering `0..space` with
    /// keys divided by `stride`, or `None` when the declared space exceeds
    /// [`DENSE_SPACE_LIMIT`] keys (callers fall back to [`Self::new_hash`];
    /// a sparse or sentinel-polluted range must not cost O(largest id)
    /// memory).
    pub(crate) fn new_dense(space: usize, stride: u32) -> Option<Self> {
        if space.div_ceil(stride.max(1) as usize) > DENSE_SPACE_LIMIT {
            return None;
        }
        Some(BlockIndex::Dense(DenseIndex::new(space, stride)))
    }

    /// Whether inserting `block` would push a dense index past its growth
    /// limit, i.e. the owner must migrate to the hash flavor first. Always
    /// `false` for hash indexes.
    #[inline]
    pub(crate) fn dense_over_limit(&self, block: BlockId) -> bool {
        match self {
            BlockIndex::Hash(_) => false,
            BlockIndex::Dense(dense) => dense.key(block) >= dense.limit,
        }
    }

    #[inline]
    pub(crate) fn get(&self, block: BlockId) -> Option<u32> {
        match self {
            BlockIndex::Hash(map) => map.get(&block).copied(),
            BlockIndex::Dense(dense) => dense.get(block),
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, block: BlockId, slot: u32) {
        match self {
            BlockIndex::Hash(map) => {
                map.insert(block, slot);
            }
            BlockIndex::Dense(dense) => dense.insert(block, slot),
        }
    }

    #[inline]
    pub(crate) fn remove(&mut self, block: BlockId) {
        match self {
            BlockIndex::Hash(map) => {
                map.remove(&block);
            }
            BlockIndex::Dense(dense) => dense.remove(block),
        }
    }

    pub(crate) fn clear(&mut self) {
        match self {
            BlockIndex::Hash(map) => map.clear(),
            BlockIndex::Dense(dense) => dense.clear(),
        }
    }
}

/// One arena slot: a resident block and its recency-list links.
#[derive(Copy, Clone, Debug)]
struct Slot {
    block: BlockId,
    prev: u32,
    next: u32,
}

/// The shared O(1) core of the indexed LRU and FIFO caches.
///
/// The recency list runs from `head` (least recently used / first in) to
/// `tail` (most recently used / last in). LRU moves a hit slot to the tail;
/// FIFO leaves it in place — that single boolean is the entire policy
/// difference, so both [`crate::LruCache`] and [`crate::FifoCache`] wrap
/// this one type.
#[derive(Clone, Debug)]
pub(crate) struct IndexedCache {
    slots: Vec<Slot>,
    /// Live slots are exactly `0..live`; eviction reuses the evicted slot
    /// in place, so slots are never returned to a free pool between clears.
    live: usize,
    head: u32,
    tail: u32,
    capacity: usize,
    index: BlockIndex,
    /// The alternate index flavor retained across a dense→hash migration:
    /// after migrating, the (generation-cleared) dense index parks here and
    /// [`IndexedCache::clear`] swaps it back, so one sentinel-polluted run
    /// through a reused scratch does not demote every later run to hash
    /// lookups; the hash map parks in turn, so repeated migrations
    /// allocate nothing in steady state.
    parked: Option<BlockIndex>,
}

impl IndexedCache {
    /// An indexed cache over a hash block index.
    pub(crate) fn new_hash(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        IndexedCache {
            slots: Vec::with_capacity(capacity),
            live: 0,
            head: NIL,
            tail: NIL,
            capacity,
            index: BlockIndex::new_hash(capacity * 2),
            parked: None,
        }
    }

    /// An indexed cache over a direct-mapped index pre-sized for blocks in
    /// `0..space`, with keys divided by `stride` (see [`DenseIndex`]).
    ///
    /// Falls back to the hash index when the declared space would exceed
    /// [`DENSE_SPACE_LIMIT`] keys — a sparse or sentinel-polluted block
    /// range must not cost O(largest id) memory.
    pub(crate) fn new_dense(capacity: usize, space: usize, stride: u32) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let Some(index) = BlockIndex::new_dense(space, stride) else {
            return IndexedCache::new_hash(capacity);
        };
        IndexedCache {
            slots: Vec::with_capacity(capacity),
            live: 0,
            head: NIL,
            tail: NIL,
            capacity,
            index,
            parked: None,
        }
    }

    /// Inserts into the block index, first migrating a dense index to the
    /// hash flavor if `block`'s key lies beyond the dense growth limit.
    /// Live slots are exactly `0..live`, so the migration is a single walk.
    fn index_insert(&mut self, block: BlockId, slot: u32) {
        if self.index.dense_over_limit(block) {
            let mut map = match self.parked.take() {
                Some(BlockIndex::Hash(mut map)) => {
                    map.clear();
                    map
                }
                _ => BlockHashMap::with_capacity_and_hasher(
                    self.capacity * 2,
                    BuildHasherDefault::default(),
                ),
            };
            for (i, s) in self.slots[..self.live].iter().enumerate() {
                map.insert(s.block, i as u32);
            }
            let dense = std::mem::replace(&mut self.index, BlockIndex::Hash(map));
            self.parked = Some(dense);
        }
        self.index.insert(block, slot);
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    #[inline]
    fn push_tail(&mut self, slot: u32) {
        let old_tail = self.tail;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = old_tail;
            s.next = NIL;
        }
        match old_tail {
            NIL => self.head = slot,
            t => self.slots[t as usize].next = slot,
        }
        self.tail = slot;
    }

    /// Accesses `block`. On a hit, `move_on_hit` selects LRU (move the slot
    /// to the recency tail) vs FIFO (leave it in place) semantics.
    #[inline]
    pub(crate) fn access(&mut self, block: BlockId, move_on_hit: bool) -> AccessOutcome {
        if let Some(slot) = self.index.get(block) {
            if move_on_hit && slot != self.tail {
                self.unlink(slot);
                self.push_tail(slot);
            }
            return AccessOutcome::Hit;
        }
        let evicted = if self.live == self.capacity {
            // Reuse the head (LRU / oldest) slot for the new block.
            let victim = self.head;
            let old = self.slots[victim as usize].block;
            self.index.remove(old);
            self.unlink(victim);
            self.slots[victim as usize].block = block;
            self.push_tail(victim);
            self.index_insert(block, victim);
            Some(old)
        } else {
            let slot = self.live as u32;
            if self.live == self.slots.len() {
                self.slots.push(Slot {
                    block,
                    prev: NIL,
                    next: NIL,
                });
            } else {
                self.slots[self.live].block = block;
            }
            self.live += 1;
            self.push_tail(slot);
            self.index_insert(block, slot);
            None
        };
        AccessOutcome::Miss { evicted }
    }

    #[inline]
    pub(crate) fn contains(&self, block: BlockId) -> bool {
        self.index.get(block).is_some()
    }

    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// The block at the recency head (LRU / next FIFO eviction), if any.
    pub(crate) fn head_block(&self) -> Option<BlockId> {
        (self.head != NIL).then(|| self.slots[self.head as usize].block)
    }

    /// The block at the recency tail (MRU / newest), if any.
    pub(crate) fn tail_block(&self) -> Option<BlockId> {
        (self.tail != NIL).then(|| self.slots[self.tail as usize].block)
    }

    /// O(1): drops the list and bumps the index generation; the arena and
    /// index storage stay allocated for reuse.
    pub(crate) fn clear(&mut self) {
        self.live = 0;
        self.head = NIL;
        self.tail = NIL;
        // A dense→hash migration lasts only until the next clear: restore
        // the constructed dense flavor (the hash map parks in its place),
        // so a reused scratch keeps the fast path after one
        // sentinel-polluted run.
        if matches!(
            (&self.index, &self.parked),
            (BlockIndex::Hash(_), Some(BlockIndex::Dense(_)))
        ) {
            let dense = self.parked.take().expect("matched Some");
            let hash = std::mem::replace(&mut self.index, dense);
            self.parked = Some(hash);
        }
        self.index.clear();
    }

    /// The resident blocks from head (LRU / first-in) to tail (MRU).
    pub(crate) fn resident_iter(&self) -> ResidentIter<'_> {
        ResidentIter {
            cache: self,
            cursor: self.head,
        }
    }
}

/// Iterator over an [`IndexedCache`]'s resident blocks in recency order.
#[derive(Clone)]
pub(crate) struct ResidentIter<'a> {
    cache: &'a IndexedCache,
    cursor: u32,
}

impl Iterator for ResidentIter<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.cache.slots[self.cursor as usize];
        self.cursor = slot.next;
        Some(slot.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_semantics_move_hits_to_the_tail() {
        let mut c = IndexedCache::new_hash(3);
        for b in [1, 2, 3] {
            assert!(c.access(b, true).is_miss());
        }
        assert!(c.access(1, true).is_hit());
        // 2 is now the LRU block.
        assert_eq!(c.access(4, true).evicted(), Some(2));
        assert_eq!(
            c.resident_iter().collect::<Vec<_>>(),
            vec![3, 1, 4],
            "recency order from LRU to MRU"
        );
        assert_eq!(c.head_block(), Some(3));
        assert_eq!(c.tail_block(), Some(4));
    }

    #[test]
    fn fifo_semantics_ignore_hits() {
        let mut c = IndexedCache::new_dense(3, 8, 1);
        for b in [1, 2, 3] {
            c.access(b, false);
        }
        assert!(c.access(1, false).is_hit());
        // 1 is still first-in despite the hit.
        assert_eq!(c.access(4, false).evicted(), Some(1));
        assert!(!c.contains(1));
    }

    #[test]
    fn clear_is_generation_cheap_and_correct() {
        let mut c = IndexedCache::new_dense(2, 4, 1);
        c.access(0, true);
        c.access(1, true);
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(!c.contains(0));
        assert!(c.access(0, true).is_miss(), "cleared entries are dead");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dense_index_grows_past_the_declared_space() {
        let mut c = IndexedCache::new_dense(4, 2, 1);
        assert!(c.access(100, true).is_miss());
        assert!(c.access(100, true).is_hit());
        assert!(c.contains(100));
    }

    #[test]
    fn strided_dense_index_keys_by_quotient() {
        // Blocks {0, 4, 8} all belong to set 0 of a 4-set cache; a stride-4
        // dense index maps them to keys {0, 1, 2}.
        let mut c = IndexedCache::new_dense(2, 12, 4);
        c.access(0, true);
        c.access(4, true);
        assert!(c.contains(0) && c.contains(4));
        assert_eq!(c.access(8, true).evicted(), Some(0));
        assert!(!c.contains(0));
    }

    #[test]
    fn absurd_declared_space_falls_back_to_hashing() {
        // A sentinel-high block id must not cost O(largest id) memory.
        let mut c = IndexedCache::new_dense(4, u32::MAX as usize, 1);
        assert!(matches!(c.index, BlockIndex::Hash(_)));
        assert!(c.access(u32::MAX - 1, true).is_miss());
        assert!(c.contains(u32::MAX - 1));
    }

    #[test]
    fn far_outlier_blocks_migrate_the_dense_index_to_hash() {
        let mut c = IndexedCache::new_dense(3, 8, 1);
        c.access(1, true);
        c.access(2, true);
        assert!(matches!(c.index, BlockIndex::Dense(_)));
        // Key far beyond the growth limit: migrate instead of allocating
        // a vector out to the key.
        assert!(c.access(50_000_000, true).is_miss());
        assert!(matches!(c.index, BlockIndex::Hash(_)));
        // The migrated index still knows every resident block, and LRU
        // semantics are unbroken.
        assert!(c.contains(1) && c.contains(2) && c.contains(50_000_000));
        assert!(c.access(1, true).is_hit());
        assert_eq!(c.access(4, true).evicted(), Some(2), "2 was LRU");
    }

    #[test]
    fn clear_restores_the_dense_flavor_after_a_migration() {
        // A migration must not permanently demote a reused cache: clear()
        // swaps the constructed dense index back in (the hash map parks
        // for the next migration, so the cycle allocates nothing new).
        let mut c = IndexedCache::new_dense(3, 8, 1);
        c.access(1, true);
        c.access(50_000_000, true);
        assert!(matches!(c.index, BlockIndex::Hash(_)));
        c.clear();
        assert!(matches!(c.index, BlockIndex::Dense(_)), "dense restored");
        assert!(c.len() == 0 && !c.contains(1) && !c.contains(50_000_000));
        // The restored dense index works and can migrate again.
        assert!(c.access(1, true).is_miss());
        assert!(c.access(1, true).is_hit());
        assert!(c.access(60_000_000, true).is_miss());
        assert!(matches!(c.index, BlockIndex::Hash(_)));
        assert!(c.contains(1) && c.contains(60_000_000));
    }

    #[test]
    fn dense_generation_wraparound_resets_entries() {
        let mut c = IndexedCache::new_dense(2, 4, 1);
        if let BlockIndex::Dense(d) = &mut c.index {
            d.generation = u32::MAX;
        } else {
            unreachable!();
        }
        c.access(3, true);
        c.clear();
        assert!(!c.contains(3), "wrapped generation must not resurrect 3");
        assert!(c.access(3, true).is_miss());
    }
}
