//! One-pass Mattson stack-distance profiling for fully associative LRU.
//!
//! A fully associative LRU cache has the *inclusion property*: the
//! resident set at capacity `C` is always a subset of the resident set at
//! any capacity `C' > C` (both are exactly the `C` — resp. `C'` — most
//! recently used distinct blocks). An access therefore hits at capacity
//! `C` **iff** its *stack distance* — the number of distinct blocks
//! touched since the previous access to the same block, inclusive — is at
//! most `C`. Mattson's observation (the basis of every one-pass MRC
//! profiler) is that a single pass recording the stack-distance histogram
//! yields the exact hit/miss counts of *every* capacity at once: `hits(C)
//! = Σ_{d ≤ C} hist[d]`, `misses(C) = accesses − hits(C)`.
//! [`CacheSim`](crate::CacheSim)
//! answers the same question for one `C` per trace pass; this module
//! answers it for all `C` in one pass, and
//! `tests/stack_distance_differential.rs` pins the two to *exactly* equal
//! counts.
//!
//! ## Representation
//!
//! [`StackDistance`] assigns each access a monotonically increasing
//! *position* and keeps, per resident block, its most recent position
//! ("marked"). A Fenwick tree over positions counts marked positions, so
//! the stack distance of a repeat access at old position `q` is
//! `live − rank(q) + 1` where `rank(q)` is the number of marked positions
//! `≤ q` — an O(log n) query. The supporting state reuses the machinery of
//! [`crate::LruCache`]'s indexed representation (`crates/cache/src/`
//! `indexed.rs`): the block→position index is the same `BlockIndex` (hash
//! for sparse spaces, generation-stamped direct-mapped vector for declared
//! dense ranges, with the sentinel-id migration and parked-index swap),
//! and the Fenwick / position arrays are generation-stamped themselves, so
//! [`StackDistance::reset`] is an O(1) generation bump that never releases
//! storage. Positions are compacted (live blocks renumbered `0..live`)
//! when the position space fills, which keeps the tree sized by the
//! *distinct-block* count, not the trace length, and makes the per-access
//! cost O(log distinct) amortized.
//!
//! ```
//! use wsf_cache::StackDistance;
//!
//! let mut sd = StackDistance::new();
//! for block in [1u32, 2, 3, 1, 2, 3] {
//!     sd.access(block);
//! }
//! let curve = sd.curve();
//! assert_eq!(curve.misses_at(2), 6); // distance 3 > 2: every access misses
//! assert_eq!(curve.misses_at(3), 3); // only the three cold misses remain
//! assert_eq!(curve.misses_at(1 << 20), 3);
//! ```

use crate::indexed::{BlockHashMap, BlockIndex};
use crate::{BlockId, CacheStats};
use std::fmt::Write as _;

/// Smallest position-space allocation; doubling starts here so tiny traces
/// do not pay repeated compactions.
const MIN_POSITIONS: usize = 4_096;

/// One-pass Mattson stack-distance profiler (see the module docs).
///
/// Drive it with [`StackDistance::access`] per block touched; read the
/// capacity-indexed hit/miss counts with [`StackDistance::curve`]. The
/// bookkeeping wrapper [`crate::StackDistanceSim`] adds the
/// [`crate::CacheSim`]-compatible accounting surface (silent accesses,
/// flush/reset).
#[derive(Clone, Debug)]
pub struct StackDistance {
    /// Fenwick tree over positions, 1-based in `tree[i - 1]`; each entry is
    /// `(generation, count)` and reads as 0 when the stamp is stale, so a
    /// generation bump wipes the tree in O(1).
    tree: Vec<(u32, u32)>,
    /// Position → occupying block, stamped like `tree`; a stale stamp means
    /// the position is dead (never used this generation, or superseded by a
    /// newer access of its block). Generation 0 is reserved as "dead".
    pos_block: Vec<(u32, BlockId)>,
    /// Block → its marked (most recent) position.
    index: BlockIndex,
    /// Alternate index flavor retained across a dense→hash migration, with
    /// the same swap-back-on-clear protocol as `IndexedCache` (see
    /// `indexed.rs`): one sentinel-polluted run through a reused profiler
    /// does not demote every later run to hash lookups.
    parked: Option<BlockIndex>,
    /// Next position to assign (== accesses since the last compaction).
    time: u32,
    /// Number of marked positions == distinct blocks currently tracked.
    live: u32,
    /// Stamp of live `tree` / `pos_block` entries; never 0.
    generation: u32,
    /// Reuse-distance histogram: `hist[d - 1]` counts accesses at stack
    /// distance `d`, stamped with `hist_gen` (stale reads as 0) so the
    /// histogram too resets by generation bump.
    hist: Vec<(u32, u64)>,
    hist_gen: u32,
    /// Accesses with no previous occurrence (infinite stack distance):
    /// cold misses at every capacity.
    cold: u64,
    /// Reusable compaction buffer (live blocks in position order).
    scratch: Vec<BlockId>,
}

impl StackDistance {
    /// A profiler with a hash block→position index (works for any block
    /// ids).
    pub fn new() -> Self {
        Self::with_index(BlockIndex::new_hash(0))
    }

    /// Like [`StackDistance::new`], for traces whose blocks densely cover
    /// `0..block_space`: the index becomes the direct-mapped vector of
    /// `indexed.rs` (falling back to hashing when the declared space is
    /// absurdly large, e.g. polluted by a sentinel-high id). Results are
    /// identical either way; only the lookup cost differs.
    pub fn with_block_hint(block_space: usize) -> Self {
        let index =
            BlockIndex::new_dense(block_space, 1).unwrap_or_else(|| BlockIndex::new_hash(0));
        Self::with_index(index)
    }

    fn with_index(index: BlockIndex) -> Self {
        StackDistance {
            tree: Vec::new(),
            pos_block: Vec::new(),
            index,
            parked: None,
            time: 0,
            live: 0,
            generation: 1,
            hist: Vec::new(),
            hist_gen: 1,
            cold: 0,
            scratch: Vec::new(),
        }
    }

    /// Records an access to `block` and returns its stack distance, or
    /// `None` for a cold (first-occurrence) access. A fully associative
    /// LRU cache of capacity `C` hits exactly the accesses returning
    /// `Some(d)` with `d <= C`.
    pub fn access(&mut self, block: BlockId) -> Option<u32> {
        if self.time as usize == self.tree.len() {
            self.compact_or_grow();
        }
        let pos = self.time;
        let distance = match self.index.get(block) {
            Some(old) => {
                // Marked positions are exactly the distinct resident
                // blocks; those after `old` were touched since, plus the
                // block itself (inclusive convention: an immediate repeat
                // has distance 1).
                let d = self.live - self.fen_prefix(old) + 1;
                self.fen_add(old, -1);
                self.pos_block[old as usize].0 = 0;
                self.record(d);
                Some(d)
            }
            None => {
                self.cold += 1;
                self.live += 1;
                None
            }
        };
        self.fen_add(pos, 1);
        self.pos_block[pos as usize] = (self.generation, block);
        self.index_insert(block, pos);
        self.time += 1;
        distance
    }

    /// Forgets all residency (every tracked block becomes cold again) but
    /// keeps the accumulated histogram — the analogue of
    /// [`crate::CacheSim::flush`], and exactly what a per-capacity LRU
    /// cache's `clear()` does to future hit/miss accounting.
    pub fn clear(&mut self) {
        self.live = 0;
        self.time = 0;
        // Restore a parked dense index after a migration, exactly like
        // `IndexedCache::clear` (the hash map parks in its place).
        if matches!(
            (&self.index, &self.parked),
            (BlockIndex::Hash(_), Some(BlockIndex::Dense(_)))
        ) {
            let dense = self.parked.take().expect("matched Some");
            let hash = std::mem::replace(&mut self.index, dense);
            self.parked = Some(hash);
        }
        self.index.clear();
        self.bump_generation();
    }

    /// Forgets residency *and* the histogram: an O(1) generation bump on
    /// every component; storage is retained, so steady-state reuse across
    /// traces is allocation-free (proved in
    /// `crates/core/tests/alloc_free.rs`).
    pub fn reset(&mut self) {
        self.clear();
        self.cold = 0;
        self.hist_gen = self.hist_gen.wrapping_add(1);
        if self.hist_gen == 0 {
            self.hist.fill((0, 0));
            self.hist_gen = 1;
        }
    }

    /// Number of distinct blocks currently tracked (the resident set of an
    /// infinite-capacity cache).
    pub fn live_blocks(&self) -> usize {
        self.live as usize
    }

    /// Total accesses recorded since the last [`StackDistance::reset`].
    pub fn accesses(&self) -> u64 {
        self.cold + self.finite_total()
    }

    /// The capacity-indexed miss-ratio curve of everything recorded so far.
    pub fn curve(&self) -> MissRatioCurve {
        let mut cum_hits = Vec::with_capacity(self.hist.len() + 1);
        cum_hits.push(0u64);
        let mut total = 0u64;
        for &(gen, count) in &self.hist {
            if gen == self.hist_gen {
                total += count;
            }
            cum_hits.push(total);
        }
        // Trim capacities past the largest distance actually seen, so
        // `max_finite_distance` is tight and merge costs stay proportional
        // to real content.
        while cum_hits.len() > 1 && cum_hits[cum_hits.len() - 1] == cum_hits[cum_hits.len() - 2] {
            cum_hits.pop();
        }
        MissRatioCurve {
            cum_hits,
            cold: self.cold,
            silent: 0,
        }
    }

    fn finite_total(&self) -> u64 {
        self.hist
            .iter()
            .map(|&(gen, count)| if gen == self.hist_gen { count } else { 0 })
            .sum()
    }

    fn record(&mut self, distance: u32) {
        let idx = distance as usize - 1;
        if idx >= self.hist.len() {
            self.hist.resize(idx + 1, (0, 0));
        }
        let (gen, count) = self.hist[idx];
        let count = if gen == self.hist_gen { count + 1 } else { 1 };
        self.hist[idx] = (self.hist_gen, count);
    }

    /// Renumbers the live positions to `0..live` (and doubles the position
    /// space first if more than half of it is live). Runs when the
    /// position space fills; between two compactions at least half the
    /// space is consumed, so the O(space) walk is O(1) amortized per
    /// access.
    fn compact_or_grow(&mut self) {
        debug_assert_eq!(self.time as usize, self.tree.len());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(
            self.pos_block[..self.time as usize]
                .iter()
                .filter(|&&(gen, _)| gen == self.generation)
                .map(|&(_, block)| block),
        );
        debug_assert_eq!(scratch.len(), self.live as usize);
        if 2 * scratch.len() >= self.tree.len() {
            let grown = (2 * self.tree.len()).max(MIN_POSITIONS);
            self.tree.resize(grown, (0, 0));
            self.pos_block.resize(grown, (0, 0));
        }
        self.bump_generation();
        self.index.clear();
        for (pos, &block) in scratch.iter().enumerate() {
            let pos = pos as u32;
            self.fen_add(pos, 1);
            self.pos_block[pos as usize] = (self.generation, block);
            self.index_insert(block, pos);
        }
        self.time = scratch.len() as u32;
        self.scratch = scratch;
    }

    fn bump_generation(&mut self) {
        // Generation 0 marks dead entries, so skip it on wrap-around.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.tree.fill((0, 0));
            self.pos_block.fill((0, 0));
            self.generation = 1;
        }
    }

    /// Inserts into the block→position index, migrating a dense index to
    /// the hash flavor first when `block` lies beyond its growth limit —
    /// the same protocol as `IndexedCache::index_insert`, walking the
    /// stamped position array instead of a slot arena.
    fn index_insert(&mut self, block: BlockId, pos: u32) {
        if self.index.dense_over_limit(block) {
            let mut map = match self.parked.take() {
                Some(BlockIndex::Hash(mut map)) => {
                    map.clear();
                    map
                }
                _ => BlockHashMap::default(),
            };
            for (p, &(gen, b)) in self.pos_block.iter().enumerate() {
                if gen == self.generation {
                    map.insert(b, p as u32);
                }
            }
            let dense = std::mem::replace(&mut self.index, BlockIndex::Hash(map));
            self.parked = Some(dense);
        }
        self.index.insert(block, pos);
    }

    #[inline]
    fn tree_get(&self, i: usize) -> u32 {
        let (gen, count) = self.tree[i - 1];
        if gen == self.generation {
            count
        } else {
            0
        }
    }

    fn fen_add(&mut self, pos: u32, delta: i32) {
        let mut i = pos as usize + 1;
        let n = self.tree.len();
        while i <= n {
            let count = (self.tree_get(i) as i64 + delta as i64) as u32;
            self.tree[i - 1] = (self.generation, count);
            i += i & i.wrapping_neg();
        }
    }

    fn fen_prefix(&self, pos: u32) -> u32 {
        let mut i = pos as usize + 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree_get(i);
            i &= i - 1;
        }
        sum
    }
}

impl Default for StackDistance {
    fn default() -> Self {
        Self::new()
    }
}

/// Hit/miss counts of a profiled trace at *every* cache capacity: the
/// artifact a [`StackDistance`] pass produces.
///
/// `hits_at(C)` is the exact hit count a fully associative LRU
/// [`crate::CacheSim`] of `C` lines scores on the same trace (the
/// inclusion property; differentially tested). Queryable at arbitrary
/// capacities, mergeable across per-processor traces, and dumpable as a
/// JSON row for tables and plots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissRatioCurve {
    /// `cum_hits[c]` = hits at capacity `c`; the last entry saturates (a
    /// capacity beyond the largest finite stack distance hits every
    /// non-cold access).
    cum_hits: Vec<u64>,
    /// Cold misses (infinite stack distance): missed at every capacity.
    cold: u64,
    /// Block-less accesses, carried so [`MissRatioCurve::stats_at`] can
    /// reproduce a full [`CacheStats`].
    silent: u64,
}

impl MissRatioCurve {
    /// Total block accesses profiled (hits at infinite capacity plus cold
    /// misses).
    pub fn accesses(&self) -> u64 {
        self.cum_hits.last().copied().unwrap_or(0) + self.cold
    }

    /// Hits of an LRU cache of `capacity` lines.
    pub fn hits_at(&self, capacity: usize) -> u64 {
        self.cum_hits[capacity.min(self.cum_hits.len() - 1)]
    }

    /// Misses of an LRU cache of `capacity` lines (cold misses included).
    pub fn misses_at(&self, capacity: usize) -> u64 {
        self.accesses() - self.hits_at(capacity)
    }

    /// Miss ratio at `capacity` (0 for an empty trace).
    pub fn miss_ratio_at(&self, capacity: usize) -> f64 {
        let accesses = self.accesses();
        if accesses == 0 {
            0.0
        } else {
            self.misses_at(capacity) as f64 / accesses as f64
        }
    }

    /// The full [`CacheStats`] a [`crate::CacheSim`] of `capacity` lines
    /// would report on the profiled trace.
    pub fn stats_at(&self, capacity: usize) -> CacheStats {
        CacheStats {
            hits: self.hits_at(capacity),
            misses: self.misses_at(capacity),
            silent: self.silent,
        }
    }

    /// Cold (first-occurrence) misses: incurred at every capacity.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// The largest finite stack distance observed: capacities at or above
    /// it incur only the cold misses.
    pub fn max_finite_distance(&self) -> usize {
        self.cum_hits.len() - 1
    }

    /// Returns the curve with its silent-access count set (the profiler
    /// itself never sees block-less accesses; the [`crate::StackDistanceSim`]
    /// driver counts them).
    pub fn with_silent(mut self, silent: u64) -> Self {
        self.silent = silent;
        self
    }

    /// Adds `other`'s counts to this curve: the merged curve reports, at
    /// every capacity, the summed hits/misses of the two traces profiled
    /// independently — e.g. per-processor curves of a parallel execution
    /// merge into the execution's aggregate curve.
    pub fn merge(&mut self, other: &MissRatioCurve) {
        if other.cum_hits.len() > self.cum_hits.len() {
            let saturated = *self.cum_hits.last().expect("cum_hits is never empty");
            self.cum_hits.resize(other.cum_hits.len(), saturated);
        }
        let other_saturated = *other.cum_hits.last().expect("cum_hits is never empty");
        for (c, hits) in self.cum_hits.iter_mut().enumerate() {
            *hits += other.cum_hits.get(c).copied().unwrap_or(other_saturated);
        }
        self.cold += other.cold;
        self.silent += other.silent;
    }

    /// One JSON object (a single line) with the curve evaluated at
    /// `capacities` — the row format `bench_json` and the experiment
    /// artifacts use.
    pub fn to_json_row(&self, label: &str, capacities: &[usize]) -> String {
        let mut row = format!(
            "{{ \"label\": \"{label}\", \"accesses\": {}, \"cold_misses\": {}, \"points\": [",
            self.accesses(),
            self.cold
        );
        for (i, &capacity) in capacities.iter().enumerate() {
            if i > 0 {
                row.push_str(", ");
            }
            write!(
                row,
                "{{ \"capacity\": {capacity}, \"misses\": {}, \"miss_ratio\": {:.6} }}",
                self.misses_at(capacity),
                self.miss_ratio_at(capacity)
            )
            .expect("writing to a String cannot fail");
        }
        row.push_str("] }");
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve_of(trace: &[u32]) -> MissRatioCurve {
        let mut sd = StackDistance::new();
        for &b in trace {
            sd.access(b);
        }
        sd.curve()
    }

    #[test]
    fn distances_follow_the_inclusive_convention() {
        let mut sd = StackDistance::new();
        assert_eq!(sd.access(7), None, "cold");
        assert_eq!(sd.access(7), Some(1), "immediate repeat");
        assert_eq!(sd.access(8), None);
        assert_eq!(sd.access(7), Some(2), "one distinct block in between");
        assert_eq!(sd.access(9), None);
        assert_eq!(sd.access(8), Some(3));
        assert_eq!(sd.live_blocks(), 3);
        assert_eq!(sd.accesses(), 6);
    }

    #[test]
    fn curve_counts_hits_per_capacity() {
        // Cyclic trace over 3 blocks: classic LRU pathology — capacity 2
        // hits nothing, capacity 3 hits everything warm.
        let curve = curve_of(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(curve.accesses(), 9);
        assert_eq!(curve.cold_misses(), 3);
        assert_eq!(curve.misses_at(0), 9);
        assert_eq!(curve.misses_at(2), 9);
        assert_eq!(curve.misses_at(3), 3);
        assert_eq!(curve.misses_at(1 << 20), 3);
        assert_eq!(curve.hits_at(3), 6);
        assert_eq!(curve.max_finite_distance(), 3);
        assert!((curve.miss_ratio_at(3) - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn clear_forgets_residency_but_keeps_the_histogram() {
        let mut sd = StackDistance::new();
        sd.access(1);
        sd.access(1);
        sd.clear();
        assert_eq!(sd.access(1), None, "cleared block is cold again");
        let curve = sd.curve();
        assert_eq!(curve.accesses(), 3);
        assert_eq!(curve.cold_misses(), 2);
        assert_eq!(curve.hits_at(1), 1, "pre-clear hit retained");
    }

    #[test]
    fn reset_restarts_the_profile() {
        let mut sd = StackDistance::new();
        for &b in &[1u32, 2, 1, 2] {
            sd.access(b);
        }
        sd.reset();
        assert_eq!(sd.accesses(), 0);
        assert_eq!(sd.curve(), curve_of(&[]));
        for &b in &[5u32, 5] {
            sd.access(b);
        }
        assert_eq!(sd.curve(), curve_of(&[5, 5]));
    }

    #[test]
    fn compaction_preserves_distances() {
        // Enough accesses over a tiny block set to force many compactions
        // of the MIN_POSITIONS space... with a tiny space instead: shrink
        // by constructing fresh and hammering > MIN_POSITIONS accesses.
        let mut sd = StackDistance::new();
        let blocks = 7u32;
        let total = (2 * MIN_POSITIONS + 100) as u32;
        for i in 0..total {
            let d = sd.access(i % blocks);
            if i >= blocks {
                assert_eq!(d, Some(blocks), "cyclic trace: constant distance");
            }
        }
        let curve = sd.curve();
        assert_eq!(curve.cold_misses(), blocks as u64);
        assert_eq!(curve.misses_at(blocks as usize - 1), total as u64);
        assert_eq!(curve.misses_at(blocks as usize), blocks as u64);
    }

    #[test]
    fn dense_hint_matches_hash_index() {
        let trace: Vec<u32> = (0..500u32).map(|i| (i * i + i / 3) % 97).collect();
        let mut hash = StackDistance::new();
        let mut dense = StackDistance::with_block_hint(97);
        for &b in &trace {
            assert_eq!(hash.access(b), dense.access(b));
        }
        assert_eq!(hash.curve(), dense.curve());
    }

    #[test]
    fn sentinel_block_migrates_the_dense_index() {
        // A dense hint plus one sentinel-high id: the index must migrate
        // to hashing (not allocate O(id) memory) and keep exact distances.
        let mut sd = StackDistance::with_block_hint(64);
        sd.access(1);
        sd.access(u32::MAX - 1);
        assert_eq!(sd.access(1), Some(2));
        assert_eq!(sd.access(u32::MAX - 1), Some(2));
        sd.clear();
        assert_eq!(sd.access(1), None, "clear drops migrated residency too");
    }

    #[test]
    fn absurd_block_hint_falls_back_to_hashing() {
        let mut sd = StackDistance::with_block_hint(u32::MAX as usize);
        assert_eq!(sd.access(u32::MAX - 1), None);
        assert_eq!(sd.access(u32::MAX - 1), Some(1));
    }

    #[test]
    fn generation_wraparound_does_not_resurrect_state() {
        // The first access grows the (empty) position space, which bumps
        // the generation once; start one short of MAX so the wrap happens
        // inside clear().
        let mut sd = StackDistance::new();
        sd.generation = u32::MAX - 1;
        sd.access(3);
        assert_eq!(sd.generation, u32::MAX);
        sd.clear(); // wraps to 0 → re-stamped to 1
        assert_eq!(sd.generation, 1);
        assert_eq!(sd.access(3), None, "wrapped generation must not resurrect");
        sd.hist_gen = u32::MAX;
        sd.access(3);
        sd.reset();
        assert_eq!(sd.hist_gen, 1);
        assert_eq!(sd.accesses(), 0);
    }

    #[test]
    fn merge_sums_curves_of_different_lengths() {
        let mut a = curve_of(&[1, 2, 1]); // distances: ∞ ∞ 2
        let b = curve_of(&[1, 2, 3, 1, 1]); // distances: ∞ ∞ ∞ 3 1
        a.merge(&b);
        assert_eq!(a.accesses(), 8);
        assert_eq!(a.cold_misses(), 5);
        assert_eq!(a.hits_at(1), 1);
        assert_eq!(a.hits_at(2), 2);
        assert_eq!(a.hits_at(3), 3);
        assert_eq!(a.hits_at(1 << 16), 3);
        assert_eq!(a.misses_at(2), 6);
    }

    #[test]
    fn json_row_lists_requested_capacities() {
        let curve = curve_of(&[1, 2, 1, 2]).with_silent(3);
        let row = curve.to_json_row("demo", &[1, 2]);
        assert!(row.contains("\"label\": \"demo\""));
        assert!(row.contains("\"accesses\": 4"));
        assert!(row.contains("\"capacity\": 1"));
        assert!(row.contains("\"capacity\": 2"));
        assert!(row.contains("\"miss_ratio\": 0.500000"), "{row}");
        assert_eq!(curve.stats_at(2).silent, 3);
        assert_eq!(curve.stats_at(2).hits, 2);
    }

    #[test]
    fn empty_profile_yields_an_empty_curve() {
        let sd = StackDistance::default();
        let curve = sd.curve();
        assert_eq!(curve.accesses(), 0);
        assert_eq!(curve.misses_at(0), 0);
        assert_eq!(curve.misses_at(1024), 0);
        assert_eq!(curve.miss_ratio_at(16), 0.0);
        assert_eq!(curve.max_finite_distance(), 0);
    }
}
