//! Replays runtime block-touch traces through the cache simulators.
//!
//! The hardware-validation loop records, per worker, the sequence of
//! blocks a real pool execution touched (`wsf_runtime::TouchTrace`). This
//! module feeds those per-lane sequences back through [`CacheSim`] — one
//! private simulated cache per lane, exactly how the parallel executor
//! models per-processor caches — and through [`StackDistanceSim`] for full
//! per-capacity miss-ratio curves, so an *executed* schedule gets the same
//! miss accounting as a simulated one.
//!
//! Replay is defined access-for-access: lane `i`'s ops drive a fresh
//! simulator exactly as if the worker had called `access_opt`/`flush`
//! itself, so the result is bit-equal to direct simulation (pinned by the
//! `replay_differential` proptest suite, the runtime analogue of
//! `stack_distance_differential.rs`).

use crate::sim::{CachePolicy, CacheSim, StackDistanceSim};
use crate::stack_distance::MissRatioCurve;
use crate::stats::CacheStats;
use crate::BlockId;

/// One replayed cache operation of a worker lane.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReplayOp {
    /// A block access; `None` is a silent instruction (a node that touches
    /// no memory).
    Access(Option<BlockId>),
    /// A full cache flush (e.g. bracketing a phase boundary).
    Flush,
}

/// Per-lane and aggregate miss statistics from a replay (see [`replay`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// One [`CacheStats`] per input lane, in lane order.
    pub per_lane: Vec<CacheStats>,
    /// Field-wise sum over the lanes — total misses of the executed
    /// schedule under the per-worker private-cache model.
    pub total: CacheStats,
}

/// Replays each lane through its own fresh [`CacheSim`] of `capacity`
/// lines under `policy` (same constructor the sequential executor uses,
/// with `block_space` as the dense-index hint), returning per-lane and
/// summed statistics.
pub fn replay(
    lanes: &[Vec<ReplayOp>],
    policy: CachePolicy,
    capacity: usize,
    block_space: usize,
) -> ReplaySummary {
    let per_lane: Vec<CacheStats> = lanes
        .iter()
        .map(|ops| {
            let mut sim = CacheSim::with_block_hint(policy, capacity, block_space);
            for op in ops {
                match op {
                    ReplayOp::Access(block) => {
                        sim.access_opt(*block);
                    }
                    ReplayOp::Flush => sim.flush(),
                }
            }
            sim.stats()
        })
        .collect();
    let total = per_lane.iter().copied().sum();
    ReplaySummary { per_lane, total }
}

/// Replays each lane through its own [`StackDistanceSim`] and merges the
/// per-lane curves: the result reports, for every LRU capacity `C` at
/// once, the total misses the executed schedule would take on per-worker
/// private caches of `C` lines — the one-pass (Mattson) counterpart of
/// calling [`replay`] per capacity.
pub fn replay_curves(lanes: &[Vec<ReplayOp>], block_space: usize) -> MissRatioCurve {
    let mut merged = StackDistanceSim::new().curve();
    for ops in lanes {
        let mut sim = StackDistanceSim::with_block_hint(block_space);
        for op in ops {
            match op {
                ReplayOp::Access(block) => {
                    sim.access_opt(*block);
                }
                ReplayOp::Flush => sim.flush(),
            }
        }
        merged.merge(&sim.curve());
    }
    merged
}

/// Convenience: wraps a lane's block sequence (e.g. the `block` halves of
/// `TouchTrace::node_trace`) as [`ReplayOp::Access`] ops.
pub fn ops_from_blocks(blocks: impl IntoIterator<Item = Option<BlockId>>) -> Vec<ReplayOp> {
    blocks.into_iter().map(ReplayOp::Access).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_direct_simulation_per_lane() {
        let lanes = vec![
            ops_from_blocks([Some(0), Some(1), Some(0), None, Some(2)]),
            ops_from_blocks([Some(2), Some(2), Some(3)]),
        ];
        let summary = replay(&lanes, CachePolicy::Lru, 2, 4);
        assert_eq!(summary.per_lane.len(), 2);

        let mut direct = CacheSim::with_block_hint(CachePolicy::Lru, 2, 4);
        for b in [Some(0), Some(1), Some(0), None, Some(2)] {
            direct.access_opt(b);
        }
        assert_eq!(summary.per_lane[0], direct.stats());
        assert_eq!(
            summary.total,
            summary.per_lane.iter().copied().sum::<CacheStats>()
        );
    }

    #[test]
    fn flush_forgets_residency() {
        let with_flush = vec![vec![
            ReplayOp::Access(Some(0)),
            ReplayOp::Flush,
            ReplayOp::Access(Some(0)),
        ]];
        let summary = replay(&with_flush, CachePolicy::Lru, 4, 1);
        assert_eq!(summary.total.misses, 2, "flush makes the repeat cold");
    }

    #[test]
    fn curves_match_fixed_capacity_replay() {
        let lanes = vec![
            ops_from_blocks((0..6u32).chain(0..6).map(Some)),
            ops_from_blocks([Some(1), None, Some(1), Some(9)]),
        ];
        let curve = replay_curves(&lanes, 10);
        for capacity in [1usize, 2, 4, 6, 8, 64] {
            let fixed = replay(&lanes, CachePolicy::Lru, capacity, 10);
            assert_eq!(curve.stats_at(capacity), fixed.total, "capacity {capacity}");
        }
    }

    #[test]
    fn empty_lanes_are_fine() {
        let summary = replay(&[], CachePolicy::Lru, 4, 4);
        assert_eq!(summary.total, CacheStats::default());
        assert_eq!(replay_curves(&[], 4).accesses(), 0);
    }
}
