//! Fully associative FIFO cache.
//!
//! The paper notes (footnote 1, Section 3) that its upper bounds, which are
//! inherited from Acar, Blelloch and Blumofe's drifted-node argument, hold
//! for all *simple* cache replacement policies. FIFO is the simplest such
//! alternative and is used by the test-suite and the ablation benches to
//! check that the measured locality gap is not an LRU artifact.

use crate::adaptive::{Adaptive, ScanRepr};
use crate::{AccessOutcome, BlockId, Cache, ResidentIter};
use std::collections::VecDeque;

/// The seed scan representation: a queue scanned linearly per access.
#[derive(Clone, Debug)]
pub(crate) struct ScanFifo {
    queue: VecDeque<BlockId>,
    capacity: usize,
}

impl ScanRepr for ScanFifo {
    const MOVE_ON_HIT: bool = false;

    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ScanFifo {
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    #[inline]
    fn access(&mut self, block: BlockId) -> AccessOutcome {
        if self.queue.contains(&block) {
            // FIFO does not update recency on a hit.
            return AccessOutcome::Hit;
        }
        let evicted = if self.queue.len() == self.capacity {
            self.queue.pop_front()
        } else {
            None
        };
        self.queue.push_back(block);
        AccessOutcome::Miss { evicted }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.queue.contains(&block)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn clear(&mut self) {
        self.queue.clear();
    }

    fn iter(&self) -> ResidentIter<'_> {
        ResidentIter::deque(&self.queue)
    }

    fn front(&self) -> Option<BlockId> {
        self.queue.front().copied()
    }

    fn back(&self) -> Option<BlockId> {
        self.queue.back().copied()
    }
}

/// A fully associative cache with first-in-first-out replacement.
///
/// Like [`crate::LruCache`], the representation is capacity-adaptive (see
/// the private `adaptive` module): the seed scan queue below [`crate::SCAN_CROSSOVER`], the
/// O(1) indexed slot arena above it (with the insertion order kept in the
/// intrusive list and hits leaving it untouched). Both representations
/// produce identical [`AccessOutcome`] sequences.
#[derive(Clone, Debug)]
pub struct FifoCache {
    repr: Adaptive<ScanFifo>,
}

impl FifoCache {
    /// Creates an empty cache with `capacity` lines, picking the
    /// representation by capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        FifoCache {
            repr: Adaptive::new(capacity),
        }
    }

    /// Like [`FifoCache::new`], but with a declared dense block range
    /// `0..block_space` selecting the direct-mapped index when the indexed
    /// representation is used. (Disproportionate spaces fall back to
    /// hashing — see [`FifoCache::indexed_dense`].)
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_block_hint(capacity: usize, block_space: usize) -> Self {
        FifoCache {
            repr: Adaptive::with_block_hint(capacity, block_space),
        }
    }

    /// Forces the seed scan representation at any capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn scan(capacity: usize) -> Self {
        FifoCache {
            repr: Adaptive::scan(capacity),
        }
    }

    /// Forces the indexed representation with a hash block index.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn indexed(capacity: usize) -> Self {
        FifoCache {
            repr: Adaptive::indexed(capacity),
        }
    }

    /// Forces the indexed representation with a direct-mapped index
    /// pre-sized for blocks in `0..block_space`. Blocks outside the range
    /// stay correct: the index grows on demand, and sentinel-high outliers
    /// (or an absurdly large declared space) switch it to the hash index
    /// instead of paying O(largest id) memory.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn indexed_dense(capacity: usize, block_space: usize) -> Self {
        FifoCache {
            repr: Adaptive::indexed_dense(capacity, block_space),
        }
    }

    /// Whether this cache uses the indexed (O(1)) representation.
    pub fn is_indexed(&self) -> bool {
        self.repr.is_indexed()
    }

    /// The block that would be evicted next, if any.
    pub fn next_eviction(&self) -> Option<BlockId> {
        self.repr.front_block()
    }

    /// Borrowing iterator over the resident blocks in insertion order.
    pub fn resident_iter(&self) -> ResidentIter<'_> {
        self.repr.resident_iter()
    }
}

impl Cache for FifoCache {
    #[inline]
    fn access(&mut self, block: BlockId) -> AccessOutcome {
        self.repr.access(block)
    }

    fn contains(&self, block: BlockId) -> bool {
        self.repr.contains(block)
    }

    fn capacity(&self) -> usize {
        self.repr.capacity()
    }

    fn len(&self) -> usize {
        self.repr.len()
    }

    fn clear(&mut self) {
        self.repr.clear()
    }

    fn resident_into(&self, out: &mut Vec<BlockId>) {
        out.clear();
        out.extend(self.resident_iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SCAN_CROSSOVER;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FifoCache::new(0);
    }

    #[test]
    fn representation_is_capacity_adaptive() {
        assert!(!FifoCache::new(SCAN_CROSSOVER).is_indexed());
        assert!(FifoCache::new(SCAN_CROSSOVER + 1).is_indexed());
        assert!(!FifoCache::scan(4096).is_indexed());
        assert!(FifoCache::with_block_hint(4096, 64).is_indexed());
    }

    #[test]
    fn evicts_in_insertion_order_regardless_of_hits() {
        for mut c in [
            FifoCache::scan(3),
            FifoCache::indexed(3),
            FifoCache::indexed_dense(3, 8),
        ] {
            c.access(1);
            c.access(2);
            c.access(3);
            // Hitting 1 does not protect it under FIFO.
            assert!(c.access(1).is_hit());
            let out = c.access(4);
            assert_eq!(out.evicted(), Some(1));
            assert!(!c.contains(1));
            assert_eq!(c.next_eviction(), Some(2));
        }
    }

    #[test]
    fn differs_from_lru_on_hit_reordering() {
        use crate::LruCache;
        let trace = [1, 2, 3, 1, 4, 1];
        let mut fifo = FifoCache::new(3);
        let mut lru = LruCache::new(3);
        let fifo_misses: u32 = trace.iter().map(|&b| fifo.access(b).is_miss() as u32).sum();
        let lru_misses: u32 = trace.iter().map(|&b| lru.access(b).is_miss() as u32).sum();
        assert_eq!(lru_misses, 4);
        assert_eq!(
            fifo_misses, 5,
            "FIFO evicts the hit block 1 and re-misses it"
        );
    }

    #[test]
    fn capacity_and_len() {
        for mut c in [FifoCache::scan(2), FifoCache::indexed(2)] {
            assert!(c.is_empty());
            c.access(9);
            assert_eq!(c.len(), 1);
            c.access(10);
            c.access(11);
            assert_eq!(c.len(), 2);
            assert_eq!(c.capacity(), 2);
            c.clear();
            assert!(c.is_empty());
        }
    }

    #[test]
    fn resident_iter_reports_insertion_order() {
        for mut c in [FifoCache::scan(4), FifoCache::indexed(4)] {
            for b in [7, 8, 9] {
                c.access(b);
            }
            c.access(8); // hit: order unchanged
            assert_eq!(c.resident_iter().collect::<Vec<_>>(), vec![7, 8, 9]);
            assert_eq!(c.resident_blocks(), vec![7, 8, 9]);
        }
    }
}
