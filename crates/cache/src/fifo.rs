//! Fully associative FIFO cache.
//!
//! The paper notes (footnote 1, Section 3) that its upper bounds, which are
//! inherited from Acar, Blelloch and Blumofe's drifted-node argument, hold
//! for all *simple* cache replacement policies. FIFO is the simplest such
//! alternative and is used by the test-suite and the ablation benches to
//! check that the measured locality gap is not an LRU artifact.

use crate::{AccessOutcome, BlockId, Cache};
use std::collections::VecDeque;

/// A fully associative cache with first-in-first-out replacement.
#[derive(Clone, Debug)]
pub struct FifoCache {
    queue: VecDeque<BlockId>,
    capacity: usize,
}

impl FifoCache {
    /// Creates an empty cache with `capacity` lines.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        FifoCache {
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The block that would be evicted next, if any.
    pub fn next_eviction(&self) -> Option<BlockId> {
        self.queue.front().copied()
    }
}

impl Cache for FifoCache {
    fn access(&mut self, block: BlockId) -> AccessOutcome {
        if self.queue.contains(&block) {
            // FIFO does not update recency on a hit.
            return AccessOutcome::Hit;
        }
        let evicted = if self.queue.len() == self.capacity {
            self.queue.pop_front()
        } else {
            None
        };
        self.queue.push_back(block);
        AccessOutcome::Miss { evicted }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.queue.contains(&block)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn clear(&mut self) {
        self.queue.clear();
    }

    fn resident_blocks(&self) -> Vec<BlockId> {
        self.queue.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FifoCache::new(0);
    }

    #[test]
    fn evicts_in_insertion_order_regardless_of_hits() {
        let mut c = FifoCache::new(3);
        c.access(1);
        c.access(2);
        c.access(3);
        // Hitting 1 does not protect it under FIFO.
        assert!(c.access(1).is_hit());
        let out = c.access(4);
        assert_eq!(out.evicted(), Some(1));
        assert!(!c.contains(1));
        assert_eq!(c.next_eviction(), Some(2));
    }

    #[test]
    fn differs_from_lru_on_hit_reordering() {
        use crate::LruCache;
        let trace = [1, 2, 3, 1, 4, 1];
        let mut fifo = FifoCache::new(3);
        let mut lru = LruCache::new(3);
        let fifo_misses: u32 = trace.iter().map(|&b| fifo.access(b).is_miss() as u32).sum();
        let lru_misses: u32 = trace.iter().map(|&b| lru.access(b).is_miss() as u32).sum();
        assert_eq!(lru_misses, 4);
        assert_eq!(
            fifo_misses, 5,
            "FIFO evicts the hit block 1 and re-misses it"
        );
    }

    #[test]
    fn capacity_and_len() {
        let mut c = FifoCache::new(2);
        assert!(c.is_empty());
        c.access(9);
        assert_eq!(c.len(), 1);
        c.access(10);
        c.access(11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
        c.clear();
        assert!(c.is_empty());
    }
}
