//! The capacity-adaptive representation shared by [`crate::LruCache`] and
//! [`crate::FifoCache`].
//!
//! Both policies pick between the same two representations by the same
//! rule (the seed scan structure at or below [`SCAN_CROSSOVER`], the
//! indexed arena above) and dispatch every operation the same way; only the
//! scan structure itself and the on-hit behavior differ. [`Adaptive`]
//! factors that choice out once, parameterized by a [`ScanRepr`], so the
//! constructor/crossover logic cannot drift between the two cache types.

use crate::indexed::IndexedCache;
use crate::{AccessOutcome, BlockId, ResidentIter, SCAN_CROSSOVER};

/// A policy's seed scan representation, as consumed by [`Adaptive`].
pub(crate) trait ScanRepr {
    /// Whether a hit moves the block to the recency tail (LRU) or leaves
    /// it in place (FIFO). The indexed arena takes this as its
    /// `move_on_hit` argument.
    const MOVE_ON_HIT: bool;

    fn new(capacity: usize) -> Self;
    fn access(&mut self, block: BlockId) -> AccessOutcome;
    fn contains(&self, block: BlockId) -> bool;
    fn capacity(&self) -> usize;
    fn len(&self) -> usize;
    fn clear(&mut self);
    /// Resident blocks from eviction end (LRU / first-in) to newest.
    fn iter(&self) -> ResidentIter<'_>;
    /// The block at the eviction end, if any.
    fn front(&self) -> Option<BlockId>;
    /// The block at the newest end, if any.
    fn back(&self) -> Option<BlockId>;
}

/// Scan representation below the crossover, indexed arena above it.
#[derive(Clone, Debug)]
pub(crate) enum Adaptive<S> {
    Scan(S),
    Indexed(IndexedCache),
}

impl<S: ScanRepr> Adaptive<S> {
    pub(crate) fn new(capacity: usize) -> Self {
        if capacity <= SCAN_CROSSOVER {
            Adaptive::scan(capacity)
        } else {
            Adaptive::indexed(capacity)
        }
    }

    pub(crate) fn with_block_hint(capacity: usize, block_space: usize) -> Self {
        if capacity <= SCAN_CROSSOVER {
            Adaptive::scan(capacity)
        } else {
            Adaptive::indexed_dense(capacity, block_space)
        }
    }

    pub(crate) fn scan(capacity: usize) -> Self {
        Adaptive::Scan(S::new(capacity))
    }

    pub(crate) fn indexed(capacity: usize) -> Self {
        Adaptive::Indexed(IndexedCache::new_hash(capacity))
    }

    pub(crate) fn indexed_dense(capacity: usize, block_space: usize) -> Self {
        Adaptive::Indexed(IndexedCache::new_dense(capacity, block_space, 1))
    }

    pub(crate) fn indexed_dense_strided(capacity: usize, block_space: usize, stride: u32) -> Self {
        Adaptive::Indexed(IndexedCache::new_dense(capacity, block_space, stride))
    }

    pub(crate) fn is_indexed(&self) -> bool {
        matches!(self, Adaptive::Indexed(_))
    }

    #[inline]
    pub(crate) fn access(&mut self, block: BlockId) -> AccessOutcome {
        match self {
            Adaptive::Scan(scan) => scan.access(block),
            Adaptive::Indexed(ix) => ix.access(block, S::MOVE_ON_HIT),
        }
    }

    pub(crate) fn contains(&self, block: BlockId) -> bool {
        match self {
            Adaptive::Scan(scan) => scan.contains(block),
            Adaptive::Indexed(ix) => ix.contains(block),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        match self {
            Adaptive::Scan(scan) => scan.capacity(),
            Adaptive::Indexed(ix) => ix.capacity(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Adaptive::Scan(scan) => scan.len(),
            Adaptive::Indexed(ix) => ix.len(),
        }
    }

    pub(crate) fn clear(&mut self) {
        match self {
            Adaptive::Scan(scan) => scan.clear(),
            Adaptive::Indexed(ix) => ix.clear(),
        }
    }

    pub(crate) fn resident_iter(&self) -> ResidentIter<'_> {
        match self {
            Adaptive::Scan(scan) => scan.iter(),
            Adaptive::Indexed(ix) => ResidentIter::linked(ix.resident_iter()),
        }
    }

    /// The block at the eviction end (LRU block / next FIFO eviction).
    pub(crate) fn front_block(&self) -> Option<BlockId> {
        match self {
            Adaptive::Scan(scan) => scan.front(),
            Adaptive::Indexed(ix) => ix.head_block(),
        }
    }

    /// The block at the newest end (MRU / most recently inserted).
    pub(crate) fn back_block(&self) -> Option<BlockId> {
        match self {
            Adaptive::Scan(scan) => scan.back(),
            Adaptive::Indexed(ix) => ix.tail_block(),
        }
    }
}
