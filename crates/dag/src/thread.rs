//! Per-thread data stored by the DAG.

use crate::ids::{NodeId, ThreadId};

/// Data stored for a single thread of the computation DAG.
///
/// A thread is a maximal chain of nodes connected by continuation edges.
/// The main thread ([`ThreadId::MAIN`]) begins at the root node and ends at
/// the final node; every other thread begins at a node with an incoming
/// future edge from its parent thread's fork node.
#[derive(Clone, Debug)]
pub struct ThreadData {
    id: ThreadId,
    parent: Option<ThreadId>,
    fork: Option<NodeId>,
    nodes: Vec<NodeId>,
}

impl ThreadData {
    pub(crate) fn new(id: ThreadId, parent: Option<ThreadId>, fork: Option<NodeId>) -> Self {
        ThreadData {
            id,
            parent,
            fork,
            nodes: Vec::new(),
        }
    }

    /// This thread's identifier.
    #[inline]
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The parent thread that spawned this thread (`None` for the main
    /// thread).
    #[inline]
    pub fn parent(&self) -> Option<ThreadId> {
        self.parent
    }

    /// The fork node (in the parent thread) that spawned this thread
    /// (`None` for the main thread).
    #[inline]
    pub fn fork(&self) -> Option<NodeId> {
        self.fork
    }

    /// The thread's nodes in continuation order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The first node of the thread.
    ///
    /// # Panics
    /// Panics if the thread has no nodes yet (only possible mid-build).
    #[inline]
    pub fn first(&self) -> NodeId {
        *self.nodes.first().expect("thread has no nodes")
    }

    /// The last node of the thread.
    ///
    /// # Panics
    /// Panics if the thread has no nodes yet (only possible mid-build).
    #[inline]
    pub fn last(&self) -> NodeId {
        *self.nodes.last().expect("thread has no nodes")
    }

    /// Number of nodes in the thread.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the thread has no nodes (only possible mid-build).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn push_node(&mut self, node: NodeId) {
        self.nodes.push(node);
    }

    /// Like [`ThreadData::new`], but reusing `nodes` as the backing buffer
    /// (cleared). Lets [`crate::DagBuilder::recycle`] rebuild threads
    /// without per-thread allocation.
    pub(crate) fn with_buffer(
        id: ThreadId,
        parent: Option<ThreadId>,
        fork: Option<NodeId>,
        mut nodes: Vec<NodeId>,
    ) -> Self {
        nodes.clear();
        ThreadData {
            id,
            parent,
            fork,
            nodes,
        }
    }

    /// Consumes the thread, returning its node buffer for reuse.
    pub(crate) fn into_nodes(self) -> Vec<NodeId> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_thread_has_no_parent() {
        let t = ThreadData::new(ThreadId::MAIN, None, None);
        assert_eq!(t.id(), ThreadId::MAIN);
        assert_eq!(t.parent(), None);
        assert_eq!(t.fork(), None);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn nodes_in_order() {
        let mut t = ThreadData::new(ThreadId(1), Some(ThreadId::MAIN), Some(NodeId(3)));
        t.push_node(NodeId(4));
        t.push_node(NodeId(5));
        t.push_node(NodeId(8));
        assert_eq!(t.first(), NodeId(4));
        assert_eq!(t.last(), NodeId(8));
        assert_eq!(t.len(), 3);
        assert_eq!(t.nodes(), &[NodeId(4), NodeId(5), NodeId(8)]);
        assert_eq!(t.parent(), Some(ThreadId::MAIN));
        assert_eq!(t.fork(), Some(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "thread has no nodes")]
    fn first_on_empty_thread_panics() {
        let t = ThreadData::new(ThreadId(1), Some(ThreadId::MAIN), Some(NodeId(0)));
        let _ = t.first();
    }
}
