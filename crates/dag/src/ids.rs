//! Strongly-typed identifiers for nodes, threads and memory blocks.
//!
//! All identifiers are thin wrappers around `u32` indices into the arrays
//! owned by [`crate::Dag`]. Using newtypes keeps the different index spaces
//! from being mixed up and keeps the in-memory representation compact (the
//! worst-case DAGs of the paper grow to millions of nodes in the sweeps).

use std::fmt;

/// Identifier of a node (task) in a computation DAG.
///
/// Nodes represent unit tasks: "one or more instructions" in the paper's
/// model, each accessing at most one memory [`Block`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a thread: a maximal chain of nodes connected by
/// continuation edges.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Identifier of a memory block.
///
/// In the paper's cache model each instruction accesses at most one memory
/// block and each cache line holds exactly one block, so blocks are the unit
/// of cache occupancy.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block(pub u32);

impl NodeId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }
}

impl ThreadId {
    /// The main thread always has id 0: it begins at the root node and ends
    /// at the final node.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ThreadId` from a raw index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ThreadId(u32::try_from(index).expect("thread index overflows u32"))
    }

    /// Whether this is the main thread.
    #[inline]
    pub fn is_main(self) -> bool {
        self == Self::MAIN
    }
}

impl Block {
    /// Returns the raw block number.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for Block {
    fn from(value: u32) -> Self {
        Block(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
    }

    #[test]
    fn thread_id_main_is_zero() {
        assert_eq!(ThreadId::MAIN.index(), 0);
        assert!(ThreadId::MAIN.is_main());
        assert!(!ThreadId(3).is_main());
    }

    #[test]
    fn block_from_u32() {
        let b: Block = 7u32.into();
        assert_eq!(b.index(), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ThreadId(1).to_string(), "t1");
        assert_eq!(Block(9).to_string(), "m9");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ThreadId(0) < ThreadId(1));
        assert!(Block(5) > Block(4));
    }

    #[test]
    #[should_panic(expected = "node index overflows u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(usize::MAX);
    }
}
