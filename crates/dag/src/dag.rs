//! The computation DAG itself.

use crate::edge::{Edge, EdgeKind};
use crate::ids::{Block, NodeId, ThreadId};
use crate::node::NodeData;
use crate::thread::ThreadData;

/// A future-parallel computation DAG.
///
/// Nodes are unit tasks; edges are continuation, future (spawn) and touch
/// (join) edges; threads are maximal chains of continuation edges. The DAG
/// is immutable once built (see [`crate::DagBuilder`]).
///
/// Node ids are assigned in construction order, and the builder only ever
/// adds edges from already-existing nodes to newly-created nodes, so node id
/// order is a valid topological order. Several algorithms in this workspace
/// rely on that property; [`crate::validate()`] re-checks it.
#[derive(Clone, Debug)]
pub struct Dag {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) threads: Vec<ThreadData>,
    pub(crate) root: NodeId,
    pub(crate) final_node: NodeId,
    pub(crate) super_final: bool,
    /// Nodes that are synchronization-only joins (e.g. the `y_i` nodes of
    /// the paper's Figure 7(a), or edges added to a super final node). They
    /// are structurally touches but are not counted by [`Dag::num_touches`].
    pub(crate) sync_only: Vec<bool>,
    /// One past the largest block id any node accesses (0 when no node
    /// accesses memory), computed once at build time.
    pub(crate) block_space: u32,
}

impl Dag {
    /// The root node (in-degree 0), where the computation starts.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The final node (out-degree 0), where the computation ends.
    #[inline]
    pub fn final_node(&self) -> NodeId {
        self.final_node
    }

    /// Whether the DAG has a *super final node*: a final node with incoming
    /// touch edges from the last node of every thread (Section 6.2 of the
    /// paper).
    #[inline]
    pub fn has_super_final_node(&self) -> bool {
        self.super_final
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Access a node's data.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// Access a thread's data.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn thread(&self, id: ThreadId) -> &ThreadData {
        &self.threads[id.index()]
    }

    /// Iterate over all node ids in topological (construction) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterate over all thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len()).map(ThreadId::from_index)
    }

    /// Iterate over all fork nodes (nodes with an outgoing future edge).
    pub fn forks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&id| self.node(id).is_fork())
    }

    /// Iterate over all touch nodes (nodes with an incoming touch edge),
    /// including synchronization-only joins.
    pub fn touches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&id| self.node(id).is_touch())
    }

    /// Whether `node` is marked as a synchronization-only join (not a real
    /// touch for the purpose of counting `t`).
    #[inline]
    pub fn is_sync_only(&self, node: NodeId) -> bool {
        self.sync_only[node.index()]
    }

    /// Number of *real* touches `t` in the DAG (touch nodes that are not
    /// marked synchronization-only and are not the super final node).
    pub fn num_touches(&self) -> usize {
        self.touches().filter(|&x| !self.is_sync_only(x)).count()
    }

    /// Number of touch nodes of any kind (including joins and the super
    /// final node if it has incoming touch edges).
    pub fn num_touch_nodes(&self) -> usize {
        self.touches().count()
    }

    /// Number of fork nodes.
    pub fn num_forks(&self) -> usize {
        self.forks().count()
    }

    /// Total work `T₁`: the sum of node weights (equals the node count for
    /// unit-weight DAGs).
    pub fn work(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.weight())).sum()
    }

    /// The memory block accessed by `node`, if any.
    #[inline]
    pub fn block_of(&self, node: NodeId) -> Option<Block> {
        self.node(node).block()
    }

    /// One past the largest block id any node accesses, or 0 if no node
    /// accesses memory.
    ///
    /// Workload builders allocate block ids densely from 0 (see
    /// `wsf_workloads::block_alloc::BlockAlloc`), so this is the *dense
    /// block range* the cache simulators use to pick a direct-mapped
    /// block→slot index over a hash map at large capacities. It is
    /// maintained incrementally as blocks are assigned (no extra build
    /// pass) and never shrinks on `clear_block`/re-assignment — it may
    /// over-estimate, which is harmless for a pre-sizing hint.
    #[inline]
    pub fn block_space(&self) -> usize {
        self.block_space as usize
    }

    /// The number of distinct memory blocks referenced by the DAG.
    pub fn num_blocks(&self) -> usize {
        let mut blocks: Vec<u32> = self
            .nodes
            .iter()
            .filter_map(|n| n.block().map(|b| b.0))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len()
    }

    /// The thread spawned by the fork node `fork`, i.e. the thread whose
    /// first node is `fork`'s future successor. Returns `None` if `fork` is
    /// not a fork.
    pub fn future_thread_of_fork(&self, fork: NodeId) -> Option<ThreadId> {
        let first = self.node(fork).future_successor()?;
        Some(self.node(first).thread())
    }

    /// The *future thread of a touch* `x`: the thread containing `x`'s
    /// future parent (the source of its incoming touch edge). Returns
    /// `None` if `x` is not a touch.
    pub fn future_thread_of_touch(&self, x: NodeId) -> Option<ThreadId> {
        let parent = self.node(x).touch_predecessor()?;
        Some(self.node(parent).thread())
    }

    /// The *corresponding fork* of a touch `x`: the fork node that spawned
    /// `x`'s future thread. Returns `None` if `x` is not a touch or its
    /// future thread is the main thread.
    pub fn corresponding_fork(&self, x: NodeId) -> Option<NodeId> {
        let t = self.future_thread_of_touch(x)?;
        self.thread(t).fork()
    }

    /// The *local parent* of a touch `x`: its continuation predecessor.
    pub fn local_parent(&self, x: NodeId) -> Option<NodeId> {
        self.node(x).continuation_predecessor()
    }

    /// The *future parent* of a touch `x`: the source of its incoming touch
    /// edge.
    pub fn future_parent(&self, x: NodeId) -> Option<NodeId> {
        self.node(x).touch_predecessor()
    }

    /// The right child of a fork `v`: its continuation successor (the next
    /// node of the parent thread). Returns `None` if `v` is not a fork.
    pub fn right_child(&self, v: NodeId) -> Option<NodeId> {
        if self.node(v).is_fork() {
            self.node(v).continuation_successor()
        } else {
            None
        }
    }

    /// The left child of a fork `v`: the first node of the future thread it
    /// spawns. Returns `None` if `v` is not a fork.
    pub fn left_child(&self, v: NodeId) -> Option<NodeId> {
        self.node(v).future_successor()
    }

    /// All touches *of* thread `t`: touch nodes whose incoming touch edge
    /// originates at a node of `t`. (These are nodes of *other* threads.)
    pub fn touches_of_thread(&self, t: ThreadId) -> Vec<NodeId> {
        let mut result = Vec::new();
        for &n in self.thread(t).nodes() {
            for succ in self.node(n).touch_successors() {
                result.push(succ);
            }
        }
        result
    }

    /// All touches *by* thread `t`: touch nodes that belong to `t` itself.
    pub fn touches_by_thread(&self, t: ThreadId) -> Vec<NodeId> {
        self.thread(t)
            .nodes()
            .iter()
            .copied()
            .filter(|&n| self.node(n).is_touch())
            .collect()
    }

    /// The successors of `node` that become candidates for execution after
    /// `node` runs, in (future, continuation, touch) edge order.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = Edge> + '_ {
        self.node(node).out_edges().iter().copied()
    }

    /// The predecessors of `node`.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = Edge> + '_ {
        self.node(node).in_edges().iter().copied()
    }

    /// In-degree of each node, as a vector indexed by node id. Used by the
    /// executors to track readiness.
    pub fn in_degrees(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.in_degree() as u32).collect()
    }

    /// True if `node` is a fork.
    #[inline]
    pub fn is_fork(&self, node: NodeId) -> bool {
        self.node(node).is_fork()
    }

    /// True if `node` is a touch (or join) node.
    #[inline]
    pub fn is_touch(&self, node: NodeId) -> bool {
        self.node(node).is_touch()
    }

    /// A short human-readable summary of the DAG's shape.
    pub fn summary(&self) -> String {
        format!(
            "nodes={} threads={} forks={} touches={} span={} work={}",
            self.num_nodes(),
            self.num_threads(),
            self.num_forks(),
            self.num_touches(),
            crate::traverse::span(self),
            self.work(),
        )
    }

    /// Check the edge-kind invariants the rest of the workspace relies on.
    ///
    /// This is cheaper than [`crate::validate()`] and is used in debug
    /// assertions by the executors.
    pub fn check_edge_invariants(&self) -> bool {
        self.node_ids().all(|id| {
            let n = self.node(id);
            let conts = n
                .out_edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Continuation)
                .count();
            let futs = n
                .out_edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Future)
                .count();
            let touch_preds = n
                .in_edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Touch)
                .count();
            conts <= 1 && futs <= 1 && (touch_preds <= 1 || id == self.final_node)
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DagBuilder;
    use crate::ids::{Block, ThreadId};

    /// root -- fork v --> future thread {a, b}; parent continues to u, then
    /// touch x of the future thread, then final node.
    fn small_single_touch() -> crate::Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let fork = b.fork(main);
        let a = fork.future_first;
        let bnode = b.task(fork.future_thread);
        b.set_block(a, Block(1));
        b.set_block(bnode, Block(2));
        let u = b.task(main);
        let _x = b.touch_thread(main, fork.future_thread);
        let _f = b.task(main);
        b.set_block(u, Block(3));
        b.finish().expect("valid dag")
    }

    #[test]
    fn small_dag_shape() {
        let d = small_single_touch();
        assert_eq!(d.num_threads(), 2);
        assert_eq!(d.num_forks(), 1);
        assert_eq!(d.num_touches(), 1);
        assert_eq!(d.num_nodes(), 7);
        assert_eq!(d.work(), 7);
        assert_eq!(d.num_blocks(), 3);
        assert_eq!(d.block_space(), 4, "one past the largest block id");
        assert!(d.check_edge_invariants());
        assert!(!d.has_super_final_node());
    }

    #[test]
    fn fork_and_touch_relations() {
        let d = small_single_touch();
        let fork = d.forks().next().unwrap();
        let touch = d
            .touches()
            .find(|&x| !d.is_sync_only(x))
            .expect("has a touch");

        let ft = d.future_thread_of_fork(fork).unwrap();
        assert_eq!(ft, ThreadId(1));
        assert_eq!(d.future_thread_of_touch(touch), Some(ft));
        assert_eq!(d.corresponding_fork(touch), Some(fork));

        let right = d.right_child(fork).unwrap();
        let left = d.left_child(fork).unwrap();
        assert_eq!(d.node(right).thread(), ThreadId::MAIN);
        assert_eq!(d.node(left).thread(), ft);

        // future parent of the touch is the future thread's last node.
        assert_eq!(d.future_parent(touch), Some(d.thread(ft).last()));
        // local parent is in the main thread.
        let lp = d.local_parent(touch).unwrap();
        assert_eq!(d.node(lp).thread(), ThreadId::MAIN);
    }

    #[test]
    fn touches_of_and_by_thread() {
        let d = small_single_touch();
        let ft = ThreadId(1);
        let of = d.touches_of_thread(ft);
        assert_eq!(of.len(), 1);
        assert_eq!(d.node(of[0]).thread(), ThreadId::MAIN);
        let by_main = d.touches_by_thread(ThreadId::MAIN);
        assert_eq!(by_main, of);
        assert!(d.touches_by_thread(ft).is_empty());
    }

    #[test]
    fn summary_mentions_counts() {
        let d = small_single_touch();
        let s = d.summary();
        assert!(s.contains("nodes=7"));
        assert!(s.contains("threads=2"));
        assert!(s.contains("touches=1"));
    }

    #[test]
    fn root_and_final() {
        let d = small_single_touch();
        assert_eq!(d.node(d.root()).in_degree(), 0);
        assert_eq!(d.node(d.final_node()).out_degree(), 0);
        assert_eq!(d.node(d.root()).thread(), ThreadId::MAIN);
        assert_eq!(d.node(d.final_node()).thread(), ThreadId::MAIN);
    }

    #[test]
    fn in_degrees_vector() {
        let d = small_single_touch();
        let degs = d.in_degrees();
        assert_eq!(degs.len(), d.num_nodes());
        assert_eq!(degs[d.root().index()], 0);
        let touch = d.touches().next().unwrap();
        assert_eq!(degs[touch.index()], 2);
    }
}
