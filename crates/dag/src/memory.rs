//! Helpers for assigning memory blocks to DAG nodes.
//!
//! The cache-locality experiments of the paper are driven entirely by which
//! memory block each node accesses. The worst-case constructions use very
//! specific assignments (e.g. a chain of `C` nodes touching blocks
//! `m1..mC`); application workloads use simpler patterns such as per-thread
//! working sets. This module centralizes those patterns.

use crate::builder::DagBuilder;
use crate::ids::{Block, NodeId, ThreadId};

/// A monotonically increasing allocator of fresh memory blocks.
#[derive(Clone, Debug, Default)]
pub struct BlockAlloc {
    next: u32,
}

impl BlockAlloc {
    /// Creates an allocator whose first block is `m0`.
    pub fn new() -> Self {
        BlockAlloc { next: 0 }
    }

    /// Creates an allocator whose first block is `m{start}`.
    pub fn starting_at(start: u32) -> Self {
        BlockAlloc { next: start }
    }

    /// Allocates one fresh block.
    pub fn fresh(&mut self) -> Block {
        let b = Block(self.next);
        self.next += 1;
        b
    }

    /// Allocates `n` fresh consecutive blocks.
    pub fn fresh_n(&mut self, n: usize) -> Vec<Block> {
        (0..n).map(|_| self.fresh()).collect()
    }

    /// The number of blocks allocated so far (assuming a zero start).
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

/// Appends to `thread` a chain of nodes accessing `blocks` in forward order
/// and returns the appended node ids.
pub fn chain_forward(builder: &mut DagBuilder, thread: ThreadId, blocks: &[Block]) -> Vec<NodeId> {
    builder.chain_blocks(thread, blocks)
}

/// Appends to `thread` a chain of nodes accessing `blocks` in reverse order
/// (the `Z_i` chains of Figure 6 access `mC, m(C-1), ..., m1`).
pub fn chain_reverse(builder: &mut DagBuilder, thread: ThreadId, blocks: &[Block]) -> Vec<NodeId> {
    let reversed: Vec<Block> = blocks.iter().rev().copied().collect();
    builder.chain_blocks(thread, &reversed)
}

/// Assigns `block` to every node in `nodes`.
pub fn assign_all(builder: &mut DagBuilder, nodes: &[NodeId], block: Block) {
    for &n in nodes {
        builder.set_block(n, block);
    }
}

/// Assigns blocks round-robin from `blocks` to `nodes`.
pub fn assign_round_robin(builder: &mut DagBuilder, nodes: &[NodeId], blocks: &[Block]) {
    if blocks.is_empty() {
        return;
    }
    for (i, &n) in nodes.iter().enumerate() {
        builder.set_block(n, blocks[i % blocks.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_produces_distinct_blocks() {
        let mut a = BlockAlloc::new();
        let b1 = a.fresh();
        let b2 = a.fresh();
        assert_ne!(b1, b2);
        assert_eq!(a.allocated(), 2);
        let more = a.fresh_n(3);
        assert_eq!(more.len(), 3);
        assert_eq!(a.allocated(), 5);
        assert_eq!(more[2], Block(4));
    }

    #[test]
    fn alloc_starting_at_offsets_blocks() {
        let mut a = BlockAlloc::starting_at(100);
        assert_eq!(a.fresh(), Block(100));
        assert_eq!(a.fresh(), Block(101));
    }

    #[test]
    fn chains_and_assignment() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let mut alloc = BlockAlloc::new();
        let blocks = alloc.fresh_n(4);

        let fwd = chain_forward(&mut b, main, &blocks);
        let rev = chain_reverse(&mut b, main, &blocks);

        let extra = vec![b.task(main), b.task(main), b.task(main)];
        assign_all(&mut b, &extra, Block(99));

        let rr_nodes = vec![b.task(main), b.task(main), b.task(main), b.task(main)];
        assign_round_robin(&mut b, &rr_nodes, &blocks[..2]);

        // Also exercise the empty-blocks no-op path.
        assign_round_robin(&mut b, &rr_nodes, &[]);

        let dag = b.finish().unwrap();
        for (i, &n) in fwd.iter().enumerate() {
            assert_eq!(dag.block_of(n), Some(blocks[i]));
        }
        for (i, &n) in rev.iter().enumerate() {
            assert_eq!(dag.block_of(n), Some(blocks[blocks.len() - 1 - i]));
        }
        for &n in &extra {
            assert_eq!(dag.block_of(n), Some(Block(99)));
        }
        assert_eq!(dag.block_of(rr_nodes[0]), Some(blocks[0]));
        assert_eq!(dag.block_of(rr_nodes[1]), Some(blocks[1]));
        assert_eq!(dag.block_of(rr_nodes[2]), Some(blocks[0]));
        assert_eq!(dag.block_of(rr_nodes[3]), Some(blocks[1]));
    }
}
