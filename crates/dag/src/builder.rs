//! Incremental construction of computation DAGs.

use crate::dag::Dag;
use crate::edge::{Edge, EdgeKind};
use crate::error::DagError;
use crate::ids::{Block, NodeId, ThreadId};
use crate::node::NodeData;
use crate::thread::ThreadData;

/// The result of spawning a future thread with [`DagBuilder::fork`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fork {
    /// The fork node, appended to the parent thread.
    pub node: NodeId,
    /// The newly created future thread.
    pub future_thread: ThreadId,
    /// The first node of the future thread (the fork's left child).
    pub future_first: NodeId,
}

/// Builder for [`Dag`]s.
///
/// The builder starts with a main thread containing only the root node.
/// Nodes are appended to threads one at a time; [`DagBuilder::fork`] spawns
/// future threads and [`DagBuilder::touch`] / [`DagBuilder::touch_thread`]
/// create touch nodes. Because every edge runs from an already-existing node
/// to a newly created one, construction order is a topological order of the
/// resulting DAG, and cycles are impossible by construction.
///
/// The panicking methods (`task`, `fork`, `touch`, ...) are convenience
/// wrappers over the corresponding `try_*` methods and panic on misuse
/// (e.g. appending past a node that already has two outgoing edges); the
/// `try_*` methods return [`DagError`] instead.
#[derive(Clone, Debug)]
pub struct DagBuilder {
    nodes: Vec<NodeData>,
    threads: Vec<ThreadData>,
    sync_only: Vec<bool>,
    /// One past the largest block id ever assigned (maintained by
    /// [`DagBuilder::set_block`] so `finish` needs no extra node pass).
    block_space: u32,
    /// Pool of empty per-thread node buffers reclaimed by
    /// [`DagBuilder::recycle`]; [`DagBuilder::fork`] draws from it so a
    /// recycled builder creates threads without allocating.
    spare: Vec<Vec<NodeId>>,
}

impl Default for DagBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DagBuilder {
    /// Creates a builder whose main thread contains only the root node.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Like [`DagBuilder::new`], but pre-reserving space for `nodes` nodes
    /// and `threads` threads.
    ///
    /// Generators that know their size up front (the workload builders, the
    /// random-DAG generator, the figure constructions) should use this: DAG
    /// construction is the dominant cost of the analysis sweeps, and
    /// re-growing the node/thread vectors is a measurable part of it.
    pub fn with_capacity(nodes: usize, threads: usize) -> Self {
        let mut b = DagBuilder {
            nodes: Vec::with_capacity(nodes),
            threads: Vec::with_capacity(threads.max(1)),
            sync_only: Vec::with_capacity(nodes),
            block_space: 0,
            spare: Vec::new(),
        };
        let main = ThreadData::new(ThreadId::MAIN, None, None);
        b.threads.push(main);
        b.new_node(ThreadId::MAIN);
        b
    }

    /// Reserves capacity for at least `nodes` more nodes and `threads` more
    /// threads.
    pub fn reserve(&mut self, nodes: usize, threads: usize) {
        self.nodes.reserve(nodes);
        self.sync_only.reserve(nodes);
        self.threads.reserve(threads);
    }

    /// The main thread's id (always [`ThreadId::MAIN`]).
    pub fn main_thread(&self) -> ThreadId {
        ThreadId::MAIN
    }

    /// The root node's id.
    pub fn root(&self) -> NodeId {
        self.threads[0].first()
    }

    /// The current number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The current number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The current last node of `thread`.
    ///
    /// # Panics
    /// Panics if `thread` does not exist.
    pub fn last_of(&self, thread: ThreadId) -> NodeId {
        self.threads[thread.index()].last()
    }

    /// The first node of `thread`.
    ///
    /// # Panics
    /// Panics if `thread` does not exist.
    pub fn first_of(&self, thread: ThreadId) -> NodeId {
        self.threads[thread.index()].first()
    }

    /// Number of nodes currently in `thread`.
    pub fn len_of(&self, thread: ThreadId) -> usize {
        self.threads[thread.index()].len()
    }

    // ------------------------------------------------------------------
    // node creation
    // ------------------------------------------------------------------

    fn new_node(&mut self, thread: ThreadId) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData::new(thread));
        self.sync_only.push(false);
        self.threads[thread.index()].push_node(id);
        id
    }

    fn connect(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.nodes[from.index()].push_out(Edge::new(to, kind));
        self.nodes[to.index()].push_in(Edge::new(from, kind));
    }

    fn check_thread(&self, thread: ThreadId) -> Result<(), DagError> {
        if thread.index() < self.threads.len() {
            Ok(())
        } else {
            Err(DagError::UnknownThread(thread))
        }
    }

    fn check_node(&self, node: NodeId) -> Result<(), DagError> {
        if node.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(DagError::UnknownNode(node))
        }
    }

    /// Checks that `thread` can be extended by one more node via a
    /// continuation edge from its current last node.
    fn check_extendable(&self, thread: ThreadId) -> Result<NodeId, DagError> {
        self.check_thread(thread)?;
        let last = self.threads[thread.index()].last();
        let data = &self.nodes[last.index()];
        if data.continuation_successor().is_some() {
            return Err(DagError::DegreeViolation {
                node: last,
                detail: "node already has a continuation successor".to_string(),
            });
        }
        if data.out_degree() >= 2 {
            return Err(DagError::DegreeViolation {
                node: last,
                detail: "node already has two outgoing edges".to_string(),
            });
        }
        Ok(last)
    }

    /// Appends an ordinary task node to `thread`.
    pub fn try_task(&mut self, thread: ThreadId) -> Result<NodeId, DagError> {
        let last = self.check_extendable(thread)?;
        let id = self.new_node(thread);
        self.connect(last, id, EdgeKind::Continuation);
        Ok(id)
    }

    /// Appends an ordinary task node to `thread`.
    ///
    /// # Panics
    /// Panics if the thread cannot be extended.
    pub fn task(&mut self, thread: ThreadId) -> NodeId {
        self.try_task(thread).expect("task append failed")
    }

    /// Appends a task node that accesses `block`.
    pub fn task_block(&mut self, thread: ThreadId, block: Block) -> NodeId {
        let id = self.task(thread);
        self.set_block(id, block);
        id
    }

    /// Appends a chain of `count` task nodes to `thread`, returning the id
    /// of the last one (or the thread's current last node if `count == 0`).
    pub fn chain(&mut self, thread: ThreadId, count: usize) -> NodeId {
        let mut last = self.last_of(thread);
        for _ in 0..count {
            last = self.task(thread);
        }
        last
    }

    /// Appends a chain of task nodes accessing `blocks` in order, returning
    /// the ids of the appended nodes.
    pub fn chain_blocks(&mut self, thread: ThreadId, blocks: &[Block]) -> Vec<NodeId> {
        blocks.iter().map(|&b| self.task_block(thread, b)).collect()
    }

    /// Spawns a future thread at the end of `thread`.
    ///
    /// Appends a fork node to `thread`, creates the future thread with its
    /// first node (the fork's left child) and connects the future edge. The
    /// fork's right child is whatever node is appended to `thread` next.
    pub fn try_fork(&mut self, thread: ThreadId) -> Result<Fork, DagError> {
        let fork_node = self.try_task(thread)?;
        let new_tid = ThreadId::from_index(self.threads.len());
        let buf = self.spare.pop().unwrap_or_default();
        self.threads.push(ThreadData::with_buffer(
            new_tid,
            Some(thread),
            Some(fork_node),
            buf,
        ));
        let first = self.new_node(new_tid);
        self.connect(fork_node, first, EdgeKind::Future);
        Ok(Fork {
            node: fork_node,
            future_thread: new_tid,
            future_first: first,
        })
    }

    /// Spawns a future thread at the end of `thread`.
    ///
    /// # Panics
    /// Panics if the thread cannot be extended.
    pub fn fork(&mut self, thread: ThreadId) -> Fork {
        self.try_fork(thread).expect("fork append failed")
    }

    /// Appends a touch node to `thread` whose future parent is `source`
    /// (a node of another thread, typically that thread's last node).
    pub fn try_touch(&mut self, thread: ThreadId, source: NodeId) -> Result<NodeId, DagError> {
        self.check_node(source)?;
        let last = self.check_extendable(thread)?;
        // The paper's convention: the children of a fork cannot be touches.
        if self.nodes[last.index()].is_fork() {
            return Err(DagError::ForkChildIsTouch {
                fork: last,
                child: NodeId::from_index(self.nodes.len()),
            });
        }
        if self.nodes[source.index()].out_degree() >= 2 {
            return Err(DagError::TouchSourceUnavailable(source));
        }
        if self.nodes[source.index()].thread() == thread {
            return Err(DagError::DegreeViolation {
                node: source,
                detail: "touch edge must connect two distinct threads".to_string(),
            });
        }
        let id = self.new_node(thread);
        self.connect(last, id, EdgeKind::Continuation);
        self.connect(source, id, EdgeKind::Touch);
        Ok(id)
    }

    /// Appends a touch node to `thread` whose future parent is `source`.
    ///
    /// # Panics
    /// Panics on builder misuse (see [`DagBuilder::try_touch`]).
    pub fn touch(&mut self, thread: ThreadId, source: NodeId) -> NodeId {
        self.try_touch(thread, source).expect("touch append failed")
    }

    /// Appends a touch node to `thread` touching the future computed by
    /// `future_thread` (the touch edge originates at that thread's current
    /// last node).
    pub fn try_touch_thread(
        &mut self,
        thread: ThreadId,
        future_thread: ThreadId,
    ) -> Result<NodeId, DagError> {
        self.check_thread(future_thread)?;
        let source = self.threads[future_thread.index()].last();
        self.try_touch(thread, source)
    }

    /// Appends a touch node to `thread` touching the future computed by
    /// `future_thread`.
    ///
    /// # Panics
    /// Panics on builder misuse.
    pub fn touch_thread(&mut self, thread: ThreadId, future_thread: ThreadId) -> NodeId {
        self.try_touch_thread(thread, future_thread)
            .expect("touch_thread append failed")
    }

    /// Like [`DagBuilder::touch`], but marks the new node as a
    /// synchronization-only *join* (not counted by [`Dag::num_touches`]).
    ///
    /// The paper distinguishes between touches and join nodes when counting
    /// `t` in the Theorem 10 construction (Figure 7(a)).
    pub fn join(&mut self, thread: ThreadId, source: NodeId) -> NodeId {
        let id = self.touch(thread, source);
        self.sync_only[id.index()] = true;
        id
    }

    /// Like [`DagBuilder::touch_thread`], but marks the new node as a
    /// synchronization-only join.
    pub fn join_thread(&mut self, thread: ThreadId, future_thread: ThreadId) -> NodeId {
        let id = self.touch_thread(thread, future_thread);
        self.sync_only[id.index()] = true;
        id
    }

    // ------------------------------------------------------------------
    // attributes
    // ------------------------------------------------------------------

    /// Sets the memory block accessed by `node`.
    pub fn set_block(&mut self, node: NodeId, block: Block) {
        self.block_space = self.block_space.max(block.0.saturating_add(1));
        self.nodes[node.index()].set_block(Some(block));
    }

    /// Clears the memory block accessed by `node`.
    pub fn clear_block(&mut self, node: NodeId) {
        self.nodes[node.index()].set_block(None);
    }

    /// Sets the execution weight of `node` (clamped to at least 1).
    pub fn set_weight(&mut self, node: NodeId, weight: u32) {
        self.nodes[node.index()].set_weight(weight);
    }

    /// Marks `node` as a synchronization-only join.
    pub fn mark_sync_only(&mut self, node: NodeId) {
        self.sync_only[node.index()] = true;
    }

    // ------------------------------------------------------------------
    // finishing
    // ------------------------------------------------------------------

    /// Finishes the DAG, checking the paper's structural conventions:
    /// every non-main thread must be synchronized (its last node must have
    /// an outgoing touch edge) and the main thread's last node is the final
    /// node with out-degree 0.
    pub fn finish(self) -> Result<Dag, DagError> {
        self.finish_inner(true, false)
    }

    /// Finishes the DAG without requiring every thread to be synchronized.
    ///
    /// Intended for deliberately ill-formed or partial computations used in
    /// negative tests; most callers want [`DagBuilder::finish`] or
    /// [`DagBuilder::finish_with_super_final`].
    pub fn finish_lenient(self) -> Result<Dag, DagError> {
        self.finish_inner(false, false)
    }

    /// Finishes the DAG after adding a *super final node* synchronization
    /// edge (a sync-only touch edge) from the last node of every thread that
    /// is not otherwise synchronized to the final node (Section 6.2).
    pub fn finish_with_super_final(self) -> Result<Dag, DagError> {
        self.finish_inner(true, true)
    }

    /// Like [`DagBuilder::finish`], but by mutable reference: takes the
    /// built DAG out of the builder, leaving it *spent* (no threads, no
    /// nodes) but still holding its spare-buffer pool. A spent builder must
    /// be revived with [`DagBuilder::recycle`] or [`DagBuilder::reset`]
    /// before further appends.
    ///
    /// Together with `recycle`, this is the arena workflow of long-lived
    /// builders (one per server connection): `build → finish_take → execute
    /// → recycle` performs no steady-state allocation once the pooled
    /// buffers have grown to the traffic's working set.
    pub fn finish_take(&mut self) -> Result<Dag, DagError> {
        self.finish_take_inner(true, false)
    }

    /// [`DagBuilder::finish_with_super_final`] by mutable reference; see
    /// [`DagBuilder::finish_take`].
    pub fn finish_take_with_super_final(&mut self) -> Result<Dag, DagError> {
        self.finish_take_inner(true, true)
    }

    fn finish_take_inner(
        &mut self,
        require_sync: bool,
        super_final: bool,
    ) -> Result<Dag, DagError> {
        let spare = std::mem::take(&mut self.spare);
        let taken = std::mem::replace(self, DagBuilder::spent());
        self.spare = spare;
        taken.finish_inner(require_sync, super_final)
    }

    /// A builder with no threads and no root — the post-`finish_take`
    /// state. Performs no allocation.
    fn spent() -> Self {
        DagBuilder {
            nodes: Vec::new(),
            threads: Vec::new(),
            sync_only: Vec::new(),
            block_space: 0,
            spare: Vec::new(),
        }
    }

    /// Reabsorbs a finished DAG's backing storage and resets to the
    /// fresh-builder state (main thread + root node).
    ///
    /// The DAG's node/thread/flag vectors become the builder's own and every
    /// per-thread node buffer joins the spare pool, so rebuilding a DAG of
    /// similar shape allocates nothing.
    pub fn recycle(&mut self, dag: Dag) {
        let Dag {
            nodes,
            threads,
            sync_only,
            ..
        } = dag;
        let old = std::mem::replace(&mut self.threads, threads);
        for t in old {
            let mut buf = t.into_nodes();
            buf.clear();
            self.spare.push(buf);
        }
        self.nodes = nodes;
        self.sync_only = sync_only;
        self.reset();
    }

    /// Clears the builder back to the fresh state (main thread containing
    /// only the root node) while keeping all backing storage for reuse.
    /// Also revives a builder spent by [`DagBuilder::finish_take`].
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.sync_only.clear();
        self.block_space = 0;
        let mut threads = std::mem::take(&mut self.threads);
        for t in threads.drain(..) {
            let mut buf = t.into_nodes();
            buf.clear();
            self.spare.push(buf);
        }
        self.threads = threads;
        let buf = self.spare.pop().unwrap_or_default();
        self.threads
            .push(ThreadData::with_buffer(ThreadId::MAIN, None, None, buf));
        self.new_node(ThreadId::MAIN);
    }

    fn finish_inner(mut self, require_sync: bool, super_final: bool) -> Result<Dag, DagError> {
        if self.nodes.is_empty() || self.threads.is_empty() {
            return Err(DagError::EmptyDag);
        }

        if super_final {
            // Append a dedicated super final node to the main thread so that
            // the node collecting the synchronization edges is never the
            // right child of a fork (the model forbids fork children from
            // being touches).
            self.try_task(ThreadId::MAIN)?;
        }
        let final_node = self.threads[0].last();

        if super_final {
            // Add a sync edge from every unsynchronized thread's last node
            // to the final node. The final node may then exceed in-degree 2;
            // that is the defining feature of a super final node.
            let thread_count = self.threads.len();
            for t in 1..thread_count {
                let last = self.threads[t].last();
                let has_touch_out = self.nodes[last.index()].is_future_parent();
                if !has_touch_out {
                    self.connect(last, final_node, EdgeKind::Touch);
                }
            }
            self.sync_only[final_node.index()] = true;
        }

        if require_sync {
            for t in self.threads.iter().skip(1) {
                let last = t.last();
                if !self.nodes[last.index()].is_future_parent() {
                    return Err(DagError::UnsynchronizedThread(t.id()));
                }
            }
        }

        if self.nodes[final_node.index()].out_degree() != 0 {
            return Err(DagError::RootOrFinalShape(format!(
                "final node {final_node} has out-degree {}",
                self.nodes[final_node.index()].out_degree()
            )));
        }

        let root = self.threads[0].first();
        let block_space = self.block_space;
        let dag = Dag {
            nodes: self.nodes,
            threads: self.threads,
            root,
            final_node,
            super_final,
            sync_only: self.sync_only,
            block_space,
        };
        crate::validate::validate(&dag)?;
        Ok(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_builder_has_root_only() {
        let b = DagBuilder::new();
        assert_eq!(b.num_nodes(), 1);
        assert_eq!(b.num_threads(), 1);
        assert_eq!(b.root(), NodeId(0));
        assert_eq!(b.last_of(ThreadId::MAIN), NodeId(0));
    }

    #[test]
    fn simple_fork_join_builds() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.chain(f.future_thread, 3);
        b.task(main);
        b.touch_thread(main, f.future_thread);
        let dag = b.finish().unwrap();
        assert_eq!(dag.num_threads(), 2);
        assert_eq!(dag.num_touches(), 1);
        assert_eq!(dag.thread(f.future_thread).len(), 4);
    }

    #[test]
    fn unsynchronized_thread_is_rejected() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        let err = b.finish().unwrap_err();
        assert_eq!(err, DagError::UnsynchronizedThread(f.future_thread));
    }

    #[test]
    fn super_final_synchronizes_side_effect_threads() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        let dag = b.finish_with_super_final().unwrap();
        assert!(dag.has_super_final_node());
        // The side-effect thread's last node now points at the final node.
        let last = dag.thread(f.future_thread).last();
        assert!(dag
            .node(last)
            .touch_successors()
            .any(|x| x == dag.final_node()));
        // The super final node is not a counted touch.
        assert_eq!(dag.num_touches(), 0);
        assert!(dag.is_sync_only(dag.final_node()));
    }

    #[test]
    fn touch_right_after_fork_is_rejected() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f1 = b.fork(main);
        b.task(f1.future_thread);
        // The next node of the main thread would be both the fork's right
        // child and a touch, which the convention forbids.
        let err = b.try_touch_thread(main, f1.future_thread).unwrap_err();
        assert!(matches!(err, DagError::ForkChildIsTouch { .. }));
    }

    #[test]
    fn touch_within_same_thread_is_rejected() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let n = b.task(main);
        b.task(main);
        let err = b.try_touch(main, n).unwrap_err();
        assert!(matches!(err, DagError::DegreeViolation { .. }));
    }

    #[test]
    fn touch_source_with_two_out_edges_is_rejected() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        let src = f.future_first;
        b.task(f.future_thread); // src now has a continuation successor
        b.task(main);
        let t1 = b.fork(main); // another thread to host the second touch
        b.task(t1.future_thread);
        // Give src a touch successor, filling its out-degree.
        b.task(t1.future_thread);
        let tnode = b.try_touch(t1.future_thread, src);
        assert!(tnode.is_ok());
        // A second touch from the same source must fail: out-degree is 2.
        b.task(main);
        let err = b.try_touch(main, src).unwrap_err();
        assert_eq!(err, DagError::TouchSourceUnavailable(src));
    }

    #[test]
    fn chain_appends_count_nodes() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let before = b.num_nodes();
        let last = b.chain(main, 5);
        assert_eq!(b.num_nodes(), before + 5);
        assert_eq!(b.last_of(main), last);
        // chain of zero returns current last
        assert_eq!(b.chain(main, 0), last);
    }

    #[test]
    fn chain_blocks_sets_blocks() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let blocks = [Block(1), Block(2), Block(3)];
        let ids = b.chain_blocks(main, &blocks);
        assert_eq!(ids.len(), 3);
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        b.touch_thread(main, f.future_thread);
        let dag = b.finish().unwrap();
        for (id, blk) in ids.iter().zip(blocks.iter()) {
            assert_eq!(dag.block_of(*id), Some(*blk));
        }
    }

    #[test]
    fn unknown_thread_errors() {
        let mut b = DagBuilder::new();
        let bogus = ThreadId(42);
        assert_eq!(
            b.try_task(bogus).unwrap_err(),
            DagError::UnknownThread(bogus)
        );
        assert_eq!(
            b.try_touch_thread(ThreadId::MAIN, bogus).unwrap_err(),
            DagError::UnknownThread(bogus)
        );
    }

    #[test]
    fn unknown_node_errors() {
        let mut b = DagBuilder::new();
        b.task(ThreadId::MAIN);
        let err = b.try_touch(ThreadId::MAIN, NodeId(99)).unwrap_err();
        assert_eq!(err, DagError::UnknownNode(NodeId(99)));
    }

    #[test]
    fn join_nodes_are_sync_only() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        b.join_thread(main, f.future_thread);
        let dag = b.finish().unwrap();
        assert_eq!(dag.num_touches(), 0);
        assert_eq!(dag.num_touch_nodes(), 1);
    }

    fn build_fork_join(b: &mut DagBuilder, chain: usize) {
        let main = b.main_thread();
        let f = b.fork(main);
        b.chain(f.future_thread, chain);
        b.task(main);
        b.touch_thread(main, f.future_thread);
    }

    #[test]
    fn finish_take_then_recycle_round_trips() {
        let mut b = DagBuilder::new();
        build_fork_join(&mut b, 3);
        let dag1 = b.finish_take().unwrap();
        assert_eq!(dag1.num_threads(), 2);

        // Spent builder revives through recycle and rebuilds an identical
        // DAG from the pooled storage.
        b.recycle(dag1);
        assert_eq!(b.num_nodes(), 1, "recycle resets to root-only");
        assert_eq!(b.num_threads(), 1);
        build_fork_join(&mut b, 3);
        let dag2 = b.finish_take().unwrap();
        assert_eq!(dag2.num_threads(), 2);
        assert_eq!(dag2.num_touches(), 1);
        assert!(dag2.check_edge_invariants());
    }

    #[test]
    fn recycle_reuses_capacity_across_shapes() {
        let mut b = DagBuilder::new();
        build_fork_join(&mut b, 8);
        let dag = b.finish_take().unwrap();
        let node_cap_hint = dag.num_nodes();
        b.recycle(dag);
        // A smaller build after recycling a larger one must still validate,
        // and blocks set in round one must not leak into round two.
        let main = b.main_thread();
        let n = b.task(main);
        b.set_block(n, Block(7));
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        b.touch_thread(main, f.future_thread);
        let dag2 = b.finish_take().unwrap();
        assert!(dag2.num_nodes() <= node_cap_hint);
        assert_eq!(dag2.block_space(), 8);
        b.recycle(dag2);
        let main = b.main_thread();
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        b.touch_thread(main, f.future_thread);
        let dag3 = b.finish_take().unwrap();
        assert_eq!(dag3.block_space(), 0, "block_space resets per build");
    }

    #[test]
    fn reset_revives_spent_builder() {
        let mut b = DagBuilder::new();
        build_fork_join(&mut b, 1);
        let _dag = b.finish_take().unwrap();
        b.reset();
        build_fork_join(&mut b, 2);
        assert!(b.finish_take().is_ok());
    }

    #[test]
    fn finish_take_with_super_final_matches_by_value_variant() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        let dag = b.finish_take_with_super_final().unwrap();
        assert!(dag.has_super_final_node());
        b.recycle(dag);
        assert_eq!(b.num_nodes(), 1);
    }

    #[test]
    fn weights_are_stored() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let n = b.task(main);
        b.set_weight(n, 5);
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        b.touch_thread(main, f.future_thread);
        let dag = b.finish().unwrap();
        assert_eq!(dag.node(n).weight(), 5);
        assert_eq!(dag.work(), dag.num_nodes() as u64 + 4);
    }
}
