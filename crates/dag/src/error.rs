//! Errors reported while building or validating a computation DAG.

use crate::ids::{NodeId, ThreadId};
use std::fmt;

/// Errors produced by [`crate::DagBuilder`] and [`crate::validate()`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A thread id referenced a thread that does not exist.
    UnknownThread(ThreadId),
    /// A node exceeded the paper's degree convention (in/out degree at most
    /// 2, except a super final node's in-degree).
    DegreeViolation {
        /// Offending node.
        node: NodeId,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A touch edge was requested from a node that already supplies its
    /// maximum number of outgoing edges.
    TouchSourceUnavailable(NodeId),
    /// The DAG contains a cycle (should be impossible with the builder, but
    /// validation checks anyway).
    CycleDetected,
    /// A non-main thread's last node has no outgoing touch edge, so the
    /// thread is not synchronized with the rest of the computation.
    UnsynchronizedThread(ThreadId),
    /// A child of a fork is a touch node, which the paper's convention
    /// forbids ("the children of a fork both have in-degree 1 and cannot be
    /// touches").
    ForkChildIsTouch {
        /// The fork node.
        fork: NodeId,
        /// The offending child.
        child: NodeId,
    },
    /// The root node is not the unique node with in-degree 0, or the final
    /// node is not the unique node with out-degree 0.
    RootOrFinalShape(String),
    /// A build operation was attempted on a thread that has been sealed
    /// (its last node already carries its synchronizing touch edge).
    ThreadSealed(ThreadId),
    /// The builder finished with an empty computation.
    EmptyDag,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownNode(n) => write!(f, "unknown node {n}"),
            DagError::UnknownThread(t) => write!(f, "unknown thread {t}"),
            DagError::DegreeViolation { node, detail } => {
                write!(f, "degree violation at {node}: {detail}")
            }
            DagError::TouchSourceUnavailable(n) => {
                write!(f, "node {n} cannot supply another outgoing touch edge")
            }
            DagError::CycleDetected => write!(f, "computation graph contains a cycle"),
            DagError::UnsynchronizedThread(t) => write!(
                f,
                "thread {t} has no outgoing touch edge from its last node"
            ),
            DagError::ForkChildIsTouch { fork, child } => write!(
                f,
                "child {child} of fork {fork} is a touch node, which the model forbids"
            ),
            DagError::RootOrFinalShape(detail) => write!(f, "root/final shape violation: {detail}"),
            DagError::ThreadSealed(t) => write!(f, "thread {t} is sealed and cannot grow"),
            DagError::EmptyDag => write!(f, "computation DAG has no nodes"),
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = DagError::UnknownNode(NodeId(7));
        assert!(e.to_string().contains("n7"));
        let e = DagError::UnsynchronizedThread(ThreadId(3));
        assert!(e.to_string().contains("t3"));
        let e = DagError::ForkChildIsTouch {
            fork: NodeId(1),
            child: NodeId(2),
        };
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&DagError::CycleDetected);
    }
}
