//! Graphviz DOT export for computation DAGs.
//!
//! Useful for eyeballing generated workloads against the figures in the
//! paper. Continuation edges are drawn solid, future edges dashed and touch
//! edges dotted; nodes are labelled with their thread and memory block.

use crate::dag::Dag;
use crate::edge::EdgeKind;
use std::fmt::Write as _;

/// Renders the DAG in Graphviz DOT syntax.
pub fn to_dot(dag: &Dag) -> String {
    let mut out = String::new();
    out.push_str("digraph computation {\n");
    out.push_str("  rankdir=TB;\n  node [shape=circle, fontsize=10];\n");

    for id in dag.node_ids() {
        let n = dag.node(id);
        let mut label = format!("{id}\\n{}", n.thread());
        if let Some(b) = n.block() {
            let _ = write!(label, "\\n{b}");
        }
        let shape = if dag.is_touch(id) {
            "doublecircle"
        } else if dag.is_fork(id) {
            "diamond"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  \"{id}\" [label=\"{label}\", shape={shape}];");
    }

    for id in dag.node_ids() {
        for e in dag.node(id).out_edges() {
            let style = match e.kind {
                EdgeKind::Continuation => "solid",
                EdgeKind::Future => "dashed",
                EdgeKind::Touch => "dotted",
            };
            let _ = writeln!(
                out,
                "  \"{id}\" -> \"{}\" [style={style}, label=\"{}\"];",
                e.node,
                e.kind.label()
            );
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::ids::Block;

    #[test]
    fn dot_output_mentions_all_nodes_and_edge_styles() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        let n = b.task(f.future_thread);
        b.set_block(n, Block(3));
        b.task(main);
        b.touch_thread(main, f.future_thread);
        let dag = b.finish().unwrap();

        let dot = to_dot(&dag);
        assert!(dot.starts_with("digraph computation {"));
        assert!(dot.trim_end().ends_with('}'));
        for id in dag.node_ids() {
            assert!(dot.contains(&format!("\"{id}\"")));
        }
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("m3"));
        assert!(dot.contains("diamond"));
        assert!(dot.contains("doublecircle"));
    }
}
