//! Traversal utilities: topological order, reachability, span and depth.

use crate::bitset::BitSet;
use crate::dag::Dag;
use crate::ids::NodeId;

/// Returns whether node-id order is a valid topological order (every edge
/// points from a lower id to a higher id).
///
/// [`crate::DagBuilder`] guarantees this by construction; algorithms that
/// exploit it call this in debug assertions.
pub fn is_topological_by_id(dag: &Dag) -> bool {
    dag.node_ids().all(|id| {
        dag.node(id)
            .out_edges()
            .iter()
            .all(|e| e.node.index() > id.index())
    })
}

/// Computes a topological order with Kahn's algorithm.
///
/// Returns `None` if the graph contains a cycle (impossible for
/// builder-produced DAGs, but checked for robustness).
pub fn topo_order(dag: &Dag) -> Option<Vec<NodeId>> {
    let mut in_deg = dag.in_degrees();
    let mut order = Vec::with_capacity(dag.num_nodes());
    let mut stack: Vec<NodeId> = dag
        .node_ids()
        .filter(|id| in_deg[id.index()] == 0)
        .collect();
    while let Some(n) = stack.pop() {
        order.push(n);
        for e in dag.node(n).out_edges() {
            let d = &mut in_deg[e.node.index()];
            *d -= 1;
            if *d == 0 {
                stack.push(e.node);
            }
        }
    }
    if order.len() == dag.num_nodes() {
        Some(order)
    } else {
        None
    }
}

/// Returns the set of nodes reachable from `start` (including `start`
/// itself) following edges forward.
pub fn reachable_from(dag: &Dag, start: NodeId) -> BitSet {
    let mut seen = BitSet::new(dag.num_nodes());
    let mut stack = vec![start];
    seen.insert(start.index());
    while let Some(n) = stack.pop() {
        for e in dag.node(n).out_edges() {
            if seen.insert(e.node.index()) {
                stack.push(e.node);
            }
        }
    }
    seen
}

/// Whether `node` is a descendant of `ancestor` (or equal to it).
pub fn is_descendant(dag: &Dag, ancestor: NodeId, node: NodeId) -> bool {
    // Node-id order is topological, so a node can only be reachable from an
    // ancestor with a smaller or equal id; this cuts off most negative
    // queries immediately.
    if node.index() < ancestor.index() {
        return false;
    }
    if node == ancestor {
        return true;
    }
    reachable_from(dag, ancestor).contains(node.index())
}

/// Length of the longest weighted path ending at each node (each node's
/// weight included). Index by `NodeId::index`.
pub fn depths(dag: &Dag) -> Vec<u64> {
    let mut depth = vec![0u64; dag.num_nodes()];
    debug_assert!(is_topological_by_id(dag));
    for id in dag.node_ids() {
        let here = depth[id.index()] + u64::from(dag.node(id).weight());
        depth[id.index()] = here;
        for e in dag.node(id).out_edges() {
            if depth[e.node.index()] < here {
                depth[e.node.index()] = here;
            }
        }
    }
    depth
}

/// The computation span `T∞`: the weighted length (number of nodes, for
/// unit weights) of a longest directed path in the DAG.
pub fn span(dag: &Dag) -> u64 {
    depths(dag).into_iter().max().unwrap_or(0)
}

/// One longest directed path (a critical path) through the DAG, from the
/// root to the final node, as a list of node ids.
pub fn critical_path(dag: &Dag) -> Vec<NodeId> {
    let depth = depths(dag);
    // Walk backwards from the deepest node, at each step picking the
    // predecessor whose depth accounts for ours.
    let mut cur = dag
        .node_ids()
        .max_by_key(|id| depth[id.index()])
        .expect("non-empty dag");
    let mut path = vec![cur];
    loop {
        let need = depth[cur.index()] - u64::from(dag.node(cur).weight());
        if need == 0 {
            break;
        }
        let pred = dag
            .node(cur)
            .in_edges()
            .iter()
            .map(|e| e.node)
            .find(|p| depth[p.index()] == need)
            .expect("some predecessor accounts for the depth");
        path.push(pred);
        cur = pred;
    }
    path.reverse();
    path
}

/// The average parallelism `T₁ / T∞` of the DAG.
pub fn parallelism(dag: &Dag) -> f64 {
    let s = span(dag);
    if s == 0 {
        0.0
    } else {
        dag.work() as f64 / s as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::ids::ThreadId;

    /// Main thread of length `m`, one future thread of length `k`, one touch.
    fn one_future(m: usize, k: usize) -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.chain(f.future_thread, k - 1);
        b.chain(main, m);
        b.touch_thread(main, f.future_thread);
        b.task(main);
        b.finish().unwrap()
    }

    #[test]
    fn id_order_is_topological() {
        let d = one_future(3, 4);
        assert!(is_topological_by_id(&d));
        let order = topo_order(&d).expect("acyclic");
        assert_eq!(order.len(), d.num_nodes());
        // Kahn order must also respect edges.
        let pos: Vec<usize> = {
            let mut pos = vec![0; d.num_nodes()];
            for (i, n) in order.iter().enumerate() {
                pos[n.index()] = i;
            }
            pos
        };
        for id in d.node_ids() {
            for e in d.node(id).out_edges() {
                assert!(pos[id.index()] < pos[e.node.index()]);
            }
        }
    }

    #[test]
    fn span_of_linear_chain() {
        let mut b = DagBuilder::new();
        b.chain(ThreadId::MAIN, 9);
        let d = b.finish().unwrap();
        assert_eq!(span(&d), 10);
        assert_eq!(critical_path(&d).len(), 10);
        assert!((parallelism(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn span_takes_longer_branch() {
        // future thread of length 6, main continuation of length 2:
        // critical path goes through the future thread.
        let d = one_future(2, 6);
        // root, fork, 6 future nodes, touch, final = 10
        assert_eq!(span(&d), 10);
        let path = critical_path(&d);
        assert_eq!(path.len(), 10);
        assert_eq!(path[0], d.root());
        assert_eq!(*path.last().unwrap(), d.final_node());
    }

    #[test]
    fn weighted_span() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let n = b.task(main);
        b.set_weight(n, 10);
        let d = b.finish().unwrap();
        assert_eq!(span(&d), 11);
    }

    #[test]
    fn reachability_and_descendants() {
        let d = one_future(3, 4);
        let fork = d.forks().next().unwrap();
        let right = d.right_child(fork).unwrap();
        let left = d.left_child(fork).unwrap();
        let touch = d.touches().next().unwrap();

        assert!(is_descendant(&d, fork, touch));
        assert!(is_descendant(&d, right, touch));
        assert!(
            is_descendant(&d, left, touch),
            "future thread reaches touch"
        );
        assert!(is_descendant(&d, fork, fork), "node is its own descendant");
        assert!(!is_descendant(&d, touch, fork));
        assert!(!is_descendant(&d, right, left));

        let from_root = reachable_from(&d, d.root());
        assert_eq!(from_root.len(), d.num_nodes());
    }

    #[test]
    fn depths_increase_along_path() {
        let d = one_future(3, 4);
        let dep = depths(&d);
        for id in d.node_ids() {
            for e in d.node(id).out_edges() {
                assert!(dep[e.node.index()] > dep[id.index()]);
            }
        }
        assert_eq!(dep[d.root().index()], 1);
    }
}
