//! # wsf-dag — computation DAGs for future-parallel programs
//!
//! This crate implements the computation model of *"Well-Structured Futures
//! and Cache Locality"* (Herlihy & Liu, PPoPP 2014), Section 2:
//!
//! * a future-parallel computation is a DAG of unit tasks connected by
//!   **continuation**, **future** (spawn) and **touch** (join) edges;
//! * a **thread** is a maximal chain of continuation edges;
//! * a **fork** is a node with an outgoing future edge; its *left child* is
//!   the first node of the spawned future thread and its *right child* is
//!   the next node of the parent thread;
//! * a **touch** is a node with an incoming touch edge; its *future parent*
//!   supplies the value and its *local parent* is its continuation
//!   predecessor.
//!
//! On top of the raw graph the crate provides
//!
//! * [`DagBuilder`] — safe incremental construction (cycles are impossible
//!   by construction),
//! * [`classify`]/[`DagClass`] — the paper's Definitions 1, 2, 3, 13 and 17
//!   (structured, single-touch, local-touch, super-final-node variants),
//! * [`traverse`] — span `T∞`, work `T₁`, critical paths, reachability,
//! * [`memory`] — memory-block assignment helpers used by the cache
//!   locality experiments,
//! * [`dot`] — Graphviz export.
//!
//! ```
//! use wsf_dag::{DagBuilder, classify, span};
//!
//! // fib(3)-style fork-join: two futures touched in LIFO order.
//! let mut b = DagBuilder::new();
//! let main = b.main_thread();
//! let f1 = b.fork(main);
//! b.chain(f1.future_thread, 2);
//! let f2 = b.fork(main);
//! b.chain(f2.future_thread, 2);
//! b.task(main);
//! b.touch_thread(main, f2.future_thread);
//! b.touch_thread(main, f1.future_thread);
//! b.task(main);
//! let dag = b.finish().unwrap();
//!
//! let class = classify(&dag);
//! assert!(class.is_structured_single_touch());
//! assert!(class.fork_join);
//! // Longest path: root, fork1, fork2, the three nodes of the second
//! // future thread, both touches, final node.
//! assert_eq!(span(&dag), 9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bitset;
mod builder;
mod classify;
mod dag;
pub mod dot;
mod edge;
mod error;
mod ids;
pub mod memory;
mod node;
mod thread;
pub mod traverse;
mod validate;

pub use bitset::BitSet;
pub use builder::{DagBuilder, Fork};
pub use classify::{classify, is_structured_local_touch, is_structured_single_touch, DagClass};
pub use dag::Dag;
pub use edge::{Edge, EdgeKind};
pub use error::DagError;
pub use ids::{Block, NodeId, ThreadId};
pub use node::NodeData;
pub use thread::ThreadData;
pub use traverse::{critical_path, is_descendant, parallelism, reachable_from, span, topo_order};
pub use validate::validate;
