//! Structural validation of computation DAGs.
//!
//! [`validate`] checks the invariants of the paper's DAG model (Section 2.1)
//! that every other crate in the workspace relies on. The builder cannot
//! produce most of these violations, but validation documents the contract
//! and guards against future mutation APIs.

use crate::dag::Dag;
use crate::edge::EdgeKind;
use crate::error::DagError;
use crate::ids::ThreadId;

/// Validates the structural invariants of `dag`.
///
/// Checked invariants:
///
/// 1. node-id order is a topological order (all edges point forward);
/// 2. the root is the unique node with in-degree 0 and the final node is the
///    unique node with out-degree 0;
/// 3. every node has at most one continuation successor, one continuation
///    predecessor, one future successor and one incoming touch edge (the
///    final node may have more incoming touch edges when the DAG has a super
///    final node);
/// 4. in-degree and out-degree are at most 2 (again excepting a super final
///    node's in-degree);
/// 5. continuation edges stay within one thread, future and touch edges
///    connect distinct threads;
/// 6. thread bookkeeping is consistent: a thread's nodes form exactly the
///    continuation chain from its first to its last node, and its fork node
///    (for non-main threads) is in the parent thread and points at the
///    thread's first node with a future edge;
/// 7. no child of a fork is a touch node.
///
/// # Errors
///
/// Returns the [`DagError`] for a violated invariant. When a DAG violates
/// *several* invariants at once, which of them is reported is unspecified:
/// the checks are fused into single passes for speed, so the reported
/// error follows the fused per-node order, not the historical
/// check-by-check order. Callers may rely on *an* error being returned for
/// any invalid DAG (detection coverage is exhaustive), but must not match
/// on which specific variant surfaces first for a multi-fault DAG.
pub fn validate(dag: &Dag) -> Result<(), DagError> {
    validate_nodes(dag)?;
    validate_root_final(dag)?;
    validate_threads(dag)?;
    Ok(())
}

/// One fused pass over the nodes checking invariants 1–4 (topological
/// order, degrees) and 7 (no fork child is a touch), plus the per-node half
/// of invariant 2 (unique root/final shape). This used to be three separate
/// scans of the node array; at sweep sizes (10^5–10^6 nodes) the extra
/// passes were a measurable share of DAG construction, and every check here
/// is per-node, so fusing them changes no outcome for valid DAGs and no
/// detection coverage for invalid ones. It *does* change which error
/// surfaces when one DAG has several violations (checks now interleave
/// per node instead of running pass-by-pass) — see the caveat on
/// [`validate`].
fn validate_nodes(dag: &Dag) -> Result<(), DagError> {
    for id in dag.node_ids() {
        let n = dag.node(id);
        let mut cont_out = 0usize;
        let mut fut_out = 0usize;
        for e in n.out_edges() {
            if e.node.index() <= id.index() {
                return Err(DagError::CycleDetected);
            }
            match () {
                _ if e.is_continuation() => cont_out += 1,
                _ if e.is_future() => fut_out += 1,
                _ => {}
            }
            // Invariant 7: no child of a fork is a touch node. Checking at
            // the fork (over both child edges) is equivalent to the old
            // dedicated pass over `dag.forks()`.
            if n.is_fork()
                && matches!(e.kind, EdgeKind::Continuation | EdgeKind::Future)
                && dag.node(e.node).is_touch()
            {
                return Err(DagError::ForkChildIsTouch {
                    fork: id,
                    child: e.node,
                });
            }
        }
        let cont_in = n.in_edges().iter().filter(|e| e.is_continuation()).count();
        let fut_in = n.in_edges().iter().filter(|e| e.is_future()).count();
        let touch_in = n.in_edges().iter().filter(|e| e.is_touch()).count();

        let is_super_final = dag.has_super_final_node() && id == dag.final_node();

        if cont_out > 1 || fut_out > 1 {
            return Err(DagError::DegreeViolation {
                node: id,
                detail: "more than one continuation or future successor".to_string(),
            });
        }
        if cont_in > 1 || fut_in > 1 {
            return Err(DagError::DegreeViolation {
                node: id,
                detail: "more than one continuation or future predecessor".to_string(),
            });
        }
        if touch_in > 1 && !is_super_final {
            return Err(DagError::DegreeViolation {
                node: id,
                detail: "touched by more than one future".to_string(),
            });
        }
        if n.out_degree() > 2 {
            return Err(DagError::DegreeViolation {
                node: id,
                detail: format!("out-degree {} exceeds 2", n.out_degree()),
            });
        }
        if n.in_degree() > 2 && !is_super_final {
            return Err(DagError::DegreeViolation {
                node: id,
                detail: format!("in-degree {} exceeds 2", n.in_degree()),
            });
        }
        if n.in_degree() == 0 && id != dag.root() {
            return Err(DagError::RootOrFinalShape(format!(
                "{id} has in-degree 0 but is not the root"
            )));
        }
        if n.out_degree() == 0 && id != dag.final_node() {
            return Err(DagError::RootOrFinalShape(format!(
                "{id} has out-degree 0 but is not the final node"
            )));
        }
    }
    Ok(())
}

fn validate_root_final(dag: &Dag) -> Result<(), DagError> {
    if dag.node(dag.root()).in_degree() != 0 {
        return Err(DagError::RootOrFinalShape(
            "root has incoming edges".to_string(),
        ));
    }
    if dag.node(dag.final_node()).out_degree() != 0 {
        return Err(DagError::RootOrFinalShape(
            "final node has outgoing edges".to_string(),
        ));
    }
    if dag.node(dag.root()).thread() != ThreadId::MAIN
        || dag.node(dag.final_node()).thread() != ThreadId::MAIN
    {
        return Err(DagError::RootOrFinalShape(
            "root and final node must belong to the main thread".to_string(),
        ));
    }
    Ok(())
}

fn validate_threads(dag: &Dag) -> Result<(), DagError> {
    for tid in dag.thread_ids() {
        let t = dag.thread(tid);
        if t.is_empty() {
            return Err(DagError::UnknownThread(tid));
        }
        // Continuation chain from first to last covers exactly t.nodes().
        let mut cur = t.first();
        for (i, &expect) in t.nodes().iter().enumerate() {
            if cur != expect {
                return Err(DagError::DegreeViolation {
                    node: expect,
                    detail: format!("thread {tid} nodes out of continuation order"),
                });
            }
            if dag.node(cur).thread() != tid {
                return Err(DagError::DegreeViolation {
                    node: cur,
                    detail: format!(
                        "node belongs to {}, listed under {tid}",
                        dag.node(cur).thread()
                    ),
                });
            }
            if i + 1 < t.len() {
                cur = dag.node(cur).continuation_successor().ok_or_else(|| {
                    DagError::DegreeViolation {
                        node: cur,
                        detail: format!("thread {tid} chain broken"),
                    }
                })?;
            }
        }
        // Parent/fork bookkeeping.
        match (tid.is_main(), t.parent(), t.fork()) {
            (true, None, None) => {}
            (false, Some(parent), Some(fork)) => {
                if dag.node(fork).thread() != parent {
                    return Err(DagError::DegreeViolation {
                        node: fork,
                        detail: format!("fork of {tid} does not belong to parent {parent}"),
                    });
                }
                if dag.node(fork).future_successor() != Some(t.first()) {
                    return Err(DagError::DegreeViolation {
                        node: fork,
                        detail: format!("fork of {tid} does not spawn its first node"),
                    });
                }
            }
            _ => {
                return Err(DagError::RootOrFinalShape(format!(
                    "thread {tid} has inconsistent parent/fork bookkeeping"
                )))
            }
        }
        // Continuation edges must not leave the thread.
        for &n in t.nodes() {
            if let Some(succ) = dag.node(n).continuation_successor() {
                if dag.node(succ).thread() != tid {
                    return Err(DagError::DegreeViolation {
                        node: n,
                        detail: "continuation edge crosses threads".to_string(),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    #[test]
    fn builder_dags_validate() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f1 = b.fork(main);
        b.chain(f1.future_thread, 2);
        let f2 = b.fork(main);
        b.chain(f2.future_thread, 3);
        b.task(main);
        b.touch_thread(main, f2.future_thread);
        b.touch_thread(main, f1.future_thread);
        let dag = b.finish().unwrap();
        assert!(validate(&dag).is_ok());
    }

    #[test]
    fn super_final_dags_validate() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        for _ in 0..4 {
            let f = b.fork(main);
            b.chain(f.future_thread, 2);
            b.task(main);
        }
        let dag = b.finish_with_super_final().unwrap();
        assert!(validate(&dag).is_ok());
        assert!(dag.node(dag.final_node()).in_degree() > 2);
    }

    #[test]
    fn tampered_dag_fails_cycle_check() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        b.chain(main, 3);
        let mut dag = b.finish().unwrap();
        // Manually create a back edge to simulate corruption.
        use crate::edge::{Edge, EdgeKind};
        let last = dag.final_node();
        dag.nodes[last.index()].push_out(Edge::new(crate::ids::NodeId(0), EdgeKind::Continuation));
        dag.nodes[0].push_in(Edge::new(last, EdgeKind::Continuation));
        assert!(matches!(
            validate(&dag),
            Err(DagError::CycleDetected) | Err(DagError::DegreeViolation { .. })
        ));
    }

    #[test]
    fn lenient_finish_skips_sync_but_validation_still_checks_shape() {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.task(f.future_thread);
        b.task(main);
        // finish_lenient tolerates the unsynchronized future thread, which
        // leaves that thread's last node with out-degree 0 alongside the
        // final node; shape validation must reject that.
        let result = b.finish_lenient();
        assert!(matches!(result, Err(DagError::RootOrFinalShape(_))));
    }
}
