//! Per-node data stored by the DAG.

use crate::edge::{Edge, EdgeKind};
use crate::ids::{Block, NodeId, ThreadId};

/// An edge list that stores up to two edges inline and spills to the heap
/// only beyond that.
///
/// Degrees in the paper's DAG model are at most two for every node except a
/// super final node, so with inline storage building a DAG performs no
/// heap allocation per node — the dominant cost of constructing the
/// 10^5–10^6-node graphs the scale experiments use. The spilled
/// representation keeps super-final in-degrees unbounded.
#[derive(Clone, Debug)]
enum EdgeList {
    Inline { len: u8, edges: [Edge; 2] },
    Spilled(Vec<Edge>),
}

impl EdgeList {
    /// A placeholder occupying unused inline slots; never observable, since
    /// `as_slice` exposes only the first `len` entries.
    const UNUSED: Edge = Edge {
        node: NodeId(u32::MAX),
        kind: EdgeKind::Continuation,
    };

    const fn new() -> Self {
        EdgeList::Inline {
            len: 0,
            edges: [Self::UNUSED; 2],
        }
    }

    #[inline]
    fn as_slice(&self) -> &[Edge] {
        match self {
            EdgeList::Inline { len, edges } => &edges[..*len as usize],
            EdgeList::Spilled(v) => v,
        }
    }

    fn push(&mut self, edge: Edge) {
        match self {
            EdgeList::Inline { len, edges } => {
                if (*len as usize) < edges.len() {
                    edges[*len as usize] = edge;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(4);
                    v.extend_from_slice(&edges[..]);
                    v.push(edge);
                    *self = EdgeList::Spilled(v);
                }
            }
            EdgeList::Spilled(v) => v.push(edge),
        }
    }
}

/// Data stored for a single node (unit task) of the computation DAG.
///
/// A node belongs to exactly one thread, optionally accesses one memory
/// block, and carries its incoming and outgoing edges. Degrees are at most
/// two for every node except a *super final node* (see
/// [`crate::Dag::has_super_final_node`]), which may have arbitrary
/// in-degree.
#[derive(Clone, Debug)]
pub struct NodeData {
    thread: ThreadId,
    block: Option<Block>,
    /// Weight of the node in time steps (default 1). The simulator charges
    /// this many steps to execute the node; the paper's model uses unit
    /// tasks, so anything other than 1 is an extension.
    weight: u32,
    out_edges: EdgeList,
    in_edges: EdgeList,
}

impl NodeData {
    /// Creates a fresh node belonging to `thread` with no edges.
    pub(crate) fn new(thread: ThreadId) -> Self {
        NodeData {
            thread,
            block: None,
            weight: 1,
            out_edges: EdgeList::new(),
            in_edges: EdgeList::new(),
        }
    }

    /// The thread this node belongs to.
    #[inline]
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The memory block this node accesses, if any.
    #[inline]
    pub fn block(&self) -> Option<Block> {
        self.block
    }

    /// Execution weight in simulator time steps (1 for the paper's model).
    #[inline]
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// Outgoing edges, in insertion order.
    #[inline]
    pub fn out_edges(&self) -> &[Edge] {
        self.out_edges.as_slice()
    }

    /// Incoming edges, in insertion order.
    #[inline]
    pub fn in_edges(&self) -> &[Edge] {
        self.in_edges.as_slice()
    }

    /// Out-degree of the node.
    #[inline]
    pub fn out_degree(&self) -> usize {
        self.out_edges.as_slice().len()
    }

    /// In-degree of the node.
    #[inline]
    pub fn in_degree(&self) -> usize {
        self.in_edges.as_slice().len()
    }

    /// The continuation successor (next node of the same thread), if any.
    pub fn continuation_successor(&self) -> Option<NodeId> {
        self.out_edges()
            .iter()
            .find(|e| e.kind == EdgeKind::Continuation)
            .map(|e| e.node)
    }

    /// The continuation predecessor (previous node of the same thread), if
    /// any.
    pub fn continuation_predecessor(&self) -> Option<NodeId> {
        self.in_edges()
            .iter()
            .find(|e| e.kind == EdgeKind::Continuation)
            .map(|e| e.node)
    }

    /// The future (spawn) successor, i.e. the first node of the thread this
    /// node forks, if this node is a fork.
    pub fn future_successor(&self) -> Option<NodeId> {
        self.out_edges()
            .iter()
            .find(|e| e.kind == EdgeKind::Future)
            .map(|e| e.node)
    }

    /// The touch successors: touch nodes whose value this node supplies.
    pub fn touch_successors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Touch)
            .map(|e| e.node)
    }

    /// The touch predecessor (the *future parent*) of this node, if this
    /// node is a touch.
    pub fn touch_predecessor(&self) -> Option<NodeId> {
        self.in_edges()
            .iter()
            .find(|e| e.kind == EdgeKind::Touch)
            .map(|e| e.node)
    }

    /// Whether the node is a fork: it has an outgoing future edge.
    #[inline]
    pub fn is_fork(&self) -> bool {
        self.out_edges().iter().any(|e| e.kind == EdgeKind::Future)
    }

    /// Whether the node is a touch (or join) node: it has an incoming touch
    /// edge.
    #[inline]
    pub fn is_touch(&self) -> bool {
        self.in_edges().iter().any(|e| e.kind == EdgeKind::Touch)
    }

    /// Whether the node is a future parent: it has an outgoing touch edge.
    #[inline]
    pub fn is_future_parent(&self) -> bool {
        self.out_edges().iter().any(|e| e.kind == EdgeKind::Touch)
    }

    pub(crate) fn set_block(&mut self, block: Option<Block>) {
        self.block = block;
    }

    pub(crate) fn set_weight(&mut self, weight: u32) {
        self.weight = weight.max(1);
    }

    pub(crate) fn push_out(&mut self, edge: Edge) {
        self.out_edges.push(edge);
    }

    pub(crate) fn push_in(&mut self, edge: Edge) {
        self.in_edges.push(edge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_with_edges() -> NodeData {
        let mut n = NodeData::new(ThreadId(2));
        n.push_out(Edge::new(NodeId(5), EdgeKind::Continuation));
        n.push_out(Edge::new(NodeId(9), EdgeKind::Future));
        n.push_in(Edge::new(NodeId(1), EdgeKind::Continuation));
        n
    }

    #[test]
    fn fresh_node_has_no_edges() {
        let n = NodeData::new(ThreadId(1));
        assert_eq!(n.thread(), ThreadId(1));
        assert_eq!(n.block(), None);
        assert_eq!(n.weight(), 1);
        assert_eq!(n.out_degree(), 0);
        assert_eq!(n.in_degree(), 0);
        assert!(!n.is_fork());
        assert!(!n.is_touch());
        assert!(!n.is_future_parent());
    }

    #[test]
    fn successor_queries() {
        let n = node_with_edges();
        assert_eq!(n.continuation_successor(), Some(NodeId(5)));
        assert_eq!(n.future_successor(), Some(NodeId(9)));
        assert_eq!(n.continuation_predecessor(), Some(NodeId(1)));
        assert!(n.is_fork());
        assert_eq!(n.touch_successors().count(), 0);
    }

    #[test]
    fn touch_queries() {
        let mut n = NodeData::new(ThreadId(0));
        n.push_in(Edge::new(NodeId(3), EdgeKind::Touch));
        n.push_in(Edge::new(NodeId(2), EdgeKind::Continuation));
        assert!(n.is_touch());
        assert_eq!(n.touch_predecessor(), Some(NodeId(3)));
        assert_eq!(n.continuation_predecessor(), Some(NodeId(2)));
    }

    #[test]
    fn future_parent_query() {
        let mut n = NodeData::new(ThreadId(0));
        n.push_out(Edge::new(NodeId(7), EdgeKind::Touch));
        assert!(n.is_future_parent());
        assert_eq!(n.touch_successors().collect::<Vec<_>>(), vec![NodeId(7)]);
    }

    #[test]
    fn block_and_weight_setters() {
        let mut n = NodeData::new(ThreadId(0));
        n.set_block(Some(Block(4)));
        assert_eq!(n.block(), Some(Block(4)));
        n.set_block(None);
        assert_eq!(n.block(), None);
        n.set_weight(0);
        assert_eq!(n.weight(), 1, "weight is clamped to at least 1");
        n.set_weight(10);
        assert_eq!(n.weight(), 10);
    }
}
