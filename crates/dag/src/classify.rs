//! Classification of computation DAGs according to the paper's definitions.
//!
//! * Definition 1 — *structured* future-parallel computation,
//! * Definition 2 — *structured single-touch* computation,
//! * Definition 3 — *structured local-touch* computation,
//! * Definition 13 — structured single-touch computation *with a super final
//!   node*,
//! * Definition 17 — structured local-touch computation *with a super final
//!   node*,
//! * plus a fork-join (Cilk-style, properly nested) check, since Section 4
//!   observes that fork-join programs are structured single-touch
//!   computations.

use crate::dag::Dag;
use crate::ids::NodeId;
use crate::traverse::reachable_from;

/// The outcome of classifying a DAG against the paper's definitions.
///
/// `violations` holds human-readable explanations of which clauses failed,
/// which makes test failures and misclassified workloads easy to debug.
#[derive(Clone, Debug, Default)]
pub struct DagClass {
    /// Definition 1: structured future-parallel computation.
    pub structured: bool,
    /// Definition 2 (or 13 when the DAG has a super final node).
    pub single_touch: bool,
    /// Definition 3 (or 17 when the DAG has a super final node).
    pub local_touch: bool,
    /// Properly-nested fork-join computation (Cilk spawn/sync style).
    pub fork_join: bool,
    /// Whether the DAG carries a super final node.
    pub super_final: bool,
    /// Explanations for each violated clause.
    pub violations: Vec<String>,
}

impl DagClass {
    /// Structured single-touch computation (the class of Theorem 8).
    pub fn is_structured_single_touch(&self) -> bool {
        self.structured && self.single_touch
    }

    /// Structured local-touch computation (the class of Theorem 12).
    pub fn is_structured_local_touch(&self) -> bool {
        self.structured && self.local_touch
    }

    /// Unstructured computation: violates Definition 1.
    pub fn is_unstructured(&self) -> bool {
        !self.structured
    }
}

/// Classifies `dag` against Definitions 1, 2, 3, 13 and 17.
pub fn classify(dag: &Dag) -> DagClass {
    let mut class = DagClass {
        structured: true,
        single_touch: true,
        local_touch: true,
        fork_join: true,
        super_final: dag.has_super_final_node(),
        violations: Vec::new(),
    };

    for tid in dag.thread_ids().filter(|t| !t.is_main()) {
        let t = dag.thread(tid);
        let fork = t.fork().expect("non-main thread has a fork");
        let parent = t.parent().expect("non-main thread has a parent");
        let right = dag
            .right_child(fork)
            .expect("fork has a right child (continuation successor)");

        // Touches of this future thread, excluding super-final sync edges.
        let touches: Vec<NodeId> = dag
            .touches_of_thread(tid)
            .into_iter()
            .filter(|&x| !(dag.has_super_final_node() && x == dag.final_node()))
            .collect();

        let reach_fork = reachable_from(dag, fork);
        let reach_right = reachable_from(dag, right);

        // Definition 1 clause (1): local parents of the touches of t are
        // descendants of the fork v.
        for &x in &touches {
            let lp = dag
                .local_parent(x)
                .expect("touch has a continuation predecessor");
            if !reach_fork.contains(lp.index()) {
                class.structured = false;
                class.violations.push(format!(
                    "thread {tid}: local parent {lp} of touch {x} is not a descendant of fork {fork}"
                ));
            }
        }

        // Definition 1 clause (2): at least one touch of t is a descendant
        // of the right child of v. A thread synchronized only through the
        // super final node satisfies the barrier clause by Definition 13/17.
        let has_right_descendant_touch = touches.iter().any(|&x| reach_right.contains(x.index()));
        let synced_by_super_final = dag.has_super_final_node()
            && dag
                .node(dag.thread(tid).last())
                .touch_successors()
                .any(|x| x == dag.final_node());
        if !has_right_descendant_touch && !synced_by_super_final {
            class.structured = false;
            class.violations.push(format!(
                "thread {tid}: no touch is a descendant of fork {fork}'s right child {right}"
            ));
        }

        // Definition 2 / 13: single touch.
        let max_touches = 1;
        if touches.len() > max_touches {
            class.single_touch = false;
            class.violations.push(format!(
                "thread {tid}: touched {} times (single-touch allows 1, plus the super final node)",
                touches.len()
            ));
        }
        for &x in &touches {
            if !reach_right.contains(x.index()) {
                class.single_touch = false;
                class.violations.push(format!(
                    "thread {tid}: touch {x} is not a descendant of the fork's right child {right}"
                ));
            }
        }

        // Definition 3 / 17: local touch — every touch belongs to the
        // parent thread and is a descendant of the right child.
        for &x in &touches {
            if dag.node(x).thread() != parent {
                class.local_touch = false;
                class.violations.push(format!(
                    "thread {tid}: touch {x} is in thread {}, not the parent thread {parent}",
                    dag.node(x).thread()
                ));
            } else if !reach_right.contains(x.index()) {
                class.local_touch = false;
                class.violations.push(format!(
                    "thread {tid}: local touch {x} is not a descendant of the right child {right}"
                ));
            }
        }
    }

    class.fork_join = class.structured
        && class.single_touch
        && class.local_touch
        && properly_nested(dag)
        && !dag.has_super_final_node();

    class
}

/// Checks that, within every parent thread, the (fork, touch) intervals of
/// its child threads are properly nested (LIFO order), as fork-join
/// (spawn/sync) parallelism requires.
fn properly_nested(dag: &Dag) -> bool {
    for parent in dag.thread_ids() {
        // Position of each node within the parent thread.
        let nodes = dag.thread(parent).nodes();
        let mut pos = std::collections::HashMap::with_capacity(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            pos.insert(n, i);
        }

        // Collect (fork position, touch position) intervals for children
        // whose single touch lies in this parent thread.
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        for child in dag.thread_ids().filter(|t| !t.is_main()) {
            if dag.thread(child).parent() != Some(parent) {
                continue;
            }
            let fork = dag.thread(child).fork().expect("child has fork");
            let touches = dag.touches_of_thread(child);
            for &x in &touches {
                if dag.node(x).thread() == parent {
                    let (Some(&f), Some(&t)) = (pos.get(&fork), pos.get(&x)) else {
                        return false;
                    };
                    intervals.push((f, t));
                }
            }
        }

        // Proper nesting: no two intervals cross.
        for (i, &(f1, t1)) in intervals.iter().enumerate() {
            for &(f2, t2) in intervals.iter().skip(i + 1) {
                let crosses = (f1 < f2 && f2 < t1 && t1 < t2) || (f2 < f1 && f1 < t2 && t2 < t1);
                if crosses {
                    return false;
                }
            }
        }
    }
    true
}

/// Convenience wrapper: classifies and returns whether the DAG is a
/// structured single-touch computation.
pub fn is_structured_single_touch(dag: &Dag) -> bool {
    classify(dag).is_structured_single_touch()
}

/// Convenience wrapper: classifies and returns whether the DAG is a
/// structured local-touch computation.
pub fn is_structured_local_touch(dag: &Dag) -> bool {
    classify(dag).is_structured_local_touch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::ids::ThreadId;

    /// Fork-join: two futures created and touched in LIFO order by the main
    /// thread (MethodA of Figure 5(a), fork-join order).
    fn fork_join_two() -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f1 = b.fork(main);
        b.chain(f1.future_thread, 2);
        let f2 = b.fork(main);
        b.chain(f2.future_thread, 2);
        b.task(main);
        b.touch_thread(main, f2.future_thread); // y touched first
        b.touch_thread(main, f1.future_thread); // x touched second
        b.task(main);
        b.finish().unwrap()
    }

    /// Single-touch but *not* fork-join: futures touched in creation order
    /// (MethodA of Figure 5(a) as written in the paper, which fork-join
    /// cannot express).
    fn single_touch_fifo() -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f1 = b.fork(main);
        b.chain(f1.future_thread, 2);
        let f2 = b.fork(main);
        b.chain(f2.future_thread, 2);
        b.task(main);
        b.touch_thread(main, f1.future_thread); // x touched first (crossing)
        b.touch_thread(main, f2.future_thread); // y touched second
        b.task(main);
        b.finish().unwrap()
    }

    /// A future passed to a child thread that touches it (Figure 5(b)):
    /// single-touch, structured, but not local-touch.
    fn passed_future() -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let fx = b.fork(main); // future x
        b.chain(fx.future_thread, 2);
        let fc = b.fork(main); // thread running MethodC(x)
        b.task(fc.future_thread);
        // MethodC touches x.
        b.touch_thread(fc.future_thread, fx.future_thread);
        b.chain(fc.future_thread, 1);
        b.task(main);
        // main touches (joins) MethodC's future.
        b.touch_thread(main, fc.future_thread);
        b.task(main);
        b.finish().unwrap()
    }

    /// A local-touch (but not single-touch) computation: one future thread
    /// computes two futures, both touched by the parent.
    fn local_touch_two_futures() -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        let first_future_value = b.task(f.future_thread);
        b.chain(f.future_thread, 2); // second future value = last node
        b.task(main); // right child of the fork
        b.touch(main, first_future_value);
        b.touch_thread(main, f.future_thread);
        b.task(main);
        b.finish().unwrap()
    }

    /// An unstructured computation in the spirit of Figure 3: a touch whose
    /// local parent is *not* a descendant of the corresponding fork (the
    /// touching thread is spawned before the future thread exists).
    fn unstructured_fig3_like() -> Dag {
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        // Left subtree: a thread that will touch futures created later.
        let left = b.fork(main);
        b.task(left.future_thread);
        // Right side of the root: the thread that creates the future.
        let u1 = b.fork(main); // future thread computing the value
        b.chain(u1.future_thread, 2);
        // The left thread touches that future: its local parent is NOT a
        // descendant of u1's fork node.
        b.touch_thread(left.future_thread, u1.future_thread);
        b.task(main);
        // Main joins the left thread so everything is synchronized.
        b.touch_thread(main, left.future_thread);
        b.task(main);
        b.finish().unwrap()
    }

    #[test]
    fn fork_join_is_structured_single_and_local_touch() {
        let d = fork_join_two();
        let c = classify(&d);
        assert!(c.structured, "violations: {:?}", c.violations);
        assert!(c.single_touch);
        assert!(c.local_touch);
        assert!(c.fork_join);
        assert!(c.is_structured_single_touch());
        assert!(c.is_structured_local_touch());
        assert!(!c.is_unstructured());
    }

    #[test]
    fn fifo_touch_order_is_single_touch_but_not_fork_join() {
        let d = single_touch_fifo();
        let c = classify(&d);
        assert!(c.structured, "violations: {:?}", c.violations);
        assert!(c.single_touch);
        assert!(c.local_touch);
        assert!(!c.fork_join, "crossing intervals are not fork-join");
    }

    #[test]
    fn passed_future_is_single_touch_not_local_touch() {
        let d = passed_future();
        let c = classify(&d);
        assert!(c.structured, "violations: {:?}", c.violations);
        assert!(c.single_touch, "violations: {:?}", c.violations);
        assert!(!c.local_touch);
        assert!(!c.fork_join);
    }

    #[test]
    fn multi_future_thread_is_local_touch_not_single_touch() {
        let d = local_touch_two_futures();
        let c = classify(&d);
        assert!(c.structured, "violations: {:?}", c.violations);
        assert!(!c.single_touch);
        assert!(c.local_touch, "violations: {:?}", c.violations);
    }

    #[test]
    fn fig3_like_dag_is_unstructured() {
        let d = unstructured_fig3_like();
        let c = classify(&d);
        assert!(c.is_unstructured());
        assert!(!c.violations.is_empty());
    }

    #[test]
    fn super_final_side_effect_thread_is_structured() {
        // A thread forked purely for a side effect, touched only by the
        // super final node (Definition 13).
        let mut b = DagBuilder::new();
        let main = b.main_thread();
        let f = b.fork(main);
        b.chain(f.future_thread, 3);
        b.task(main);
        let d = b.finish_with_super_final().unwrap();
        let c = classify(&d);
        assert!(c.super_final);
        assert!(c.structured, "violations: {:?}", c.violations);
        assert!(c.single_touch);
        assert!(c.local_touch);
        assert!(
            !c.fork_join,
            "super-final computations are not plain fork-join"
        );
    }

    #[test]
    fn serial_chain_classifies_as_everything() {
        let mut b = DagBuilder::new();
        b.chain(ThreadId::MAIN, 5);
        let d = b.finish().unwrap();
        let c = classify(&d);
        assert!(c.structured && c.single_touch && c.local_touch && c.fork_join);
    }

    #[test]
    fn convenience_wrappers_agree_with_classify() {
        let d = fork_join_two();
        assert!(is_structured_single_touch(&d));
        assert!(is_structured_local_touch(&d));
        let d = unstructured_fig3_like();
        assert!(!is_structured_single_touch(&d));
    }
}
