//! A small fixed-capacity bit set used for reachability queries.
//!
//! The DAG algorithms need many "is node `x` in this set" checks over dense
//! node-id spaces; a `u64`-word bit set is far more compact and cache
//! friendly than `HashSet<NodeId>` for that purpose.

/// A fixed-capacity bit set over `usize` indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bit set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index`, returning whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bitset index out of range");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `index`, returning whether it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bitset index out of range");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Whether `index` is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over the indices in the set in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000), "out-of-range contains is false");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 150, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 150, 199]);
    }

    #[test]
    fn clear_and_union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(2));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    #[should_panic(expected = "bitset index out of range")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    #[should_panic(expected = "bitset capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(20);
        a.union_with(&b);
    }
}
