//! Edge types of the computation DAG.

use crate::ids::NodeId;
use std::fmt;

/// The three kinds of dependency edges in a future-parallel computation DAG.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Points from one node to the next node of the same thread.
    Continuation,
    /// Points from a fork node to the first node of the future thread it
    /// spawns (also called a *spawn* edge).
    Future,
    /// Points from a node of one thread (the *future parent*) to a touch
    /// node of another thread (also called a *join* edge).
    Touch,
}

impl EdgeKind {
    /// Short label used in DOT output and trace rendering.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Continuation => "cont",
            EdgeKind::Future => "future",
            EdgeKind::Touch => "touch",
        }
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A directed edge to (or from) a node, tagged with its kind.
///
/// [`crate::Dag`] stores, for every node, the list of outgoing `Edge`s (the
/// `node` field is the target) and the list of incoming `Edge`s (the `node`
/// field is the source).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// The other endpoint of the edge.
    pub node: NodeId,
    /// The edge kind.
    pub kind: EdgeKind,
}

impl Edge {
    /// Convenience constructor.
    pub fn new(node: NodeId, kind: EdgeKind) -> Self {
        Edge { node, kind }
    }

    /// True if this is a continuation edge.
    pub fn is_continuation(&self) -> bool {
        self.kind == EdgeKind::Continuation
    }

    /// True if this is a future (spawn) edge.
    pub fn is_future(&self) -> bool {
        self.kind == EdgeKind::Future
    }

    /// True if this is a touch (join) edge.
    pub fn is_touch(&self) -> bool {
        self.kind == EdgeKind::Touch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(EdgeKind::Continuation.label(), "cont");
        assert_eq!(EdgeKind::Future.label(), "future");
        assert_eq!(EdgeKind::Touch.label(), "touch");
        assert_eq!(EdgeKind::Touch.to_string(), "touch");
    }

    #[test]
    fn kind_predicates() {
        let e = Edge::new(NodeId(1), EdgeKind::Future);
        assert!(e.is_future());
        assert!(!e.is_continuation());
        assert!(!e.is_touch());

        let e = Edge::new(NodeId(2), EdgeKind::Continuation);
        assert!(e.is_continuation());

        let e = Edge::new(NodeId(3), EdgeKind::Touch);
        assert!(e.is_touch());
    }

    #[test]
    fn edges_compare_by_value() {
        assert_eq!(
            Edge::new(NodeId(1), EdgeKind::Touch),
            Edge::new(NodeId(1), EdgeKind::Touch)
        );
        assert_ne!(
            Edge::new(NodeId(1), EdgeKind::Touch),
            Edge::new(NodeId(1), EdgeKind::Future)
        );
    }
}
