//! Property-based tests of the DAG builder, classifier and traversal
//! utilities over randomly shaped fork-join computations.

use proptest::prelude::*;
use wsf_dag::{classify, is_descendant, span, topo_order, validate, Dag, DagBuilder, ThreadId};

/// Builds a random properly-nested fork-join DAG from a shape vector: each
/// entry decides, at one step of the current thread, whether to fork a
/// child (and how much work the child does) or to do local work.
fn build_fork_join(shape: &[(bool, u8)]) -> Dag {
    fn expand(b: &mut DagBuilder, thread: ThreadId, shape: &[(bool, u8)], depth: usize) {
        for &(fork, work) in shape {
            if fork && depth < 6 {
                let f = b.fork(thread);
                expand(b, f.future_thread, &shape[..shape.len() / 2], depth + 1);
                b.task(thread);
                b.touch_thread(thread, f.future_thread);
            } else {
                b.chain(thread, usize::from(work % 4) + 1);
            }
        }
        // Make sure the thread has at least one node beyond its first.
        b.task(thread);
    }
    let mut b = DagBuilder::new();
    expand(&mut b, ThreadId::MAIN, shape, 0);
    b.finish().expect("fork-join shapes always build")
}

fn shape_strategy() -> impl Strategy<Value = Vec<(bool, u8)>> {
    proptest::collection::vec((any::<bool>(), any::<u8>()), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fork_join_shapes_validate_and_classify(shape in shape_strategy()) {
        let dag = build_fork_join(&shape);
        prop_assert!(validate(&dag).is_ok());
        let class = classify(&dag);
        prop_assert!(class.structured, "{:?}", class.violations);
        prop_assert!(class.single_touch, "{:?}", class.violations);
        prop_assert!(class.local_touch, "{:?}", class.violations);
        prop_assert!(class.fork_join, "{:?}", class.violations);
    }

    #[test]
    fn span_and_topology_are_consistent(shape in shape_strategy()) {
        let dag = build_fork_join(&shape);
        let order = topo_order(&dag).expect("builder DAGs are acyclic");
        prop_assert_eq!(order.len(), dag.num_nodes());
        let sp = span(&dag) as usize;
        prop_assert!(sp >= 1 && sp <= dag.num_nodes());
        // Work is at least the span, parallelism at least 1.
        prop_assert!(dag.work() as usize >= sp);
    }

    #[test]
    fn every_touch_relates_to_its_fork(shape in shape_strategy()) {
        let dag = build_fork_join(&shape);
        for touch in dag.touches() {
            let fork = dag.corresponding_fork(touch).expect("fork exists");
            let right = dag.right_child(fork).expect("right child exists");
            let left = dag.left_child(fork).expect("left child exists");
            prop_assert!(dag.is_fork(fork));
            prop_assert!(is_descendant(&dag, fork, touch));
            prop_assert!(is_descendant(&dag, right, touch));
            prop_assert!(is_descendant(&dag, left, touch));
            // The future parent is the last node of the spawned thread.
            let ft = dag.future_thread_of_touch(touch).unwrap();
            prop_assert_eq!(dag.future_parent(touch), Some(dag.thread(ft).last()));
        }
    }

    #[test]
    fn thread_bookkeeping_is_consistent(shape in shape_strategy()) {
        let dag = build_fork_join(&shape);
        let mut seen = 0usize;
        for tid in dag.thread_ids() {
            let t = dag.thread(tid);
            seen += t.len();
            // Every node of the thread reports the right owner.
            for &n in t.nodes() {
                prop_assert_eq!(dag.node(n).thread(), tid);
            }
            // Non-main threads are spawned by a fork of their parent.
            if !tid.is_main() {
                let fork = t.fork().expect("non-main thread has a fork");
                prop_assert_eq!(dag.node(fork).thread(), t.parent().unwrap());
                prop_assert_eq!(dag.left_child(fork), Some(t.first()));
            }
        }
        prop_assert_eq!(seen, dag.num_nodes());
    }
}
