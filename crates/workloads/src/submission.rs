//! Wire-encodable workload shapes for the serving front end (`wsf-server`).
//!
//! A [`ShapeSpec`] is a compact, validated description of one DAG from the
//! Theorem-12 workload suite — fork-join mergesort ([`crate::sort`]),
//! wavefront stencil ([`crate::stencil`]) or bounded-backpressure pipeline
//! ([`crate::backpressure`]) — small enough to ship over a socket as a few
//! flat little-endian `u64` words and cheap enough to rebuild on the server
//! without allocating.
//!
//! Three properties distinguish these from the suite builders they mirror:
//!
//! * **flat-`u64` codec** — [`ShapeSpec::encode`]/[`ShapeSpec::decode`]
//!   round-trip through the word stream the server's framing layer carries;
//!   `decode` validates every parameter against hard caps so a malicious
//!   frame cannot request an unbounded build;
//! * **arithmetic block ids** — block numbering is closed-form over the
//!   parameters (no [`crate::block_alloc::BlockAlloc`], whose `String`
//!   region names allocate per build), with the exact distinct-block count
//!   exposed as [`ShapeSpec::footprint`] — the quantity the server's
//!   admission control charges;
//! * **arena construction** — [`ShapeSpec::build_into`] appends into a
//!   caller-owned recycled [`DagBuilder`] using a reusable [`ShapeScratch`],
//!   so steady-state rebuilds perform no heap allocation (asserted by the
//!   server's counting-allocator test).
//!
//! Every family is structured local-touch (Definition 3), so the Theorem 12
//! deviation/miss bounds apply to everything the server executes; the tests
//! assert the classification.

use wsf_dag::{Block, Dag, DagBuilder, NodeId, ThreadId};

/// Largest mergesort leaf count a frame may request (power of two).
pub const MAX_LEAVES: u64 = 1 << 14;
/// Largest stencil row count a frame may request.
pub const MAX_ROWS: u64 = 512;
/// Largest stencil row width a frame may request.
pub const MAX_WIDTH: u64 = 4096;
/// Largest stencil step count a frame may request.
pub const MAX_STEPS: u64 = 512;
/// Largest pipeline stage count a frame may request.
pub const MAX_STAGES: u64 = 64;
/// Largest pipeline item count a frame may request.
pub const MAX_ITEMS: u64 = 8192;
/// Largest per-item work chain a frame may request.
pub const MAX_WORK: u64 = 64;
/// Cap on the estimated node count of any single decoded shape.
pub const MAX_NODES: u64 = 1 << 21;

/// A decoding/validation failure for a submitted shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// The word stream ended inside a shape.
    Truncated,
    /// The leading word is not a known shape tag.
    BadTag(u64),
    /// A parameter is outside its validity range.
    BadParam(&'static str),
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::Truncated => write!(f, "shape words truncated"),
            ShapeError::BadTag(t) => write!(f, "unknown shape tag {t}"),
            ShapeError::BadParam(what) => write!(f, "shape parameter out of range: {what}"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A wire-encodable description of one workload-suite DAG.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ShapeSpec {
    /// Fork-join divide-and-conquer mergesort over `leaves` unit runs
    /// (`leaves` a power of two). Mirrors [`crate::sort::mergesort`].
    Mergesort {
        /// Number of leaf runs (power of two, `1..=MAX_LEAVES`).
        leaves: u32,
    },
    /// One-sided wavefront stencil: `rows` row threads sweeping `width`
    /// interior blocks for `steps` steps, exchanging one boundary value per
    /// step. Mirrors [`crate::stencil::stencil`].
    Stencil {
        /// Grid rows (`1..=MAX_ROWS`); row 0 is the main thread.
        rows: u32,
        /// Interior blocks per row (`1..=MAX_WIDTH`).
        width: u32,
        /// Time steps (`1..=MAX_STEPS`).
        steps: u32,
    },
    /// Bounded-backpressure streaming pipeline: `stages` stage workers per
    /// batch, `items` items in batches of `window`, `work` work nodes per
    /// item per stage. Mirrors [`crate::backpressure::batched_pipeline`].
    Pipeline {
        /// Pipeline stages (`1..=MAX_STAGES`).
        stages: u32,
        /// Items flowing through the pipeline (`1..=MAX_ITEMS`).
        items: u32,
        /// Backpressure window (`1..=items`).
        window: u32,
        /// Work nodes per item per stage (`1..=MAX_WORK`).
        work: u32,
    },
}

const TAG_MERGESORT: u64 = 1;
const TAG_STENCIL: u64 = 2;
const TAG_PIPELINE: u64 = 3;

impl ShapeSpec {
    /// The family name (table/report label).
    pub fn name(&self) -> &'static str {
        match self {
            ShapeSpec::Mergesort { .. } => "mergesort",
            ShapeSpec::Stencil { .. } => "stencil",
            ShapeSpec::Pipeline { .. } => "batched_pipeline",
        }
    }

    /// Number of `u64` words [`ShapeSpec::encode`] appends.
    pub fn encoded_len(&self) -> usize {
        match self {
            ShapeSpec::Mergesort { .. } => 2,
            ShapeSpec::Stencil { .. } => 4,
            ShapeSpec::Pipeline { .. } => 5,
        }
    }

    /// Appends the flat-`u64` encoding (tag word + parameters) to `out`.
    pub fn encode(&self, out: &mut Vec<u64>) {
        match *self {
            ShapeSpec::Mergesort { leaves } => {
                out.push(TAG_MERGESORT);
                out.push(leaves as u64);
            }
            ShapeSpec::Stencil { rows, width, steps } => {
                out.push(TAG_STENCIL);
                out.push(rows as u64);
                out.push(width as u64);
                out.push(steps as u64);
            }
            ShapeSpec::Pipeline {
                stages,
                items,
                window,
                work,
            } => {
                out.push(TAG_PIPELINE);
                out.push(stages as u64);
                out.push(items as u64);
                out.push(window as u64);
                out.push(work as u64);
            }
        }
    }

    /// Decodes and validates one shape from the front of `words`, returning
    /// it with the number of words consumed.
    pub fn decode(words: &[u64]) -> Result<(ShapeSpec, usize), ShapeError> {
        let tag = *words.first().ok_or(ShapeError::Truncated)?;
        let need = match tag {
            TAG_MERGESORT => 2,
            TAG_STENCIL => 4,
            TAG_PIPELINE => 5,
            other => return Err(ShapeError::BadTag(other)),
        };
        if words.len() < need {
            return Err(ShapeError::Truncated);
        }
        let spec = match tag {
            TAG_MERGESORT => {
                let leaves = words[1];
                if leaves == 0 || leaves > MAX_LEAVES || !leaves.is_power_of_two() {
                    return Err(ShapeError::BadParam("leaves"));
                }
                ShapeSpec::Mergesort {
                    leaves: leaves as u32,
                }
            }
            TAG_STENCIL => {
                let (rows, width, steps) = (words[1], words[2], words[3]);
                if rows == 0 || rows > MAX_ROWS {
                    return Err(ShapeError::BadParam("rows"));
                }
                if width == 0 || width > MAX_WIDTH {
                    return Err(ShapeError::BadParam("width"));
                }
                if steps == 0 || steps > MAX_STEPS {
                    return Err(ShapeError::BadParam("steps"));
                }
                if rows * steps * (width + 2) > MAX_NODES {
                    return Err(ShapeError::BadParam("stencil node count"));
                }
                ShapeSpec::Stencil {
                    rows: rows as u32,
                    width: width as u32,
                    steps: steps as u32,
                }
            }
            TAG_PIPELINE => {
                let (stages, items, window, work) = (words[1], words[2], words[3], words[4]);
                if stages == 0 || stages > MAX_STAGES {
                    return Err(ShapeError::BadParam("stages"));
                }
                if items == 0 || items > MAX_ITEMS {
                    return Err(ShapeError::BadParam("items"));
                }
                if window == 0 || window > items {
                    return Err(ShapeError::BadParam("window"));
                }
                if work == 0 || work > MAX_WORK {
                    return Err(ShapeError::BadParam("work"));
                }
                if stages * items * (work + 2) > MAX_NODES {
                    return Err(ShapeError::BadParam("pipeline node count"));
                }
                ShapeSpec::Pipeline {
                    stages: stages as u32,
                    items: items as u32,
                    window: window as u32,
                    work: work as u32,
                }
            }
            _ => unreachable!(),
        };
        Ok((spec, need))
    }

    /// Exact number of distinct memory blocks the built DAG accesses — the
    /// declared footprint the server's admission control charges. Equals
    /// the built DAG's `block_space()`.
    pub fn footprint(&self) -> u64 {
        match *self {
            ShapeSpec::Mergesort { leaves } => {
                let leaves = leaves as u64;
                // Input run per leaf plus one full-width merge buffer per
                // recursion level.
                leaves * (1 + leaves.trailing_zeros() as u64)
            }
            ShapeSpec::Stencil { rows, width, steps } => {
                let (rows, width, steps) = (rows as u64, width as u64, steps as u64);
                // Interior blocks per row plus one boundary block per
                // (non-top row, step).
                rows * width + (rows - 1) * steps
            }
            ShapeSpec::Pipeline {
                stages,
                items,
                window,
                work,
            } => {
                let (stages, items, window, work) =
                    (stages as u64, items as u64, window as u64, work as u64);
                // Per (stage, item): `work` work blocks + 1 value block;
                // plus one dispatch block per batch and one output block per
                // item on the consumer.
                stages * items * (work + 1) + items.div_ceil(window) + items
            }
        }
    }

    /// Builds this shape into `b` (a fresh or recycled builder holding only
    /// the root node) and takes the finished DAG, leaving `b` spent and
    /// ready for [`DagBuilder::recycle`]. Steady-state rebuilds of
    /// same-shape traffic allocate nothing once `b` and `scratch` have
    /// reached their high-water capacity.
    pub fn build_into(&self, b: &mut DagBuilder, scratch: &mut ShapeScratch) -> Dag {
        debug_assert_eq!(b.num_nodes(), 1, "builder must be fresh or recycled");
        match *self {
            ShapeSpec::Mergesort { leaves } => build_mergesort(b, leaves as usize),
            ShapeSpec::Stencil { rows, width, steps } => {
                build_stencil(b, scratch, rows as usize, width as usize, steps as usize)
            }
            ShapeSpec::Pipeline {
                stages,
                items,
                window,
                work,
            } => build_pipeline(
                b,
                scratch,
                stages as usize,
                items as usize,
                window as usize,
                work as usize,
            ),
        }
        b.finish_take().expect("submission shapes build valid DAGs")
    }

    /// A small instance of each family — the smoke-mode serving mix.
    pub fn smoke_mix() -> [ShapeSpec; 3] {
        [
            ShapeSpec::Mergesort { leaves: 32 },
            ShapeSpec::Stencil {
                rows: 8,
                width: 16,
                steps: 4,
            },
            ShapeSpec::Pipeline {
                stages: 4,
                items: 16,
                window: 4,
                work: 2,
            },
        ]
    }
}

/// Reusable buffers for [`ShapeSpec::build_into`]: thread-chain ids plus
/// the two published-value rings the deepest-first sweeps swap between.
#[derive(Debug, Default)]
pub struct ShapeScratch {
    threads: Vec<ThreadId>,
    prev: Vec<NodeId>,
    cur: Vec<NodeId>,
}

impl ShapeScratch {
    /// Creates an empty scratch (buffers grow to the traffic's working set).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fork-join mergesort with arithmetic blocks: leaf run `i` reads block
/// `i`; a depth-`d` merge over `[lo, hi)` writes blocks
/// `leaves*(1+d) + lo .. leaves*(1+d) + hi`.
fn build_mergesort(b: &mut DagBuilder, leaves: usize) {
    fn rec(
        b: &mut DagBuilder,
        thread: ThreadId,
        lo: usize,
        hi: usize,
        depth: usize,
        leaves: usize,
    ) {
        if hi - lo == 1 {
            let n = b.task(thread);
            b.set_block(n, Block(lo as u32));
            return;
        }
        let mid = (lo + hi) / 2;
        let f = b.fork(thread);
        rec(b, f.future_thread, lo, mid, depth + 1, leaves);
        b.task(thread); // the fork's right child (continuation)
        rec(b, thread, mid, hi, depth + 1, leaves);
        b.touch_thread(thread, f.future_thread);
        for blk in lo..hi {
            let n = b.task(thread);
            b.set_block(n, Block((leaves * (1 + depth) + blk) as u32));
        }
    }
    rec(b, ThreadId::MAIN, 0, leaves, 0, leaves);
    b.task(ThreadId::MAIN);
}

/// Wavefront stencil with arithmetic blocks: row `r` interior occupies
/// `r*width .. (r+1)*width`; row `r`'s (`r >= 1`) step-`s` boundary is
/// `rows*width + (r-1)*steps + s`.
fn build_stencil(
    b: &mut DagBuilder,
    scratch: &mut ShapeScratch,
    rows: usize,
    width: usize,
    steps: usize,
) {
    let main = ThreadId::MAIN;
    scratch.threads.clear();
    scratch.threads.push(main);
    for _ in 1..rows {
        let parent = *scratch.threads.last().unwrap();
        let f = b.fork(parent);
        scratch.threads.push(f.future_thread);
    }
    // Deepest row first so each parent can touch its child's published
    // boundaries; only the child row's values are live at a time.
    scratch.prev.clear();
    for r in (1..rows).rev() {
        let thread = scratch.threads[r];
        scratch.cur.clear();
        for s in 0..steps {
            for w in 0..width {
                let n = b.task(thread);
                b.set_block(n, Block((r * width + w) as u32));
            }
            if r + 1 < rows {
                b.touch(thread, scratch.prev[s]);
            }
            let value = b.task(thread);
            b.set_block(value, Block((rows * width + (r - 1) * steps + s) as u32));
            scratch.cur.push(value);
        }
        std::mem::swap(&mut scratch.prev, &mut scratch.cur);
    }
    for s in 0..steps {
        for w in 0..width {
            let n = b.task(main);
            b.set_block(n, Block(w as u32));
        }
        if rows > 1 {
            b.touch(main, scratch.prev[s]);
        }
    }
    b.task(main);
}

/// Bounded-backpressure pipeline with arithmetic blocks: stage `s` item
/// `i`'s work blocks are `s*items*work + i*work ..+work`, its value block
/// `stages*items*work + s*items + i`; batch dispatch and consumer output
/// blocks follow.
fn build_pipeline(
    b: &mut DagBuilder,
    scratch: &mut ShapeScratch,
    stages: usize,
    items: usize,
    window: usize,
    work: usize,
) {
    let main = ThreadId::MAIN;
    let value_base = stages * items * work;
    let dispatch_base = value_base + stages * items;
    let output_base = dispatch_base + items.div_ceil(window);

    let mut batch = 0usize;
    let mut first = 0usize;
    while first < items {
        let batch_len = window.min(items - first);
        // Chain-fork this batch's stage workers (stage s forks stage s+1
        // as its first action), then build deepest stage first.
        scratch.threads.clear();
        let f = b.fork(main);
        scratch.threads.push(f.future_thread);
        for _ in 1..stages {
            let parent = *scratch.threads.last().unwrap();
            let f = b.fork(parent);
            scratch.threads.push(f.future_thread);
        }
        scratch.prev.clear();
        for ss in (0..stages).rev() {
            let thread = scratch.threads[ss];
            scratch.cur.clear();
            for i in 0..batch_len {
                let item = first + i;
                for w in 0..work {
                    let n = b.task(thread);
                    b.set_block(n, Block((ss * items * work + item * work + w) as u32));
                }
                if ss + 1 < stages {
                    b.touch(thread, scratch.prev[i]);
                }
                let v = b.task(thread);
                b.set_block(v, Block((value_base + ss * items + item) as u32));
                scratch.cur.push(v);
            }
            std::mem::swap(&mut scratch.prev, &mut scratch.cur);
        }
        // The fork's right child models the batch dispatch; it may not be
        // a touch node.
        let n = b.task(main);
        b.set_block(n, Block((dispatch_base + batch) as u32));
        for i in 0..batch_len {
            b.touch(main, scratch.prev[i]);
            let n = b.task(main);
            b.set_block(n, Block((output_base + first + i) as u32));
        }
        first += batch_len;
        batch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    fn sample_specs() -> Vec<ShapeSpec> {
        vec![
            ShapeSpec::Mergesort { leaves: 1 },
            ShapeSpec::Mergesort { leaves: 64 },
            ShapeSpec::Stencil {
                rows: 1,
                width: 3,
                steps: 2,
            },
            ShapeSpec::Stencil {
                rows: 6,
                width: 8,
                steps: 5,
            },
            ShapeSpec::Pipeline {
                stages: 1,
                items: 4,
                window: 4,
                work: 1,
            },
            ShapeSpec::Pipeline {
                stages: 3,
                items: 10,
                window: 4,
                work: 2,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        let specs = sample_specs();
        let mut words = Vec::new();
        for s in &specs {
            let before = words.len();
            s.encode(&mut words);
            assert_eq!(words.len() - before, s.encoded_len());
        }
        let mut off = 0;
        for s in &specs {
            let (got, used) = ShapeSpec::decode(&words[off..]).unwrap();
            assert_eq!(&got, s);
            off += used;
        }
        assert_eq!(off, words.len());
    }

    #[test]
    fn decode_rejects_invalid() {
        assert_eq!(ShapeSpec::decode(&[]), Err(ShapeError::Truncated));
        assert_eq!(ShapeSpec::decode(&[99, 1]), Err(ShapeError::BadTag(99)));
        assert_eq!(ShapeSpec::decode(&[1]), Err(ShapeError::Truncated));
        // Non-power-of-two and oversized leaf counts.
        assert_eq!(
            ShapeSpec::decode(&[1, 3]),
            Err(ShapeError::BadParam("leaves"))
        );
        assert_eq!(
            ShapeSpec::decode(&[1, 2 * MAX_LEAVES]),
            Err(ShapeError::BadParam("leaves"))
        );
        assert_eq!(
            ShapeSpec::decode(&[2, 0, 4, 4]),
            Err(ShapeError::BadParam("rows"))
        );
        // Window larger than the item count.
        assert_eq!(
            ShapeSpec::decode(&[3, 2, 4, 5, 1]),
            Err(ShapeError::BadParam("window"))
        );
        // Node-count cap: individually legal parameters, oversized product.
        assert_eq!(
            ShapeSpec::decode(&[2, MAX_ROWS, MAX_WIDTH, MAX_STEPS]),
            Err(ShapeError::BadParam("stencil node count"))
        );
    }

    #[test]
    fn footprint_matches_built_block_space() {
        let mut b = DagBuilder::new();
        let mut scratch = ShapeScratch::new();
        for spec in sample_specs() {
            let dag = spec.build_into(&mut b, &mut scratch);
            assert_eq!(
                dag.block_space() as u64,
                spec.footprint(),
                "{spec:?}: declared footprint must equal built block space"
            );
            b.recycle(dag);
        }
    }

    #[test]
    fn all_families_are_structured_local_touch() {
        let mut b = DagBuilder::new();
        let mut scratch = ShapeScratch::new();
        for spec in [
            ShapeSpec::Mergesort { leaves: 32 },
            ShapeSpec::Stencil {
                rows: 5,
                width: 4,
                steps: 3,
            },
            ShapeSpec::Pipeline {
                stages: 3,
                items: 8,
                window: 3,
                work: 2,
            },
        ] {
            let dag = spec.build_into(&mut b, &mut scratch);
            let class = classify(&dag);
            assert!(
                class.is_structured_local_touch(),
                "{spec:?}: {:?}",
                class.violations
            );
            b.recycle(dag);
        }
    }

    #[test]
    fn rebuilds_through_recycle_are_identical() {
        let mut b = DagBuilder::new();
        let mut scratch = ShapeScratch::new();
        let spec = ShapeSpec::Pipeline {
            stages: 3,
            items: 12,
            window: 5,
            work: 2,
        };
        let first = spec.build_into(&mut b, &mut scratch);
        let (nodes, threads) = (first.num_nodes(), first.num_threads());
        b.recycle(first);
        // Interleave a different family to dirty the scratch, then rebuild.
        let other = ShapeSpec::Mergesort { leaves: 16 }.build_into(&mut b, &mut scratch);
        b.recycle(other);
        let second = spec.build_into(&mut b, &mut scratch);
        assert_eq!(second.num_nodes(), nodes);
        assert_eq!(second.num_threads(), threads);
        assert!(second.check_edge_invariants());
    }

    #[test]
    fn shapes_execute_to_completion() {
        let mut b = DagBuilder::new();
        let mut scratch = ShapeScratch::new();
        for spec in ShapeSpec::smoke_mix() {
            let dag = spec.build_into(&mut b, &mut scratch);
            for p in [1usize, 4] {
                let report = ParallelSimulator::new(SimConfig::new(p, 64, ForkPolicy::FutureFirst))
                    .run(&dag);
                assert!(report.completed, "{spec:?} P={p}");
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
            b.recycle(dag);
        }
    }
}
