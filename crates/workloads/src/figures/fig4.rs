//! Figure 4: a nested structured single-touch computation.
//!
//! The main thread forks a future thread and touches it only after the
//! fork's right child; that future thread does the same thing internally,
//! and so on, `depth` levels deep. Every touch becomes ready strictly after
//! its future thread has been spawned — the situation Figure 3 violates.

use wsf_dag::{Block, Dag, DagBuilder, ThreadId};

/// Builds the Figure 4-style nested structured single-touch DAG.
///
/// `depth` is the nesting depth (number of future threads); `work` is the
/// number of payload nodes per thread, each touching its own memory block.
pub fn fig4(depth: usize, work: usize) -> Dag {
    let mut b = DagBuilder::new();
    let mut next_block = 0u32;
    build(&mut b, ThreadId::MAIN, depth, work.max(1), &mut next_block);
    b.task(ThreadId::MAIN);
    b.finish().expect("fig4 builds a valid DAG")
}

fn build(b: &mut DagBuilder, thread: ThreadId, depth: usize, work: usize, next_block: &mut u32) {
    for _ in 0..work {
        let n = b.task(thread);
        b.set_block(n, Block(*next_block));
        *next_block += 1;
    }
    if depth == 0 {
        return;
    }
    let f = b.fork(thread);
    build(b, f.future_thread, depth - 1, work, next_block);
    // The fork's right child, then the touch of the future thread.
    b.task(thread);
    b.touch_thread(thread, f.future_thread);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, SequentialExecutor};
    use wsf_dag::{classify, NodeId};

    #[test]
    fn fig4_is_structured_single_touch() {
        for depth in [0, 1, 3, 6] {
            let dag = fig4(depth, 2);
            let class = classify(&dag);
            assert!(
                class.is_structured_single_touch(),
                "depth={depth}: {:?}",
                class.violations
            );
            assert_eq!(dag.num_threads(), depth + 1);
        }
    }

    #[test]
    fn lemma4_holds_on_fig4() {
        // Under future-first, every touch's future parent precedes its local
        // parent in the sequential order (Lemma 4).
        let dag = fig4(5, 3);
        let seq = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
        let pos = |n: NodeId| seq.order.iter().position(|&x| x == n).unwrap();
        for touch in dag.touches() {
            let fp = dag.future_parent(touch).unwrap();
            let lp = dag.local_parent(touch).unwrap();
            assert!(pos(fp) < pos(lp));
        }
    }
}
