//! Figure 8: the full parent-first lower bound (Theorem 10).
//!
//! Figure 8 generalizes Figure 7(b): after each touch the thread splits
//! into two branches, each of which touches one of the two futures spawned
//! just before the split, so the parity inversion caused by a single steal
//! at the root propagates into every branch. With `Θ(t)` branches, each
//! ending in a Figure 7(a) gadget, the parallel parent-first execution
//! incurs `Ω(t·T∞)` deviations and `Ω(C·t·T∞)` additional cache misses
//! while the sequential execution pays only `O(C + t)` misses.
//!
//! The exact drawing is not available, so this is a reconstruction from the
//! proof text: each branch stage spawns two futures (at forks `u_i` and
//! `x_i`), touches the future passed down from its parent stage, and then
//! splits into a left branch (which will touch the `u_i` future) and a
//! right branch (which will touch the `x_i` future). Leaf branches graft
//! the Figure 7(a) gadget. `docs/EXPERIMENTS.md` reports how closely the
//! measured deviation/miss counts of this reconstruction follow the
//! theorem's `t·T∞` / `C·t·T∞` shape.

use wsf_core::{ForkPolicy, ScriptedScheduler, WakeCondition};
use wsf_dag::{Block, Dag, DagBuilder, NodeId, ThreadId};

/// The Figure 8 construction together with its single-steal adversary.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// The computation DAG.
    pub dag: Dag,
    /// Depth of the branch-splitting tree (there are `2^depth` leaf
    /// branches, so `t = Θ(2^depth)`).
    pub depth: usize,
    /// Number of `Z` stages in each leaf gadget.
    pub n: usize,
    /// Length of each `Z` chain.
    pub chain: usize,
    /// The first future node, which the thief steals.
    pub s1: NodeId,
    /// Number of leaf branches.
    pub leaves: usize,
}

impl Fig8 {
    /// The fork policy Theorem 10 is about.
    pub const POLICY: ForkPolicy = ForkPolicy::ParentFirst;

    /// Builds the construction with `2^depth` leaf branches, each ending in
    /// a Figure 7(a) gadget with `n` stages of `chain`-long `Z` chains.
    pub fn new(depth: usize, n: usize, chain: usize) -> Fig8 {
        let n = n.max(2);
        let chain = chain.max(2);
        let mut b = DagBuilder::new();
        let main = b.main_thread();

        // The root spawns the first future; its touch is the first branch
        // stage's gate.
        let r = b.fork(main);
        b.task(r.future_thread);
        let s1 = b.last_of(r.future_thread);

        build_branch(&mut b, main, r.future_thread, depth, n, chain);
        b.task(main);

        let dag = b.finish().expect("fig8 builds a valid DAG");
        Fig8 {
            dag,
            depth,
            n,
            chain,
            s1,
            leaves: 1 << depth,
        }
    }

    /// The proof's adversary: one steal of the first future at the very
    /// beginning, after which the thief sleeps forever.
    pub fn adversary(&self) -> ScriptedScheduler {
        ScriptedScheduler::new()
            .prefer_victims(1, vec![0])
            .strict_victims()
            .sleep_after(1, self.s1, WakeCondition::Never)
    }

    /// The cache size `C` matching the block assignment.
    pub fn cache_lines(&self) -> usize {
        self.chain
    }

    /// An estimate of the number of counted touches `t` (one gate per
    /// branch stage).
    pub fn touches(&self) -> usize {
        self.dag.num_touches()
    }
}

/// Builds one branch on `thread`, whose gate touches `incoming` (the future
/// passed down from the parent stage), splitting `depth` more times.
fn build_branch(
    b: &mut DagBuilder,
    thread: ThreadId,
    incoming: ThreadId,
    depth: usize,
    n: usize,
    chain: usize,
) {
    if depth == 0 {
        build_leaf_gadget(b, thread, incoming, n, chain);
        return;
    }

    // Two forks spawning the futures for the two child branches.
    let fu = b.fork(thread);
    b.task(fu.future_thread); // the "u_i" future payload
    let fx = b.fork(thread);
    b.task(fx.future_thread); // the "x_i" future payload

    // w_i (filler so the gate is not a fork child), then the gate v_i.
    b.task(thread);
    b.touch_thread(thread, incoming);

    // Split: the left branch is a new future thread touching the u_i
    // future; the right branch continues this thread touching the x_i one.
    let split = b.fork(thread);
    build_branch(
        b,
        split.future_thread,
        fu.future_thread,
        depth - 1,
        n,
        chain,
    );
    b.task(thread); // right child filler of the split fork
    build_branch(b, thread, fx.future_thread, depth - 1, n, chain);

    // Join the left branch so it is synchronized (a sync-only join, as in
    // the paper's convention for pure barrier edges).
    b.join_thread(thread, split.future_thread);
}

/// Grafts the Figure 7(a) gadget at the end of a leaf branch: the gate
/// touches `incoming` and decides whether the `Z` chains interleave with
/// the `y` joins.
fn build_leaf_gadget(
    b: &mut DagBuilder,
    thread: ThreadId,
    incoming: ThreadId,
    n: usize,
    chain: usize,
) {
    // u_k forks the gadget's s-thread.
    let uk = b.fork(thread);
    let st = uk.future_thread;
    b.task(st);
    // w_k, then the gate v_k touching the incoming future.
    b.task(thread);
    b.touch_thread(thread, incoming);
    b.task(thread); // u4

    let mut z_threads = Vec::with_capacity(n);
    for _ in 0..n {
        let fx = b.fork(thread);
        b.set_block(fx.node, Block(0));
        for j in 0..chain {
            let z = b.task(fx.future_thread);
            b.set_block(z, Block(j as u32));
        }
        z_threads.push(fx.future_thread);
    }
    b.task(thread); // filler before the touch of the s-thread
    b.touch_thread(thread, st);
    for zt in z_threads.iter().rev() {
        let y = b.join_thread(thread, *zt);
        b.set_block(y, Block(chain as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ParallelSimulator, SimConfig};
    use wsf_dag::{classify, span};

    fn run(fig: &Fig8) -> (wsf_core::SeqReport, wsf_core::ExecutionReport) {
        let config = SimConfig {
            processors: 2,
            cache_lines: fig.cache_lines(),
            fork_policy: Fig8::POLICY,
            ..SimConfig::default()
        };
        let sim = ParallelSimulator::new(config);
        let seq = sim.sequential(&fig.dag);
        let mut adversary = fig.adversary();
        let report = sim.run_against(&fig.dag, &seq, &mut adversary, false);
        (seq, report)
    }

    #[test]
    fn fig8_is_structured_single_touch() {
        let fig = Fig8::new(2, 4, 4);
        let class = classify(&fig.dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert_eq!(fig.leaves, 4);
    }

    #[test]
    fn fig8_span_grows_logarithmically_in_branches() {
        let small = Fig8::new(1, 6, 4);
        let large = Fig8::new(4, 6, 4);
        let (s1, s2) = (span(&small.dag), span(&large.dag));
        // 8x more leaves, but the span only grows by the extra tree depth.
        assert!(large.leaves == 8 * small.leaves);
        assert!(
            s2 < 2 * s1,
            "span should grow logarithmically: {s1} -> {s2}"
        );
    }

    #[test]
    fn fig8_single_steal_poisons_many_branches() {
        let (n, c) = (8usize, 4usize);
        let shallow = Fig8::new(1, n, c);
        let deep = Fig8::new(3, n, c);
        let (seq_s, rep_s) = run(&shallow);
        let (seq_d, rep_d) = run(&deep);
        assert!(rep_s.completed && rep_d.completed);
        assert!(rep_s.steals() <= 2 && rep_d.steals() <= 2);

        // Sequential executions stay cheap in both cases.
        assert!(
            seq_d.cache_misses() < (deep.touches() as u64 + c as u64) * 6,
            "sequential should be O(C + t), got {}",
            seq_d.cache_misses()
        );

        // More branches, proportionally more deviations and extra misses
        // from the same single steal (4x the leaves, at least 2x the cost).
        let dev_ratio = rep_d.deviations() as f64 / rep_s.deviations().max(1) as f64;
        let miss_ratio =
            rep_d.additional_misses(&seq_d) as f64 / rep_s.additional_misses(&seq_s).max(1) as f64;
        assert!(
            dev_ratio >= 2.0,
            "deviations should grow with the branch count, ratio {dev_ratio:.2} \
             (shallow {} deep {})",
            rep_s.deviations(),
            rep_d.deviations()
        );
        assert!(
            miss_ratio >= 2.0,
            "additional misses should grow with the branch count, ratio {miss_ratio:.2} \
             (shallow {} deep {})",
            rep_s.additional_misses(&seq_s),
            rep_d.additional_misses(&seq_d)
        );
    }
}
