//! Reconstructions of the paper's figures.
//!
//! The paper's figures are worst-case (or illustrative) computation DAGs;
//! its lower-bound proofs describe specific adversarial work-stealing
//! executions of them. Each module here builds the DAG with
//! [`wsf_dag::DagBuilder`] and, where a proof prescribes a schedule, also
//! provides the corresponding [`wsf_core::ScriptedScheduler`].
//!
//! Because the original figures are drawings, the constructions here are
//! *reconstructions from the proof text*; every module documents the
//! properties the reconstruction is required to satisfy (structural class,
//! sequential cost, adversarial deviation/miss counts) and the test suite
//! verifies them empirically with the simulator.
//!
//! | Module | Paper artifact | Used by experiment |
//! |--------|----------------|--------------------|
//! | [`mod@fig3`] | Figure 3 — unstructured futures (touch reachable before its future thread is spawned) | E4 |
//! | [`mod@fig4`] | Figure 4 — nested structured single-touch computation | E1, E7 |
//! | [`fig5`] | Figure 5 — single-touch patterns beyond fork-join | E9 |
//! | [`fig6`] | Figures 6(a)–(c) — future-first lower bound (Theorem 9) | E2 |
//! | [`fig7`] | Figures 7(a)–(b) (and Figure 2) — parent-first amplification | E3, E4 |
//! | [`fig8`] | Figure 8 — parent-first lower bound (Theorem 10) | E3 |

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;

pub use fig3::fig3;
pub use fig4::fig4;
pub use fig5::{fig5a, fig5b};
pub use fig6::Fig6;
pub use fig7::{Fig7a, Fig7b};
pub use fig8::Fig8;
