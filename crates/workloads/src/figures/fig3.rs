//! Figure 3: an unstructured computation where a touch can be reached
//! before the future thread computing its value has even been spawned.
//!
//! A thread spawned near the root touches futures that are created later,
//! deeper in the main thread. Definition 1 is violated because the local
//! parents of those touches are not descendants of the corresponding forks.

use wsf_dag::{Block, Dag, DagBuilder};

/// Builds the Figure 3-style unstructured DAG with `touches` early touches.
///
/// The returned DAG is valid (every thread is synchronized) but
/// [`wsf_dag::classify`] reports it as unstructured.
pub fn fig3(touches: usize) -> Dag {
    let touches = touches.max(1);
    let mut b = DagBuilder::new();
    let main = b.main_thread();

    // The early thread, spawned right below the root: it will touch futures
    // created later by the main thread (the left subtree "x" of the paper's
    // figure, which a thief can start executing immediately).
    let early = b.fork(main);
    b.task_block(early.future_thread, Block(0));

    // The main thread creates the future threads afterwards.
    let mut suppliers = Vec::new();
    for i in 0..touches {
        let f = b.fork(main);
        b.task_block(f.future_thread, Block(i as u32 + 1));
        b.chain(f.future_thread, 1);
        suppliers.push(f.future_thread);
        b.task(main);
    }

    // The early thread touches each of those futures (v1, v2, ... in the
    // figure) even though it was spawned before any of them existed.
    for s in suppliers {
        b.touch_thread(early.future_thread, s);
    }

    // The main thread joins the early thread so the DAG is synchronized.
    b.task(main);
    b.touch_thread(main, early.future_thread);
    b.task(main);
    b.finish().expect("fig3 builds a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn fig3_is_unstructured() {
        for touches in [1, 2, 5, 16] {
            let dag = fig3(touches);
            let class = classify(&dag);
            assert!(class.is_unstructured(), "touches={touches}");
            assert_eq!(dag.num_touches(), touches + 1);
        }
    }

    #[test]
    fn fig3_executes_under_both_policies() {
        let dag = fig3(6);
        for policy in ForkPolicy::ALL {
            let report = ParallelSimulator::new(SimConfig::new(3, 4, policy)).run(&dag);
            assert!(report.completed);
            assert_eq!(report.executed(), dag.num_nodes() as u64);
        }
    }
}
