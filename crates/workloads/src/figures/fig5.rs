//! Figure 5: single-touch usage patterns that fork-join cannot express.
//!
//! * [`fig5a`] — *MethodA*: a thread creates several futures and touches
//!   them in creation (FIFO) order, e.g. draining a priority queue. The
//!   intervals cross, so this is not properly nested fork-join, but it is a
//!   structured single-touch computation.
//! * [`fig5b`] — *MethodB/MethodC*: a thread creates a future and passes it
//!   to another thread, which performs the (single) touch.

use wsf_dag::{Block, Dag, DagBuilder};

/// Builds the MethodA pattern with `futures` futures touched in creation
/// order.
pub fn fig5a(futures: usize) -> Dag {
    let futures = futures.max(2);
    let mut b = DagBuilder::new();
    let main = b.main_thread();
    let mut threads = Vec::new();
    for i in 0..futures {
        let f = b.fork(main);
        b.task_block(f.future_thread, Block(i as u32));
        b.chain(f.future_thread, 1);
        threads.push(f.future_thread);
    }
    b.task(main);
    // Touch in creation order (fork-join would require reverse order).
    for t in threads {
        b.touch_thread(main, t);
    }
    b.task(main);
    b.finish().expect("fig5a builds a valid DAG")
}

/// Builds the MethodB/MethodC pattern: future `x` is created by the main
/// thread and passed to a helper thread, which touches it; the main thread
/// touches only the helper.
pub fn fig5b(work: usize) -> Dag {
    let work = work.max(1);
    let mut b = DagBuilder::new();
    let main = b.main_thread();

    // Future x.
    let x = b.fork(main);
    for i in 0..work {
        b.task_block(x.future_thread, Block(i as u32));
    }

    // MethodC(x): a helper thread that touches x.
    let helper = b.fork(main);
    b.task(helper.future_thread);
    b.touch_thread(helper.future_thread, x.future_thread);
    for i in 0..work {
        b.task_block(helper.future_thread, Block(100 + i as u32));
    }

    // The main thread continues and finally joins the helper.
    b.task(main);
    b.touch_thread(main, helper.future_thread);
    b.task(main);
    b.finish().expect("fig5b builds a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_dag::classify;

    #[test]
    fn fig5a_is_single_touch_but_not_fork_join() {
        let dag = fig5a(4);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(class.local_touch);
        assert!(!class.fork_join, "FIFO touch order crosses intervals");
    }

    #[test]
    fn fig5b_is_single_touch_but_not_local_touch() {
        let dag = fig5b(3);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(
            !class.local_touch,
            "x is touched by the helper, not its creator"
        );
        assert!(!class.fork_join);
    }

    #[test]
    fn both_patterns_simulate_cleanly() {
        use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
        for dag in [fig5a(6), fig5b(5)] {
            let report =
                ParallelSimulator::new(SimConfig::new(2, 8, ForkPolicy::FutureFirst)).run(&dag);
            assert!(report.completed);
        }
    }
}
