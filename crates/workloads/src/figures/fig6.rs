//! Figure 6: the future-first lower bound construction (Theorem 9).
//!
//! The proof of Theorem 9 builds, in three steps, a structured single-touch
//! computation on which work stealing with the *future-first* policy can be
//! forced to incur `Ω(P·T∞²)` deviations and `Ω(P·T∞²)` additional cache
//! misses (while the sequential execution incurs only `O(P·T∞²/C)` misses):
//!
//! * **Figure 6(a)** — a gadget where a *single steal* causes `Ω(T∞)`
//!   deviations (and, with the memory-block assignment of the proof,
//!   `Ω(T∞)` additional misses): a chain of `k` future threads
//!   `T₁, T₂, …`, where the touch of `Tᵢ` is *inside* `Tᵢ₊₁` (the
//!   passed-future pattern of Figure 5(b), iterated). The adversary delays
//!   `T₁` (the thread spawned first); the thief then executes all the
//!   "head" halves of the `Tᵢ`, and every touch later resolves in the
//!   wrong order.
//! * **Figure 6(b)** — `m` copies of the gadget processed one after the
//!   other by the same small set of processors, multiplying the deviations
//!   by `m`.
//! * **Figure 6(c)** — `n = P/3` independent copies of 6(b) spawned by a
//!   binary tree, multiplying by `P`.
//!
//! This module reconstructs the gadget from the proof text (the original
//! figure is a drawing). [`Fig6::gadget`] is the 6(a) analogue;
//! [`Fig6::repeated`] chains `m` gadgets (6(b) analogue — note that the
//! chaining used here nests the gadgets, so the span grows with `m`;
//! `docs/EXPERIMENTS.md` discusses how the measured counts map onto the
//! theorem's `P·T∞²` form); [`Fig6::tree`] spawns independent gadgets below
//! a binary tree (6(c) analogue). Each carries the scripted adversary of
//! the proof.

use wsf_core::{ForkPolicy, ScriptedScheduler, WakeCondition};
use wsf_dag::{Block, Dag, DagBuilder, NodeId, ThreadId};

/// A reconstruction of one of the Figure 6 constructions, together with the
/// adversarial schedule from the proof of Theorem 9.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// The computation DAG.
    pub dag: Dag,
    /// Number of stages `k` per gadget.
    pub k: usize,
    /// Length of the `Y`/`Z` chains (the proof uses `C`, the cache size).
    pub chain: usize,
    /// Number of gadgets (1 for the 6(a) gadget).
    pub gadgets: usize,
    /// Number of processors the adversary script expects.
    pub processors: usize,
    /// Nodes after which the gadget-starting processor must fall asleep
    /// (the `v_j` forks of the w-threads).
    sleep_points: Vec<NodeId>,
}

/// Key nodes of one gadget, used to assemble adversary scripts.
struct GadgetNodes {
    /// The fork of the delayed thread `T₁` (the proof's `v`): the processor
    /// that executes it must fall asleep before running `w`.
    v: NodeId,
}

impl Fig6 {
    /// The fork policy Theorem 9 is about.
    pub const POLICY: ForkPolicy = ForkPolicy::FutureFirst;

    /// Builds the single-gadget construction (Figure 6(a)).
    ///
    /// `k` is the number of stages; `chain` is the length of the `Y`/`Z`
    /// chains (use `1` for the pure deviation-counting variant and `C` for
    /// the cache-miss variant; blocks are assigned exactly as in the proof:
    /// `Y` chains access `m₁…m_C` forward, `Z` chains access them backward,
    /// and the stage connectors access `m_{C+1}`).
    pub fn gadget(k: usize, chain: usize) -> Fig6 {
        let k = k.max(2);
        let chain = chain.max(1);
        let mut b = DagBuilder::new();
        let nodes = build_gadget(&mut b, ThreadId::MAIN, k, chain, true);
        b.task(ThreadId::MAIN);
        let dag = b.finish().expect("fig6 gadget builds a valid DAG");
        Fig6 {
            dag,
            k,
            chain,
            gadgets: 1,
            processors: 2,
            sleep_points: vec![nodes.v],
        }
    }

    /// Builds `m` gadgets chained one after the other (the 6(b) analogue):
    /// gadget `j+1` is spawned as a future thread at the end of gadget `j`,
    /// so the same two processors replay the adversarial scenario `m` times.
    pub fn repeated(m: usize, k: usize, chain: usize) -> Fig6 {
        let m = m.max(1);
        let k = k.max(2);
        let chain = chain.max(1);
        let mut b = DagBuilder::new();
        let mut sleep_points = Vec::with_capacity(m);
        let mut stack: Vec<(ThreadId, ThreadId)> = Vec::new();

        let mut thread = ThreadId::MAIN;
        for j in 0..m {
            let nodes = build_gadget(&mut b, thread, k, chain, true);
            sleep_points.push(nodes.v);
            if j + 1 < m {
                // Spawn the next gadget as a future thread and remember to
                // touch it from this thread while unwinding.
                let f = b.fork(thread);
                b.task(thread); // right child of the chaining fork
                stack.push((thread, f.future_thread));
                thread = f.future_thread;
            }
        }
        // Unwind: each spawning thread touches the gadget thread it spawned.
        while let Some((parent, child)) = stack.pop() {
            debug_assert_eq!(child.index(), thread.index());
            b.touch_thread(parent, child);
            thread = parent;
        }
        b.task(ThreadId::MAIN);
        let dag = b.finish().expect("fig6 repeated builds a valid DAG");
        Fig6 {
            dag,
            k,
            chain,
            gadgets: m,
            processors: 2,
            sleep_points,
        }
    }

    /// Builds `n` independent gadgets spawned below a binary fork tree (the
    /// 6(c) analogue). The adversary script expects `2·n` processors, one
    /// holder/runner pair per gadget; with the default random scheduler it
    /// serves as an expectation-style workload.
    pub fn tree(n: usize, k: usize, chain: usize) -> Fig6 {
        let n = n.max(1).next_power_of_two();
        let k = k.max(2);
        let chain = chain.max(1);
        let mut b = DagBuilder::new();
        let mut sleep_points = Vec::with_capacity(n);

        // Binary tree of forks; each leaf thread hosts one gadget. Track
        // the (parent, child) spawn pairs so every tree thread can be
        // joined by its parent afterwards.
        let mut frontier = vec![ThreadId::MAIN];
        let mut spawned: Vec<(ThreadId, ThreadId)> = Vec::new();
        while frontier.len() < n {
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for t in frontier {
                let f = b.fork(t);
                b.task(t); // right child filler
                spawned.push((t, f.future_thread));
                next.push(f.future_thread);
                next.push(t);
            }
            frontier = next;
        }
        for t in &frontier {
            let nodes = build_gadget(&mut b, *t, k, chain, true);
            sleep_points.push(nodes.v);
        }
        // Synchronize: every tree thread is joined by its parent, children
        // first (reverse spawn order) so the parents' last nodes are final.
        for &(parent, child) in spawned.iter().rev() {
            b.touch_thread(parent, child);
        }
        b.task(ThreadId::MAIN);
        let dag = b.finish().expect("fig6 tree builds a valid DAG");
        Fig6 {
            dag,
            k,
            chain,
            gadgets: n,
            processors: 2 * n,
            sleep_points,
        }
    }

    /// The scripted adversary of the proof: processor 0 falls asleep right
    /// after forking each delayed thread (before executing its first node
    /// `w`) and wakes once nobody else can make progress; processor 1 steals
    /// only from processor 0.
    ///
    /// For the tree construction this script is a best-effort
    /// generalization (pairs of processors are not pinned to subtrees); the
    /// experiments additionally run the tree workload under the random
    /// scheduler.
    pub fn adversary(&self) -> ScriptedScheduler {
        let mut s = ScriptedScheduler::new()
            .prefer_victims(1, vec![0])
            .strict_victims();
        for &v in &self.sleep_points {
            s = s.sleep_after(0, v, WakeCondition::WhenStalled);
        }
        s
    }

    /// The number of cache lines `C` the miss experiment should use so the
    /// block assignment thrashes exactly as in the proof (equal to the
    /// `Y`/`Z` chain length).
    pub fn cache_lines(&self) -> usize {
        self.chain.max(2)
    }

    /// The block accessed by the stage connectors (`m_{C+1}` in the proof).
    pub fn spill_block(&self) -> Block {
        Block(self.chain as u32)
    }
}

/// Appends one Figure 6(a) gadget to `host` and returns its key nodes.
///
/// Structure (stages `i = 2..=k`):
///
/// ```text
/// host:  v(fork T1)  b_1(fork T2)  b_2(fork T3) ... b_{k-1}(fork Tk)  c  x_k(touch Tk)
/// T1:    w  w'                                   (delayed thread)
/// T_i:   Y_i (chain)  x_{i-1}(touch T_{i-1})  Z_i (chain)
/// ```
///
/// With blocks: `b_i` and `c` access `m_{C+1}`, `Y_i` accesses `m₁…m_C`
/// forward, `Z_i` accesses them backward.
fn build_gadget(
    b: &mut DagBuilder,
    host: ThreadId,
    k: usize,
    chain: usize,
    with_blocks: bool,
) -> GadgetNodes {
    let spill = Block(chain as u32);

    // v forks the delayed thread T1 (first node w).
    let fv = b.fork(host);
    let t1 = fv.future_thread;
    b.chain(t1, 1); // w'

    let mut prev = t1;
    for _i in 2..=k {
        let fb = b.fork(host);
        if with_blocks {
            b.set_block(fb.node, spill);
        }
        let ti = fb.future_thread;
        // Head Y_i.
        for j in 0..chain {
            let n = b.task(ti);
            if with_blocks {
                b.set_block(n, Block(j as u32));
            }
        }
        // x_{i-1}: the touch of the previous thread, inside this thread.
        b.touch_thread(ti, prev);
        // Tail Z_i (reverse block order).
        for j in (0..chain).rev() {
            let n = b.task(ti);
            if with_blocks {
                b.set_block(n, Block(j as u32));
            }
        }
        prev = ti;
    }

    // c (connector) and the final touch x_k in the host thread.
    let c = b.task(host);
    if with_blocks {
        b.set_block(c, spill);
    }
    b.touch_thread(host, prev);

    GadgetNodes { v: fv.node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ParallelSimulator, SimConfig};
    use wsf_dag::{classify, span};

    fn run_adversarial(
        fig: &Fig6,
        cache_lines: usize,
    ) -> (wsf_core::SeqReport, wsf_core::ExecutionReport) {
        let config = SimConfig {
            processors: fig.processors,
            cache_lines,
            fork_policy: Fig6::POLICY,
            ..SimConfig::default()
        };
        let sim = ParallelSimulator::new(config);
        let seq = sim.sequential(&fig.dag);
        let mut adversary = fig.adversary();
        let report = sim.run_against(&fig.dag, &seq, &mut adversary, false);
        (seq, report)
    }

    #[test]
    fn gadget_is_structured_single_touch() {
        let fig = Fig6::gadget(6, 1);
        let class = classify(&fig.dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(!class.local_touch, "the chained touches are passed futures");
    }

    #[test]
    fn gadget_single_steal_causes_linear_deviations() {
        // Figure 6(a): one steal, Θ(k) = Θ(T∞) deviations.
        for k in [4usize, 8, 16, 32] {
            let fig = Fig6::gadget(k, 1);
            let (_, report) = run_adversarial(&fig, 4);
            assert!(report.completed, "k={k}");
            assert!(
                report.steals() <= 2,
                "the adversary performs essentially one steal, got {}",
                report.steals()
            );
            let dev = report.deviations();
            assert!(
                dev as usize >= k - 1,
                "k={k}: expected at least k-1 deviations, got {dev}"
            );
            assert!(
                dev as usize <= 4 * k + 4,
                "k={k}: deviations should be Θ(k), got {dev}"
            );
        }
    }

    #[test]
    fn gadget_deviations_scale_linearly_with_span() {
        let small = Fig6::gadget(8, 1);
        let large = Fig6::gadget(32, 1);
        let (_, rs) = run_adversarial(&small, 4);
        let (_, rl) = run_adversarial(&large, 4);
        let span_ratio = span(&large.dag) as f64 / span(&small.dag) as f64;
        let dev_ratio = rl.deviations() as f64 / rs.deviations().max(1) as f64;
        assert!(
            dev_ratio > 0.5 * span_ratio && dev_ratio < 2.0 * span_ratio,
            "deviations should scale like the span: span ratio {span_ratio:.2}, deviation ratio {dev_ratio:.2}"
        );
    }

    #[test]
    fn gadget_misses_variant_thrashes_the_thief() {
        // Figure 6(a) with blocks: the adversarial execution incurs Ω(k·C)
        // additional misses while the sequential one pays O(k + C).
        let c = 8usize;
        let k = 16usize;
        let fig = Fig6::gadget(k, c);
        let (seq, report) = run_adversarial(&fig, c);
        assert!(report.completed);
        let seq_misses = seq.cache_misses();
        let extra = report.additional_misses(&seq);
        assert!(
            seq_misses as usize <= 4 * k + 2 * c + 4,
            "sequential execution should be cheap, got {seq_misses}"
        );
        assert!(
            extra as usize >= (k - 3) * (c - 2),
            "adversarial execution should thrash: extra = {extra}, expected ≳ k·C = {}",
            k * c
        );
    }

    #[test]
    fn repeated_gadgets_multiply_deviations() {
        let k = 8usize;
        let single = Fig6::gadget(k, 1);
        let (_, r1) = run_adversarial(&single, 4);
        for m in [2usize, 4] {
            let fig = Fig6::repeated(m, k, 1);
            assert!(classify(&fig.dag).is_structured_single_touch());
            let (_, rm) = run_adversarial(&fig, 4);
            assert!(rm.completed, "m={m}");
            assert!(
                rm.deviations() >= (m as u64 - 1) * r1.deviations() / 2,
                "m={m}: expected roughly m times the single-gadget deviations, got {} vs single {}",
                rm.deviations(),
                r1.deviations()
            );
        }
    }

    #[test]
    fn tree_construction_is_valid_and_busy() {
        let fig = Fig6::tree(4, 6, 1);
        assert!(classify(&fig.dag).is_structured_single_touch());
        let config = SimConfig {
            processors: 8,
            cache_lines: 4,
            fork_policy: Fig6::POLICY,
            ..SimConfig::default()
        };
        let report = ParallelSimulator::new(config).run(&fig.dag);
        assert!(report.completed);
        assert!(report.busy_processors() >= 2);
    }
}
