//! Figures 2 and 7: the parent-first amplification gadgets (Theorem 10).
//!
//! * [`Fig7a`] — the amplification gadget (also the content of Figure 2):
//!   whether a single touch (`u3` in the paper) is ready when reached
//!   decides between a cheap traversal (`O(C + n)` misses) and an expensive
//!   one (`Ω(C·n)` misses, `Ω(n)` drifted joins), because the `y` joins get
//!   interleaved with the `Z` chains and thrash the LRU cache.
//! * [`Fig7b`] — a parity chain of futures `s₁ … s_k` whose touches `v_i`
//!   alternate between ready and blocked under the parent-first sequential
//!   execution; a *single steal* of `s₁` flips the parity of the entire
//!   chain, so the Figure 7(a) gadget grafted at the end of the chain is
//!   traversed expensively in the parallel execution while the sequential
//!   execution traverses it cheaply.

use wsf_core::{ForkPolicy, ScriptedScheduler, WakeCondition};
use wsf_dag::{Block, Dag, DagBuilder, NodeId};

/// The standalone Figure 7(a)/Figure 2 gadget.
#[derive(Clone, Debug)]
pub struct Fig7a {
    /// The computation DAG.
    pub dag: Dag,
    /// Number of `Z`-chain stages `n`.
    pub n: usize,
    /// Length of each `Z` chain (the proof uses the cache size `C`).
    pub chain: usize,
    /// Whether the gate touch `u3` is blocked behind a delayed supplier
    /// future (the expensive scenario) or plain (the cheap scenario).
    pub blocked: bool,
}

impl Fig7a {
    /// The fork policy Theorem 10 is about.
    pub const POLICY: ForkPolicy = ForkPolicy::ParentFirst;

    /// Builds the gadget. With `blocked = false` the gate node `u3` is an
    /// ordinary node and the (sequential, parent-first) traversal is cheap;
    /// with `blocked = true` `u3` touches a supplier future that the
    /// scheduler only runs after the gate is reached, which inverts the
    /// order of the `Z` chains and the `y` joins and thrashes the cache.
    pub fn new(n: usize, chain: usize, blocked: bool) -> Fig7a {
        let n = n.max(2);
        let chain = chain.max(2);
        let mut b = DagBuilder::new();
        let main = b.main_thread();

        // Optional supplier future gating u3.
        let supplier = if blocked {
            let f = b.fork(main);
            b.task(f.future_thread); // sup
            Some(f.future_thread)
        } else {
            None
        };

        // u1 forks the s-thread whose touch v sits after the x forks.
        let u1 = b.fork(main);
        let s_thread = u1.future_thread;
        // u2, u3 (gate), u4.
        b.task(main);
        if let Some(sup) = supplier {
            b.touch_thread(main, sup); // u3 = touch of the supplier
        } else {
            b.task(main); // u3 = plain node
        }
        b.task(main); // u4

        // x_1 .. x_n: forks of the Z-chain threads; x_i accesses m1.
        let mut z_threads = Vec::with_capacity(n);
        for _ in 0..n {
            let fx = b.fork(main);
            b.set_block(fx.node, Block(0));
            for j in 0..chain {
                let z = b.task(fx.future_thread);
                b.set_block(z, Block(j as u32));
            }
            z_threads.push(fx.future_thread);
        }

        // A filler node (fork children cannot be touches), then v: the
        // touch of the s-thread.
        b.task(main);
        b.touch_thread(main, s_thread);

        // y_n .. y_1: joins of the Z threads, each accessing m_{C+1}.
        for zt in z_threads.iter().rev() {
            let y = b.join_thread(main, *zt);
            b.set_block(y, Block(chain as u32));
        }
        b.task(main);
        let dag = b.finish().expect("fig7a builds a valid DAG");
        Fig7a {
            dag,
            n,
            chain,
            blocked,
        }
    }

    /// The cache size `C` matching the block assignment.
    pub fn cache_lines(&self) -> usize {
        self.chain
    }
}

/// The Figure 7(b) parity chain with the Figure 7(a) gadget grafted at the
/// end, plus the single-steal adversary of the proof.
#[derive(Clone, Debug)]
pub struct Fig7b {
    /// The computation DAG.
    pub dag: Dag,
    /// Chain length `k` (forced even, as the proof requires).
    pub k: usize,
    /// Number of `Z` stages `n` in the grafted gadget.
    pub n: usize,
    /// Length of each `Z` chain.
    pub chain: usize,
    /// The first future node `s₁`, which the thief steals.
    pub s1: NodeId,
    /// Number of processors the adversary expects.
    pub processors: usize,
}

impl Fig7b {
    /// The fork policy Theorem 10 is about.
    pub const POLICY: ForkPolicy = ForkPolicy::ParentFirst;

    /// Builds the chain-plus-gadget construction.
    pub fn new(k: usize, n: usize, chain: usize) -> Fig7b {
        let k = (k.max(2) + 1) & !1; // force even
        let n = n.max(2);
        let chain = chain.max(2);
        let mut b = DagBuilder::new();
        let main = b.main_thread();

        // r forks the first future s1. The s1 thread is a single node so
        // that the thief finishes it strictly before the first gate's local
        // parent runs (as in the proof, where p2 steals and runs s1
        // "immediately"); otherwise the sleeping thief would end up holding
        // the first touch and the execution could not complete.
        let r = b.fork(main);
        let mut s_threads = vec![r.future_thread];
        let s1 = b.last_of(r.future_thread);

        // Chain stages 1..k-1: u_i forks s_{i+1}; w_i; v_i touches s_i.
        for _ in 1..k {
            let u = b.fork(main);
            b.task(u.future_thread); // s_{i+1} payload
            s_threads.push(u.future_thread);
            b.task(main); // w_i
            let s_i = s_threads[s_threads.len() - 2];
            b.touch_thread(main, s_i); // v_i
        }

        // Graft: u_k forks the s-thread of the 7(a) gadget, w_k, and the
        // gate v_k touches the last chain future s_k.
        let uk = b.fork(main);
        let st = uk.future_thread;
        b.task(st); // the gadget's s node
        b.task(main); // w_k
        let s_k = *s_threads.last().expect("chain has futures");
        b.touch_thread(main, s_k); // v_k: the gate (u3 of Figure 7(a))
        b.task(main); // u4

        // x_1..x_n forks of the Z threads.
        let mut z_threads = Vec::with_capacity(n);
        for _ in 0..n {
            let fx = b.fork(main);
            b.set_block(fx.node, Block(0));
            for j in 0..chain {
                let z = b.task(fx.future_thread);
                b.set_block(z, Block(j as u32));
            }
            z_threads.push(fx.future_thread);
        }
        // A filler node, then v': the touch of the gadget's s-thread,
        // followed by the y joins.
        b.task(main);
        b.touch_thread(main, st);
        for zt in z_threads.iter().rev() {
            let y = b.join_thread(main, *zt);
            b.set_block(y, Block(chain as u32));
        }
        b.task(main);

        let dag = b.finish().expect("fig7b builds a valid DAG");
        Fig7b {
            dag,
            k,
            n,
            chain,
            s1,
            processors: 2,
        }
    }

    /// The proof's adversary: processor 1 steals `s₁` right at the start,
    /// executes it and then sleeps forever; processor 0 runs everything
    /// else.
    pub fn adversary(&self) -> ScriptedScheduler {
        ScriptedScheduler::new()
            .prefer_victims(1, vec![0])
            .strict_victims()
            .sleep_after(1, self.s1, WakeCondition::Never)
    }

    /// The cache size `C` matching the block assignment.
    pub fn cache_lines(&self) -> usize {
        self.chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ParallelSimulator, SequentialExecutor, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn fig7a_variants_are_structured_single_touch() {
        for blocked in [false, true] {
            let fig = Fig7a::new(6, 4, blocked);
            let class = classify(&fig.dag);
            assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        }
    }

    #[test]
    fn fig7a_blocked_gate_thrashes_the_cache() {
        // The cheap and expensive traversals of the same gadget shape: the
        // blocked variant interleaves the y joins with the Z chains and
        // pays Ω(n·C) misses; the plain variant pays O(n + C).
        let (n, c) = (16usize, 8usize);
        let cheap = Fig7a::new(n, c, false);
        let dear = Fig7a::new(n, c, true);
        let run = |fig: &Fig7a| {
            SequentialExecutor::new(Fig7a::POLICY)
                .with_cache_lines(fig.cache_lines())
                .run(&fig.dag)
                .cache
                .misses
        };
        let cheap_misses = run(&cheap);
        let dear_misses = run(&dear);
        assert!(
            cheap_misses as usize <= 3 * n + 2 * c + 8,
            "cheap traversal should cost O(n + C), got {cheap_misses}"
        );
        assert!(
            dear_misses as usize >= (n - 2) * (c - 2),
            "blocked traversal should cost Ω(n·C), got {dear_misses}"
        );
    }

    #[test]
    fn fig7b_is_structured_single_touch() {
        let fig = Fig7b::new(6, 6, 4);
        let class = classify(&fig.dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert_eq!(fig.k % 2, 0);
    }

    #[test]
    fn fig7b_single_steal_causes_linear_deviations_and_misses() {
        // Theorem 10 (per branch): the parallel parent-first execution with
        // one steal incurs Ω(n) deviations and Ω(C·n) additional misses,
        // while the sequential execution is cheap.
        let (k, n, c) = (8usize, 16usize, 8usize);
        let fig = Fig7b::new(k, n, c);
        let config = SimConfig {
            processors: fig.processors,
            cache_lines: c,
            fork_policy: Fig7b::POLICY,
            ..SimConfig::default()
        };
        let sim = ParallelSimulator::new(config);
        let seq = sim.sequential(&fig.dag);
        let mut adversary = fig.adversary();
        let report = sim.run_against(&fig.dag, &seq, &mut adversary, false);

        assert!(report.completed);
        assert!(report.steals() <= 2, "one steal, got {}", report.steals());
        assert!(
            seq.cache_misses() as usize <= 3 * (n + k) + 2 * c + 8,
            "sequential should be cheap, got {}",
            seq.cache_misses()
        );
        assert!(
            report.deviations() as usize >= n / 2,
            "expected Ω(n) deviations, got {}",
            report.deviations()
        );
        assert!(
            report.additional_misses(&seq) as usize >= (n - 3) * (c - 2),
            "expected Ω(n·C) additional misses, got {}",
            report.additional_misses(&seq)
        );
    }

    #[test]
    fn fig7b_future_first_is_cheaper_than_parent_first_adversary() {
        // Contrast between Sections 5.1 and 5.2: on the same DAG, the
        // future-first execution (random steals) incurs fewer additional
        // misses than the adversarial parent-first execution.
        let (k, n, c) = (8usize, 16usize, 8usize);
        let fig = Fig7b::new(k, n, c);

        let ff_config = SimConfig {
            processors: 2,
            cache_lines: c,
            fork_policy: ForkPolicy::FutureFirst,
            ..SimConfig::default()
        };
        let ff_sim = ParallelSimulator::new(ff_config);
        let ff_seq = ff_sim.sequential(&fig.dag);
        let ff = ff_sim.run(&fig.dag);
        assert!(ff.completed);

        let pf_config = SimConfig {
            processors: 2,
            cache_lines: c,
            fork_policy: Fig7b::POLICY,
            ..SimConfig::default()
        };
        let pf_sim = ParallelSimulator::new(pf_config);
        let pf_seq = pf_sim.sequential(&fig.dag);
        let mut adversary = fig.adversary();
        let pf = pf_sim.run_against(&fig.dag, &pf_seq, &mut adversary, false);
        assert!(pf.completed);

        assert!(
            ff.additional_misses(&ff_seq) < pf.additional_misses(&pf_seq),
            "future-first ({}) should beat adversarial parent-first ({})",
            ff.additional_misses(&ff_seq),
            pf.additional_misses(&pf_seq)
        );
    }
}
