//! Size presets for the workload-suite generators, up to ~10^6 distinct
//! blocks.
//!
//! The E15 capacity sweep showed the indexed cache models make per-access
//! cost independent of `C`, but its working sets topped out around
//! 10^4–10^5 blocks — an order of magnitude below what the dense
//! block→slot index is engineered for. These presets pin down named
//! parameter choices for every suite family at two block budgets:
//!
//! * [`BlockScale::HundredK`] — ~10^5 distinct blocks, sized so a release
//!   build + simulation stays inside the CI time budget;
//! * [`BlockScale::Million`] — ~10^6 distinct blocks, the scale the
//!   `#[ignore]`d tests in `crates/workloads/tests/scale.rs` build and
//!   simulate, stressing the dense index's memory footprint and grow path
//!   (every family draws its ids from [`crate::block_alloc::BlockAlloc`],
//!   so `Dag::block_space()` declares the dense range and the builders
//!   pre-size their node arrays via `DagBuilder::with_capacity`).
//!
//! Exact block counts per family (all asserted in the scale tests):
//!
//! | family | blocks |
//! |--------|--------|
//! | [`mergesort`] | `(len/grain) · (1 + log₂(len/grain))` |
//! | [`stencil()`] | `rows·width + (rows-1)·steps` |
//! | [`stencil_exchange`] | `rows·width + 2·(rows-1)·steps` |
//! | [`batched_pipeline`] | `stages·items·(work+1) + ⌈items/window⌉ + items` |

use crate::{backpressure, sort, stencil};
use wsf_dag::Dag;

/// The distinct-block budget a preset targets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockScale {
    /// ~10^5 distinct blocks: large enough to dwarf every swept cache
    /// capacity, small enough for CI.
    HundredK,
    /// ~10^6 distinct blocks: the dense block→slot index's target regime.
    Million,
}

impl BlockScale {
    fn pick<T>(self, hundred_k: T, million: T) -> T {
        match self {
            BlockScale::HundredK => hundred_k,
            BlockScale::Million => million,
        }
    }
}

/// Fork-join mergesort at the preset scale (`grain = 16`;
/// `len = 2^17` / `2^20` elements → ~1.1·10^5 / ~1.1·10^6 blocks).
pub fn mergesort(scale: BlockScale) -> Dag {
    sort::mergesort(scale.pick(131_072, 1_048_576), 16)
}

/// One-sided wavefront stencil at the preset scale
/// (256×384×2 → ~9.9·10^4 blocks; 1024×1000×2 → ~1.03·10^6 blocks).
pub fn stencil(scale: BlockScale) -> Dag {
    let (rows, width, steps) = scale.pick((256, 384, 2), (1_024, 1_000, 2));
    stencil::stencil(rows, width, steps)
}

/// Symmetric-exchange stencil at the preset scale
/// (256×384×2 → ~9.9·10^4 blocks; 1024×1000×2 → ~1.03·10^6 blocks).
pub fn stencil_exchange(scale: BlockScale) -> Dag {
    let (rows, width, steps) = scale.pick((256, 384, 2), (1_024, 1_000, 2));
    stencil::stencil_exchange(rows, width, steps)
}

/// Bounded-backpressure pipeline at the preset scale (4 stages, window 8,
/// work 2; 8·10^3 / 8·10^4 items → ~1.05·10^5 / ~1.05·10^6 blocks).
pub fn batched_pipeline(scale: BlockScale) -> Dag {
    backpressure::batched_pipeline(4, scale.pick(8_000, 80_000), 8, 2)
}

/// One preset family: its name and its scaled builder.
pub type Family = (&'static str, fn(BlockScale) -> Dag);

/// Every preset family as a `(name, builder)` pair, for tests and benches
/// that sweep the whole suite.
pub const FAMILIES: [Family; 4] = [
    ("mergesort", mergesort),
    ("stencil", stencil),
    ("stencil_exchange", stencil_exchange),
    ("batched_pipeline", batched_pipeline),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_k_presets_hit_their_block_budget() {
        for (name, build) in FAMILIES {
            let dag = build(BlockScale::HundredK);
            let blocks = dag.num_blocks();
            assert!(
                (90_000..200_000).contains(&blocks),
                "{name}: {blocks} blocks is outside the ~10^5 budget"
            );
            // BlockAlloc ids are dense from 0, so the declared dense-index
            // range never exceeds the allocation (equality holds whenever
            // every allocated id is used, as the stencils and pipeline do).
            assert!(dag.block_space() >= blocks, "{name}");
        }
    }
}
