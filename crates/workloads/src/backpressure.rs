//! Streaming pipelines with bounded backpressure (Theorem 12 workload).
//!
//! [`crate::pipeline::pipeline`] lets every stage run arbitrarily far ahead
//! of its consumer: all `items` futures of a stage may exist unconsumed at
//! once. [`batched_pipeline`] is the strict generalization with a bounded
//! window: items flow in batches of at most `window`, and the worker thread
//! for a stage's next batch is only forked after the consumer has drained
//! the previous one — so at most O(`window`) values per stage are ever in
//! flight, by construction of the DAG rather than by scheduler luck. This
//! is the DAG shape of Blelloch/Reid-Miller pipelining with a bounded
//! buffer. `window >= items` degenerates to exactly one batch per stage,
//! i.e. the unbatched pipeline shape.
//!
//! Structure per batch `b`: the consumer forks a stage-1 worker `T(1,b)`;
//! `T(s,b)`'s first action is to fork `T(s+1,b)`; each worker then, per
//! item, runs its `work` chain, touches the corresponding value of its
//! child worker, and publishes its own value for its parent. Every worker
//! is touched once per item of its batch, by its parent — structured
//! local-touch (Definition 3); with `window == 1` every worker is touched
//! exactly once and the DAG is single-touch as well.
//!
//! Block ids come from a shared [`BlockAlloc`] (per-stage work and value
//! regions plus the consumer's output array), collision-checked in
//! `crates/workloads/tests/block_collisions.rs`.

use crate::block_alloc::{BlockAlloc, BlockRegion};
use wsf_dag::{Dag, DagBuilder, NodeId, ThreadId};

/// Builds the bounded-backpressure pipeline DAG: `stages` stage workers per
/// batch, `items` items flowing in batches of at most `window`, `work`
/// work nodes per item per stage.
pub fn batched_pipeline(stages: usize, items: usize, window: usize, work: usize) -> Dag {
    let stages = stages.max(1);
    let items = items.max(1);
    let window = window.max(1).min(items);
    let work = work.max(1);

    let mut alloc = BlockAlloc::new();
    let stage_work: Vec<_> = (1..=stages)
        .map(|s| alloc.region(format!("stage{s}/work"), items * work))
        .collect();
    let stage_value: Vec<_> = (1..=stages)
        .map(|s| alloc.region(format!("stage{s}/value"), items))
        .collect();
    let dispatch = alloc.region("main/dispatch", items.div_ceil(window));
    let output = alloc.region("main/output", items);

    let mut b = DagBuilder::with_capacity(
        stages * items * (work + 2) + 3 * items + 4,
        stages * items.div_ceil(window) + 1,
    );
    let main = ThreadId::MAIN;
    let mut batch = 0usize;
    let mut first = 0usize;
    while first < items {
        let batch_len = window.min(items - first);
        // Fork this batch's stage-1 worker; the whole worker chain for the
        // batch is built before the consumer touches anything, and the next
        // batch's workers do not exist until this loop iteration is over —
        // that is the backpressure.
        let f = b.fork(main);
        let values = build_worker(
            &mut b,
            f.future_thread,
            1,
            stages,
            first,
            batch_len,
            work,
            &stage_work,
            &stage_value,
        );
        // The fork's right child models the batch dispatch; it may not be a
        // touch node.
        let n = b.task(main);
        b.set_block(n, dispatch.block(batch));
        for (i, v) in values.into_iter().enumerate() {
            b.touch(main, v);
            let n = b.task(main);
            b.set_block(n, output.block(first + i));
        }
        first += batch_len;
        batch += 1;
    }
    b.finish().expect("batched pipeline builds a valid DAG")
}

/// Builds the stage-`s` worker thread of one batch, returning the value
/// nodes its parent must touch in order.
#[allow(clippy::too_many_arguments)]
fn build_worker(
    b: &mut DagBuilder,
    thread: ThreadId,
    s: usize,
    stages: usize,
    first: usize,
    batch_len: usize,
    work: usize,
    stage_work: &[BlockRegion],
    stage_value: &[BlockRegion],
) -> Vec<NodeId> {
    // Deeper stages first: fork the child worker for the same batch.
    let child_values = if s < stages {
        let f = b.fork(thread);
        Some(build_worker(
            b,
            f.future_thread,
            s + 1,
            stages,
            first,
            batch_len,
            work,
            stage_work,
            stage_value,
        ))
    } else {
        None
    };

    let mut values = Vec::with_capacity(batch_len);
    for i in 0..batch_len {
        let item = first + i;
        for w in 0..work {
            let n = b.task(thread);
            b.set_block(n, stage_work[s - 1].block(item * work + w));
        }
        if let Some(cv) = &child_values {
            b.touch(thread, cv[i]);
        }
        let v = b.task(thread);
        b.set_block(v, stage_value[s - 1].block(item));
        values.push(v);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn batched_pipeline_is_local_touch() {
        let dag = batched_pipeline(3, 8, 4, 2);
        let class = classify(&dag);
        assert!(class.structured, "{:?}", class.violations);
        assert!(class.local_touch, "{:?}", class.violations);
        assert!(!class.single_touch, "workers are touched once per item");
    }

    #[test]
    fn unit_window_is_single_touch() {
        let dag = batched_pipeline(3, 6, 1, 2);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(class.is_structured_local_touch());
    }

    #[test]
    fn window_bounds_worker_batch_sizes() {
        // stages * ceil(items/window) worker threads, none touched more
        // than `window` times.
        let (stages, items, window) = (3usize, 10usize, 4usize);
        let dag = batched_pipeline(stages, items, window, 1);
        assert_eq!(
            dag.num_threads(),
            1 + stages * items.div_ceil(window),
            "one worker per (stage, batch)"
        );
        for t in dag.thread_ids().filter(|t| !t.is_main()) {
            let touches = dag.touches_of_thread(t).len();
            assert!(
                (1..=window).contains(&touches),
                "{t} touched {touches} times, window is {window}"
            );
        }
    }

    #[test]
    fn saturated_window_matches_unbatched_shape() {
        // window >= items: one batch, a single worker chain per stage —
        // the `pipeline()` thread structure.
        let dag = batched_pipeline(4, 6, 100, 2);
        assert_eq!(dag.num_threads(), 5);
        let class = classify(&dag);
        assert!(class.is_structured_local_touch());
    }

    #[test]
    fn batched_pipeline_executes_under_both_policies() {
        let dag = batched_pipeline(3, 9, 2, 2);
        for policy in ForkPolicy::ALL {
            for p in [1usize, 4] {
                let report = ParallelSimulator::new(SimConfig::new(p, 16, policy)).run(&dag);
                assert!(report.completed, "{policy} P={p}");
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
        }
    }
}
