//! Disjoint memory-block allocation shared by the workload builders.
//!
//! Every workload generator used to compute its [`Block`] ids with ad-hoc
//! arithmetic (`s*items*work + item*work + w`, ...), and one of those
//! formulas collided: in [`crate::pipeline`], value-node ids aliased
//! unrelated work-node ids whenever `work > 1`, silently skewing every
//! pipeline cache-miss table. [`BlockAlloc`] replaces the arithmetic with a
//! bump allocator handing out named, contiguous, *provably disjoint*
//! [`BlockRegion`]s: a region can only produce ids inside its own range
//! (indexing past the end panics), and ranges never overlap by
//! construction, so two distinct `(region, index)` pairs can never map to
//! the same block id.

use wsf_dag::Block;

/// A bump allocator for disjoint [`BlockRegion`]s.
///
/// ```
/// use wsf_workloads::block_alloc::BlockAlloc;
///
/// let mut alloc = BlockAlloc::new();
/// let a = alloc.region("stage1/work", 6);
/// let b = alloc.region("stage1/value", 3);
/// assert_ne!(a.block(5), b.block(0));
/// assert_eq!(alloc.allocated(), 9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlockAlloc {
    next: u32,
}

/// A contiguous range of block ids owned by one logical array of the
/// workload (an input run, a stage's value slots, a row's interior, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRegion {
    label: String,
    base: u32,
    len: u32,
}

impl BlockAlloc {
    /// Creates an allocator starting at block id 0.
    pub fn new() -> Self {
        BlockAlloc::default()
    }

    /// Reserves a fresh region of `len` blocks, disjoint from every region
    /// handed out before.
    ///
    /// # Panics
    /// Panics if the total allocation would overflow the `u32` block-id
    /// space.
    pub fn region(&mut self, label: impl Into<String>, len: usize) -> BlockRegion {
        let label = label.into();
        let len =
            u32::try_from(len).unwrap_or_else(|_| panic!("region {label}: len overflows u32"));
        let base = self.next;
        self.next = base
            .checked_add(len)
            .unwrap_or_else(|| panic!("region {label}: block-id space exhausted"));
        BlockRegion { label, base, len }
    }

    /// Reserves a single-block region and returns its block id directly.
    pub fn single(&mut self, label: impl Into<String>) -> Block {
        self.region(label, 1).block(0)
    }

    /// Total number of block ids handed out so far.
    pub fn allocated(&self) -> usize {
        self.next as usize
    }
}

impl BlockRegion {
    /// The `i`-th block of the region.
    ///
    /// # Panics
    /// Panics if `i >= len()` — an out-of-range index is exactly the kind
    /// of arithmetic slip that used to alias neighbouring regions, so it is
    /// rejected instead of wrapping into someone else's ids.
    pub fn block(&self, i: usize) -> Block {
        assert!(
            i < self.len as usize,
            "region {}: index {i} out of range (len {})",
            self.label,
            self.len
        );
        Block(self.base + i as u32)
    }

    /// Number of blocks in the region.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The region's label (used in panic messages and debugging).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether this region overlaps `other`.
    pub fn overlaps(&self, other: &BlockRegion) -> bool {
        let (a0, a1) = (self.base as u64, self.base as u64 + self.len as u64);
        let (b0, b1) = (other.base as u64, other.base as u64 + other.len as u64);
        a0 < b1 && b0 < a1 && self.len > 0 && other.len > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_by_construction() {
        let mut alloc = BlockAlloc::new();
        let regions: Vec<BlockRegion> = (0..8).map(|i| alloc.region(format!("r{i}"), 5)).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{} overlaps {}", a.label(), b.label());
            }
        }
        assert_eq!(alloc.allocated(), 40);
    }

    #[test]
    fn blocks_enumerate_the_region() {
        let mut alloc = BlockAlloc::new();
        let skip = alloc.region("skip", 3);
        let r = alloc.region("r", 4);
        assert_eq!(skip.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.block(0), Block(3));
        assert_eq!(r.block(3), Block(6));
        assert_eq!(alloc.single("one"), Block(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let mut alloc = BlockAlloc::new();
        let r = alloc.region("r", 2);
        let _ = r.block(2);
    }

    #[test]
    fn empty_region_never_overlaps() {
        let mut alloc = BlockAlloc::new();
        let e = alloc.region("e", 0);
        let r = alloc.region("r", 3);
        assert!(e.is_empty());
        assert!(!e.overlaps(&r));
    }
}
