//! Random structured single-touch computations.
//!
//! Theorem 8 is an upper bound over *all* structured single-touch
//! computations, so the experiments also need "typical" members of the
//! class rather than just the worst-case figures. This generator produces
//! random DAGs that are structured single-touch by construction: every
//! future thread is touched exactly once, by a node created after the
//! fork's right child in the touching thread.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wsf_dag::{Block, Dag, DagBuilder, ThreadId};

/// Parameters of the random generator.
#[derive(Copy, Clone, Debug)]
pub struct RandomConfig {
    /// Approximate number of nodes to generate.
    pub target_nodes: usize,
    /// Probability that a step of a thread forks a future thread.
    pub fork_probability: f64,
    /// Maximum nesting depth of future threads.
    pub max_depth: usize,
    /// Number of distinct memory blocks to draw from.
    pub blocks: usize,
    /// Probability that a node accesses a memory block at all.
    pub access_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            target_nodes: 2_000,
            fork_probability: 0.25,
            max_depth: 8,
            blocks: 64,
            access_probability: 0.8,
            seed: 1,
        }
    }
}

/// Generates a random structured single-touch DAG.
pub fn random_single_touch(config: &RandomConfig) -> Dag {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    // The generator stops within a few nodes of `budget` (one final touch
    // fan-in per live thread), so reserving the budget up front removes
    // nearly every reallocation of the node/edge arrays.
    let budget = config.target_nodes.max(16);
    let mut b = DagBuilder::with_capacity(budget + 8, budget / 8);
    let mut created = 1usize;
    grow(
        &mut b,
        ThreadId::MAIN,
        config,
        &mut rng,
        config.max_depth,
        budget / 2,
        &mut created,
        budget,
    );
    b.task(ThreadId::MAIN);
    b.finish().expect("random generator produces valid DAGs")
}

#[allow(clippy::too_many_arguments)]
fn grow(
    b: &mut DagBuilder,
    thread: ThreadId,
    config: &RandomConfig,
    rng: &mut SmallRng,
    depth: usize,
    length: usize,
    created: &mut usize,
    budget: usize,
) {
    let mut pending: Vec<ThreadId> = Vec::new();
    let mut since_fork = 1usize;
    for _ in 0..length.max(2) {
        if *created >= budget {
            break;
        }
        let may_fork = depth > 0 && since_fork > 0 && rng.gen_bool(config.fork_probability);
        if may_fork {
            let f = b.fork(thread);
            *created += 1;
            let child_len = rng.gen_range(2..=(length / 2).max(3));
            grow(
                b,
                f.future_thread,
                config,
                rng,
                depth - 1,
                child_len,
                created,
                budget,
            );
            pending.push(f.future_thread);
            since_fork = 0;
        } else {
            let n = b.task(thread);
            *created += 1;
            if rng.gen_bool(config.access_probability) {
                b.set_block(n, Block(rng.gen_range(0..config.blocks as u32)));
            }
            since_fork += 1;
            // Occasionally touch one of the pending futures (LIFO or FIFO at
            // random), as long as the previous node was not a fork.
            if !pending.is_empty() && rng.gen_bool(0.4) {
                let idx = if rng.gen_bool(0.5) {
                    pending.len() - 1
                } else {
                    0
                };
                let t = pending.remove(idx);
                b.touch_thread(thread, t);
                *created += 1;
            }
        }
    }
    // Touch everything still pending so every future is touched exactly once.
    if !pending.is_empty() {
        b.task(thread);
        *created += 1;
        for t in pending {
            b.touch_thread(thread, t);
            *created += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn random_dags_are_structured_single_touch() {
        for seed in 0..8u64 {
            let config = RandomConfig {
                target_nodes: 600,
                seed,
                ..RandomConfig::default()
            };
            let dag = random_single_touch(&config);
            let class = classify(&dag);
            assert!(
                class.is_structured_single_touch(),
                "seed {seed}: {:?}",
                class.violations
            );
            assert!(dag.num_nodes() >= 16);
        }
    }

    #[test]
    fn random_dags_execute_under_both_policies() {
        let dag = random_single_touch(&RandomConfig {
            target_nodes: 800,
            seed: 42,
            ..RandomConfig::default()
        });
        for policy in ForkPolicy::ALL {
            for p in [1usize, 4] {
                let report = ParallelSimulator::new(SimConfig::new(p, 16, policy)).run(&dag);
                assert!(report.completed);
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let c = RandomConfig {
            target_nodes: 400,
            seed: 7,
            ..RandomConfig::default()
        };
        let a = random_single_touch(&c);
        let b = random_single_touch(&c);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_threads(), b.num_threads());
        assert_eq!(a.num_touches(), b.num_touches());
    }
}
