//! Executes a simulator [`Dag`] on the real work-stealing pool.
//!
//! The hardware-validation loop (E21) needs the *same* computation DAGs the
//! simulator schedules to run on `wsf_runtime`'s thread pool, emitting a
//! block-touch trace that can be replayed through the cache simulator and
//! checked against the paper's bounds. This module is the bridge: a chain
//! interpreter that walks a structured single-touch DAG with exactly the
//! parsimonious scheduling rule of the executors in `wsf-core`.
//!
//! ## How a DAG becomes pool tasks
//!
//! Each pool task runs a **chain** of nodes: starting from one enabled
//! node, it repeatedly executes the node (recording the touch), enables its
//! children ([`schedule_enabled`] decides, exactly as the sequential and
//! parallel simulators do), follows the `next` child, and spawns the `push`
//! child as a *new* chain task via [`Runtime::defer_future`]. Deferred
//! chains land on the bottom of the running worker's deque, where the owner
//! pops them LIFO and other workers steal them FIFO — the same discipline
//! `SimDeque` gives the simulators.
//!
//! At `P = 1` this makes the node order **byte-identical** to
//! [`SequentialExecutor`](wsf_core::SequentialExecutor): a single worker's
//! own-deque pop is exactly the simulator's `pop_bottom`, chains are the
//! simulator's `next` walks, and children are enabled in the same out-edge
//! order — the property the `trace_conformance` suite pins down.
//!
//! ## Exactly-once and fault rescue
//!
//! Node in-degrees are atomic counters; the decrement that reaches zero
//! *enables* the child, and a `claimed` flag swapped before execution makes
//! the node run exactly once even if it is ever spawned twice. When the
//! fault injector kills a worker, the chain task it was about to run fails
//! without executing (its nodes stay enabled but unclaimed); the caller's
//! wait loop detects the stalled execution and respawns chains for every
//! enabled-but-unclaimed node — or, once every worker is dead, executes
//! them directly on the calling thread (recorded on the trace's external
//! lane). Completion is signalled by the final node, which every node
//! precedes, so the DAG is fully executed when it runs.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wsf_core::{schedule_enabled, ForkPolicy};
use wsf_dag::{Dag, NodeId};
use wsf_runtime::Runtime;

/// What a pool execution of a DAG did, beyond the runtime's own counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagRunReport {
    /// Nodes executed (always `dag.num_nodes()` on success).
    pub nodes_executed: usize,
    /// Chains respawned by the rescue sweep after a stalled execution
    /// (worker kills, or chain tasks lost to injected failures).
    pub rescued: usize,
    /// Rescue sweeps that found at least one node to respawn.
    pub rescue_rounds: usize,
    /// Nodes executed directly on the calling thread because every worker
    /// had been killed; they appear on the trace's external lane.
    pub direct_runs: usize,
}

struct Ctx {
    rt: Arc<Runtime>,
    dag: Arc<Dag>,
    policy: ForkPolicy,
    /// Outstanding dependencies per node; the decrementer that reaches
    /// zero enables the child.
    remaining: Vec<AtomicU32>,
    /// Swapped to `true` immediately before a node executes; makes
    /// execution exactly-once even when rescue respawns a chain that was
    /// merely delayed rather than lost.
    claimed: Vec<AtomicBool>,
    executed: AtomicUsize,
    done: Mutex<bool>,
    done_cond: Condvar,
}

impl Ctx {
    /// Executes the chain starting at `start`: run the node, enable its
    /// children, follow `next`, defer `push` as a new chain. In `direct`
    /// mode (every worker dead) pushes go onto a local LIFO stack instead
    /// of the pool — the sequential executor's discipline on the caller
    /// thread. Returns the number of nodes this call executed.
    fn run_chain(self: &Arc<Self>, start: NodeId, direct: bool) -> usize {
        let mut ran = 0;
        let mut stack: Vec<NodeId> = Vec::new();
        let mut current = Some(start);
        while let Some(node) = current {
            if self.claimed[node.index()].swap(true, Ordering::AcqRel) {
                // Another chain (the original of a rescue duplicate, or
                // vice versa) already owns this node; its `next` walk
                // continues elsewhere.
                current = if direct { stack.pop() } else { None };
                continue;
            }
            self.rt
                .trace_node(node.0, self.dag.block_of(node).map(|b| b.0));
            ran += 1;

            let mut enabled = [NodeId(0); 2];
            let mut n_enabled = 0;
            for e in self.dag.node(node).out_edges() {
                if self.remaining[e.node.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                    debug_assert!(n_enabled < 2, "structured DAGs enable at most 2 children");
                    enabled[n_enabled] = e.node;
                    n_enabled += 1;
                }
            }
            self.executed.fetch_add(1, Ordering::Relaxed);
            if node == self.dag.final_node() {
                // Every node precedes the final node, so the DAG is done.
                let mut done = self.done.lock().expect("done lock");
                *done = true;
                self.done_cond.notify_all();
            }

            let cont = schedule_enabled(&self.dag, node, &enabled[..n_enabled], self.policy);
            if let Some(push) = cont.push {
                if direct {
                    stack.push(push);
                } else {
                    let ctx = Arc::clone(self);
                    drop(self.rt.defer_future(move || {
                        ctx.run_chain(push, false);
                    }));
                }
            }
            current = cont
                .next
                .or_else(|| if direct { stack.pop() } else { None });
        }
        ran
    }

    /// Respawns a chain for every enabled-but-unclaimed node. With live
    /// workers the chains are deferred to the pool; with none they run
    /// directly on the calling thread. Returns `(respawned, direct_runs)`.
    fn rescue(self: &Arc<Self>) -> (usize, usize) {
        let direct = self.rt.live_workers() == 0;
        let mut respawned = 0;
        let mut direct_runs = 0;
        for index in 0..self.dag.num_nodes() {
            if self.remaining[index].load(Ordering::Acquire) == 0
                && !self.claimed[index].load(Ordering::Acquire)
            {
                let node = NodeId::from_index(index);
                respawned += 1;
                if direct {
                    direct_runs += self.run_chain(node, true);
                } else {
                    let ctx = Arc::clone(self);
                    drop(self.rt.defer_future(move || {
                        ctx.run_chain(node, false);
                    }));
                }
            }
        }
        (respawned, direct_runs)
    }
}

/// Runs `dag` to completion on the pool `rt` under the parsimonious
/// work-stealing discipline, with `policy` deciding which fork child a
/// worker executes first.
///
/// The root chain is submitted through the injector (the caller is not a
/// worker); everything after that flows through the workers' own deques
/// and steals. When the runtime was built with
/// [`touch_trace`](wsf_runtime::RuntimeBuilder::touch_trace), every node
/// execution lands in the lane of the worker that ran it.
///
/// Survives fault injection (worker kills, injected panics, stalls): lost
/// chains are respawned, and if the injector kills *every* worker the
/// remaining nodes execute on the calling thread. Panics if the DAG has
/// not completed within 60 seconds.
pub fn run_dag_on_pool(rt: &Arc<Runtime>, dag: &Arc<Dag>, policy: ForkPolicy) -> DagRunReport {
    let ctx = Arc::new(Ctx {
        rt: Arc::clone(rt),
        dag: Arc::clone(dag),
        policy,
        remaining: dag.in_degrees().into_iter().map(AtomicU32::new).collect(),
        claimed: (0..dag.num_nodes())
            .map(|_| AtomicBool::new(false))
            .collect(),
        executed: AtomicUsize::new(0),
        done: Mutex::new(false),
        done_cond: Condvar::new(),
    });
    let mut report = DagRunReport::default();

    let root = dag.root();
    let ctx2 = Arc::clone(&ctx);
    drop(rt.defer_future(move || {
        ctx2.run_chain(root, false);
    }));

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last_executed = 0usize;
    loop {
        let guard = ctx.done.lock().expect("done lock");
        let (guard, _) = ctx
            .done_cond
            .wait_timeout_while(guard, Duration::from_millis(100), |done| !*done)
            .expect("done lock");
        if *guard {
            break;
        }
        drop(guard);
        let now = ctx.executed.load(Ordering::Relaxed);
        if now == last_executed {
            // No progress over a full wait window: chains were lost to
            // worker kills (or are stalled). Respawn everything enabled.
            let (respawned, direct_runs) = ctx.rescue();
            if respawned > 0 {
                report.rescued += respawned;
                report.rescue_rounds += 1;
                report.direct_runs += direct_runs;
            }
        }
        last_executed = ctx.executed.load(Ordering::Relaxed);
        assert!(
            Instant::now() < deadline,
            "DAG execution stalled: {last_executed}/{} nodes after 60s",
            dag.num_nodes()
        );
    }

    report.nodes_executed = ctx.executed.load(Ordering::Relaxed);
    debug_assert_eq!(report.nodes_executed, dag.num_nodes());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{backpressure, sort, stencil};
    use wsf_core::SequentialExecutor;
    use wsf_runtime::{Runtime, SpawnPolicy, TouchEvent};

    fn traced_runtime(threads: usize) -> Arc<Runtime> {
        Arc::new(
            Runtime::builder()
                .threads(threads)
                .policy(SpawnPolicy::ChildFirst)
                .touch_trace(1 << 16)
                .build(),
        )
    }

    fn full_node_trace(rt: &Runtime) -> Vec<(u32, Option<u32>)> {
        let trace = rt.touch_trace().expect("tracing enabled");
        assert_eq!(trace.dropped(), 0, "trace capacity exhausted");
        (0..trace.lanes())
            .flat_map(|lane| trace.node_trace(lane))
            .collect()
    }

    #[test]
    fn single_worker_matches_sequential_order() {
        for policy in [ForkPolicy::FutureFirst, ForkPolicy::ParentFirst] {
            let dag = Arc::new(sort::mergesort(64, 8));
            let rt = traced_runtime(1);
            let report = run_dag_on_pool(&rt, &dag, policy);
            assert_eq!(report.nodes_executed, dag.num_nodes());
            assert_eq!(report.rescued, 0);

            let seq = SequentialExecutor::new(policy).run(&dag);
            let runtime_order: Vec<u32> = rt
                .touch_trace()
                .unwrap()
                .node_trace(0)
                .iter()
                .map(|(n, _)| *n)
                .collect();
            let seq_order: Vec<u32> = seq.order.iter().map(|n| n.0).collect();
            assert_eq!(runtime_order, seq_order, "policy {policy:?}");
        }
    }

    #[test]
    fn every_node_executes_exactly_once_at_p4() {
        let dags = [
            Arc::new(sort::mergesort(128, 16)),
            Arc::new(stencil::stencil(4, 3, 3)),
            Arc::new(stencil::stencil_exchange(3, 2, 2)),
            Arc::new(backpressure::batched_pipeline(3, 12, 4, 1)),
        ];
        for dag in dags {
            let rt = traced_runtime(4);
            let report = run_dag_on_pool(&rt, &dag, ForkPolicy::FutureFirst);
            assert_eq!(report.nodes_executed, dag.num_nodes());

            let mut nodes: Vec<u32> = full_node_trace(&rt).iter().map(|(n, _)| *n).collect();
            nodes.sort_unstable();
            let expected: Vec<u32> = (0..dag.num_nodes() as u32).collect();
            assert_eq!(nodes, expected, "each node traced exactly once");
        }
    }

    #[test]
    fn traced_blocks_match_the_dag() {
        let dag = Arc::new(stencil::stencil(3, 2, 2));
        let rt = traced_runtime(2);
        run_dag_on_pool(&rt, &dag, ForkPolicy::FutureFirst);
        for (node, block) in full_node_trace(&rt) {
            let expected = dag.block_of(NodeId(node)).map(|b| b.0);
            assert_eq!(block, expected, "node {node}");
        }
    }

    #[test]
    fn task_provenance_events_are_recorded() {
        let dag = Arc::new(sort::mergesort(256, 16));
        let rt = traced_runtime(4);
        run_dag_on_pool(&rt, &dag, ForkPolicy::FutureFirst);
        let trace = rt.touch_trace().unwrap();
        let task_events: usize = (0..trace.lanes())
            .map(|lane| {
                trace
                    .events(lane)
                    .iter()
                    .filter(|e| matches!(e, TouchEvent::Task { .. }))
                    .count()
            })
            .sum();
        assert!(task_events > 0, "chains must carry provenance");
    }

    #[test]
    fn works_without_tracing() {
        let dag = Arc::new(sort::mergesort(64, 8));
        let rt = Arc::new(Runtime::new(2));
        let report = run_dag_on_pool(&rt, &dag, ForkPolicy::FutureFirst);
        assert_eq!(report.nodes_executed, dag.num_nodes());
        assert!(rt.touch_trace().is_none());
    }
}
