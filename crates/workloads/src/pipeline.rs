//! Local-touch pipelines (Section 6.1).
//!
//! Definition 3 allows a future thread to compute *several* futures, each
//! touched by the thread's own parent — the structure Blelloch and
//! Reid-Miller use for pipelining with futures. A stage thread produces one
//! future value per item; the consumer (its parent) touches them in order.
//!
//! Block ids come from a shared [`BlockAlloc`], which keeps each stage's
//! work blocks, its value slots and the consumer's output array provably
//! disjoint. The previous hand-rolled formula (`s*items*work + item` for
//! values vs `s*items*work + item*work + w` for work nodes) collided for
//! `work > 1`: touched values aliased unrelated work blocks and every
//! pipeline cache-miss table was silently skewed. The regression test for
//! that bug lives in `crates/workloads/tests/block_collisions.rs`.

use crate::block_alloc::BlockAlloc;
use wsf_dag::{Dag, DagBuilder, NodeId, ThreadId};

/// Builds a producer/consumer pipeline with `stages` stage threads each
/// producing `items` futures touched in order by its parent stage.
///
/// Stage 0 is the main thread (the final consumer); stage `s+1` is a future
/// thread spawned by stage `s`. Every item of stage `s` is a small chain of
/// `work` nodes ending in a value node that the parent touches. The result
/// is a structured *local-touch* computation that is not single-touch
/// (every stage thread is touched `items` times).
pub fn pipeline(stages: usize, items: usize, work: usize) -> Dag {
    let stages = stages.max(1);
    let items = items.max(1);
    let work = work.max(1);
    let mut alloc = BlockAlloc::new();
    // One work region and one value region per stage, plus the main
    // thread's output array — all pairwise disjoint.
    let stage_work: Vec<_> = (1..=stages)
        .map(|s| alloc.region(format!("stage{s}/work"), items * work))
        .collect();
    let stage_value: Vec<_> = (1..=stages)
        .map(|s| alloc.region(format!("stage{s}/value"), items))
        .collect();
    let output = alloc.region("main/output", items);

    let mut b = DagBuilder::with_capacity(stages * items * (work + 2) + 2 * items + 4, stages + 1);

    // Create the chain of stage threads: main spawns stage 1, stage 1
    // spawns stage 2, ...
    let mut threads = vec![ThreadId::MAIN];
    for _ in 0..stages {
        let parent = *threads.last().unwrap();
        let f = b.fork(parent);
        threads.push(f.future_thread);
    }

    // The deepest stage produces items out of thin air; every other stage
    // consumes its child's items and produces its own.
    // Produce all value nodes stage by stage, deepest first, so touches can
    // reference them.
    let mut produced: Vec<Vec<NodeId>> = vec![Vec::new(); stages + 1];
    for s in (1..=stages).rev() {
        let thread = threads[s];
        for item in 0..items {
            for w in 0..work {
                let n = b.task(thread);
                b.set_block(n, stage_work[s - 1].block(item * work + w));
            }
            // Consume the child's corresponding item, if any.
            if s < stages {
                let child_value = produced[s + 1][item];
                b.touch(thread, child_value);
            }
            // The value node the parent will touch.
            let value = b.task(thread);
            b.set_block(value, stage_value[s - 1].block(item));
            produced[s].push(value);
        }
    }

    // The main thread consumes stage 1's items in order.
    let main = ThreadId::MAIN;
    b.task(main);
    for (item, &value) in produced[1].iter().enumerate() {
        b.touch(main, value);
        let n = b.task(main);
        b.set_block(n, output.block(item));
    }
    b.finish().expect("pipeline builds a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn pipeline_is_local_touch_not_single_touch() {
        let dag = pipeline(3, 4, 2);
        let class = classify(&dag);
        assert!(class.structured, "{:?}", class.violations);
        assert!(class.local_touch, "{:?}", class.violations);
        assert!(!class.single_touch, "stages are touched once per item");
    }

    #[test]
    fn single_item_pipeline_is_single_touch_too() {
        let dag = pipeline(3, 1, 2);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(class.is_structured_local_touch());
    }

    #[test]
    fn pipeline_executes_under_both_policies() {
        let dag = pipeline(4, 6, 3);
        for policy in ForkPolicy::ALL {
            let report = ParallelSimulator::new(SimConfig::new(4, 16, policy)).run(&dag);
            assert!(report.completed, "{policy}");
            assert_eq!(report.executed(), dag.num_nodes() as u64);
        }
    }

    #[test]
    fn value_blocks_never_alias_work_blocks() {
        // The regression the shared allocator fixes: with work > 1 the old
        // id formulas mapped stage s's item-i value onto stage s's work
        // blocks. Touch sources (value nodes) must use blocks no other node
        // kind uses.
        let dag = pipeline(3, 5, 3);
        let value_blocks: std::collections::HashSet<_> = dag
            .touches()
            .filter_map(|x| dag.future_parent(x))
            .filter_map(|v| dag.block_of(v))
            .collect();
        for id in dag.node_ids() {
            let is_value = dag.node(id).is_future_parent();
            if let Some(blk) = dag.block_of(id) {
                if !is_value {
                    assert!(
                        !value_blocks.contains(&blk),
                        "{id}: non-value node reuses value block {blk}"
                    );
                }
            }
        }
    }
}
