//! Application-shaped fork-join DAGs.
//!
//! Section 4 of the paper observes that fork-join (Cilk-style) programs are
//! a strict subset of structured single-touch computations. These
//! generators model the classic divide-and-conquer kernels as computation
//! DAGs with realistic memory-block footprints, so the locality experiments
//! can report numbers for "programs people actually write" alongside the
//! worst-case figures.

use wsf_dag::{Block, Dag, DagBuilder, ThreadId};

/// Parallel `fib(n)`-style double recursion: each call spawns one future
/// for `fib(n-1)`, computes `fib(n-2)` itself and touches the future. Every
/// call touches one memory block representing its stack frame.
pub fn fib(n: usize) -> Dag {
    let mut b = DagBuilder::new();
    let mut next_block = 0u32;
    fib_rec(&mut b, ThreadId::MAIN, n, &mut next_block);
    b.task(ThreadId::MAIN);
    b.finish().expect("fib builds a valid DAG")
}

fn fib_rec(b: &mut DagBuilder, thread: ThreadId, n: usize, next_block: &mut u32) {
    let frame = Block(*next_block);
    *next_block += 1;
    let node = b.task(thread);
    b.set_block(node, frame);
    if n < 2 {
        return;
    }
    let f = b.fork(thread);
    fib_rec(b, f.future_thread, n - 1, next_block);
    // The continuation computes fib(n-2) inline.
    b.task(thread);
    fib_rec(b, thread, n - 2, next_block);
    // Touch the spawned future and combine, re-accessing the frame block.
    let t = b.touch_thread(thread, f.future_thread);
    let _ = t;
    let combine = b.task(thread);
    b.set_block(combine, frame);
}

/// Divide-and-conquer reduction (sum / mergesort skeleton) over `len`
/// elements with the given `grain`: leaves scan a contiguous run of blocks
/// (one block per `block_size` elements), inner nodes spawn the left half
/// and compute the right half.
pub fn reduce(len: usize, grain: usize, block_size: usize) -> Dag {
    let mut b = DagBuilder::new();
    reduce_rec(
        &mut b,
        ThreadId::MAIN,
        0,
        len.max(1),
        grain.max(1),
        block_size.max(1),
    );
    b.task(ThreadId::MAIN);
    b.finish().expect("reduce builds a valid DAG")
}

fn reduce_rec(
    b: &mut DagBuilder,
    thread: ThreadId,
    lo: usize,
    hi: usize,
    grain: usize,
    block_size: usize,
) {
    if hi - lo <= grain {
        // Leaf: scan the range, touching one block per `block_size` items.
        let mut i = lo;
        while i < hi {
            let n = b.task(thread);
            b.set_block(n, Block((i / block_size) as u32));
            i += block_size;
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let f = b.fork(thread);
    reduce_rec(b, f.future_thread, lo, mid, grain, block_size);
    b.task(thread);
    reduce_rec(b, thread, mid, hi, grain, block_size);
    b.touch_thread(thread, f.future_thread);
}

/// Blocked matrix multiplication skeleton: `tiles × tiles` output tiles,
/// each computed by a future thread that streams over a row of A-tiles and
/// a column of B-tiles. The parent touches the tiles in row-major (FIFO)
/// order, which is single-touch but not fork-join.
pub fn matmul(tiles: usize, inner: usize) -> Dag {
    let tiles = tiles.max(1);
    let inner = inner.max(1);
    let mut b = DagBuilder::new();
    let main = b.main_thread();
    let a_base = 0u32;
    let b_base = (tiles * inner) as u32;
    let c_base = 2 * (tiles * inner) as u32;

    let mut futures = Vec::new();
    for i in 0..tiles {
        for j in 0..tiles {
            let f = b.fork(main);
            for k in 0..inner {
                let n1 = b.task(f.future_thread);
                b.set_block(n1, Block(a_base + (i * inner + k) as u32));
                let n2 = b.task(f.future_thread);
                b.set_block(n2, Block(b_base + (k * tiles + j) as u32));
            }
            let out = b.task(f.future_thread);
            b.set_block(out, Block(c_base + (i * tiles + j) as u32));
            futures.push(f.future_thread);
        }
    }
    b.task(main);
    for t in futures {
        b.touch_thread(main, t);
    }
    b.task(main);
    b.finish().expect("matmul builds a valid DAG")
}

/// A map-reduce: `ways` independent mapper futures each scanning their own
/// input blocks, a reducer that touches them in creation order.
pub fn map_reduce(ways: usize, work_per_way: usize) -> Dag {
    let ways = ways.max(1);
    let mut b = DagBuilder::new();
    let main = b.main_thread();
    let mut futures = Vec::new();
    for w in 0..ways {
        let f = b.fork(main);
        for i in 0..work_per_way.max(1) {
            let n = b.task(f.future_thread);
            b.set_block(n, Block((w * work_per_way + i) as u32));
        }
        futures.push(f.future_thread);
    }
    b.task(main);
    for t in futures {
        b.touch_thread(main, t);
        let n = b.task(main);
        b.set_block(n, Block(u32::MAX - 1)); // accumulator block
    }
    b.finish().expect("map_reduce builds a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn fib_is_fork_join_and_single_touch() {
        let dag = fib(8);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(class.local_touch);
        assert!(class.fork_join, "fib spawns and syncs in LIFO order");
    }

    #[test]
    fn reduce_is_fork_join() {
        let dag = reduce(256, 16, 8);
        let class = classify(&dag);
        assert!(class.fork_join, "{:?}", class.violations);
        assert!(dag.num_threads() > 4);
    }

    #[test]
    fn matmul_and_map_reduce_are_single_touch_not_fork_join() {
        for dag in [matmul(3, 4), map_reduce(6, 10)] {
            let class = classify(&dag);
            assert!(class.is_structured_single_touch(), "{:?}", class.violations);
            assert!(class.local_touch);
            assert!(!class.fork_join, "FIFO touch order crosses intervals");
        }
    }

    #[test]
    fn app_dags_execute_and_benefit_from_parallelism() {
        let dag = reduce(512, 16, 8);
        let seq = ParallelSimulator::new(SimConfig::new(1, 32, ForkPolicy::FutureFirst)).run(&dag);
        let par = ParallelSimulator::new(SimConfig::new(8, 32, ForkPolicy::FutureFirst)).run(&dag);
        assert!(seq.completed && par.completed);
        assert!(
            par.makespan < seq.makespan,
            "8 processors shorten the makespan"
        );
    }
}
