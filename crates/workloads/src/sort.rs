//! Divide-and-conquer mergesort DAGs (Theorem 8 / Theorem 12 workloads).
//!
//! Two variants of the same kernel:
//!
//! * [`mergesort`] — the classic fork-join shape: each call forks the left
//!   half as a future, sorts the right half inline, joins with a single
//!   touch and then merges. Structured, single-touch, properly nested —
//!   the Theorem 8 class.
//! * [`mergesort_streaming`] — the Blelloch/Reid-Miller streaming shape:
//!   each sorting thread *publishes its merged output in chunks*, one
//!   future value per chunk, and the parent touches the chunks in order,
//!   merging incrementally. Every sorting thread is touched once per chunk,
//!   so the computation is structured *local-touch* but not single-touch —
//!   the Theorem 12 class.
//!
//! Memory blocks model the merge buffers with per-level block maps: each
//! recursion depth owns a disjoint [`BlockAlloc`] region covering the whole
//! array at `grain` elements per block, so a merge at depth `d` touches the
//! depth-`d` buffer of its range and nothing else. Region disjointness is
//! collision-checked (see `crates/workloads/tests/block_collisions.rs`).

use crate::block_alloc::{BlockAlloc, BlockRegion};
use wsf_dag::{Dag, DagBuilder, NodeId, ThreadId};

/// The grain-aligned split point of `[lo, hi)` (with `lo` itself aligned):
/// the midpoint rounded up to a multiple of `grain`, so every range in the
/// recursion starts on a block boundary and sibling merges never share a
/// block.
fn aligned_mid(lo: usize, hi: usize, grain: usize) -> usize {
    debug_assert!(hi - lo > grain);
    let half = (hi - lo) / 2;
    let mid = lo + half.div_ceil(grain).max(1) * grain;
    debug_assert!(lo < mid && mid < hi);
    mid
}

fn blocks_covering(lo: usize, hi: usize, grain: usize) -> std::ops::Range<usize> {
    (lo / grain)..hi.div_ceil(grain)
}

/// Builds the fork-join mergesort DAG over `len` elements with leaf size
/// `grain`: structured, single-touch and properly nested (the Theorem 8
/// class). One block per `grain` elements per recursion level; the
/// per-level merge-buffer regions are allocated lazily as the recursion
/// deepens.
pub fn mergesort(len: usize, grain: usize) -> Dag {
    let len = len.max(1);
    let grain = grain.max(1);
    let mut alloc = BlockAlloc::new();
    let nblocks = len.div_ceil(grain);
    let input = alloc.region("input", nblocks);
    let mut levels: Vec<BlockRegion> = Vec::new();

    let mut b = DagBuilder::with_capacity(6 * nblocks + 4, 2 * nblocks.max(1));
    sort_rec(
        &mut b,
        ThreadId::MAIN,
        0,
        len,
        0,
        grain,
        &input,
        &mut levels,
        &mut alloc,
    );
    b.task(ThreadId::MAIN);
    b.finish().expect("mergesort builds a valid DAG")
}

#[allow(clippy::too_many_arguments)]
fn sort_rec(
    b: &mut DagBuilder,
    thread: ThreadId,
    lo: usize,
    hi: usize,
    depth: usize,
    grain: usize,
    input: &BlockRegion,
    levels: &mut Vec<BlockRegion>,
    alloc: &mut BlockAlloc,
) {
    if hi - lo <= grain {
        // Leaf: sort the run in place — one task reading its input block
        // (`lo` is grain-aligned, so the block is exclusively this leaf's).
        let n = b.task(thread);
        b.set_block(n, input.block(lo / grain));
        return;
    }
    if depth == levels.len() {
        // First internal call this deep: allocate the level's merge buffer
        // (one block map covering the whole array).
        levels.push(alloc.region(format!("merge/level{depth}"), input.len()));
    }
    let mid = aligned_mid(lo, hi, grain);
    let f = b.fork(thread);
    sort_rec(
        b,
        f.future_thread,
        lo,
        mid,
        depth + 1,
        grain,
        input,
        levels,
        alloc,
    );
    b.task(thread); // the fork's right child (continuation)
    sort_rec(b, thread, mid, hi, depth + 1, grain, input, levels, alloc);
    // Join (the single touch of the left future), then merge the two halves
    // into this level's buffer, one task per covered block.
    b.touch_thread(thread, f.future_thread);
    for blk in blocks_covering(lo, hi, grain) {
        let n = b.task(thread);
        b.set_block(n, levels[depth].block(blk));
    }
}

/// Builds the streaming (local-touch) mergesort DAG: the left half of every
/// range is sorted by a future thread that publishes its output in chunks
/// of `chunk` elements, each chunk a future value its parent touches in
/// order while merging with the inline-sorted right half.
///
/// Structured and local-touch but *not* single-touch for `chunk <
/// len/2` (each sorting thread is touched once per chunk) — the canonical
/// Theorem 12 recursion. `chunk >= len` degenerates to single-touch.
pub fn mergesort_streaming(len: usize, grain: usize, chunk: usize) -> Dag {
    let len = len.max(2);
    let grain = grain.max(1);
    let chunk = chunk.max(1);
    let mut alloc = BlockAlloc::new();
    let nblocks = len.div_ceil(grain);
    let mut b = DagBuilder::with_capacity(8 * nblocks.max(len / chunk + 1) + 8, len / grain + 2);

    // The root sort runs in a future thread so that even the outermost
    // output stream is published as touchable chunk values.
    let f = b.fork(ThreadId::MAIN);
    let values = stream_rec(&mut b, f.future_thread, 0, len, 0, grain, chunk, &mut alloc);
    let main = ThreadId::MAIN;
    b.task(main); // the fork's right child; cannot be a touch
    let output = alloc.region("main/output", values.len());
    for (i, v) in values.into_iter().enumerate() {
        b.touch(main, v);
        let n = b.task(main);
        b.set_block(n, output.block(i));
    }
    b.finish().expect("streaming mergesort builds a valid DAG")
}

/// Builds the sort of `[lo, hi)` on `thread` (a future thread), returning
/// the chunk-value nodes its parent must touch in order.
#[allow(clippy::too_many_arguments)]
fn stream_rec(
    b: &mut DagBuilder,
    thread: ThreadId,
    lo: usize,
    hi: usize,
    depth: usize,
    grain: usize,
    chunk: usize,
    alloc: &mut BlockAlloc,
) -> Vec<NodeId> {
    let label = |kind: &str| format!("d{depth}/{kind}/{lo}..{hi}");
    let len = hi - lo;
    let chunks = len.div_ceil(chunk);
    let value_region = alloc.region(label("values"), chunks);

    if len <= grain || len < 2 {
        // Leaf thread: sort the run (one task per covered block of its own
        // run buffer), then publish it as chunk values.
        let run = alloc.region(label("run"), len.div_ceil(grain));
        for blk in 0..run.len() {
            let n = b.task(thread);
            b.set_block(n, run.block(blk));
        }
        return publish_chunks(b, thread, &value_region);
    }

    let mid = lo + len / 2;
    // Left half: a child future thread that streams its own chunks.
    let f = b.fork(thread);
    let left_values = stream_rec(b, f.future_thread, lo, mid, depth + 1, grain, chunk, alloc);
    // Right half: sorted inline by this thread (modelled as a scan over its
    // own run buffer; the fork's right child is the first scan task).
    let run = alloc.region(label("run"), (hi - mid).div_ceil(grain));
    for blk in 0..run.len() {
        let n = b.task(thread);
        b.set_block(n, run.block(blk));
    }
    // Streaming merge: touch the left chunks in order, merge each into the
    // merge buffer, and publish this thread's own output chunks as we go.
    let merge = alloc.region(label("merge"), left_values.len());
    for (i, v) in left_values.into_iter().enumerate() {
        b.touch(thread, v);
        let n = b.task(thread);
        b.set_block(n, merge.block(i));
    }
    publish_chunks(b, thread, &value_region)
}

fn publish_chunks(b: &mut DagBuilder, thread: ThreadId, values: &BlockRegion) -> Vec<NodeId> {
    (0..values.len())
        .map(|i| {
            let v = b.task(thread);
            b.set_block(v, values.block(i));
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn mergesort_is_fork_join_single_touch() {
        let dag = mergesort(256, 16);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(class.local_touch);
        assert!(class.fork_join, "LIFO join order is properly nested");
        assert!(dag.num_threads() > 4);
    }

    #[test]
    fn streaming_mergesort_is_local_touch_not_single_touch() {
        let dag = mergesort_streaming(256, 8, 16);
        let class = classify(&dag);
        assert!(class.structured, "{:?}", class.violations);
        assert!(class.local_touch, "{:?}", class.violations);
        assert!(
            !class.single_touch,
            "streaming threads are touched once per chunk"
        );
    }

    #[test]
    fn whole_array_chunk_degenerates_to_single_touch() {
        let dag = mergesort_streaming(64, 8, 64);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
    }

    #[test]
    fn both_variants_execute_under_both_policies() {
        for dag in [mergesort(128, 8), mergesort_streaming(128, 8, 16)] {
            for policy in ForkPolicy::ALL {
                for p in [1usize, 4] {
                    let report = ParallelSimulator::new(SimConfig::new(p, 16, policy)).run(&dag);
                    assert!(report.completed, "{policy} P={p}");
                    assert_eq!(report.executed(), dag.num_nodes() as u64);
                }
            }
        }
    }

    #[test]
    fn degenerate_sizes_build() {
        for dag in [
            mergesort(1, 1),
            mergesort(3, 4),
            mergesort_streaming(2, 1, 1),
            mergesort_streaming(5, 2, 2),
        ] {
            assert!(dag.num_nodes() >= 2);
        }
    }

    #[test]
    fn parallelism_shortens_the_makespan() {
        let dag = mergesort(512, 8);
        let seq = ParallelSimulator::new(SimConfig::new(1, 32, ForkPolicy::FutureFirst)).run(&dag);
        let par = ParallelSimulator::new(SimConfig::new(8, 32, ForkPolicy::FutureFirst)).run(&dag);
        assert!(par.makespan < seq.makespan);
    }
}
