//! Closure-based versions of the application workloads for the real
//! runtime (`wsf-runtime`).
//!
//! These exercise the structured single-touch discipline on real threads:
//! every future handle is touched exactly once (the API enforces it), and
//! the same kernels exist as DAGs in [`crate::apps`] so simulator and
//! runtime results can be compared side by side.

use std::sync::Arc;
use wsf_runtime::Runtime;

/// Parallel Fibonacci with one future per recursive call.
pub fn fib(rt: &Arc<Runtime>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let rt2 = Arc::clone(rt);
    let left = rt.spawn_future(move || fib(&rt2, n - 1));
    let right = fib(rt, n - 2);
    left.touch() + right
}

/// Parallel sum of `data[lo..hi]` by divide and conquer with the given
/// sequential `grain`.
pub fn sum(rt: &Arc<Runtime>, data: &Arc<Vec<u64>>, lo: usize, hi: usize, grain: usize) -> u64 {
    if hi - lo <= grain.max(1) {
        return data[lo..hi].iter().sum();
    }
    let mid = lo + (hi - lo) / 2;
    let rt2 = Arc::clone(rt);
    let data2 = Arc::clone(data);
    let left = rt.spawn_future(move || sum(&rt2, &data2, lo, mid, grain));
    let right = sum(rt, data, mid, hi, grain);
    left.touch() + right
}

/// Creates `ways` mapper futures and touches them in creation order
/// (the Figure 5(a) pattern), reducing with `combine`.
pub fn map_reduce<T, M, C>(rt: &Arc<Runtime>, ways: usize, map: M, combine: C) -> Option<T>
where
    T: Send + 'static,
    M: Fn(usize) -> T + Send + Sync + 'static,
    C: Fn(T, T) -> T,
{
    let map = Arc::new(map);
    let futures: Vec<_> = (0..ways)
        .map(|w| {
            let map = Arc::clone(&map);
            rt.spawn_future(move || map(w))
        })
        .collect();
    futures.into_iter().map(|f| f.touch()).reduce(combine)
}

/// A two-stage pipeline: a producer future computes a batch, a transformer
/// future (which receives the producer's handle — the Figure 5(b) pattern)
/// touches it and post-processes it, and the caller touches the
/// transformer.
pub fn pipeline(rt: &Arc<Runtime>, items: usize) -> Vec<u64> {
    let producer = rt.spawn_future(move || (0..items as u64).collect::<Vec<u64>>());
    let transformer = rt.spawn_future(move || {
        producer
            .touch()
            .into_iter()
            .map(|x| x * x + 1)
            .collect::<Vec<u64>>()
    });
    transformer.touch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_runtime::SpawnPolicy;

    fn runtimes() -> Vec<Arc<Runtime>> {
        SpawnPolicy::ALL
            .iter()
            .map(|&p| Arc::new(Runtime::builder().threads(2).policy(p).build()))
            .collect()
    }

    #[test]
    fn fib_matches_reference() {
        for rt in runtimes() {
            assert_eq!(fib(&rt, 16), 987);
        }
    }

    #[test]
    fn sum_matches_reference() {
        let data: Arc<Vec<u64>> = Arc::new((0..10_000).collect());
        let expected: u64 = data.iter().sum();
        for rt in runtimes() {
            assert_eq!(sum(&rt, &data, 0, data.len(), 64), expected);
        }
    }

    #[test]
    fn map_reduce_touches_in_creation_order() {
        for rt in runtimes() {
            let result = map_reduce(&rt, 16, |w| w as u64 * 10, |a, b| a + b);
            assert_eq!(result, Some((0..16u64).map(|w| w * 10).sum()));
        }
    }

    #[test]
    fn pipeline_composes_futures() {
        for rt in runtimes() {
            let out = pipeline(&rt, 100);
            assert_eq!(out.len(), 100);
            assert_eq!(out[3], 10);
        }
    }
}
