//! Closure-based versions of the application workloads for the real
//! runtime (`wsf-runtime`).
//!
//! These exercise the structured single-touch discipline on real threads:
//! every future handle is touched exactly once (the API enforces it), and
//! the same kernels exist as DAGs in [`crate::apps`] so simulator and
//! runtime results can be compared side by side.

use std::sync::Arc;
use wsf_runtime::Runtime;

/// Parallel Fibonacci with one future per recursive call.
pub fn fib(rt: &Arc<Runtime>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let rt2 = Arc::clone(rt);
    let left = rt.spawn_future(move || fib(&rt2, n - 1));
    let right = fib(rt, n - 2);
    left.touch() + right
}

/// Parallel sum of `data[lo..hi]` by divide and conquer with the given
/// sequential `grain`.
pub fn sum(rt: &Arc<Runtime>, data: &Arc<Vec<u64>>, lo: usize, hi: usize, grain: usize) -> u64 {
    if hi - lo <= grain.max(1) {
        return data[lo..hi].iter().sum();
    }
    let mid = lo + (hi - lo) / 2;
    let rt2 = Arc::clone(rt);
    let data2 = Arc::clone(data);
    let left = rt.spawn_future(move || sum(&rt2, &data2, lo, mid, grain));
    let right = sum(rt, data, mid, hi, grain);
    left.touch() + right
}

/// Creates `ways` mapper futures and touches them in creation order
/// (the Figure 5(a) pattern), reducing with `combine`.
pub fn map_reduce<T, M, C>(rt: &Arc<Runtime>, ways: usize, map: M, combine: C) -> Option<T>
where
    T: Send + 'static,
    M: Fn(usize) -> T + Send + Sync + 'static,
    C: Fn(T, T) -> T,
{
    let map = Arc::new(map);
    let futures: Vec<_> = (0..ways)
        .map(|w| {
            let map = Arc::clone(&map);
            rt.spawn_future(move || map(w))
        })
        .collect();
    futures.into_iter().map(|f| f.touch()).reduce(combine)
}

/// Parallel mergesort: the left half is sorted by a future, the right half
/// inline, then the two sorted runs are merged — the runtime counterpart of
/// the [`crate::sort::mergesort`] DAG family.
pub fn merge_sort(rt: &Arc<Runtime>, mut data: Vec<u64>, grain: usize) -> Vec<u64> {
    let grain = grain.max(1);
    if data.len() <= grain {
        data.sort_unstable();
        return data;
    }
    let right_half = data.split_off(data.len() / 2);
    let rt2 = Arc::clone(rt);
    let left = rt.spawn_future(move || merge_sort(&rt2, data, grain));
    let right = merge_sort(rt, right_half, grain);
    merge(left.touch(), right)
}

fn merge(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// A 2D stencil sweep on the real runtime: `steps` Jacobi-style iterations
/// over a `rows × cols` grid, one future per row per step, each row
/// averaging itself with both neighbours. Unlike the one-sided wavefront
/// the DAG model needs ([`crate::stencil::stencil`]), the runtime does the
/// full both-neighbours exchange — each row future gets its own snapshot
/// handle, so every future is still touched exactly once.
pub fn stencil(rt: &Arc<Runtime>, rows: usize, cols: usize, steps: usize) -> Vec<Vec<u64>> {
    let rows = rows.max(1);
    let cols = cols.max(1);
    let mut grid: Arc<Vec<Vec<u64>>> = Arc::new(
        (0..rows)
            .map(|r| (0..cols).map(|c| ((r * cols + c) % 97) as u64).collect())
            .collect(),
    );
    for _ in 0..steps {
        let futures: Vec<_> = (0..rows)
            .map(|r| {
                let grid = Arc::clone(&grid);
                rt.spawn_future(move || {
                    (0..cols)
                        .map(|c| {
                            let up = grid[r.saturating_sub(1)][c];
                            let down = grid[(r + 1).min(grid.len() - 1)][c];
                            (up + grid[r][c] + down) / 3
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        grid = Arc::new(futures.into_iter().map(|f| f.touch()).collect());
    }
    Arc::try_unwrap(grid).unwrap_or_else(|g| (*g).clone())
}

/// The symmetric-exchange stencil on the real runtime: the same Jacobi
/// update as [`stencil`], but instead of giving every row future a
/// snapshot of the whole grid, each row publishes one *boundary-copy
/// future per neighbour per step* (an up copy and a down copy), and each
/// row's update future touches exactly the two copies its neighbours
/// published for it. Every future — row updates and boundary copies alike
/// — is touched exactly once, mirroring the per-`(neighbour, step)`
/// boundary blocks of the [`crate::stencil::stencil_exchange`] DAG family
/// (the last row of futures is touched by the caller, which plays the
/// super final node). Produces the same grid as [`stencil`], which E10
/// asserts.
pub fn stencil_exchange(
    rt: &Arc<Runtime>,
    rows: usize,
    cols: usize,
    steps: usize,
) -> Vec<Vec<u64>> {
    let rows = rows.max(1);
    let cols = cols.max(1);
    let mut grid: Vec<Arc<Vec<u64>>> = (0..rows)
        .map(|r| Arc::new((0..cols).map(|c| ((r * cols + c) % 97) as u64).collect()))
        .collect();
    for _ in 0..steps {
        // Publish the per-neighbour boundary copies for this step.
        let mut up_copy: Vec<Option<wsf_runtime::Future<Vec<u64>>>> = Vec::with_capacity(rows);
        let mut down_copy: Vec<Option<wsf_runtime::Future<Vec<u64>>>> = Vec::with_capacity(rows);
        for (r, row) in grid.iter().enumerate() {
            let for_upper = Arc::clone(row);
            up_copy.push((r > 0).then(|| rt.spawn_future(move || (*for_upper).clone())));
            let for_lower = Arc::clone(row);
            down_copy.push((r + 1 < rows).then(|| rt.spawn_future(move || (*for_lower).clone())));
        }
        // Row updates: each future touches its two neighbours' copies.
        let futures: Vec<_> = (0..rows)
            .map(|r| {
                let up = if r > 0 { down_copy[r - 1].take() } else { None };
                let down = if r + 1 < rows {
                    up_copy[r + 1].take()
                } else {
                    None
                };
                let mine = Arc::clone(&grid[r]);
                rt.spawn_future(move || {
                    let up = up.map(|f| f.touch());
                    let down = down.map(|f| f.touch());
                    (0..mine.len())
                        .map(|c| {
                            let u = up.as_ref().map_or(mine[c], |row| row[c]);
                            let d = down.as_ref().map_or(mine[c], |row| row[c]);
                            (u + mine[c] + d) / 3
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        grid = futures.into_iter().map(|f| Arc::new(f.touch())).collect();
    }
    grid.into_iter()
        .map(|row| Arc::try_unwrap(row).unwrap_or_else(|r| (*r).clone()))
        .collect()
}

/// A streaming pipeline with bounded backpressure: at most `window` item
/// futures are in flight at once; when the window is full the oldest
/// future is touched (FIFO — the Figure 5(a) order) before the next item
/// is spawned. The runtime counterpart of
/// [`crate::backpressure::batched_pipeline`].
pub fn streaming_pipeline(rt: &Arc<Runtime>, items: usize, window: usize) -> Vec<u64> {
    let window = window.max(1);
    let mut inflight = std::collections::VecDeque::with_capacity(window);
    let mut out = Vec::with_capacity(items);
    for i in 0..items as u64 {
        if inflight.len() == window {
            let f: wsf_runtime::Future<u64> = inflight.pop_front().expect("window is non-empty");
            out.push(f.touch());
        }
        inflight.push_back(rt.spawn_future(move || i * i + 1));
    }
    while let Some(f) = inflight.pop_front() {
        out.push(f.touch());
    }
    out
}

/// A two-stage pipeline: a producer future computes a batch, a transformer
/// future (which receives the producer's handle — the Figure 5(b) pattern)
/// touches it and post-processes it, and the caller touches the
/// transformer.
pub fn pipeline(rt: &Arc<Runtime>, items: usize) -> Vec<u64> {
    let producer = rt.spawn_future(move || (0..items as u64).collect::<Vec<u64>>());
    let transformer = rt.spawn_future(move || {
        producer
            .touch()
            .into_iter()
            .map(|x| x * x + 1)
            .collect::<Vec<u64>>()
    });
    transformer.touch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_runtime::SpawnPolicy;

    fn runtimes() -> Vec<Arc<Runtime>> {
        SpawnPolicy::ALL
            .iter()
            .map(|&p| Arc::new(Runtime::builder().threads(2).policy(p).build()))
            .collect()
    }

    #[test]
    fn fib_matches_reference() {
        for rt in runtimes() {
            assert_eq!(fib(&rt, 16), 987);
        }
    }

    #[test]
    fn sum_matches_reference() {
        let data: Arc<Vec<u64>> = Arc::new((0..10_000).collect());
        let expected: u64 = data.iter().sum();
        for rt in runtimes() {
            assert_eq!(sum(&rt, &data, 0, data.len(), 64), expected);
        }
    }

    #[test]
    fn map_reduce_touches_in_creation_order() {
        for rt in runtimes() {
            let result = map_reduce(&rt, 16, |w| w as u64 * 10, |a, b| a + b);
            assert_eq!(result, Some((0..16u64).map(|w| w * 10).sum()));
        }
    }

    #[test]
    fn merge_sort_matches_std_sort() {
        let data: Vec<u64> = (0..2_000u64).map(|i| (i * 7919) % 1_000).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        for rt in runtimes() {
            assert_eq!(merge_sort(&rt, data.clone(), 32), expected);
        }
    }

    #[test]
    fn stencil_matches_sequential_reference() {
        let (rows, cols, steps) = (8usize, 16usize, 4usize);
        // Sequential reference with the same update rule.
        let mut reference: Vec<Vec<u64>> = (0..rows)
            .map(|r| (0..cols).map(|c| ((r * cols + c) % 97) as u64).collect())
            .collect();
        for _ in 0..steps {
            reference = (0..rows)
                .map(|r| {
                    (0..cols)
                        .map(|c| {
                            let up = reference[r.saturating_sub(1)][c];
                            let down = reference[(r + 1).min(rows - 1)][c];
                            (up + reference[r][c] + down) / 3
                        })
                        .collect()
                })
                .collect();
        }
        for rt in runtimes() {
            assert_eq!(stencil(&rt, rows, cols, steps), reference);
        }
    }

    #[test]
    fn stencil_exchange_matches_snapshot_stencil() {
        // The per-neighbour-copy exchange computes the same grid as the
        // snapshot formulation (both clamp missing neighbours to self).
        let (rows, cols, steps) = (8usize, 16usize, 4usize);
        for rt in runtimes() {
            assert_eq!(
                stencil_exchange(&rt, rows, cols, steps),
                stencil(&rt, rows, cols, steps)
            );
        }
        // Degenerate shapes: one row has no neighbours to exchange with.
        for rt in runtimes() {
            assert_eq!(
                stencil_exchange(&rt, 1, 4, 3),
                stencil(&rt, 1, 4, 3),
                "single-row exchange"
            );
        }
    }

    #[test]
    fn streaming_pipeline_bounds_the_window_and_keeps_order() {
        for rt in runtimes() {
            for window in [1usize, 4, 100] {
                let out = streaming_pipeline(&rt, 50, window);
                let expected: Vec<u64> = (0..50u64).map(|i| i * i + 1).collect();
                assert_eq!(out, expected, "window={window}");
            }
        }
    }

    #[test]
    fn pipeline_composes_futures() {
        for rt in runtimes() {
            let out = pipeline(&rt, 100);
            assert_eq!(out.len(), 100);
            assert_eq!(out[3], 10);
        }
    }
}
