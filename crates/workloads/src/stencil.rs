//! 2D stencil grids with boundary-exchange futures (Theorem 12/16/18
//! workloads).
//!
//! Two families over the same `rows × width × steps` grid, each row a
//! future thread in a fork chain (row `r` forks row `r+1`):
//!
//! * [`stencil`] — the **one-sided wavefront** sweep: at every step a row
//!
//!   1. updates its `width` interior blocks (the same physical blocks every
//!      step — the temporal locality a stencil exists to exploit),
//!   2. touches the boundary future its child row (the row below) published
//!      for that step, and
//!   3. publishes its own boundary for the step as a future value its
//!      parent row touches.
//!
//!   Every row thread is touched once per step by its *parent* row, so the
//!   computation is structured local-touch (Definition 3) — with
//!   `steps = 1` it collapses to single-touch. Feeds E13.
//!
//! * [`stencil_exchange`] — the **symmetric boundary exchange** (Jacobi):
//!   every step a row touches the boundary copies *both* neighbours
//!   published for the previous step, updates its interior, and publishes
//!   one fresh boundary copy *per neighbour* (an up copy and a down copy,
//!   so no value is ever touched twice — the local-touch model forbids
//!   that). The last step's copies have no consumer, so the computation
//!   can only be closed with [`DagBuilder::finish_with_super_final`]
//!   (Section 6.2): at `steps = 1` there are no touches at all and the DAG
//!   is exactly the Definition 13 class (structured single-touch with a
//!   super final node, Theorem 16); at `steps > 1` the downward copies are
//!   touched by *child* rows, which leaves the plain local-touch class
//!   (Definition 3) — the super-final family the Theorem 16/18 bounds are
//!   about, measured in E16. The real-runtime counterpart is
//!   [`crate::runtime_apps::stencil_exchange`] (one future handle per
//!   `(neighbour, step)`), validated in E10.
//!
//! Interior, boundary and output blocks come from one shared [`BlockAlloc`]
//! so rows never alias each other (collision-checked in
//! `crates/workloads/tests/block_collisions.rs`).

use crate::block_alloc::{BlockAlloc, BlockRegion};
use wsf_dag::{Dag, DagBuilder, NodeId, ThreadId};

/// Builds the wavefront stencil DAG: `rows` row threads (row 0 is the main
/// thread), `width` interior blocks per row, `steps` time steps.
pub fn stencil(rows: usize, width: usize, steps: usize) -> Dag {
    let rows = rows.max(1);
    let width = width.max(1);
    let steps = steps.max(1);
    let mut alloc = BlockAlloc::new();
    let interior: Vec<_> = (0..rows)
        .map(|r| alloc.region(format!("row{r}/interior"), width))
        .collect();
    let boundary: Vec<_> = (1..rows)
        .map(|r| alloc.region(format!("row{r}/boundary"), steps))
        .collect();

    let mut b = DagBuilder::with_capacity(rows * steps * (width + 2) + 4, rows);

    // The chain of row threads: main is row 0, row r forks row r+1.
    let mut threads = vec![ThreadId::MAIN];
    for _ in 1..rows {
        let parent = *threads.last().unwrap();
        let f = b.fork(parent);
        threads.push(f.future_thread);
    }

    // Build deepest row first so parents can touch published boundaries.
    let mut published: Vec<Vec<NodeId>> = vec![Vec::new(); rows];
    for r in (1..rows).rev() {
        let thread = threads[r];
        for s in 0..steps {
            for w in 0..width {
                let n = b.task(thread);
                b.set_block(n, interior[r].block(w));
            }
            if r + 1 < rows {
                b.touch(thread, published[r + 1][s]);
            }
            let value = b.task(thread);
            b.set_block(value, boundary[r - 1].block(s));
            published[r].push(value);
        }
    }

    // Row 0 (the main thread) consumes row 1's boundaries step by step.
    let main = ThreadId::MAIN;
    let below: Vec<Option<NodeId>> = if rows > 1 {
        published[1].iter().copied().map(Some).collect()
    } else {
        vec![None; steps]
    };
    for value in below {
        for w in 0..width {
            let n = b.task(main);
            b.set_block(n, interior[0].block(w));
        }
        if let Some(value) = value {
            b.touch(main, value);
        }
    }
    b.task(main);
    b.finish().expect("stencil builds a valid DAG")
}

/// Builds the symmetric-exchange stencil DAG (Theorem 16/18 workload):
/// `rows` row threads (row 0 is the main thread), `width` interior blocks
/// per row, `steps` Jacobi time steps.
///
/// Per step every row touches the boundary copies its neighbours published
/// for the *previous* step (none at step 0 — the initial boundaries are
/// local data), updates its `width` interior blocks, and publishes one
/// fresh boundary-copy value per neighbour (blocks drawn from per-row
/// `up-boundary` / `down-boundary` [`BlockAlloc`] regions, one block per
/// step, so no value is touched twice). The final step's copies have no
/// consumer, so the DAG is closed with
/// [`DagBuilder::finish_with_super_final`].
///
/// Classification (asserted in this module's tests):
///
/// * `steps = 1` — no touches at all; every row thread is synchronized
///   only by the super final node: exactly Definition 13 (structured
///   single-touch with a super final node), the Theorem 16 class.
/// * `steps > 1` — each interior row is touched once per step by its
///   parent (the up copy) *and* once by its child (the down copy), so the
///   computation is structured with a super final node but **not** plain
///   local-touch: the symmetric exchange is precisely what the one-sided
///   [`stencil`] cannot express, and the regime the Theorem 16/18
///   super-final bounds are measured on in E16.
pub fn stencil_exchange(rows: usize, width: usize, steps: usize) -> Dag {
    let rows = rows.max(1);
    let width = width.max(1);
    let steps = steps.max(1);
    let mut alloc = BlockAlloc::new();
    let interior: Vec<_> = (0..rows)
        .map(|r| alloc.region(format!("row{r}/interior"), width))
        .collect();
    // Per-neighbour boundary copies: row r's up copies are consumed by row
    // r-1, its down copies by row r+1 — one block per step per direction.
    let up: Vec<Option<BlockRegion>> = (0..rows)
        .map(|r| (r > 0).then(|| alloc.region(format!("row{r}/up-boundary"), steps)))
        .collect();
    let down: Vec<Option<BlockRegion>> = (0..rows)
        .map(|r| (r + 1 < rows).then(|| alloc.region(format!("row{r}/down-boundary"), steps)))
        .collect();

    let mut b = DagBuilder::with_capacity(rows * steps * (width + 4) + 4, rows);

    // The chain of row threads: main is row 0, row r forks row r+1.
    let mut threads = vec![ThreadId::MAIN];
    for _ in 1..rows {
        let parent = *threads.last().unwrap();
        let f = b.fork(parent);
        threads.push(f.future_thread);
    }

    // Step-major construction: every step-s touch consumes a copy
    // published at step s-1, which already exists, so construction order
    // stays topological. `prev_*[r]` hold the copies row r published last
    // step.
    let mut prev_up: Vec<Option<NodeId>> = vec![None; rows];
    let mut prev_down: Vec<Option<NodeId>> = vec![None; rows];
    for s in 0..steps {
        let mut cur_up: Vec<Option<NodeId>> = vec![None; rows];
        let mut cur_down: Vec<Option<NodeId>> = vec![None; rows];
        for r in 0..rows {
            let t = threads[r];
            // Touch both neighbours' previous-step boundary copies. (At
            // step 0 there are none; the first node of each future thread
            // is an interior task, which also keeps a fork's right child
            // from being a touch.)
            if r > 0 {
                if let Some(src) = prev_down[r - 1] {
                    b.touch(t, src);
                }
            }
            if r + 1 < rows {
                if let Some(src) = prev_up[r + 1] {
                    b.touch(t, src);
                }
            }
            // Update the interior: the same physical blocks every step.
            for w in 0..width {
                let n = b.task(t);
                b.set_block(n, interior[r].block(w));
            }
            // Publish this step's per-neighbour copies.
            if let Some(region) = &up[r] {
                let n = b.task(t);
                b.set_block(n, region.block(s));
                cur_up[r] = Some(n);
            }
            if let Some(region) = &down[r] {
                let n = b.task(t);
                b.set_block(n, region.block(s));
                cur_down[r] = Some(n);
            }
        }
        prev_up = cur_up;
        prev_down = cur_down;
    }
    b.finish_with_super_final()
        .expect("exchange stencil builds a valid super-final DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn stencil_is_local_touch_not_single_touch() {
        let dag = stencil(4, 3, 5);
        let class = classify(&dag);
        assert!(class.structured, "{:?}", class.violations);
        assert!(class.local_touch, "{:?}", class.violations);
        assert!(!class.single_touch, "rows are touched once per step");
    }

    #[test]
    fn single_step_stencil_is_single_touch() {
        let dag = stencil(5, 4, 1);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(class.is_structured_local_touch());
    }

    #[test]
    fn one_row_grid_is_a_serial_chain() {
        let dag = stencil(1, 4, 3);
        assert_eq!(dag.num_threads(), 1);
        assert!(classify(&dag).fork_join);
    }

    #[test]
    fn stencil_executes_under_both_policies() {
        let dag = stencil(5, 3, 4);
        for policy in ForkPolicy::ALL {
            for p in [1usize, 4] {
                let report = ParallelSimulator::new(SimConfig::new(p, 16, policy)).run(&dag);
                assert!(report.completed, "{policy} P={p}");
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
        }
    }

    #[test]
    fn exchange_stencil_is_super_final_not_plain_local_touch() {
        // steps > 1: the downward copies are touched by child rows, which
        // no plain local-touch computation can express — the whole point
        // of the super-final family.
        let dag = stencil_exchange(4, 3, 5);
        let class = classify(&dag);
        assert!(class.super_final);
        assert!(class.structured, "{:?}", class.violations);
        assert!(
            !class.local_touch,
            "symmetric exchange must leave the plain local-touch class"
        );
        assert!(
            !class.single_touch,
            "rows are touched once per step per neighbour"
        );
        assert!(!class.fork_join);
    }

    #[test]
    fn single_step_exchange_is_definition_13() {
        // steps = 1: no exchanges happen (step s consumes step s-1's
        // copies), so every row thread is synchronized only by the super
        // final node — exactly the Definition 13 / Theorem 16 class.
        let dag = stencil_exchange(5, 4, 1);
        let class = classify(&dag);
        assert!(class.super_final);
        assert!(class.structured, "{:?}", class.violations);
        assert!(class.single_touch, "{:?}", class.violations);
        assert!(class.local_touch);
    }

    #[test]
    fn exchange_touch_counts_are_one_per_neighbour_per_round() {
        let (rows, width, steps) = (5usize, 2usize, 4usize);
        let dag = stencil_exchange(rows, width, steps);
        // Every published copy is touched at most once (no value is
        // touched twice), and each row thread r in 1..rows-1 is touched
        // (steps-1) times by each of its two neighbours.
        for t in dag.thread_ids().filter(|t| !t.is_main()) {
            let touches: Vec<_> = dag
                .touches_of_thread(t)
                .into_iter()
                .filter(|&x| x != dag.final_node())
                .collect();
            let r = t.index(); // row r runs on thread r by construction
            let neighbours = if r + 1 < rows { 2 } else { 1 };
            assert_eq!(
                touches.len(),
                neighbours * (steps - 1),
                "row {r}: one touch per neighbour per exchange round"
            );
        }
    }

    #[test]
    fn exchange_stencil_executes_under_both_policies() {
        let dag = stencil_exchange(5, 3, 4);
        for policy in ForkPolicy::ALL {
            for p in [1usize, 4] {
                let report = ParallelSimulator::new(SimConfig::new(p, 16, policy)).run(&dag);
                assert!(report.completed, "{policy} P={p}");
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
        }
    }

    #[test]
    fn exchange_one_row_grid_is_a_serial_chain() {
        let dag = stencil_exchange(1, 4, 3);
        assert_eq!(dag.num_threads(), 1);
        assert_eq!(dag.num_touches(), 0);
    }

    #[test]
    fn exchange_boundary_blocks_are_per_neighbour_per_step() {
        // Interior footprint stays `width` per row; boundary footprint is
        // one block per (row, neighbour, step): 2(rows-1) regions of
        // `steps` blocks each.
        let (rows, width) = (4usize, 3usize);
        let a = stencil_exchange(rows, width, 2);
        let b = stencil_exchange(rows, width, 8);
        assert_eq!(a.num_blocks(), rows * width + 2 * (rows - 1) * 2);
        assert_eq!(b.num_blocks(), rows * width + 2 * (rows - 1) * 8);
    }

    #[test]
    fn interior_blocks_are_reused_across_steps() {
        // The stencil's whole point: a row's interior footprint is `width`
        // blocks regardless of the step count.
        let a = stencil(3, 4, 2);
        let b = stencil(3, 4, 8);
        assert_eq!(a.num_blocks(), 4 * 3 + 2 * 2);
        assert_eq!(b.num_blocks(), 4 * 3 + 2 * 8);
    }
}
