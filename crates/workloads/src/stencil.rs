//! 2D stencil grids with boundary-exchange futures (Theorem 12 workload).
//!
//! A `rows × width` grid iterated for `steps` time steps as a one-sided
//! wavefront sweep: each row is a future thread in a chain (row `r` forks
//! row `r+1`), and at every step a row
//!
//! 1. updates its `width` interior blocks (the same physical blocks every
//!    step — the temporal locality a stencil exists to exploit),
//! 2. touches the boundary future its child row (the row below) published
//!    for that step, and
//! 3. publishes its own boundary for the step as a future value its parent
//!    row touches.
//!
//! Every row thread is touched once per step by its *parent* row, so the
//! computation is structured local-touch (Definition 3) — with `steps = 1`
//! it collapses to single-touch. The symmetric both-neighbours exchange
//! needs a value touched twice, which the model forbids; the real-runtime
//! counterpart ([`crate::runtime_apps::stencil`]) does the full exchange
//! with one future handle per (neighbour, step).
//!
//! Interior, boundary and output blocks come from one shared [`BlockAlloc`]
//! so rows never alias each other (collision-checked in
//! `crates/workloads/tests/block_collisions.rs`).

use crate::block_alloc::BlockAlloc;
use wsf_dag::{Dag, DagBuilder, NodeId, ThreadId};

/// Builds the wavefront stencil DAG: `rows` row threads (row 0 is the main
/// thread), `width` interior blocks per row, `steps` time steps.
pub fn stencil(rows: usize, width: usize, steps: usize) -> Dag {
    let rows = rows.max(1);
    let width = width.max(1);
    let steps = steps.max(1);
    let mut alloc = BlockAlloc::new();
    let interior: Vec<_> = (0..rows)
        .map(|r| alloc.region(format!("row{r}/interior"), width))
        .collect();
    let boundary: Vec<_> = (1..rows)
        .map(|r| alloc.region(format!("row{r}/boundary"), steps))
        .collect();

    let mut b = DagBuilder::with_capacity(rows * steps * (width + 2) + 4, rows);

    // The chain of row threads: main is row 0, row r forks row r+1.
    let mut threads = vec![ThreadId::MAIN];
    for _ in 1..rows {
        let parent = *threads.last().unwrap();
        let f = b.fork(parent);
        threads.push(f.future_thread);
    }

    // Build deepest row first so parents can touch published boundaries.
    let mut published: Vec<Vec<NodeId>> = vec![Vec::new(); rows];
    for r in (1..rows).rev() {
        let thread = threads[r];
        for s in 0..steps {
            for w in 0..width {
                let n = b.task(thread);
                b.set_block(n, interior[r].block(w));
            }
            if r + 1 < rows {
                b.touch(thread, published[r + 1][s]);
            }
            let value = b.task(thread);
            b.set_block(value, boundary[r - 1].block(s));
            published[r].push(value);
        }
    }

    // Row 0 (the main thread) consumes row 1's boundaries step by step.
    let main = ThreadId::MAIN;
    let below: Vec<Option<NodeId>> = if rows > 1 {
        published[1].iter().copied().map(Some).collect()
    } else {
        vec![None; steps]
    };
    for value in below {
        for w in 0..width {
            let n = b.task(main);
            b.set_block(n, interior[0].block(w));
        }
        if let Some(value) = value {
            b.touch(main, value);
        }
    }
    b.task(main);
    b.finish().expect("stencil builds a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsf_core::{ForkPolicy, ParallelSimulator, SimConfig};
    use wsf_dag::classify;

    #[test]
    fn stencil_is_local_touch_not_single_touch() {
        let dag = stencil(4, 3, 5);
        let class = classify(&dag);
        assert!(class.structured, "{:?}", class.violations);
        assert!(class.local_touch, "{:?}", class.violations);
        assert!(!class.single_touch, "rows are touched once per step");
    }

    #[test]
    fn single_step_stencil_is_single_touch() {
        let dag = stencil(5, 4, 1);
        let class = classify(&dag);
        assert!(class.is_structured_single_touch(), "{:?}", class.violations);
        assert!(class.is_structured_local_touch());
    }

    #[test]
    fn one_row_grid_is_a_serial_chain() {
        let dag = stencil(1, 4, 3);
        assert_eq!(dag.num_threads(), 1);
        assert!(classify(&dag).fork_join);
    }

    #[test]
    fn stencil_executes_under_both_policies() {
        let dag = stencil(5, 3, 4);
        for policy in ForkPolicy::ALL {
            for p in [1usize, 4] {
                let report = ParallelSimulator::new(SimConfig::new(p, 16, policy)).run(&dag);
                assert!(report.completed, "{policy} P={p}");
                assert_eq!(report.executed(), dag.num_nodes() as u64);
            }
        }
    }

    #[test]
    fn interior_blocks_are_reused_across_steps() {
        // The stencil's whole point: a row's interior footprint is `width`
        // blocks regardless of the step count.
        let a = stencil(3, 4, 2);
        let b = stencil(3, 4, 8);
        assert_eq!(a.num_blocks(), 4 * 3 + 2 * 2);
        assert_eq!(b.num_blocks(), 4 * 3 + 2 * 8);
    }
}
