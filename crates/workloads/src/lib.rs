//! # wsf-workloads — workload generators for the cache-locality experiments
//!
//! Two kinds of workloads:
//!
//! * [`figures`] — faithful reconstructions of the worst-case DAG
//!   constructions in the paper (Figures 3, 4, 5, 6, 7 and 8), each bundled
//!   with the adversarial schedule its proof describes, so the lower-bound
//!   executions of Theorems 9 and 10 can be replayed on the simulator;
//! * application-shaped workloads — fork-join divide and conquer
//!   ([`apps`]), local-touch pipelines ([`pipeline`]), random structured
//!   single-touch DAGs ([`random`]) and closure-based versions of the same
//!   programs for the real runtime ([`runtime_apps`]);
//! * the Theorem-12 workload suite — divide-and-conquer mergesort in
//!   fork-join and streaming-merge variants ([`sort`]), wavefront stencil
//!   grids with boundary-exchange futures ([`stencil`]) and streaming
//!   pipelines with bounded backpressure ([`backpressure`]), all drawing
//!   their memory-block ids from the shared collision-checked
//!   [`block_alloc::BlockAlloc`];
//! * the Theorem-16/18 super-final family — the symmetric-exchange stencil
//!   ([`stencil::stencil_exchange`]), whose per-neighbour boundary copies
//!   need a super final node to close the computation;
//! * [`streaming`] — seeded replayable stream sources and order-sensitive
//!   stage chains for the fault-tolerant epoch engine
//!   (`wsf_runtime::StreamEngine`), feeding the crash-recovery experiment
//!   (E18);
//! * [`dag_exec`] — a chain interpreter that executes any structured DAG
//!   on the real pool under the parsimonious discipline, emitting the
//!   block-touch traces of the hardware-validation loop (E21);
//! * [`presets`] — named size presets scaling every suite family up to
//!   ~10^6 distinct blocks;
//! * [`submission`] — wire-encodable, allocation-free rebuildable shape
//!   descriptions of the suite families for the serving front end
//!   (`wsf-server`), with exact declared-footprint accounting.
//!
//! Every generator documents which experiment (E1–E16 in `docs/DESIGN.md`)
//! it feeds and which figure or theorem of the paper it reproduces.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod backpressure;
pub mod block_alloc;
pub mod dag_exec;
pub mod figures;
pub mod pipeline;
pub mod presets;
pub mod random;
pub mod runtime_apps;
pub mod sort;
pub mod stencil;
pub mod streaming;
pub mod submission;
