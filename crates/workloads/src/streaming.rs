//! Deterministic streaming sources and stage sets for the epoch engine.
//!
//! `wsf_runtime`'s [`StreamEngine`](wsf_runtime::StreamEngine) executes an
//! unbounded item stream through a chain of [`StreamStage`]s with a
//! commit barrier every N items. This module provides the workload side used by the
//! crash-recovery experiment (E18) and the streaming benchmarks: a seeded
//! replayable source and a family of order-sensitive mixing stages whose
//! committed states detect any lost, duplicated, or reordered item —
//! which is what makes "exactly-once after recovery" checkable as a
//! simple state equality.
//!
//! The per-epoch *cache* accounting for E18 comes from the matching DAG
//! shape: an epoch of `items` items through `stages` stages with window
//! `w` touches blocks exactly like
//! [`crate::backpressure::batched_pipeline`]`(stages, items, w, work)`,
//! which the experiment replays on the simulator per committed epoch.

use std::sync::Arc;
use wsf_runtime::{StreamSource, StreamStage};

/// `splitmix64`: the stream's deterministic item generator.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A finite, seeded, indexed stream: item `i` is a pure function of
/// `(seed, i)`, so any epoch can be re-read for retry or restore without
/// replaying the prefix.
#[derive(Clone, Debug)]
pub struct SeededStream {
    /// Stream seed.
    pub seed: u64,
    /// Stream length in items.
    pub len: u64,
}

impl SeededStream {
    /// A stream of `len` items drawn from `seed`.
    pub fn new(seed: u64, len: u64) -> Self {
        SeededStream { seed, len }
    }
}

impl StreamSource for SeededStream {
    fn item(&self, index: u64) -> Option<u64> {
        (index < self.len)
            .then(|| splitmix64(self.seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f)))
    }
}

/// An order-sensitive mixing stage: `transform` is a pure mix of the
/// epoch-start state and the input (safe to run concurrently and to
/// re-run on retry); `fold` rotates before adding, so committed states
/// change if any item is lost, duplicated, or folded out of order.
#[derive(Clone, Debug)]
pub struct MixStage {
    /// Initial state.
    pub init: u64,
    /// Multiplier used by the transform (forced odd).
    pub mul: u64,
    /// Additive constant used by the transform.
    pub add: u64,
}

impl StreamStage for MixStage {
    fn init(&self) -> u64 {
        self.init
    }

    fn transform(&self, state: u64, input: u64) -> u64 {
        (input ^ state)
            .wrapping_mul(self.mul | 1)
            .wrapping_add(self.add)
            .rotate_left(7)
    }

    fn fold(&self, state: u64, output: u64) -> u64 {
        state.rotate_left(5).wrapping_add(output)
    }
}

/// A chain of `stages` seeded [`MixStage`]s (the streaming counterpart of
/// the `batched_pipeline` stage topology).
pub fn mix_stages(stages: usize, seed: u64) -> Vec<Arc<dyn StreamStage>> {
    (0..stages.max(1) as u64)
        .map(|s| {
            let base = splitmix64(seed ^ (s.wrapping_mul(0xff51_afd7_ed55_8ccd)));
            Arc::new(MixStage {
                init: splitmix64(base),
                mul: splitmix64(base ^ 1),
                add: splitmix64(base ^ 2),
            }) as Arc<dyn StreamStage>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use wsf_runtime::{sequential_reference, EpochConfig, Runtime, StreamEngine};

    #[test]
    fn seeded_stream_is_replayable_and_finite() {
        let s = SeededStream::new(42, 10);
        let first: Vec<_> = (0..10).map(|i| s.item(i).unwrap()).collect();
        let again: Vec<_> = (0..10).map(|i| s.item(i).unwrap()).collect();
        assert_eq!(first, again, "indexed reads replay identically");
        assert!(s.item(10).is_none());
        assert_ne!(first[0], first[1], "items vary");
        assert_ne!(SeededStream::new(43, 10).item(0), s.item(0), "seeds matter");
    }

    #[test]
    fn mix_stages_are_order_sensitive() {
        let stage = MixStage {
            init: 7,
            mul: 3,
            add: 11,
        };
        let (a, b) = (stage.transform(7, 100), stage.transform(7, 200));
        let ab = stage.fold(stage.fold(7, a), b);
        let ba = stage.fold(stage.fold(7, b), a);
        assert_ne!(ab, ba, "fold order must be visible in the state");
    }

    #[test]
    fn engine_runs_the_seeded_workload_to_the_reference_states() {
        let stages = mix_stages(3, 9);
        let src = SeededStream::new(77, 50);
        let rt = StdArc::new(Runtime::new(2));
        let cfg = EpochConfig {
            epoch_items: 16,
            window: 4,
            ..EpochConfig::default()
        };
        let mut engine = StreamEngine::new(rt, stages.clone(), cfg);
        let report = engine.run(&src).expect("workload commits");
        assert_eq!(report.epochs_committed, 4); // 16+16+16+2
        assert_eq!(
            engine.committed_states(),
            sequential_reference(&stages, &src, 16)
        );
    }
}
