//! Scale tests for the workload-suite size presets, mirroring
//! `crates/core/tests/scale.rs`: the ~10^5-block presets must build and
//! simulate within the CI time budget, and the `#[ignore]`d ~10^6-block
//! presets are the manual stress for the dense block→slot index's memory
//! footprint and grow path (run with
//! `cargo test -p wsf-workloads --release --test scale -- --ignored`).

use wsf_core::{ParallelSimulator, RandomScheduler, SimConfig, SimScratch};
use wsf_workloads::presets::{self, BlockScale};

/// Builds every preset family at `scale`, asserts its block budget, and
/// simulates it once at a capacity deep inside the indexed-cache regime
/// (C = 4096), so the dense index actually grows to the declared space.
fn build_and_simulate(scale: BlockScale, min_blocks: usize) {
    let config = SimConfig {
        processors: 8,
        cache_lines: 4096,
        ..SimConfig::default()
    };
    let sim = ParallelSimulator::new(config);
    let mut scratch = SimScratch::new();
    for (name, build) in presets::FAMILIES {
        let dag = build(scale);
        assert!(
            dag.num_blocks() >= min_blocks,
            "{name}: {} blocks is below the {min_blocks} floor",
            dag.num_blocks()
        );
        let seq = sim.sequential(&dag);
        let mut sched = RandomScheduler::new(config.seed);
        let report = sim.run_with_scratch(&dag, &seq, &mut sched, false, &mut scratch);
        assert!(
            report.completed,
            "{name}: budget must suffice at this scale"
        );
        assert_eq!(report.executed(), dag.num_nodes() as u64, "{name}");
    }
}

#[test]
fn hundred_k_block_presets_build_and_simulate() {
    build_and_simulate(BlockScale::HundredK, 90_000);
}

/// The acceptance bar for the 10^6-block grow-out: every family — the
/// exchange stencil in particular — builds and simulates at ≥ 10^6
/// distinct blocks.
#[test]
#[ignore = "10^6-block instances; seconds in release, minutes in debug"]
fn million_block_presets_build_and_simulate() {
    build_and_simulate(BlockScale::Million, 1_000_000);
}
