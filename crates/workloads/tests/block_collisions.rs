//! Block-id collision regression suite for the workload builders.
//!
//! The old `pipeline()` computed value-node block ids as
//! `s*items*work + item` and work-node ids as
//! `s*items*work + item*work + w`; for `work > 1` the two formulas overlap,
//! so touched values aliased unrelated work blocks and every pipeline
//! cache-miss table was silently skewed. These tests pin down the contract
//! the shared `BlockAlloc` now guarantees for every builder in the
//! Theorem-12 suite: each *intentional-locality role* (a stage's work
//! chain, a value slot, a merge buffer, a row interior, ...) owns block ids
//! no other role can produce.
//!
//! `pipeline`, `batched_pipeline` and both mergesort variants use every
//! block id for exactly one node, so their check is the strongest one:
//! every block in the DAG appears on exactly one node. The stencil reuses a
//! row's interior blocks across time steps *on the same row* by design, so
//! its check is role-disjointness: interior blocks and boundary (value)
//! blocks never collide, and no two rows share a block.

use std::collections::{HashMap, HashSet};
use wsf_dag::Dag;
use wsf_workloads::backpressure::batched_pipeline;
use wsf_workloads::pipeline::pipeline;
use wsf_workloads::sort::{mergesort, mergesort_streaming};
use wsf_workloads::stencil::{stencil, stencil_exchange};

/// Asserts every block id in `dag` is used by exactly one node.
fn assert_blocks_unique(name: &str, dag: &Dag) {
    let mut seen = HashMap::new();
    for id in dag.node_ids() {
        if let Some(blk) = dag.block_of(id) {
            if let Some(prev) = seen.insert(blk, id) {
                panic!("{name}: block {blk} assigned to both {prev} and {id}");
            }
        }
    }
    assert!(!seen.is_empty(), "{name}: no blocks at all");
}

/// The set of blocks on touch-source (value) nodes.
fn value_blocks(dag: &Dag) -> HashSet<wsf_dag::Block> {
    dag.touches()
        .filter_map(|x| dag.future_parent(x))
        .filter_map(|v| dag.block_of(v))
        .collect()
}

#[test]
fn pipeline_blocks_are_collision_free() {
    // The regression: with work > 1 the old formulas collided. Exercise
    // several shapes including the original failing ones.
    for (stages, items, work) in [(3, 4, 2), (2, 8, 3), (4, 6, 3), (1, 5, 4)] {
        let dag = pipeline(stages, items, work);
        assert_blocks_unique(&format!("pipeline({stages},{items},{work})"), &dag);
    }
}

#[test]
fn pipeline_value_blocks_disjoint_from_work_blocks() {
    let dag = pipeline(3, 5, 3);
    let values = value_blocks(&dag);
    assert!(!values.is_empty());
    for id in dag.node_ids() {
        if dag.node(id).is_future_parent() {
            continue;
        }
        if let Some(blk) = dag.block_of(id) {
            assert!(
                !values.contains(&blk),
                "{id}: non-value node aliases value block {blk}"
            );
        }
    }
}

#[test]
fn batched_pipeline_blocks_are_collision_free() {
    for (stages, items, window, work) in [(3, 8, 4, 2), (2, 10, 3, 3), (3, 6, 1, 2)] {
        let dag = batched_pipeline(stages, items, window, work);
        assert_blocks_unique(
            &format!("batched_pipeline({stages},{items},{window},{work})"),
            &dag,
        );
    }
}

#[test]
fn mergesort_blocks_are_collision_free() {
    for (len, grain) in [(64, 8), (100, 7), (256, 16)] {
        assert_blocks_unique(&format!("mergesort({len},{grain})"), &mergesort(len, grain));
    }
    for (len, grain, chunk) in [(64, 4, 8), (100, 8, 5)] {
        assert_blocks_unique(
            &format!("mergesort_streaming({len},{grain},{chunk})"),
            &mergesort_streaming(len, grain, chunk),
        );
    }
}

#[test]
fn stencil_roles_are_disjoint() {
    let (rows, width, steps) = (4usize, 3usize, 5usize);
    let dag = stencil(rows, width, steps);
    let boundaries = value_blocks(&dag);
    // Interior blocks (everything that is not a published boundary) must
    // never alias a boundary block...
    let mut interior_owner: HashMap<wsf_dag::Block, wsf_dag::ThreadId> = HashMap::new();
    for id in dag.node_ids() {
        let Some(blk) = dag.block_of(id) else {
            continue;
        };
        if dag.node(id).is_future_parent() {
            continue;
        }
        assert!(
            !boundaries.contains(&blk),
            "{id}: interior node aliases boundary block {blk}"
        );
        // ... and interior blocks are private to one row thread (reuse
        // across steps within the row is the intended locality).
        let owner = dag.node(id).thread();
        if let Some(prev) = interior_owner.insert(blk, owner) {
            assert_eq!(
                prev, owner,
                "block {blk} shared between rows {prev} and {owner}"
            );
        }
    }
    assert_eq!(dag.num_blocks(), rows * width + (rows - 1) * steps);
}

#[test]
fn stencil_exchange_roles_are_disjoint() {
    // Same contract as the one-sided stencil, with twice the boundary
    // regions: each (row, neighbour, step) copy owns its own block, the
    // copies never alias interior blocks, and interior blocks stay private
    // to one row thread across steps.
    let (rows, width, steps) = (5usize, 3usize, 4usize);
    let dag = stencil_exchange(rows, width, steps);
    let boundaries = value_blocks(&dag);
    // Every touched copy has a distinct block — no value is touched (or
    // stored) twice.
    assert_eq!(boundaries.len(), dag.touches().count());
    let mut interior_owner: HashMap<wsf_dag::Block, wsf_dag::ThreadId> = HashMap::new();
    for id in dag.node_ids() {
        let Some(blk) = dag.block_of(id) else {
            continue;
        };
        if dag.node(id).is_future_parent() {
            continue;
        }
        // Final-step copies have no consumer (the super final node
        // synchronizes them); they are still boundary-region blocks, so
        // only nodes with interior blocks are owner-checked.
        if blk.0 as usize >= rows * width {
            continue;
        }
        assert!(
            !boundaries.contains(&blk),
            "{id}: interior node aliases boundary block {blk}"
        );
        let owner = dag.node(id).thread();
        if let Some(prev) = interior_owner.insert(blk, owner) {
            assert_eq!(
                prev, owner,
                "block {blk} shared between rows {prev} and {owner}"
            );
        }
    }
    assert_eq!(dag.num_blocks(), rows * width + 2 * (rows - 1) * steps);
}
