//! Differential cache check on the symmetric-exchange stencil: replaying
//! one instance's sequential block trace through the scan and indexed
//! cache representations must produce access-for-access identical
//! outcomes (including which block each miss evicts).
//!
//! The cache crate's own differential suite drives random traces; this
//! test pins the *workload-shaped* trace — interior blocks re-touched
//! every step interleaved with write-once boundary copies — which is
//! exactly the reuse pattern the E16 capacity sweep measures.

use wsf_cache::{Cache, FifoCache, LruCache};
use wsf_core::{ForkPolicy, SequentialExecutor};
use wsf_workloads::stencil::stencil_exchange;

/// The sequential-order block trace of one exchange instance.
fn trace(rows: usize, width: usize, steps: usize) -> (Vec<u32>, usize) {
    let dag = stencil_exchange(rows, width, steps);
    let seq = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
    let trace = seq
        .order
        .iter()
        .filter_map(|&n| dag.block_of(n))
        .map(|b| b.0)
        .collect();
    (trace, dag.block_space())
}

fn assert_identical(name: &str, reference: &mut dyn Cache, candidate: &mut dyn Cache, t: &[u32]) {
    for (i, &b) in t.iter().enumerate() {
        let want = reference.access(b);
        let got = candidate.access(b);
        assert_eq!(want, got, "{name}: access #{i} (block {b}) diverged");
    }
}

#[test]
fn exchange_trace_is_identical_under_scan_and_indexed_lru() {
    let (t, space) = trace(8, 24, 6);
    assert!(t.len() > 1_000, "trace too small to be meaningful");
    // Capacities straddling the working set, all above and below the
    // adaptive crossover.
    for c in [4usize, 16, 64, 256] {
        assert_identical(
            &format!("lru/hash C={c}"),
            &mut LruCache::scan(c),
            &mut LruCache::indexed(c),
            &t,
        );
        assert_identical(
            &format!("lru/dense C={c}"),
            &mut LruCache::scan(c),
            &mut LruCache::indexed_dense(c, space),
            &t,
        );
    }
}

#[test]
fn exchange_trace_is_identical_under_scan_and_indexed_fifo() {
    let (t, space) = trace(6, 16, 5);
    for c in [8usize, 128] {
        assert_identical(
            &format!("fifo/hash C={c}"),
            &mut FifoCache::scan(c),
            &mut FifoCache::indexed(c),
            &t,
        );
        assert_identical(
            &format!("fifo/dense C={c}"),
            &mut FifoCache::scan(c),
            &mut FifoCache::indexed_dense(c, space),
            &t,
        );
    }
}
