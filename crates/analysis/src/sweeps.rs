//! Wide parameter sweeps over `(seed, P, policy, cache, scheduler)` cells.
//!
//! The per-experiment tables in [`crate::experiments`] reproduce specific
//! figures; this module provides the *bulk* sweep used to study large
//! random DAG populations: every combination of workload seed, processor
//! count, fork policy, cache size and steal scheduler is simulated and
//! summarized in one table, next to the theorem bound that governs the
//! cell (Theorem 8/12's `P·T∞²` under future-first, the general
//! `(P+t)·T∞` shape under parent-first — the regime Theorem 10's lower
//! bound lives in).
//!
//! Three things make the sweep fast without changing a single measured
//! number:
//!
//! * cells are sharded across threads with [`crate::par::par_map`] and the
//!   table is assembled from the ordered results, so the output is
//!   byte-identical at every thread count;
//! * within one `(seed, policy, cache)` shard the sequential baseline is
//!   computed once and shared by every `P` and scheduler (it depends on
//!   neither);
//! * each shard reuses one [`SimScratch`], so repeated simulations allocate
//!   nothing per step.

use crate::par::par_map;
use crate::policy::PolicySpec;
use crate::table::Table;
use wsf_cache::{MissRatioCurve, StackDistanceSim};
use wsf_core::{
    bounds, ExecutionReport, ForkPolicy, ParallelSimulator, SeqReport, SimConfig, SimScratch,
};
use wsf_dag::{span, Dag};
use wsf_workloads::random::{random_single_touch, RandomConfig};

/// The cache capacities a locality sweep evaluates.
///
/// The seed experiments hard-coded C ∈ {16, 256, 4096, 32768} because each
/// capacity cost a full re-simulation; with the one-pass
/// [`capacity_sweep`] the evaluation grid is free, so the default is
/// *dense* — every power of two from 2⁴ to 2²⁰ — and coarser grids are an
/// explicit caller choice surfaced by [`CapacityGrid::truncation_note`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityGrid {
    capacities: Vec<usize>,
}

impl CapacityGrid {
    /// A grid over the given capacities (kept in caller order).
    ///
    /// # Panics
    /// Panics if `capacities` is empty or contains a zero.
    pub fn new(capacities: Vec<usize>) -> Self {
        assert!(!capacities.is_empty(), "capacity grid must be non-empty");
        assert!(
            capacities.iter().all(|&c| c > 0),
            "cache capacities must be positive"
        );
        CapacityGrid { capacities }
    }

    /// The dense default: every power of two 2⁴ … 2²⁰ (17 points).
    pub fn dense() -> Self {
        CapacityGrid::new((4..=20).map(|e| 1usize << e).collect())
    }

    /// The seed experiments' coarse grid, C ∈ {16, 256, 4096, 32768}; kept
    /// as the differential anchor against the per-capacity simulators.
    pub fn legacy() -> Self {
        CapacityGrid::new(vec![16, 256, 4096, 32768])
    }

    /// The two-point grid the `Scale::Quick` smoke tests sweep.
    pub fn quick() -> Self {
        CapacityGrid::new(vec![16, 256])
    }

    /// The capacities, in evaluation order.
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Whether the grid has no points (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// A caller-facing note when this grid is coarser than the dense
    /// default — the harness prints it so truncated C-resolution is never
    /// silent again.
    pub fn truncation_note(&self) -> Option<String> {
        let dense = Self::dense();
        if self.capacities.len() < dense.capacities.len() {
            Some(format!(
                "note: capacity grid truncated to {} point(s) (dense default sweeps {})",
                self.capacities.len(),
                dense.capacities.len()
            ))
        } else {
            None
        }
    }

    /// Parses a comma-separated capacity list (e.g. `16,256,4096`), for
    /// the harness's `--capacities` flag.
    pub fn parse(s: &str) -> Result<Self, String> {
        let capacities: Vec<usize> = s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad capacity {part:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        if capacities.is_empty() || capacities.contains(&0) {
            return Err("capacity grid must be non-empty and positive".into());
        }
        Ok(CapacityGrid::new(capacities))
    }
}

/// The sequential execution's miss-ratio curve: `seq.order` replayed
/// through one stack-distance profiler. `curve.misses_at(c)` equals the
/// miss count of a sequential run at `cache_lines = c` exactly.
pub fn sequential_curve(dag: &Dag, seq: &SeqReport) -> MissRatioCurve {
    let mut sd = StackDistanceSim::with_block_hint(dag.block_space());
    for &node in &seq.order {
        sd.access_opt(dag.block_of(node).map(|b| b.0));
    }
    sd.curve()
}

/// A traced parallel execution's aggregate miss-ratio curve: one profiler
/// per processor, fed that processor's completions in trace order, curves
/// merged. `curve.misses_at(c)` equals the summed per-processor miss count
/// of the same execution at `cache_lines = c` exactly.
///
/// # Panics
/// Panics if `rep` carries no trace (run the simulator with
/// `traced = true`).
pub fn parallel_curve(dag: &Dag, rep: &ExecutionReport) -> MissRatioCurve {
    let trace = rep
        .trace
        .as_ref()
        .expect("parallel_curve needs a traced execution");
    let mut sims: Vec<StackDistanceSim> = (0..rep.per_proc.len())
        .map(|_| StackDistanceSim::with_block_hint(dag.block_space()))
        .collect();
    for ev in trace {
        sims[ev.proc].access_opt(dag.block_of(ev.node).map(|b| b.0));
    }
    let mut curve = sims
        .pop()
        .map(|sd| sd.curve())
        .unwrap_or_else(|| StackDistanceSim::new().curve());
    for sd in &sims {
        curve.merge(&sd.curve());
    }
    curve
}

/// One `(P, scheduler)` execution of a [`capacity_sweep`]: the
/// C-independent schedule measurements plus the miss-ratio curve that
/// answers every capacity.
#[derive(Clone, Debug)]
pub struct CapacityRun {
    /// Processor count of the run.
    pub processors: usize,
    /// Scheduler of the run.
    pub scheduler: PolicySpec,
    /// Deviations from the sequential order (C-independent).
    pub deviations: u64,
    /// Successful steals (C-independent).
    pub steals: u64,
    /// Simulated makespan in steps (C-independent).
    pub makespan: u64,
    /// Aggregate per-processor miss-ratio curve of the execution.
    pub curve: MissRatioCurve,
}

impl CapacityRun {
    /// Cache misses beyond the sequential baseline at capacity `c`
    /// (clamped at zero, matching
    /// [`ExecutionReport::additional_misses`]).
    pub fn additional_misses_at(&self, seq_curve: &MissRatioCurve, c: usize) -> u64 {
        self.curve
            .misses_at(c)
            .saturating_sub(seq_curve.misses_at(c))
    }
}

/// Result of [`capacity_sweep`]: everything E15/E16/E17 need to emit one
/// row per capacity without re-simulating anything.
#[derive(Clone, Debug)]
pub struct CapacitySweep {
    /// Span (`T∞`) of the DAG.
    pub span: u64,
    /// The sequential execution's miss-ratio curve.
    pub seq_curve: MissRatioCurve,
    /// One entry per `(P, scheduler)` pair, in `processors`-major order.
    pub runs: Vec<CapacityRun>,
}

/// Simulates `dag` once per `(P, scheduler)` pair and profiles every trace
/// with the one-pass stack-distance simulator, so hit/miss counts at
/// *every* capacity come from a single execution per pair — where the
/// seed experiments re-simulated once per capacity.
///
/// Replacing the per-C loop is sound because the simulator's scheduling
/// never reads cache state: caches are pure accounting updated at node
/// completion, so the execution order, deviations, steals and makespan are
/// identical at every `C`, and the per-processor access traces — hence the
/// exact per-C miss counts, recovered here via the LRU inclusion property —
/// are too. The differential suite in
/// `crates/cache/tests/stack_distance_differential.rs` and the pinning
/// test in `crates/analysis/tests/parallel_determinism.rs` hold this path
/// to byte-identical tables against the per-capacity one.
pub fn capacity_sweep(
    dag: &Dag,
    fork_policy: ForkPolicy,
    processors: &[usize],
    schedulers: &[PolicySpec],
) -> CapacitySweep {
    let base = SimConfig {
        fork_policy,
        ..SimConfig::default()
    };
    let seq = ParallelSimulator::new(base).sequential(dag);
    let seq_curve = sequential_curve(dag, &seq);
    let mut scratch = SimScratch::new();
    let mut runs = Vec::with_capacity(processors.len() * schedulers.len());
    for &p in processors {
        for &scheduler in schedulers {
            let cfg = SimConfig {
                processors: p,
                ..base
            };
            // By-value instantiation: a concrete PolicyScheduler, so the
            // loop stays monomorphized and allocation-free (the old
            // SweepScheduler path boxed a dyn Scheduler per run).
            let mut sched = scheduler.instantiate(cfg.seed);
            let rep = ParallelSimulator::new(cfg).run_with_scratch(
                dag,
                &seq,
                &mut sched,
                true,
                &mut scratch,
            );
            runs.push(CapacityRun {
                processors: p,
                scheduler,
                deviations: rep.deviations(),
                steals: rep.steals(),
                makespan: rep.makespan,
                curve: parallel_curve(dag, &rep),
            });
        }
    }
    CapacitySweep {
        span: span(dag),
        seq_curve,
        runs,
    }
}

/// Parameters of [`seed_sweep`].
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Approximate node count of each random DAG.
    pub target_nodes: usize,
    /// Workload seeds; one random DAG is generated per seed.
    pub seeds: Vec<u64>,
    /// Processor counts to simulate.
    pub processors: Vec<usize>,
    /// Fork policies to simulate.
    pub policies: Vec<ForkPolicy>,
    /// Cache sizes (lines) to simulate.
    pub cache_lines: Vec<usize>,
    /// Steal schedulers to simulate.
    pub schedulers: Vec<PolicySpec>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            target_nodes: 20_000,
            seeds: vec![0, 1, 2, 3],
            processors: vec![2, 4, 8],
            policies: ForkPolicy::ALL.to_vec(),
            cache_lines: vec![16],
            schedulers: vec![PolicySpec::ws_random()],
        }
    }
}

/// One row of the sweep: the measured quantities of a single cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepCell {
    /// Workload seed.
    pub seed: u64,
    /// Fork policy.
    pub policy: ForkPolicy,
    /// Cache lines.
    pub cache_lines: usize,
    /// Steal scheduler.
    pub scheduler: PolicySpec,
    /// Processor count.
    pub processors: usize,
    /// Nodes in the generated DAG.
    pub nodes: usize,
    /// Span (`T∞`) of the generated DAG.
    pub span: u64,
    /// Deviations of the parallel execution.
    pub deviations: u64,
    /// Successful steals.
    pub steals: u64,
    /// Cache misses beyond the sequential baseline.
    pub additional_misses: u64,
    /// Simulated makespan in steps.
    pub makespan: u64,
    /// The deviation bound governing the cell: Theorem 8/12's `P·T∞²`
    /// under future-first, the general `(P+t)·T∞` shape under
    /// parent-first.
    pub deviation_bound: u64,
}

impl SweepCell {
    /// Whether the measured deviations respect the cell's governing bound.
    pub fn within_bound(&self) -> bool {
        self.deviations <= self.deviation_bound
    }
}

/// Runs every `(seed, P, policy, cache, scheduler)` cell of `config` and
/// returns the rows in deterministic sweep order (seed-major, then policy,
/// cache, scheduler, P).
pub fn seed_sweep_cells(config: &SweepConfig) -> Vec<SweepCell> {
    // One shard per seed: the (expensive) DAG generation happens once per
    // seed, each (policy, cache) pair computes its sequential baseline
    // once and shares it across all processor counts and schedulers, and
    // the whole shard reuses one scratch for all its runs.
    let rows = par_map(config.seeds.clone(), |seed| {
        let dag = random_single_touch(&RandomConfig {
            target_nodes: config.target_nodes,
            seed,
            ..RandomConfig::default()
        });
        let sp = span(&dag);
        let touches = dag.touches().count() as u64;
        let mut scratch = SimScratch::new();
        let mut rows = Vec::new();
        for &policy in &config.policies {
            for &cache_lines in &config.cache_lines {
                let mut seq = None;
                for &scheduler in &config.schedulers {
                    for &processors in &config.processors {
                        let cfg = SimConfig {
                            processors,
                            cache_lines,
                            fork_policy: policy,
                            ..SimConfig::default()
                        };
                        let sim = ParallelSimulator::new(cfg);
                        let seq = seq.get_or_insert_with(|| sim.sequential(&dag));
                        let mut sched = scheduler.instantiate(cfg.seed);
                        let rep = sim.run_with_scratch(&dag, seq, &mut sched, false, &mut scratch);
                        let deviation_bound = match policy {
                            ForkPolicy::FutureFirst => {
                                bounds::thm12_deviations(processors as u64, sp)
                            }
                            ForkPolicy::ParentFirst => {
                                bounds::unstructured_deviations(processors as u64, touches, sp)
                            }
                        };
                        rows.push(SweepCell {
                            seed,
                            policy,
                            cache_lines,
                            scheduler,
                            processors,
                            nodes: dag.num_nodes(),
                            span: sp,
                            deviations: rep.deviations(),
                            steals: rep.steals(),
                            additional_misses: rep.additional_misses(seq),
                            makespan: rep.makespan,
                            deviation_bound,
                        });
                    }
                }
            }
        }
        rows
    });
    rows.into_iter().flatten().collect()
}

/// Runs [`seed_sweep_cells`] and renders the rows as a [`Table`].
pub fn seed_sweep(config: &SweepConfig) -> Table {
    let mut t = Table::new(
        "Bulk sweep — random structured single-touch DAGs, every (seed, P, policy, C, scheduler) cell",
        &[
            "seed",
            "policy",
            "C",
            "sched",
            "P",
            "nodes",
            "T_inf",
            "deviations",
            "dev bound",
            "within",
            "steals",
            "extra misses",
            "makespan",
        ],
    );
    for cell in seed_sweep_cells(config) {
        t.push_row(vec![
            cell.seed.to_string(),
            cell.policy.to_string(),
            cell.cache_lines.to_string(),
            cell.scheduler.to_string(),
            cell.processors.to_string(),
            cell.nodes.to_string(),
            cell.span.to_string(),
            cell.deviations.to_string(),
            cell.deviation_bound.to_string(),
            if cell.within_bound() { "yes" } else { "NO" }.to_string(),
            cell.steals.to_string(),
            cell.additional_misses.to_string(),
            cell.makespan.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_grid_defaults_and_parse() {
        assert_eq!(CapacityGrid::dense().len(), 17);
        assert_eq!(CapacityGrid::dense().capacities()[0], 16);
        assert_eq!(CapacityGrid::dense().capacities()[16], 1 << 20);
        assert_eq!(CapacityGrid::legacy().capacities(), &[16, 256, 4096, 32768]);
        assert!(CapacityGrid::dense().truncation_note().is_none());
        let note = CapacityGrid::legacy().truncation_note().expect("coarse");
        assert!(note.contains("truncated to 4"), "{note}");
        assert!(!CapacityGrid::quick().is_empty());

        let parsed = CapacityGrid::parse("16, 256,4096").expect("parses");
        assert_eq!(parsed.capacities(), &[16, 256, 4096]);
        assert!(CapacityGrid::parse("").is_err());
        assert!(CapacityGrid::parse("16,zero").is_err());
        assert!(CapacityGrid::parse("16,0").is_err());
    }

    #[test]
    fn capacity_sweep_matches_per_capacity_simulation() {
        // The local exactness check behind the one-pass E15/E16 path: the
        // single traced execution's curve reproduces the per-capacity
        // simulators' miss counts at every legacy capacity. (The
        // full-table byte-identity pin lives in
        // tests/parallel_determinism.rs.)
        let dag = wsf_workloads::sort::mergesort(64, 8);
        let schedulers = [PolicySpec::ws_random(), PolicySpec::parsimonious()];
        let sweep = capacity_sweep(&dag, ForkPolicy::FutureFirst, &[2], &schedulers);
        assert_eq!(sweep.runs.len(), 2);
        for &c in CapacityGrid::legacy().capacities() {
            let base = SimConfig {
                cache_lines: c,
                fork_policy: ForkPolicy::FutureFirst,
                ..SimConfig::default()
            };
            let sim = ParallelSimulator::new(base);
            let seq = sim.sequential(&dag);
            assert_eq!(sweep.seq_curve.misses_at(c), seq.cache_misses());
            for (run, scheduler) in sweep.runs.iter().zip(schedulers) {
                let cfg = SimConfig {
                    processors: 2,
                    ..base
                };
                let mut s = scheduler.instantiate(cfg.seed);
                let rep = ParallelSimulator::new(cfg).run_against(&dag, &seq, &mut s, false);
                assert_eq!(run.deviations, rep.deviations());
                assert_eq!(run.steals, rep.steals());
                assert_eq!(run.makespan, rep.makespan);
                assert_eq!(run.curve.misses_at(c), rep.cache_misses(), "C = {c}");
                assert_eq!(
                    run.additional_misses_at(&sweep.seq_curve, c),
                    rep.additional_misses(&seq)
                );
            }
        }
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let config = SweepConfig {
            target_nodes: 400,
            seeds: vec![1, 2],
            processors: vec![2, 4],
            policies: ForkPolicy::ALL.to_vec(),
            cache_lines: vec![8],
            schedulers: vec![PolicySpec::ws_random(), PolicySpec::parsimonious()],
        };
        let cells = seed_sweep_cells(&config);
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        // Seed-major order, then policy, scheduler, P.
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[0].scheduler, PolicySpec::ws_random());
        assert_eq!(cells[0].processors, 2);
        assert_eq!(cells[1].processors, 4);
        assert_eq!(cells[2].scheduler, PolicySpec::parsimonious());
        assert_eq!(cells[8].seed, 2);
        let table = seed_sweep(&config);
        assert_eq!(table.len(), cells.len());
    }

    #[test]
    fn every_cell_respects_its_governing_bound() {
        let cells = seed_sweep_cells(&SweepConfig {
            target_nodes: 600,
            seeds: vec![3, 9],
            processors: vec![2, 4],
            cache_lines: vec![8],
            schedulers: vec![PolicySpec::ws_random(), PolicySpec::parsimonious()],
            ..SweepConfig::default()
        });
        for cell in &cells {
            assert!(
                cell.within_bound(),
                "seed {} {} {} P={}: {} deviations exceed bound {}",
                cell.seed,
                cell.policy,
                cell.scheduler,
                cell.processors,
                cell.deviations,
                cell.deviation_bound
            );
        }
    }

    #[test]
    fn parsimonious_cells_steal_less_than_random_ws() {
        let cells = seed_sweep_cells(&SweepConfig {
            target_nodes: 1_000,
            seeds: vec![5],
            processors: vec![4],
            policies: vec![ForkPolicy::FutureFirst],
            cache_lines: vec![8],
            schedulers: vec![PolicySpec::ws_random(), PolicySpec::parsimonious()],
        });
        assert_eq!(cells.len(), 2);
        assert!(
            cells[1].steals <= cells[0].steals,
            "parsimonious ({}) must not out-steal random WS ({})",
            cells[1].steals,
            cells[0].steals
        );
    }
}
