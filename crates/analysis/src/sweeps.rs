//! Wide parameter sweeps over `(seed, P, policy, cache, scheduler)` cells.
//!
//! The per-experiment tables in [`crate::experiments`] reproduce specific
//! figures; this module provides the *bulk* sweep used to study large
//! random DAG populations: every combination of workload seed, processor
//! count, fork policy, cache size and steal scheduler is simulated and
//! summarized in one table, next to the theorem bound that governs the
//! cell (Theorem 8/12's `P·T∞²` under future-first, the general
//! `(P+t)·T∞` shape under parent-first — the regime Theorem 10's lower
//! bound lives in).
//!
//! Three things make the sweep fast without changing a single measured
//! number:
//!
//! * cells are sharded across threads with [`crate::par::par_map`] and the
//!   table is assembled from the ordered results, so the output is
//!   byte-identical at every thread count;
//! * within one `(seed, policy, cache)` shard the sequential baseline is
//!   computed once and shared by every `P` and scheduler (it depends on
//!   neither);
//! * each shard reuses one [`SimScratch`], so repeated simulations allocate
//!   nothing per step.

use crate::par::par_map;
use crate::table::Table;
use std::fmt;
use wsf_core::{
    bounds, ForkPolicy, ParallelSimulator, ParsimoniousScheduler, RandomScheduler, SimConfig,
    SimScratch,
};
use wsf_dag::span;
use wsf_workloads::random::{random_single_touch, RandomConfig};

/// Which steal scheduler a sweep cell runs under.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SweepScheduler {
    /// Seeded uniformly-random victim selection (work stealing with
    /// futures, the Arora–Blumofe–Plaxton model the theorems assume).
    RandomWs,
    /// The deterministic steal-frugal [`ParsimoniousScheduler`] (thieves
    /// wait out a fixed patience before robbing the lowest victim).
    Parsimonious,
}

impl SweepScheduler {
    /// Patience used by the parsimonious cells (deterministic; chosen so
    /// thieves throttle visibly without serializing the run).
    pub const PATIENCE: u32 = 4;

    /// A fresh scheduler instance for one simulation cell. Every
    /// experiment cell goes through this single constructor so the
    /// (seed, patience) configuration cannot drift between E11's sweep and
    /// the E12–E14 tables. (The sweep hot loop below keeps its own
    /// `match` to preserve the monomorphized `RandomScheduler` path.)
    pub fn instantiate(self, seed: u64) -> Box<dyn wsf_core::Scheduler> {
        match self {
            SweepScheduler::RandomWs => Box::new(RandomScheduler::new(seed)),
            SweepScheduler::Parsimonious => Box::new(ParsimoniousScheduler::new(Self::PATIENCE)),
        }
    }
}

impl fmt::Display for SweepScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepScheduler::RandomWs => write!(f, "ws-random"),
            SweepScheduler::Parsimonious => write!(f, "parsimonious"),
        }
    }
}

/// Parameters of [`seed_sweep`].
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Approximate node count of each random DAG.
    pub target_nodes: usize,
    /// Workload seeds; one random DAG is generated per seed.
    pub seeds: Vec<u64>,
    /// Processor counts to simulate.
    pub processors: Vec<usize>,
    /// Fork policies to simulate.
    pub policies: Vec<ForkPolicy>,
    /// Cache sizes (lines) to simulate.
    pub cache_lines: Vec<usize>,
    /// Steal schedulers to simulate.
    pub schedulers: Vec<SweepScheduler>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            target_nodes: 20_000,
            seeds: vec![0, 1, 2, 3],
            processors: vec![2, 4, 8],
            policies: ForkPolicy::ALL.to_vec(),
            cache_lines: vec![16],
            schedulers: vec![SweepScheduler::RandomWs],
        }
    }
}

/// One row of the sweep: the measured quantities of a single cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepCell {
    /// Workload seed.
    pub seed: u64,
    /// Fork policy.
    pub policy: ForkPolicy,
    /// Cache lines.
    pub cache_lines: usize,
    /// Steal scheduler.
    pub scheduler: SweepScheduler,
    /// Processor count.
    pub processors: usize,
    /// Nodes in the generated DAG.
    pub nodes: usize,
    /// Span (`T∞`) of the generated DAG.
    pub span: u64,
    /// Deviations of the parallel execution.
    pub deviations: u64,
    /// Successful steals.
    pub steals: u64,
    /// Cache misses beyond the sequential baseline.
    pub additional_misses: u64,
    /// Simulated makespan in steps.
    pub makespan: u64,
    /// The deviation bound governing the cell: Theorem 8/12's `P·T∞²`
    /// under future-first, the general `(P+t)·T∞` shape under
    /// parent-first.
    pub deviation_bound: u64,
}

impl SweepCell {
    /// Whether the measured deviations respect the cell's governing bound.
    pub fn within_bound(&self) -> bool {
        self.deviations <= self.deviation_bound
    }
}

/// Runs every `(seed, P, policy, cache, scheduler)` cell of `config` and
/// returns the rows in deterministic sweep order (seed-major, then policy,
/// cache, scheduler, P).
pub fn seed_sweep_cells(config: &SweepConfig) -> Vec<SweepCell> {
    // One shard per seed: the (expensive) DAG generation happens once per
    // seed, each (policy, cache) pair computes its sequential baseline
    // once and shares it across all processor counts and schedulers, and
    // the whole shard reuses one scratch for all its runs.
    let rows = par_map(config.seeds.clone(), |seed| {
        let dag = random_single_touch(&RandomConfig {
            target_nodes: config.target_nodes,
            seed,
            ..RandomConfig::default()
        });
        let sp = span(&dag);
        let touches = dag.touches().count() as u64;
        let mut scratch = SimScratch::new();
        let mut rows = Vec::new();
        for &policy in &config.policies {
            for &cache_lines in &config.cache_lines {
                let mut seq = None;
                for &scheduler in &config.schedulers {
                    for &processors in &config.processors {
                        let cfg = SimConfig {
                            processors,
                            cache_lines,
                            fork_policy: policy,
                            ..SimConfig::default()
                        };
                        let sim = ParallelSimulator::new(cfg);
                        let seq = seq.get_or_insert_with(|| sim.sequential(&dag));
                        let rep = match scheduler {
                            SweepScheduler::RandomWs => {
                                let mut sched = RandomScheduler::new(cfg.seed);
                                sim.run_with_scratch(&dag, seq, &mut sched, false, &mut scratch)
                            }
                            SweepScheduler::Parsimonious => {
                                let mut sched =
                                    ParsimoniousScheduler::new(SweepScheduler::PATIENCE);
                                sim.run_with_scratch(&dag, seq, &mut sched, false, &mut scratch)
                            }
                        };
                        let deviation_bound = match policy {
                            ForkPolicy::FutureFirst => {
                                bounds::thm12_deviations(processors as u64, sp)
                            }
                            ForkPolicy::ParentFirst => {
                                bounds::unstructured_deviations(processors as u64, touches, sp)
                            }
                        };
                        rows.push(SweepCell {
                            seed,
                            policy,
                            cache_lines,
                            scheduler,
                            processors,
                            nodes: dag.num_nodes(),
                            span: sp,
                            deviations: rep.deviations(),
                            steals: rep.steals(),
                            additional_misses: rep.additional_misses(seq),
                            makespan: rep.makespan,
                            deviation_bound,
                        });
                    }
                }
            }
        }
        rows
    });
    rows.into_iter().flatten().collect()
}

/// Runs [`seed_sweep_cells`] and renders the rows as a [`Table`].
pub fn seed_sweep(config: &SweepConfig) -> Table {
    let mut t = Table::new(
        "Bulk sweep — random structured single-touch DAGs, every (seed, P, policy, C, scheduler) cell",
        &[
            "seed",
            "policy",
            "C",
            "sched",
            "P",
            "nodes",
            "T_inf",
            "deviations",
            "dev bound",
            "within",
            "steals",
            "extra misses",
            "makespan",
        ],
    );
    for cell in seed_sweep_cells(config) {
        t.push_row(vec![
            cell.seed.to_string(),
            cell.policy.to_string(),
            cell.cache_lines.to_string(),
            cell.scheduler.to_string(),
            cell.processors.to_string(),
            cell.nodes.to_string(),
            cell.span.to_string(),
            cell.deviations.to_string(),
            cell.deviation_bound.to_string(),
            if cell.within_bound() { "yes" } else { "NO" }.to_string(),
            cell.steals.to_string(),
            cell.additional_misses.to_string(),
            cell.makespan.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let config = SweepConfig {
            target_nodes: 400,
            seeds: vec![1, 2],
            processors: vec![2, 4],
            policies: ForkPolicy::ALL.to_vec(),
            cache_lines: vec![8],
            schedulers: vec![SweepScheduler::RandomWs, SweepScheduler::Parsimonious],
        };
        let cells = seed_sweep_cells(&config);
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        // Seed-major order, then policy, scheduler, P.
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[0].scheduler, SweepScheduler::RandomWs);
        assert_eq!(cells[0].processors, 2);
        assert_eq!(cells[1].processors, 4);
        assert_eq!(cells[2].scheduler, SweepScheduler::Parsimonious);
        assert_eq!(cells[8].seed, 2);
        let table = seed_sweep(&config);
        assert_eq!(table.len(), cells.len());
    }

    #[test]
    fn every_cell_respects_its_governing_bound() {
        let cells = seed_sweep_cells(&SweepConfig {
            target_nodes: 600,
            seeds: vec![3, 9],
            processors: vec![2, 4],
            cache_lines: vec![8],
            schedulers: vec![SweepScheduler::RandomWs, SweepScheduler::Parsimonious],
            ..SweepConfig::default()
        });
        for cell in &cells {
            assert!(
                cell.within_bound(),
                "seed {} {} {} P={}: {} deviations exceed bound {}",
                cell.seed,
                cell.policy,
                cell.scheduler,
                cell.processors,
                cell.deviations,
                cell.deviation_bound
            );
        }
    }

    #[test]
    fn parsimonious_cells_steal_less_than_random_ws() {
        let cells = seed_sweep_cells(&SweepConfig {
            target_nodes: 1_000,
            seeds: vec![5],
            processors: vec![4],
            policies: vec![ForkPolicy::FutureFirst],
            cache_lines: vec![8],
            schedulers: vec![SweepScheduler::RandomWs, SweepScheduler::Parsimonious],
        });
        assert_eq!(cells.len(), 2);
        assert!(
            cells[1].steals <= cells[0].steals,
            "parsimonious ({}) must not out-steal random WS ({})",
            cells[1].steals,
            cells[0].steals
        );
    }
}
