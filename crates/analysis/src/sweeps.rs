//! Wide parameter sweeps over `(seed, P, policy, cache)` cells.
//!
//! The per-experiment tables in [`crate::experiments`] reproduce specific
//! figures; this module provides the *bulk* sweep used to study large
//! random DAG populations: every combination of workload seed, processor
//! count, fork policy and cache size is simulated and summarized in one
//! table.
//!
//! Three things make the sweep fast without changing a single measured
//! number:
//!
//! * cells are sharded across threads with [`crate::par::par_map`] and the
//!   table is assembled from the ordered results, so the output is
//!   byte-identical at every thread count;
//! * within one `(seed, policy, cache)` shard the sequential baseline is
//!   computed once and shared by every `P` (it does not depend on `P`);
//! * each shard reuses one [`SimScratch`], so repeated simulations allocate
//!   nothing per step.

use crate::par::par_map;
use crate::table::Table;
use wsf_core::{ForkPolicy, ParallelSimulator, RandomScheduler, SimConfig, SimScratch};
use wsf_workloads::random::{random_single_touch, RandomConfig};

/// Parameters of [`seed_sweep`].
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Approximate node count of each random DAG.
    pub target_nodes: usize,
    /// Workload seeds; one random DAG is generated per seed.
    pub seeds: Vec<u64>,
    /// Processor counts to simulate.
    pub processors: Vec<usize>,
    /// Fork policies to simulate.
    pub policies: Vec<ForkPolicy>,
    /// Cache sizes (lines) to simulate.
    pub cache_lines: Vec<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            target_nodes: 20_000,
            seeds: vec![0, 1, 2, 3],
            processors: vec![2, 4, 8],
            policies: ForkPolicy::ALL.to_vec(),
            cache_lines: vec![16],
        }
    }
}

/// One row of the sweep: the measured quantities of a single cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepCell {
    /// Workload seed.
    pub seed: u64,
    /// Fork policy.
    pub policy: ForkPolicy,
    /// Cache lines.
    pub cache_lines: usize,
    /// Processor count.
    pub processors: usize,
    /// Nodes in the generated DAG.
    pub nodes: usize,
    /// Deviations of the parallel execution.
    pub deviations: u64,
    /// Successful steals.
    pub steals: u64,
    /// Cache misses beyond the sequential baseline.
    pub additional_misses: u64,
    /// Simulated makespan in steps.
    pub makespan: u64,
}

/// Runs every `(seed, P, policy, cache)` cell of `config` and returns the
/// rows in deterministic sweep order (seed-major, then policy, cache, P).
pub fn seed_sweep_cells(config: &SweepConfig) -> Vec<SweepCell> {
    // One shard per seed: the (expensive) DAG generation happens once per
    // seed, each (policy, cache) pair computes its sequential baseline
    // once and shares it across all processor counts, and the whole shard
    // reuses one scratch for all its runs.
    let rows = par_map(config.seeds.clone(), |seed| {
        let dag = random_single_touch(&RandomConfig {
            target_nodes: config.target_nodes,
            seed,
            ..RandomConfig::default()
        });
        let mut scratch = SimScratch::new();
        let mut rows = Vec::new();
        for &policy in &config.policies {
            for &cache_lines in &config.cache_lines {
                let mut seq = None;
                for &processors in &config.processors {
                    let cfg = SimConfig {
                        processors,
                        cache_lines,
                        fork_policy: policy,
                        ..SimConfig::default()
                    };
                    let sim = ParallelSimulator::new(cfg);
                    let seq = seq.get_or_insert_with(|| sim.sequential(&dag));
                    let mut sched = RandomScheduler::new(cfg.seed);
                    let rep = sim.run_with_scratch(&dag, seq, &mut sched, false, &mut scratch);
                    rows.push(SweepCell {
                        seed,
                        policy,
                        cache_lines,
                        processors,
                        nodes: dag.num_nodes(),
                        deviations: rep.deviations(),
                        steals: rep.steals(),
                        additional_misses: rep.additional_misses(seq),
                        makespan: rep.makespan,
                    });
                }
            }
        }
        rows
    });
    rows.into_iter().flatten().collect()
}

/// Runs [`seed_sweep_cells`] and renders the rows as a [`Table`].
pub fn seed_sweep(config: &SweepConfig) -> Table {
    let mut t = Table::new(
        "Bulk sweep — random structured single-touch DAGs, every (seed, P, policy, C) cell",
        &[
            "seed",
            "policy",
            "C",
            "P",
            "nodes",
            "deviations",
            "steals",
            "extra misses",
            "makespan",
        ],
    );
    for cell in seed_sweep_cells(config) {
        t.push_row(vec![
            cell.seed.to_string(),
            cell.policy.to_string(),
            cell.cache_lines.to_string(),
            cell.processors.to_string(),
            cell.nodes.to_string(),
            cell.deviations.to_string(),
            cell.steals.to_string(),
            cell.additional_misses.to_string(),
            cell.makespan.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let config = SweepConfig {
            target_nodes: 400,
            seeds: vec![1, 2],
            processors: vec![2, 4],
            policies: ForkPolicy::ALL.to_vec(),
            cache_lines: vec![8],
        };
        let cells = seed_sweep_cells(&config);
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Seed-major order, then policy, then P.
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[0].processors, 2);
        assert_eq!(cells[1].processors, 4);
        assert_eq!(cells[4].seed, 2);
        let table = seed_sweep(&config);
        assert_eq!(table.len(), cells.len());
    }
}
