//! Scaling-shape estimation.
//!
//! The reproduction does not try to match the paper's absolute constants —
//! only the *shape* of the bounds (linear in `T∞` per steal, quadratic in
//! `T∞` overall, linear in `t`, and so on). These helpers estimate
//! power-law exponents from measured sweeps so the harness can print
//! "measured exponent ≈ 1.0 (theorem predicts 1)" style rows.

/// Least-squares slope of `ln(y)` against `ln(x)`: the exponent `p` in the
/// best-fit `y ≈ c · x^p`. Pairs with non-positive coordinates are skipped.
/// Returns 0 when fewer than two usable points remain.
pub fn power_law_exponent(points: &[(f64, f64)]) -> f64 {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if usable.len() < 2 {
        return 0.0;
    }
    let n = usable.len() as f64;
    let sx: f64 = usable.iter().map(|(x, _)| x).sum();
    let sy: f64 = usable.iter().map(|(_, y)| y).sum();
    let sxx: f64 = usable.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = usable.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

/// The geometric mean of `measured / reference` ratios — a single-number
/// summary of how far a measured series sits from a bound (values < 1 mean
/// the measurement stays below the bound).
pub fn mean_ratio(pairs: &[(f64, f64)]) -> f64 {
    let usable: Vec<f64> = pairs
        .iter()
        .filter(|(m, r)| *m > 0.0 && *r > 0.0)
        .map(|(m, r)| (m / r).ln())
        .collect();
    if usable.is_empty() {
        return 0.0;
    }
    (usable.iter().sum::<f64>() / usable.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_exponents() {
        let quadratic: Vec<(f64, f64)> =
            (1..=10).map(|x| (x as f64, 3.0 * (x * x) as f64)).collect();
        assert!((power_law_exponent(&quadratic) - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..=10).map(|x| (x as f64, 7.0 * x as f64)).collect();
        assert!((power_law_exponent(&linear) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn handles_degenerate_input() {
        assert_eq!(power_law_exponent(&[]), 0.0);
        assert_eq!(power_law_exponent(&[(1.0, 2.0)]), 0.0);
        assert_eq!(power_law_exponent(&[(0.0, 2.0), (-1.0, 3.0)]), 0.0);
        assert_eq!(power_law_exponent(&[(2.0, 5.0), (2.0, 5.0)]), 0.0);
    }

    #[test]
    fn mean_ratio_summarizes() {
        assert!((mean_ratio(&[(1.0, 2.0), (2.0, 4.0)]) - 0.5).abs() < 1e-9);
        assert_eq!(mean_ratio(&[]), 0.0);
    }
}
