//! Deterministic thread-sharding for experiment sweeps.
//!
//! Every cell of a sweep — one `(workload, seed, P, policy, cache)`
//! combination — is an independent, pure simulation, so sweeps are
//! embarrassingly parallel. [`par_map`] evaluates the cell function on a
//! small thread pool and returns the results **in input order**, which
//! makes a parallel sweep bit-identical to the sequential one: tables are
//! assembled from the ordered results exactly as the sequential loops would
//! have pushed them.
//!
//! The worker count comes from [`set_threads`], the `WSF_THREADS`
//! environment variable, or the machine's available parallelism, in that
//! order. `threads() == 1` runs cells inline with no thread machinery at
//! all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 = "not set": fall back to `WSF_THREADS`, then available parallelism.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads sweeps use. `0` restores the default
/// resolution order (`WSF_THREADS`, then available parallelism).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads sweeps will use.
pub fn threads() -> usize {
    let configured = THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("WSF_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, possibly across threads, returning the
/// results in input order (deterministic regardless of the thread count).
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = threads().min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(work.len()));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= work.len() {
                    break;
                }
                let item = work[idx]
                    .lock()
                    .expect("work item lock poisoned")
                    .take()
                    .expect("work item claimed twice");
                let out = f(item);
                results
                    .lock()
                    .expect("results lock poisoned")
                    .push((idx, out));
            });
        }
    });

    let mut collected = results.into_inner().expect("results lock poisoned");
    collected.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(collected.len(), work.len());
    collected.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test, because `set_threads` mutates process-global state and the
    /// test harness runs `#[test]` functions concurrently.
    #[test]
    fn par_map_is_ordered_at_every_thread_count() {
        for workers in [4usize, 1] {
            set_threads(workers);
            assert_eq!(threads(), workers);
            let out = par_map((0..100).collect::<Vec<_>>(), |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(par_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        }
        set_threads(0);
        assert!(threads() >= 1, "default resolution yields a worker");
    }
}
