//! Validates executed schedules against the paper's locality bounds.
//!
//! The simulator proves Theorem-12/16/18 verdicts over *simulated*
//! schedules; this module produces the same verdicts over schedules the
//! real pool actually executed. Given a [`TouchTrace`] recorded by
//! `wsf_runtime`, it
//!
//! 1. checks **coverage** — every DAG node executed exactly once, each
//!    touching exactly the block the DAG declares;
//! 2. counts **deviations** with the parallel executor's rule: walking a
//!    lane's node sequence, a node whose sequential predecessor is not the
//!    node the lane just executed is a deviation (the lane's first node
//!    deviates unless its sequential predecessor is `None`);
//! 3. replays each lane through a private [`CacheSim`](wsf_cache::CacheSim)
//!    of `C` lines (via [`wsf_cache::replay()`]) and counts **extra misses**
//!    over the sequential baseline, saturating at zero;
//! 4. compares both counts against the requested theorem's bounds —
//!    `O(P·T∞²)` deviations and `O(C·P·T∞²)` extra misses (with the
//!    Theorem-16/18 constants for super-final DAGs).
//!
//! At `P = 1` it additionally checks the strongest property the chain
//! interpreter guarantees: the single worker's trace is **byte-identical**
//! to the sequential executor's order.

use wsf_cache::replay::{ops_from_blocks, replay, ReplayOp};
use wsf_cache::{CachePolicy, MissRatioCurve};
use wsf_core::{bounds, ForkPolicy, SequentialExecutor};
use wsf_dag::{span, Dag, NodeId};
use wsf_runtime::TouchTrace;

/// Which theorem's bounds an executed schedule is checked against.
///
/// Theorem 12 covers structured single-touch DAGs; Theorems 16 and 18
/// extend it to computations with a super final node (one-round and
/// multi-round exchanges respectively), with larger constants.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundFamily {
    /// Theorem 12: structured single-touch computations.
    Thm12,
    /// Theorem 16: one exchange round through a super final node.
    Thm16,
    /// Theorem 18: multi-round exchanges through a super final node.
    Thm18,
}

impl BoundFamily {
    /// The deviation bound for `processors` workers and span `span`.
    pub fn deviation_bound(self, processors: u64, span: u64) -> u64 {
        match self {
            BoundFamily::Thm12 => bounds::thm12_deviations(processors, span),
            BoundFamily::Thm16 => bounds::thm16_deviations(processors, span),
            BoundFamily::Thm18 => bounds::thm18_deviations(processors, span),
        }
    }

    /// The additional-miss bound for cache size `cache_lines`,
    /// `processors` workers and span `span`.
    pub fn miss_bound(self, cache_lines: u64, processors: u64, span: u64) -> u64 {
        match self {
            BoundFamily::Thm12 => bounds::thm12_additional_misses(cache_lines, processors, span),
            BoundFamily::Thm16 => bounds::thm16_additional_misses(cache_lines, processors, span),
            BoundFamily::Thm18 => bounds::thm18_additional_misses(cache_lines, processors, span),
        }
    }

    /// Short label for tables (`"thm12"` etc.).
    pub fn label(self) -> &'static str {
        match self {
            BoundFamily::Thm12 => "thm12",
            BoundFamily::Thm16 => "thm16",
            BoundFamily::Thm18 => "thm18",
        }
    }
}

/// The verdict of validating one executed schedule (see [`validate_trace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceValidation {
    /// Nodes in the DAG.
    pub nodes: usize,
    /// Workers the bound is computed for.
    pub processors: u64,
    /// The DAG's span `T∞`.
    pub span: u64,
    /// Every node executed exactly once, touching its declared block.
    pub coverage_ok: bool,
    /// Deviations of the executed schedule from the sequential order.
    pub deviations: u64,
    /// The theorem's deviation bound.
    pub deviation_bound: u64,
    /// Misses of the sequential baseline at the same cache size.
    pub seq_misses: u64,
    /// Total misses of the executed schedule on per-worker private caches.
    pub runtime_misses: u64,
    /// `runtime_misses - seq_misses`, saturating at zero.
    pub extra_misses: u64,
    /// The theorem's additional-miss bound.
    pub miss_bound: u64,
    /// At `P = 1`: whether the worker's trace is byte-identical to the
    /// sequential order. `None` when `processors > 1`.
    pub p1_exact: Option<bool>,
    /// Overall verdict: coverage holds, both counts are within their
    /// bounds, and (at `P = 1`) the trace is exact.
    pub within: bool,
}

/// Converts a recorded trace into per-lane replay ops.
fn lane_ops(trace: &TouchTrace) -> Vec<Vec<ReplayOp>> {
    (0..trace.lanes())
        .map(|lane| ops_from_blocks(trace.node_trace(lane).into_iter().map(|(_, b)| b)))
        .collect()
}

/// Validates the executed schedule recorded in `trace` against `family`'s
/// bounds for an execution of `dag` on `processors` workers with
/// per-worker private LRU caches of `cache_lines` lines. The sequential
/// baseline is computed with `policy`, matching the fork policy the pool
/// execution used.
pub fn validate_trace(
    dag: &Dag,
    trace: &TouchTrace,
    policy: ForkPolicy,
    cache_lines: usize,
    processors: u64,
    family: BoundFamily,
) -> TraceValidation {
    assert_eq!(
        trace.dropped(),
        0,
        "trace under-recorded; raise its capacity"
    );
    let seq = SequentialExecutor::new(policy)
        .with_cache_lines(cache_lines)
        .run(dag);
    let seq_prev = seq.predecessors();

    // Coverage: every node exactly once, touching its declared block.
    let mut seen = vec![0u32; dag.num_nodes()];
    let mut blocks_ok = true;
    for lane in 0..trace.lanes() {
        for (node, block) in trace.node_trace(lane) {
            match seen.get_mut(node as usize) {
                Some(count) => *count += 1,
                None => blocks_ok = false,
            }
            if dag.block_of(NodeId(node)).map(|b| b.0) != block {
                blocks_ok = false;
            }
        }
    }
    let coverage_ok = blocks_ok && seen.iter().all(|&c| c == 1);

    // Deviations, by the parallel executor's rule, per lane.
    let mut deviations = 0u64;
    for lane in 0..trace.lanes() {
        let mut last: Option<NodeId> = None;
        for (node, _) in trace.node_trace(lane) {
            let node = NodeId(node);
            let expected = seq_prev.get(node.index()).copied().flatten();
            if last != expected {
                deviations += 1;
            }
            last = Some(node);
        }
    }

    // Misses on per-worker private caches, by exact replay.
    let summary = replay(
        &lane_ops(trace),
        CachePolicy::Lru,
        cache_lines,
        dag.block_space(),
    );
    let seq_misses = seq.cache.misses;
    let runtime_misses = summary.total.misses;
    let extra_misses = runtime_misses.saturating_sub(seq_misses);

    let span = span(dag);
    let deviation_bound = family.deviation_bound(processors, span);
    let miss_bound = family.miss_bound(cache_lines as u64, processors, span);

    let p1_exact = (processors == 1).then(|| {
        let worker_order: Vec<NodeId> = trace
            .node_trace(0)
            .iter()
            .map(|&(n, _)| NodeId(n))
            .collect();
        let external_empty = (1..trace.lanes()).all(|lane| trace.node_trace(lane).is_empty());
        worker_order == seq.order && external_empty
    });

    let within = coverage_ok
        && deviations <= deviation_bound
        && extra_misses <= miss_bound
        && p1_exact.unwrap_or(true);

    TraceValidation {
        nodes: dag.num_nodes(),
        processors,
        span,
        coverage_ok,
        deviations,
        deviation_bound,
        seq_misses,
        runtime_misses,
        extra_misses,
        miss_bound,
        p1_exact,
        within,
    }
}

/// The full per-capacity miss-ratio curve of the executed schedule on
/// per-worker private LRU caches — one Mattson pass per lane, merged.
pub fn trace_curve(dag: &Dag, trace: &TouchTrace) -> MissRatioCurve {
    wsf_cache::replay_curves(&lane_ops(trace), dag.block_space())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wsf_runtime::{Runtime, SpawnPolicy};
    use wsf_workloads::dag_exec::run_dag_on_pool;
    use wsf_workloads::{sort, stencil};

    fn run_traced(dag: &Arc<Dag>, threads: usize) -> Arc<TouchTrace> {
        let rt = Arc::new(
            Runtime::builder()
                .threads(threads)
                .policy(SpawnPolicy::ChildFirst)
                .touch_trace(1 << 16)
                .build(),
        );
        run_dag_on_pool(&rt, dag, ForkPolicy::FutureFirst);
        rt.touch_trace().expect("tracing enabled")
    }

    #[test]
    fn p1_executions_validate_exactly() {
        let dag = Arc::new(sort::mergesort(64, 8));
        let trace = run_traced(&dag, 1);
        let v = validate_trace(
            &dag,
            &trace,
            ForkPolicy::FutureFirst,
            16,
            1,
            BoundFamily::Thm12,
        );
        assert!(v.coverage_ok, "{v:?}");
        assert_eq!(v.p1_exact, Some(true), "{v:?}");
        assert_eq!(v.deviations, 0, "an exact trace cannot deviate");
        assert_eq!(v.extra_misses, 0, "an exact trace repeats the baseline");
        assert!(v.within, "{v:?}");
    }

    #[test]
    fn p2_executions_stay_within_thm12_bounds() {
        let dag = Arc::new(sort::mergesort(128, 16));
        let trace = run_traced(&dag, 2);
        let v = validate_trace(
            &dag,
            &trace,
            ForkPolicy::FutureFirst,
            16,
            2,
            BoundFamily::Thm12,
        );
        assert!(v.coverage_ok, "{v:?}");
        assert_eq!(v.p1_exact, None);
        assert!(v.within, "{v:?}");
    }

    #[test]
    fn super_final_family_uses_thm16() {
        let dag = Arc::new(stencil::stencil_exchange(3, 2, 1));
        let trace = run_traced(&dag, 2);
        let v = validate_trace(
            &dag,
            &trace,
            ForkPolicy::FutureFirst,
            16,
            2,
            BoundFamily::Thm16,
        );
        assert!(v.coverage_ok && v.within, "{v:?}");
    }

    #[test]
    fn trace_curve_agrees_with_fixed_capacity_validation() {
        let dag = Arc::new(sort::mergesort(64, 8));
        let trace = run_traced(&dag, 2);
        let curve = trace_curve(&dag, &trace);
        let v = validate_trace(
            &dag,
            &trace,
            ForkPolicy::FutureFirst,
            16,
            2,
            BoundFamily::Thm12,
        );
        assert_eq!(curve.stats_at(16).misses, v.runtime_misses);
    }

    #[test]
    fn tampered_traces_fail_coverage() {
        let dag = Arc::new(sort::mergesort(64, 8));
        let trace = TouchTrace::new(1, 16);
        trace.record(
            0,
            wsf_runtime::TouchEvent::Node {
                node: 0,
                block: dag.block_of(NodeId(0)).map(|b| b.0),
            },
        );
        let v = validate_trace(
            &dag,
            &trace,
            ForkPolicy::FutureFirst,
            16,
            1,
            BoundFamily::Thm12,
        );
        assert!(!v.coverage_ok, "missing nodes must be caught");
        assert!(!v.within);
    }
}
