//! The scheduler tournament behind E19: the simulator as a fitness oracle
//! over the composable steal-policy space.
//!
//! [`policy_space`] grid-enumerates the orthogonal dimensions of
//! [`PolicySpec`] (victim order × steal amount × patience × locality);
//! [`run_tournament`] evaluates every point against a workload suite ×
//! processor counts × cache capacities using one one-pass
//! [`capacity_sweep`] per workload (each `(workload, P, policy)` cell is
//! simulated exactly once and its miss-ratio curve answers every
//! capacity), scores each policy on the three axes the paper's theorems
//! bound — deviations, cache misses beyond sequential, makespan — and
//! marks the Pareto-minimal points. Workloads are sharded with
//! [`par_map`], so the result (and every table derived from it) is
//! byte-identical at every thread count.

use crate::par::par_map;
use crate::policy::{OrderSpec, PolicySpec};
use crate::sweeps::capacity_sweep;
use wsf_core::{ForkPolicy, StealAmount};
use wsf_dag::Dag;

/// The default tournament grid: every victim order × steal amount ×
/// patience ∈ {0, 1, 4, 16} × locality on/off — 80 policy points.
pub fn policy_space() -> Vec<PolicySpec> {
    policy_space_with(&[0, 1, 4, 16])
}

/// [`policy_space`] with a caller-chosen patience axis (the harness's
/// `--patience` flag narrows or extends the default `{0, 1, 4, 16}`).
pub fn policy_space_with(patience: &[u32]) -> Vec<PolicySpec> {
    let orders = [
        OrderSpec::Random(None),
        OrderSpec::LowestId,
        OrderSpec::RoundRobin,
        OrderSpec::MostLoaded,
        OrderSpec::LastVictim,
    ];
    let mut specs = Vec::new();
    for order in orders {
        for amount in [StealAmount::One, StealAmount::Half] {
            for &patience in patience {
                for prefer_cached in [false, true] {
                    specs.push(PolicySpec {
                        order,
                        amount,
                        patience,
                        prefer_cached,
                    });
                }
            }
        }
    }
    specs
}

/// Parameters of [`run_tournament`].
#[derive(Clone, Debug)]
pub struct TournamentConfig {
    /// The policy points to evaluate (see [`policy_space`]).
    pub specs: Vec<PolicySpec>,
    /// Processor counts per workload.
    pub processors: Vec<usize>,
    /// Sample cache capacities the miss score sums over.
    pub capacities: Vec<usize>,
    /// Fork policy of every run (the theorems' structured regime is
    /// future-first).
    pub fork_policy: ForkPolicy,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            specs: policy_space(),
            processors: vec![2, 8],
            capacities: vec![16, 256, 4096, 32768],
            fork_policy: ForkPolicy::FutureFirst,
        }
    }
}

/// One `(workload, P, policy)` cell of the tournament, with per-sample-
/// capacity miss counts recovered from the run's miss-ratio curve.
#[derive(Clone, Debug)]
pub struct TournamentRun {
    /// Index into the tournament's workload list.
    pub workload: usize,
    /// Processor count.
    pub processors: usize,
    /// The policy evaluated.
    pub spec: PolicySpec,
    /// Span (`T∞`) of the workload DAG.
    pub span: u64,
    /// Deviations from the sequential order.
    pub deviations: u64,
    /// Successful steals.
    pub steals: u64,
    /// Simulated makespan in steps.
    pub makespan: u64,
    /// Cache misses beyond the sequential baseline, one per sample
    /// capacity (same order as the config's `capacities`).
    pub extra_misses: Vec<u64>,
}

/// Aggregate score of one policy across every workload × P × capacity.
#[derive(Clone, Debug)]
pub struct TournamentEntry {
    /// The policy.
    pub spec: PolicySpec,
    /// Total deviations across all runs.
    pub deviations: u64,
    /// Total steals across all runs.
    pub steals: u64,
    /// Total extra misses across all runs and sample capacities.
    pub extra_misses: u64,
    /// Total makespan across all runs.
    pub makespan: u64,
    /// Whether the entry is Pareto-minimal on
    /// (deviations, extra misses, makespan).
    pub pareto: bool,
}

impl TournamentEntry {
    fn dominated_by(&self, other: &TournamentEntry) -> bool {
        let le = other.deviations <= self.deviations
            && other.extra_misses <= self.extra_misses
            && other.makespan <= self.makespan;
        let lt = other.deviations < self.deviations
            || other.extra_misses < self.extra_misses
            || other.makespan < self.makespan;
        le && lt
    }
}

/// Result of [`run_tournament`].
#[derive(Clone, Debug)]
pub struct Tournament {
    /// Workload names, in evaluation order.
    pub workloads: Vec<String>,
    /// The sample capacities of the miss score.
    pub capacities: Vec<usize>,
    /// Every `(workload, P, policy)` cell, workload-major, then
    /// processors, then policy (the deterministic sweep order).
    pub runs: Vec<TournamentRun>,
    /// One aggregate score per policy, in config order.
    pub entries: Vec<TournamentEntry>,
}

impl Tournament {
    /// The Pareto-minimal entries, in config order.
    pub fn pareto_front(&self) -> impl Iterator<Item = &TournamentEntry> {
        self.entries.iter().filter(|e| e.pareto)
    }

    /// The cell for `(workload, processors, spec)`, if evaluated.
    pub fn run(
        &self,
        workload: usize,
        processors: usize,
        spec: &PolicySpec,
    ) -> Option<&TournamentRun> {
        self.runs
            .iter()
            .find(|r| r.workload == workload && r.processors == processors && r.spec == *spec)
    }
}

/// Evaluates every policy of `config` against every named workload, one
/// one-pass [`capacity_sweep`] per workload (sharded, byte-deterministic),
/// and scores the policies. See the module docs.
pub fn run_tournament(workloads: &[(String, Dag)], config: &TournamentConfig) -> Tournament {
    let specs = config.specs.clone();
    let per_workload = par_map(
        workloads
            .iter()
            .enumerate()
            .map(|(i, (_, dag))| (i, dag.clone()))
            .collect(),
        |(widx, dag)| {
            let sweep = capacity_sweep(&dag, config.fork_policy, &config.processors, &specs);
            sweep
                .runs
                .iter()
                .map(|run| TournamentRun {
                    workload: widx,
                    processors: run.processors,
                    spec: run.scheduler,
                    span: sweep.span,
                    deviations: run.deviations,
                    steals: run.steals,
                    makespan: run.makespan,
                    extra_misses: config
                        .capacities
                        .iter()
                        .map(|&c| run.additional_misses_at(&sweep.seq_curve, c))
                        .collect(),
                })
                .collect::<Vec<_>>()
        },
    );
    let runs: Vec<TournamentRun> = per_workload.into_iter().flatten().collect();

    let mut entries: Vec<TournamentEntry> = specs
        .iter()
        .map(|spec| {
            let mine = runs.iter().filter(|r| r.spec == *spec);
            let mut e = TournamentEntry {
                spec: *spec,
                deviations: 0,
                steals: 0,
                extra_misses: 0,
                makespan: 0,
                pareto: false,
            };
            for r in mine {
                e.deviations += r.deviations;
                e.steals += r.steals;
                e.extra_misses += r.extra_misses.iter().sum::<u64>();
                e.makespan += r.makespan;
            }
            e
        })
        .collect();
    for i in 0..entries.len() {
        entries[i].pareto = !entries.iter().any(|other| entries[i].dominated_by(other));
    }

    Tournament {
        workloads: workloads.iter().map(|(n, _)| n.clone()).collect(),
        capacities: config.capacities.clone(),
        runs,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Vec<(String, Dag)> {
        vec![
            ("mergesort".into(), wsf_workloads::sort::mergesort(64, 8)),
            ("stencil".into(), wsf_workloads::stencil::stencil(4, 8, 3)),
        ]
    }

    #[test]
    fn policy_space_has_at_least_64_distinct_points() {
        let space = policy_space();
        assert!(space.len() >= 64, "{} points", space.len());
        let mut texts: Vec<String> = space.iter().map(|s| s.to_string()).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), space.len(), "all points distinct by name");
        assert!(space.contains(&PolicySpec::ws_random()));
        assert!(space.contains(&PolicySpec::parsimonious()));
    }

    #[test]
    fn tournament_scores_and_marks_a_nonempty_pareto_front() {
        let config = TournamentConfig {
            specs: vec![
                PolicySpec::ws_random(),
                PolicySpec::parsimonious(),
                PolicySpec::ws_rr_eager(),
            ],
            processors: vec![2],
            capacities: vec![16, 256],
            ..TournamentConfig::default()
        };
        let t = run_tournament(&tiny_suite(), &config);
        // capacities × processors × specs = 2 × 1 × 3 cells.
        assert_eq!(t.runs.len(), 6);
        assert_eq!(t.entries.len(), 3);
        assert!(t.pareto_front().count() >= 1, "front is never empty");
        // An entry on the front is not dominated by any other.
        for e in t.pareto_front() {
            assert!(!t.entries.iter().any(|o| e.dominated_by(o)));
        }
        // Aggregates equal the sum of the entry's runs.
        for e in &t.entries {
            let dev: u64 = t
                .runs
                .iter()
                .filter(|r| r.spec == e.spec)
                .map(|r| r.deviations)
                .sum();
            assert_eq!(e.deviations, dev);
        }
        // Cell lookup finds what the sweep produced.
        let cell = t.run(0, 2, &PolicySpec::ws_random()).expect("cell exists");
        assert_eq!(cell.extra_misses.len(), 2);
    }

    #[test]
    fn tournament_is_deterministic_across_thread_counts_locally() {
        // The cross-thread byte-identity of the E19 *tables* is pinned in
        // tests/parallel_determinism.rs (set_threads is process-global);
        // here: two same-thread runs agree cell by cell.
        let config = TournamentConfig {
            specs: vec![PolicySpec::ws_random(), PolicySpec::ws_half()],
            processors: vec![2],
            capacities: vec![16],
            ..TournamentConfig::default()
        };
        let a = run_tournament(&tiny_suite(), &config);
        let b = run_tournament(&tiny_suite(), &config);
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.deviations, y.deviations);
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.extra_misses, y.extra_misses);
        }
    }
}
