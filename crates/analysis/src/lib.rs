//! # wsf-analysis — the experiment harness
//!
//! Reproduces every theorem and figure of *"Well-Structured Futures and
//! Cache Locality"* as an executable experiment over the simulator
//! (`wsf-core`), the workload generators (`wsf-workloads`) and the real
//! runtime (`wsf-runtime`). See `docs/DESIGN.md` §3 for the experiment
//! index and `docs/EXPERIMENTS.md` for an archived run.
//!
//! ```
//! use wsf_analysis::{experiments, Scale};
//!
//! let tables = experiments::e7_lemma4(Scale::Quick);
//! assert!(!tables[0].is_empty());
//! println!("{}", tables[0]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod fit;
pub mod par;
pub mod policy;
pub mod sweeps;
pub mod table;
pub mod tournament;
pub mod validate;

pub use experiments::{default_capacity_grid, registry, run_all, Scale};
pub use fit::{mean_ratio, power_law_exponent};
pub use par::{par_map, set_threads, threads};
pub use policy::{OrderSpec, PolicySpec};
pub use sweeps::{
    capacity_sweep, parallel_curve, seed_sweep, seed_sweep_cells, sequential_curve, CapacityGrid,
    CapacityRun, CapacitySweep, SweepCell, SweepConfig,
};
pub use table::Table;
pub use tournament::{
    policy_space, policy_space_with, run_tournament, Tournament, TournamentConfig, TournamentEntry,
};
pub use validate::{trace_curve, validate_trace, BoundFamily, TraceValidation};
