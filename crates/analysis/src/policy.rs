//! Named points of the composable steal-policy space.
//!
//! A [`PolicySpec`] is the analysis layer's value-level description of a
//! [`wsf_core::PolicyScheduler`] configuration: the victim order, the
//! steal amount, the patience budget and the locality heuristic, with a
//! stable textual form (`Display`/[`PolicySpec::parse`] round-trip) that
//! experiment tables, the harness's `--schedulers` flag and the E19
//! tournament all share. Instantiation is by value — a concrete
//! [`PolicyScheduler`] — so every sweep gets a monomorphized simulator
//! loop with no `Box<dyn Scheduler>` allocation.
//!
//! The two historical baselines keep their historical table names:
//! `ws-random` (uniform-random victims, steal-one, eager) and
//! `parsimonious` (lowest-id victims, steal-one, patience 4). The
//! E19-promoted presets are named points too — see [`PolicySpec::NAMED`].

use std::fmt;
use wsf_core::{PolicyConfig, PolicyScheduler, StealAmount, VictimOrder};

/// Victim-order half of a [`PolicySpec`]. Identical to
/// [`wsf_core::VictimOrder`] except that the random order's seed is
/// optional: `Random(None)` takes the simulation seed at
/// [`PolicySpec::instantiate`] time, which is how every experiment keeps
/// one seed knob.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OrderSpec {
    /// Uniformly random victims; `None` adopts the simulation seed.
    Random(Option<u64>),
    /// Lowest-numbered candidate.
    LowestId,
    /// Cycle through the candidates.
    RoundRobin,
    /// Deepest deque, ties to the lowest id.
    MostLoaded,
    /// Previous victim while it still has work (affinity).
    LastVictim,
}

impl OrderSpec {
    fn token(&self) -> String {
        match self {
            OrderSpec::Random(None) => "random".into(),
            OrderSpec::Random(Some(s)) => format!("random@{s}"),
            OrderSpec::LowestId => "lowest".into(),
            OrderSpec::RoundRobin => "rr".into(),
            OrderSpec::MostLoaded => "loaded".into(),
            OrderSpec::LastVictim => "last".into(),
        }
    }
}

/// One point of the steal-policy space, with a parse/print-stable name.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PolicySpec {
    /// Victim-selection rule.
    pub order: OrderSpec,
    /// How much a successful steal transfers.
    pub amount: StealAmount,
    /// Steal opportunities a thief sits out before robbing anyone.
    pub patience: u32,
    /// Restrict selection to victims whose top block is resident in the
    /// thief's cache, when any exists.
    pub prefer_cached: bool,
}

impl PolicySpec {
    /// The steal-frugal baseline's patience. One named knob instead of the
    /// old `SweepScheduler::PATIENCE` constant: chosen so thieves throttle
    /// visibly without serializing the run, and shared by every experiment
    /// through [`PolicySpec::parsimonious`].
    pub const PARSIMONIOUS_PATIENCE: u32 = 4;

    /// `ws-random`: seeded uniformly-random victim selection (work stealing
    /// with futures, the Arora–Blumofe–Plaxton model the theorems assume).
    pub const fn ws_random() -> Self {
        PolicySpec {
            order: OrderSpec::Random(None),
            amount: StealAmount::One,
            patience: 0,
            prefer_cached: false,
        }
    }

    /// `parsimonious`: the deterministic steal-frugal baseline (thieves
    /// wait out [`Self::PARSIMONIOUS_PATIENCE`] opportunities before
    /// robbing the lowest victim).
    pub const fn parsimonious() -> Self {
        PolicySpec {
            order: OrderSpec::LowestId,
            amount: StealAmount::One,
            patience: Self::PARSIMONIOUS_PATIENCE,
            prefer_cached: false,
        }
    }

    /// `ws-half`: E19-promoted preset — uniform-random victims stealing
    /// half the victim's deque. Strictly dominates `ws-random` on the E19
    /// suite (fewer deviations, steals and extra misses at a shorter
    /// makespan). The analysis name for [`wsf_core::PolicyConfig::ws_half`];
    /// see `docs/EXPERIMENTS.md` §E19.
    pub const fn ws_half() -> Self {
        PolicySpec {
            order: OrderSpec::Random(None),
            amount: StealAmount::Half,
            patience: 0,
            prefer_cached: false,
        }
    }

    /// `ws-rr-eager`: E19-promoted preset — round-robin victims with
    /// patience 1, the miss-minimizer of the space (~25 % fewer extra
    /// misses than `ws-random` at ~2 % makespan cost). The analysis name
    /// for [`wsf_core::PolicyConfig::rr_eager`]; see `docs/EXPERIMENTS.md`
    /// §E19.
    pub const fn ws_rr_eager() -> Self {
        PolicySpec {
            order: OrderSpec::RoundRobin,
            amount: StealAmount::One,
            patience: 1,
            prefer_cached: false,
        }
    }

    /// `ws-loaded-frugal`: E19-promoted preset — most-loaded victims,
    /// steal-half, patience 16: the steal-frugal extreme (~35 % fewer
    /// steals, ~18 % fewer extra misses, longer makespan). The analysis
    /// name for [`wsf_core::PolicyConfig::loaded_frugal`]; see
    /// `docs/EXPERIMENTS.md` §E19.
    pub const fn ws_loaded_frugal() -> Self {
        PolicySpec {
            order: OrderSpec::MostLoaded,
            amount: StealAmount::Half,
            patience: 16,
            prefer_cached: false,
        }
    }

    /// The named points of the space: the two historical baselines plus
    /// the E19-promoted presets. `Display` prints these names and
    /// [`PolicySpec::parse`] accepts them.
    pub const NAMED: &'static [(&'static str, PolicySpec)] = &[
        ("ws-random", PolicySpec::ws_random()),
        ("parsimonious", PolicySpec::parsimonious()),
        ("ws-half", PolicySpec::ws_half()),
        ("ws-rr-eager", PolicySpec::ws_rr_eager()),
        ("ws-loaded-frugal", PolicySpec::ws_loaded_frugal()),
    ];

    /// A fresh scheduler instance for one simulation cell, by value:
    /// callers get a concrete [`PolicyScheduler`] and a monomorphized
    /// simulator loop (the old `SweepScheduler::instantiate` returned
    /// `Box<dyn Scheduler>`). `sim_seed` is adopted by a seedless
    /// [`OrderSpec::Random`]; every experiment cell goes through
    /// this single constructor so the (seed, patience) configuration
    /// cannot drift between E11's sweep and the other tables.
    pub fn instantiate(&self, sim_seed: u64) -> PolicyScheduler {
        let order = match self.order {
            OrderSpec::Random(seed) => VictimOrder::Random(seed.unwrap_or(sim_seed)),
            OrderSpec::LowestId => VictimOrder::LowestId,
            OrderSpec::RoundRobin => VictimOrder::RoundRobin,
            OrderSpec::MostLoaded => VictimOrder::MostLoaded,
            OrderSpec::LastVictim => VictimOrder::LastVictim,
        };
        PolicyScheduler::new(PolicyConfig {
            order,
            amount: self.amount,
            patience: self.patience,
            prefer_cached: self.prefer_cached,
        })
    }

    /// Parses the `Display` form: a name from [`PolicySpec::NAMED`] or
    /// `<order>[+half][+pN][+cache]` with order one of `random`,
    /// `random@SEED`, `lowest`, `rr`, `loaded`, `last`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some((_, spec)) = Self::NAMED.iter().find(|(name, _)| *name == s) {
            return Ok(*spec);
        }
        let mut parts = s.split('+');
        let order_tok = parts.next().unwrap_or_default().trim();
        let order = if let Some(seed) = order_tok.strip_prefix("random@") {
            OrderSpec::Random(Some(
                seed.parse::<u64>()
                    .map_err(|e| format!("bad random seed {seed:?}: {e}"))?,
            ))
        } else {
            match order_tok {
                "random" => OrderSpec::Random(None),
                "lowest" => OrderSpec::LowestId,
                "rr" => OrderSpec::RoundRobin,
                "loaded" => OrderSpec::MostLoaded,
                "last" => OrderSpec::LastVictim,
                other => {
                    return Err(format!(
                        "unknown victim order {other:?} (expected random[@SEED], \
                         lowest, rr, loaded, last, or a named policy)"
                    ))
                }
            }
        };
        let mut spec = PolicySpec {
            order,
            amount: StealAmount::One,
            patience: 0,
            prefer_cached: false,
        };
        for part in parts {
            let part = part.trim();
            if part == "half" {
                spec.amount = StealAmount::Half;
            } else if part == "cache" {
                spec.prefer_cached = true;
            } else if let Some(p) = part.strip_prefix('p') {
                spec.patience = p
                    .parse::<u32>()
                    .map_err(|e| format!("bad patience {p:?}: {e}"))?;
            } else {
                return Err(format!(
                    "unknown policy modifier {part:?} (expected half, pN or cache)"
                ));
            }
        }
        Ok(spec)
    }

    /// Parses a comma-separated policy list (e.g.
    /// `ws-random,loaded+half,parsimonious`), for the harness's
    /// `--schedulers` flag.
    pub fn parse_list(s: &str) -> Result<Vec<Self>, String> {
        let specs: Vec<PolicySpec> = s
            .split(',')
            .map(Self::parse)
            .collect::<Result<_, _>>()
            .map_err(|e| format!("--schedulers: {e}"))?;
        if specs.is_empty() {
            return Err("scheduler list must be non-empty".into());
        }
        Ok(specs)
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((name, _)) = Self::NAMED.iter().find(|(_, spec)| spec == self) {
            return write!(f, "{name}");
        }
        write!(f, "{}", self.order.token())?;
        if self.amount == StealAmount::Half {
            write!(f, "+half")?;
        }
        if self.patience > 0 {
            write!(f, "+p{}", self.patience)?;
        }
        if self.prefer_cached {
            write!(f, "+cache")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_baselines_print_their_table_names() {
        assert_eq!(PolicySpec::ws_random().to_string(), "ws-random");
        assert_eq!(PolicySpec::parsimonious().to_string(), "parsimonious");
        assert_eq!(
            PolicySpec::parsimonious().patience,
            PolicySpec::PARSIMONIOUS_PATIENCE
        );
    }

    #[test]
    fn display_parse_round_trips_across_the_space() {
        let orders = [
            OrderSpec::Random(None),
            OrderSpec::Random(Some(9)),
            OrderSpec::LowestId,
            OrderSpec::RoundRobin,
            OrderSpec::MostLoaded,
            OrderSpec::LastVictim,
        ];
        for order in orders {
            for amount in [StealAmount::One, StealAmount::Half] {
                for patience in [0u32, 1, 4, 16] {
                    for prefer_cached in [false, true] {
                        let spec = PolicySpec {
                            order,
                            amount,
                            patience,
                            prefer_cached,
                        };
                        let text = spec.to_string();
                        assert_eq!(
                            PolicySpec::parse(&text),
                            Ok(spec),
                            "round trip through {text:?}"
                        );
                    }
                }
            }
        }
        for (name, spec) in PolicySpec::NAMED {
            assert_eq!(spec.to_string(), *name, "named specs print their name");
            assert_eq!(PolicySpec::parse(name).as_ref(), Ok(spec));
        }
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(PolicySpec::parse("speediest").is_err());
        assert!(PolicySpec::parse("random@notanumber").is_err());
        assert!(PolicySpec::parse("lowest+pfour").is_err());
        assert!(PolicySpec::parse("lowest+double").is_err());
        assert!(PolicySpec::parse_list("").is_err());
        assert_eq!(
            PolicySpec::parse_list("ws-random, loaded+half+p4").unwrap(),
            vec![
                PolicySpec::ws_random(),
                PolicySpec {
                    order: OrderSpec::MostLoaded,
                    amount: StealAmount::Half,
                    patience: 4,
                    prefer_cached: false,
                },
            ]
        );
    }

    #[test]
    fn promoted_presets_match_their_core_constructors() {
        use wsf_core::PolicyConfig;
        let seed = 0x5eed;
        assert_eq!(
            *PolicySpec::ws_half().instantiate(seed).config(),
            PolicyConfig::ws_half(seed)
        );
        assert_eq!(
            *PolicySpec::ws_rr_eager().instantiate(seed).config(),
            PolicyConfig::rr_eager()
        );
        assert_eq!(
            *PolicySpec::ws_loaded_frugal().instantiate(seed).config(),
            PolicyConfig::loaded_frugal()
        );
    }

    #[test]
    fn instantiate_adopts_the_sim_seed_only_when_unpinned() {
        use wsf_core::VictimOrder;
        let adopted = PolicySpec::ws_random().instantiate(77);
        assert_eq!(adopted.config().order, VictimOrder::Random(77));
        let pinned = PolicySpec {
            order: OrderSpec::Random(Some(5)),
            ..PolicySpec::ws_random()
        };
        assert_eq!(
            pinned.instantiate(77).config().order,
            VictimOrder::Random(5)
        );
    }
}
