//! Minimal text-table rendering for experiment output.

/// A simple column-aligned table with a title, rendered as
/// GitHub-flavoured markdown (which also reads fine as plain text).
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (the experiment or figure it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded with empty cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a row from displayable values.
    pub fn row<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let cell = |row: &[String], i: usize| row.get(i).cloned().unwrap_or_default();
        let mut widths = vec![0usize; cols];
        for (i, w) in widths.iter_mut().enumerate() {
            *w = cell(&self.headers, i).len();
            for r in &self.rows {
                *w = (*w).max(cell(r, i).len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |row: &[String]| {
            let cells: Vec<String> = (0..cols)
                .map(|i| format!("{:width$}", cell(row, i), width = widths[i]))
                .collect();
            format!("| {} |\n", cells.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Example", &["k", "deviations", "bound"]);
        t.row(&[4, 12, 64]);
        t.row(&[32, 100, 4096]);
        let s = t.render();
        assert!(s.contains("### Example"));
        assert!(s.contains("| k "));
        assert!(s.contains("| 32 | 100        | 4096  |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("Ragged", &["a", "b"]);
        t.push_row(vec!["1".into()]);
        let s = t.render();
        assert!(s.contains("| 1 |   |"));
    }
}
