//! The experiment suite: one function per experiment in `docs/DESIGN.md`
//! §3.
//!
//! Every experiment returns one or more [`Table`]s whose rows are the
//! measurements the corresponding theorem or figure of the paper is about,
//! next to the theorem's own formula evaluated at the same parameters. The
//! benchmark harness prints them; `docs/EXPERIMENTS.md` archives a run.

use crate::fit::power_law_exponent;
use crate::par::par_map;
use crate::policy::PolicySpec;
use crate::sweeps::{
    capacity_sweep, seed_sweep, CapacityGrid, CapacityRun, CapacitySweep, SweepConfig,
};
use crate::table::Table;
use crate::tournament::{policy_space, run_tournament, TournamentConfig};
use crate::validate::{validate_trace, BoundFamily, TraceValidation};
use std::sync::Arc;
use wsf_core::{
    bounds, ExecutionReport, ForkPolicy, ParallelSimulator, Scheduler, SeqReport,
    SequentialExecutor, SimConfig,
};
use wsf_dag::{classify, span, Dag, DagBuilder};
use wsf_runtime::{Runtime, SpawnPolicy};
use wsf_workloads::figures::{fig3, fig4, fig5a, fig5b, Fig6, Fig7a, Fig7b, Fig8};
use wsf_workloads::random::{random_single_touch, RandomConfig};
use wsf_workloads::{apps, backpressure, dag_exec, pipeline, runtime_apps, sort, stencil};

/// How large the experiment sweeps should be.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny parameters, used by the test-suite smoke tests.
    Quick,
    /// The sizes reported in `docs/EXPERIMENTS.md`.
    Full,
}

impl Scale {
    fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

fn run_with(
    dag: &Dag,
    processors: usize,
    cache_lines: usize,
    policy: ForkPolicy,
    scheduler: Option<&mut dyn Scheduler>,
) -> (SeqReport, ExecutionReport) {
    let config = SimConfig {
        processors,
        cache_lines,
        fork_policy: policy,
        ..SimConfig::default()
    };
    let sim = ParallelSimulator::new(config);
    let seq = sim.sequential(dag);
    let report = match scheduler {
        Some(s) => sim.run_against(dag, &seq, s, false),
        None => {
            let mut random = wsf_core::RandomScheduler::new(config.seed);
            sim.run_against(dag, &seq, &mut random, false)
        }
    };
    (seq, report)
}

/// E1 — Theorem 8 upper bound: measured deviations and additional misses of
/// future-first work stealing on structured single-touch computations,
/// against `P·T∞²` and `C·P·T∞²`.
pub fn e1_thm8_upper(scale: Scale) -> Vec<Table> {
    let procs = scale.pick(vec![2usize, 4], vec![2, 4, 8, 16]);
    let depths = scale.pick(vec![4usize, 6], vec![4, 6, 8, 10]);
    let c = 16usize;

    let mut t = Table::new(
        "E1 / Theorem 8 — future-first upper bound on structured single-touch DAGs",
        &[
            "workload",
            "P",
            "T_inf",
            "deviations",
            "P*T_inf^2",
            "extra misses",
            "C*P*T_inf^2",
            "steals",
        ],
    );
    // One independent cell per (P, workload); sharded across threads and
    // re-assembled in order, so the table is identical at any thread count.
    let mut cells: Vec<(usize, Option<usize>)> = Vec::new();
    for &p in &procs {
        cells.extend(depths.iter().map(|&d| (p, Some(d))));
        cells.push((p, None));
    }
    let rows = par_map(cells, |(p, depth)| {
        let (label, dag) = match depth {
            Some(d) => (format!("fig4(depth={d})"), fig4(d, 4)),
            None => (
                "random-single-touch".to_string(),
                random_single_touch(&RandomConfig {
                    target_nodes: scale.pick(600, 4_000),
                    seed: 11,
                    ..RandomConfig::default()
                }),
            ),
        };
        let sp = span(&dag);
        let (seq, rep) = run_with(&dag, p, c, ForkPolicy::FutureFirst, None);
        vec![
            label,
            p.to_string(),
            sp.to_string(),
            rep.deviations().to_string(),
            bounds::thm8_deviations(p as u64, sp).to_string(),
            rep.additional_misses(&seq).to_string(),
            bounds::thm8_additional_misses(c as u64, p as u64, sp).to_string(),
            rep.steals().to_string(),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    vec![t]
}

/// E2 — Theorem 9 lower bound: the Figure 6 constructions under the
/// scripted adversary. One steal forces `Θ(T∞)` deviations per gadget;
/// chained gadgets multiply the count.
pub fn e2_thm9_lower(scale: Scale) -> Vec<Table> {
    let ks = scale.pick(vec![4usize, 8], vec![8, 16, 32, 64]);
    let c = scale.pick(4usize, 16);

    let mut gadget = Table::new(
        "E2a / Theorem 9, Figure 6(a) — one steal, future-first",
        &[
            "k",
            "T_inf",
            "steals",
            "deviations",
            "dev/T_inf",
            "seq misses",
            "extra misses",
            "k*C",
        ],
    );
    let mut points = Vec::new();
    for &k in &ks {
        let fig = Fig6::gadget(k, c);
        let sp = span(&fig.dag);
        let mut adv = fig.adversary();
        let (seq, rep) = run_with(&fig.dag, fig.processors, c, Fig6::POLICY, Some(&mut adv));
        points.push((sp as f64, rep.deviations() as f64));
        gadget.push_row(vec![
            k.to_string(),
            sp.to_string(),
            rep.steals().to_string(),
            rep.deviations().to_string(),
            format!("{:.3}", rep.deviations() as f64 / sp as f64),
            seq.cache_misses().to_string(),
            rep.additional_misses(&seq).to_string(),
            (k * c).to_string(),
        ]);
    }
    gadget.push_row(vec![
        "exponent of deviations vs T_inf".to_string(),
        format!(
            "{:.2} (theorem: 1.0 per steal)",
            power_law_exponent(&points)
        ),
    ]);

    let mut repeated = Table::new(
        "E2b / Theorem 9, Figure 6(b) — gadgets replayed by the same processors",
        &[
            "gadgets m",
            "k",
            "deviations",
            "m*k",
            "extra misses",
            "steals",
        ],
    );
    let k = scale.pick(6usize, 16);
    for &m in &scale.pick(vec![1usize, 2, 4], vec![1, 2, 4, 8, 16]) {
        let fig = Fig6::repeated(m, k, 1);
        let mut adv = fig.adversary();
        let (seq, rep) = run_with(&fig.dag, fig.processors, 8, Fig6::POLICY, Some(&mut adv));
        repeated.push_row(vec![
            m.to_string(),
            k.to_string(),
            rep.deviations().to_string(),
            (m * k).to_string(),
            rep.additional_misses(&seq).to_string(),
            rep.steals().to_string(),
        ]);
    }

    let mut tree = Table::new(
        "E2c / Theorem 9, Figure 6(c) — independent gadget groups (random scheduler)",
        &["gadgets n", "P", "T_inf", "deviations", "P*T_inf^2"],
    );
    for &n in &scale.pick(vec![2usize], vec![2, 4, 8]) {
        let fig = Fig6::tree(n, k, 1);
        let sp = span(&fig.dag);
        let p = fig.processors;
        let (_, rep) = run_with(&fig.dag, p, 8, Fig6::POLICY, None);
        tree.push_row(vec![
            n.to_string(),
            p.to_string(),
            sp.to_string(),
            rep.deviations().to_string(),
            bounds::thm9_deviations(p as u64, sp).to_string(),
        ]);
    }
    vec![gadget, repeated, tree]
}

/// E3 — Theorem 10: parent-first executions of the Figure 7(b) and Figure 8
/// constructions with the single-steal adversary.
pub fn e3_thm10_parent_first(scale: Scale) -> Vec<Table> {
    let c = scale.pick(4usize, 16);
    let ns = scale.pick(vec![4usize, 8], vec![8, 16, 32, 64]);

    let mut chain = Table::new(
        "E3a / Theorem 10, Figure 7(b) — one steal, parent-first",
        &[
            "n",
            "k",
            "T_inf",
            "deviations",
            "seq misses",
            "extra misses",
            "C*T_inf",
        ],
    );
    for &n in &ns {
        let fig = Fig7b::new(8, n, c);
        let sp = span(&fig.dag);
        let mut adv = fig.adversary();
        let (seq, rep) = run_with(&fig.dag, 2, c, Fig7b::POLICY, Some(&mut adv));
        chain.push_row(vec![
            n.to_string(),
            fig.k.to_string(),
            sp.to_string(),
            rep.deviations().to_string(),
            seq.cache_misses().to_string(),
            rep.additional_misses(&seq).to_string(),
            (c as u64 * sp).to_string(),
        ]);
    }

    let mut branching = Table::new(
        "E3b / Theorem 10, Figure 8 — branching multiplies the damage (t branches)",
        &[
            "branches",
            "touches t",
            "T_inf",
            "deviations",
            "t*n",
            "extra misses",
            "C*t*n",
        ],
    );
    let n = scale.pick(4usize, 16);
    for &depth in &scale.pick(vec![1usize, 2], vec![1, 2, 3, 4, 5]) {
        let fig = Fig8::new(depth, n, c);
        let sp = span(&fig.dag);
        let t = fig.touches();
        let mut adv = fig.adversary();
        let (seq, rep) = run_with(&fig.dag, 2, c, Fig8::POLICY, Some(&mut adv));
        branching.push_row(vec![
            fig.leaves.to_string(),
            t.to_string(),
            sp.to_string(),
            rep.deviations().to_string(),
            (t * n).to_string(),
            rep.additional_misses(&seq).to_string(),
            (c * fig.leaves * n).to_string(),
        ]);
    }
    vec![chain, branching]
}

/// E4 — background bounds: the Figure 7(a)/Figure 2 amplification gadget
/// (one delayed touch costs `Ω(C·T∞)` misses) and the unstructured
/// Figure 3 DAG.
pub fn e4_unstructured(scale: Scale) -> Vec<Table> {
    let c = scale.pick(4usize, 16);
    let ns = scale.pick(vec![8usize], vec![16, 32, 64]);

    let mut amp = Table::new(
        "E4a / Figure 2 & 7(a) — a single delayed touch costs Ω(C·T_inf) misses (parent-first, sequential)",
        &["n", "C", "misses (gate ready)", "misses (gate delayed)", "ratio"],
    );
    for &n in &ns {
        let cheap = Fig7a::new(n, c, false);
        let dear = Fig7a::new(n, c, true);
        let run = |fig: &Fig7a| {
            SequentialExecutor::new(Fig7a::POLICY)
                .with_cache_lines(c)
                .run(&fig.dag)
                .cache
                .misses
        };
        let (a, b) = (run(&cheap), run(&dear));
        amp.push_row(vec![
            n.to_string(),
            c.to_string(),
            a.to_string(),
            b.to_string(),
            format!("{:.2}", b as f64 / a.max(1) as f64),
        ]);
    }

    let mut unstructured = Table::new(
        "E4b / Figure 3 — unstructured futures under work stealing",
        &[
            "touches t",
            "policy",
            "P",
            "deviations",
            "unstructured bound P*T+t*T",
            "extra misses",
        ],
    );
    for &t in &scale.pick(vec![4usize], vec![8, 32, 128]) {
        let dag = fig3(t);
        let sp = span(&dag);
        for policy in ForkPolicy::ALL {
            let (seq, rep) = run_with(&dag, 4, c, policy, None);
            unstructured.push_row(vec![
                t.to_string(),
                policy.to_string(),
                "4".to_string(),
                rep.deviations().to_string(),
                bounds::unstructured_deviations(4, t as u64, sp).to_string(),
                rep.additional_misses(&seq).to_string(),
            ]);
        }
    }
    vec![amp, unstructured]
}

/// E5 — Theorem 12: structured local-touch computations (pipelines) under
/// future-first work stealing.
pub fn e5_local_touch(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E5 / Theorem 12 — local-touch pipelines, future-first",
        &[
            "stages",
            "items",
            "P",
            "T_inf",
            "deviations",
            "P*T_inf^2",
            "extra misses",
            "C*P*T_inf^2",
        ],
    );
    let c = 16usize;
    let procs = scale.pick(vec![2usize], vec![2, 4, 8]);
    let shards = scale.pick(
        vec![(2usize, 3usize)],
        vec![(2, 8), (4, 8), (4, 16), (8, 16)],
    );
    // Shard per (stages, items): the DAG is generated once per shard and
    // every P of the inner loop reuses it.
    let rows = par_map(shards, |(stages, items)| {
        let dag = pipeline::pipeline(stages, items, 3);
        let class = classify(&dag);
        assert!(class.is_structured_local_touch());
        let sp = span(&dag);
        procs
            .iter()
            .map(|&p| {
                let (seq, rep) = run_with(&dag, p, c, ForkPolicy::FutureFirst, None);
                vec![
                    stages.to_string(),
                    items.to_string(),
                    p.to_string(),
                    sp.to_string(),
                    rep.deviations().to_string(),
                    bounds::thm8_deviations(p as u64, sp).to_string(),
                    rep.additional_misses(&seq).to_string(),
                    bounds::thm8_additional_misses(c as u64, p as u64, sp).to_string(),
                ]
            })
            .collect::<Vec<_>>()
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// E6 — Theorems 16/18: computations with a super final node.
pub fn e6_super_final(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E6 / Theorems 16 & 18 — side-effect futures synchronized by a super final node",
        &[
            "side-effect threads",
            "P",
            "T_inf",
            "deviations",
            "P*T_inf^2",
            "extra misses",
        ],
    );
    let c = 16usize;
    let procs = scale.pick(vec![2usize], vec![2, 4, 8]);
    let rows = par_map(scale.pick(vec![4usize], vec![8, 32, 128]), |threads| {
        let dag = side_effect_dag(threads, 6);
        let class = classify(&dag);
        assert!(class.structured && class.single_touch && class.super_final);
        let sp = span(&dag);
        procs
            .iter()
            .map(|&p| {
                let (seq, rep) = run_with(&dag, p, c, ForkPolicy::FutureFirst, None);
                vec![
                    threads.to_string(),
                    p.to_string(),
                    sp.to_string(),
                    rep.deviations().to_string(),
                    bounds::thm8_deviations(p as u64, sp).to_string(),
                    rep.additional_misses(&seq).to_string(),
                ]
            })
            .collect::<Vec<_>>()
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// A program whose futures are forked purely for side effects and only
/// synchronized by the super final node (Definition 13).
fn side_effect_dag(threads: usize, work: usize) -> Dag {
    let mut b = DagBuilder::new();
    let main = b.main_thread();
    for i in 0..threads {
        let f = b.fork(main);
        for w in 0..work {
            let n = b.task(f.future_thread);
            b.set_block(n, wsf_dag::Block((i * work + w) as u32));
        }
        b.task(main);
    }
    b.finish_with_super_final()
        .expect("side-effect DAG builds a valid super-final computation")
}

/// E7 — Lemmas 4, 11 and 14: the sequential-order properties of structured
/// computations under future-first.
pub fn e7_lemma4(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E7 / Lemmas 4, 11, 14 — sequential order properties (future-first)",
        &["workload", "touches checked", "violations"],
    );
    let workloads: Vec<(String, Dag)> = vec![
        ("fig4".into(), fig4(scale.pick(3, 8), 3)),
        ("fig5a".into(), fig5a(scale.pick(3, 12))),
        ("fig5b".into(), fig5b(scale.pick(3, 12))),
        ("fig6a".into(), Fig6::gadget(scale.pick(4, 24), 4).dag),
        ("fib".into(), apps::fib(scale.pick(6, 12))),
        (
            "pipeline".into(),
            pipeline::pipeline(3, scale.pick(3, 10), 2),
        ),
        (
            "random".into(),
            random_single_touch(&RandomConfig {
                target_nodes: scale.pick(400, 3_000),
                seed: 3,
                ..RandomConfig::default()
            }),
        ),
    ];
    for (name, dag) in workloads {
        let seq = SequentialExecutor::new(ForkPolicy::FutureFirst).run(&dag);
        let mut pos = vec![usize::MAX; dag.num_nodes()];
        for (i, n) in seq.order.iter().enumerate() {
            pos[n.index()] = i;
        }
        let mut checked = 0usize;
        let mut violations = 0usize;
        for touch in dag.touches() {
            let (Some(fp), Some(lp)) = (dag.future_parent(touch), dag.local_parent(touch)) else {
                continue;
            };
            checked += 1;
            if pos[fp.index()] >= pos[lp.index()] {
                violations += 1;
            }
        }
        t.push_row(vec![name, checked.to_string(), violations.to_string()]);
    }
    vec![t]
}

/// E8 — the paper's "second contribution": future-first beats parent-first
/// on structured single-touch computations.
pub fn e8_policy_comparison(scale: Scale) -> Vec<Table> {
    let c = scale.pick(8usize, 16);
    let mut t = Table::new(
        "E8 / Section 5.1 vs 5.2 — future-first vs parent-first (additional misses, deviations)",
        &[
            "workload",
            "P",
            "FF deviations",
            "PF deviations",
            "FF extra misses",
            "PF extra misses",
        ],
    );
    let workloads: Vec<(String, Dag)> = vec![
        ("fig6a(k=16)".into(), Fig6::gadget(scale.pick(6, 16), c).dag),
        (
            "fig7b(n=16)".into(),
            Fig7b::new(8, scale.pick(6, 16), c).dag,
        ),
        ("fib".into(), apps::fib(scale.pick(6, 12))),
        ("reduce".into(), apps::reduce(scale.pick(128, 2_048), 16, 8)),
        (
            "matmul".into(),
            apps::matmul(scale.pick(2, 4), scale.pick(4, 8)),
        ),
    ];
    let procs = scale.pick(vec![2usize], vec![2, 8]);
    let rows = par_map(workloads, |(name, dag)| {
        procs
            .iter()
            .map(|&p| {
                let (ff_seq, ff) = run_with(&dag, p, c, ForkPolicy::FutureFirst, None);
                let (pf_seq, pf) = run_with(&dag, p, c, ForkPolicy::ParentFirst, None);
                vec![
                    name.clone(),
                    p.to_string(),
                    ff.deviations().to_string(),
                    pf.deviations().to_string(),
                    ff.additional_misses(&ff_seq).to_string(),
                    pf.additional_misses(&pf_seq).to_string(),
                ]
            })
            .collect::<Vec<_>>()
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// E9 — application workloads: classification and locality.
pub fn e9_applications(scale: Scale) -> Vec<Table> {
    let c = 32usize;
    let mut t = Table::new(
        "E9 / Section 4 — application workloads: class membership and locality (future-first, P=4)",
        &[
            "workload",
            "nodes",
            "T_inf",
            "class",
            "deviations",
            "extra misses",
            "seq misses",
        ],
    );
    let workloads: Vec<(String, Dag)> = vec![
        ("fib".into(), apps::fib(scale.pick(8, 14))),
        ("reduce".into(), apps::reduce(scale.pick(256, 4_096), 16, 8)),
        ("matmul".into(), apps::matmul(scale.pick(3, 6), 8)),
        ("map_reduce".into(), apps::map_reduce(scale.pick(4, 16), 32)),
        ("fig5a (priority futures)".into(), fig5a(scale.pick(4, 16))),
        ("fig5b (passed future)".into(), fig5b(scale.pick(4, 16))),
        (
            "pipeline".into(),
            pipeline::pipeline(4, scale.pick(4, 16), 4),
        ),
    ];
    let rows = par_map(workloads, |(name, dag)| {
        let class = classify(&dag);
        let label = if class.fork_join {
            "fork-join"
        } else if class.is_structured_single_touch() && class.local_touch {
            "single+local"
        } else if class.is_structured_single_touch() {
            "single-touch"
        } else if class.is_structured_local_touch() {
            "local-touch"
        } else {
            "unstructured"
        };
        let (seq, rep) = run_with(&dag, 4, c, ForkPolicy::FutureFirst, None);
        vec![
            name,
            dag.num_nodes().to_string(),
            span(&dag).to_string(),
            label.to_string(),
            rep.deviations().to_string(),
            rep.additional_misses(&seq).to_string(),
            seq.cache_misses().to_string(),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    vec![t]
}

/// E10 — the real runtime: the same kernels on OS threads, child-first vs
/// helper-first, with the runtime's own steal/inline counters.
pub fn e10_runtime(scale: Scale) -> Vec<Table> {
    use std::sync::Arc;
    use wsf_runtime::{Runtime, SpawnPolicy};

    let mut t = Table::new(
        "E10 — real work-stealing runtime (structured single-touch futures)",
        &[
            "kernel",
            "policy",
            "threads",
            "result ok",
            "futures",
            "steals",
            "inline fraction",
            "wall time (ms)",
        ],
    );
    let fib_n = scale.pick(12u64, 20);
    let sum_len = scale.pick(10_000usize, 400_000);
    let sort_len = scale.pick(2_000u64, 40_000);
    let (grid_rows, grid_cols) = scale.pick((4usize, 16usize), (16, 64));
    let stream_items = scale.pick(200usize, 5_000);
    for &threads in &scale.pick(vec![2usize], vec![1, 2, 4]) {
        for policy in SpawnPolicy::ALL {
            let rt = Arc::new(Runtime::builder().threads(threads).policy(policy).build());
            let data: Arc<Vec<u64>> = Arc::new((0..sum_len as u64).collect());

            let sort_input: Vec<u64> = (0..sort_len)
                .map(|i| i.wrapping_mul(2_654_435_761) % 100_000)
                .collect();
            let mut sort_expected = sort_input.clone();
            sort_expected.sort_unstable();

            let start = std::time::Instant::now();
            let fib_val = runtime_apps::fib(&rt, fib_n);
            let sum_val = runtime_apps::sum(&rt, &data, 0, data.len(), 512);
            let mr = runtime_apps::map_reduce(&rt, 32, |w| w as u64, |a, b| a + b);
            let sorted = runtime_apps::merge_sort(&rt, sort_input, 256);
            let grid = runtime_apps::stencil(&rt, grid_rows, grid_cols, 4);
            let exchange = runtime_apps::stencil_exchange(&rt, grid_rows, grid_cols, 4);
            let stream = runtime_apps::streaming_pipeline(&rt, stream_items, 8);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;

            let last = stream_items as u64 - 1;
            let ok = fib_val == fib_reference(fib_n)
                && sum_val == data.iter().sum::<u64>()
                && mr == Some((0..32u64).sum())
                && sorted == sort_expected
                && grid.len() == grid_rows
                // The per-neighbour-copy exchange must reproduce the
                // snapshot stencil's grid exactly.
                && exchange == grid
                && stream.last().copied() == Some(last * last + 1);
            let stats = rt.stats();
            t.push_row(vec![
                "fib+sum+map_reduce+sort+stencil+exchange+stream".to_string(),
                policy.to_string(),
                threads.to_string(),
                ok.to_string(),
                stats.futures_created.to_string(),
                stats.steals.to_string(),
                format!("{:.2}", stats.inline_fraction()),
                format!("{elapsed:.1}"),
            ]);
        }
    }
    vec![t]
}

/// E11 — the bulk `(seed, P, policy, cache, scheduler)` sweep over random
/// structured single-touch DAGs (thread-sharded; see [`crate::sweeps`]),
/// comparing randomized work stealing with the deterministic parsimonious
/// scheduler against each cell's governing deviation bound.
pub fn e11_bulk_sweep(scale: Scale) -> Vec<Table> {
    let config = SweepConfig {
        target_nodes: scale.pick(400, 20_000),
        seeds: scale.pick(vec![1, 2], vec![0, 1, 2, 3]),
        processors: scale.pick(vec![2, 4], vec![2, 4, 8]),
        cache_lines: scale.pick(vec![8], vec![8, 16]),
        schedulers: vec![PolicySpec::ws_random(), PolicySpec::parsimonious()],
        ..SweepConfig::default()
    };
    vec![seed_sweep(&config)]
}

/// Runs one simulation cell under a [`PolicySpec`], sharing the
/// single scheduler constructor with the E11 sweep.
fn run_with_sched(
    dag: &Dag,
    p: usize,
    c: usize,
    policy: ForkPolicy,
    sched: PolicySpec,
) -> (SeqReport, ExecutionReport) {
    let mut s = sched.instantiate(SimConfig::default().seed);
    run_with(dag, p, c, policy, Some(&mut s))
}

/// Formats one measurement as the standard [`THM12_COLUMNS`] row — `P`,
/// `T∞`, scheduler, deviations, the deviation bound, extra misses, the
/// miss bound, steals and the bound verdict — for the given precomputed
/// bound pair. The single row-assembly point behind [`thm12_columns`] and
/// [`thm16_18_columns`], so the E12–E16 tables cannot drift apart.
fn bound_verdict_columns(
    seq: &SeqReport,
    rep: &ExecutionReport,
    sp: u64,
    p: usize,
    sched: PolicySpec,
    dev_bound: u64,
    miss_bound: u64,
) -> Vec<String> {
    bound_verdict_columns_raw(
        sp,
        p,
        sched,
        rep.deviations(),
        dev_bound,
        rep.additional_misses(seq),
        miss_bound,
        rep.steals(),
    )
}

/// The raw-number core of [`bound_verdict_columns`], shared with the
/// one-pass sweep rows (which carry their measurements in a
/// [`CapacityRun`] + curve instead of a report pair). Single assembly
/// point: the two paths cannot drift in format or verdict logic.
#[allow(clippy::too_many_arguments)]
fn bound_verdict_columns_raw(
    sp: u64,
    p: usize,
    sched: PolicySpec,
    deviations: u64,
    dev_bound: u64,
    extra_misses: u64,
    miss_bound: u64,
    steals: u64,
) -> Vec<String> {
    let within = deviations <= dev_bound && extra_misses <= miss_bound;
    vec![
        p.to_string(),
        sp.to_string(),
        sched.to_string(),
        deviations.to_string(),
        dev_bound.to_string(),
        extra_misses.to_string(),
        miss_bound.to_string(),
        steals.to_string(),
        if within { "yes" } else { "NO" }.to_string(),
    ]
}

/// [`bound_verdict_columns`] against the Theorem 12 formulas. Shared by
/// E12–E15.
fn thm12_columns(
    seq: &SeqReport,
    rep: &ExecutionReport,
    sp: u64,
    p: usize,
    c: usize,
    sched: PolicySpec,
) -> Vec<String> {
    bound_verdict_columns(
        seq,
        rep,
        sp,
        p,
        sched,
        bounds::thm12_deviations(p as u64, sp),
        bounds::thm12_additional_misses(c as u64, p as u64, sp),
    )
}

/// Runs one Theorem-12 suite cell under the given scheduler kind and
/// returns [`thm12_columns`] for it. Shared by E12–E14 (E15 computes the
/// sequential baseline once per shard instead).
fn thm12_row(
    dag: &Dag,
    sp: u64,
    p: usize,
    c: usize,
    policy: ForkPolicy,
    sched: PolicySpec,
) -> Vec<String> {
    let (seq, rep) = run_with_sched(dag, p, c, policy, sched);
    thm12_columns(&seq, &rep, sp, p, c, sched)
}

const THM12_COLUMNS: [&str; 9] = [
    "P",
    "T_inf",
    "sched",
    "deviations",
    "P*T_inf^2",
    "extra misses",
    "C*P*T_inf^2",
    "steals",
    "within",
];

/// E12 — Theorem 12 on divide-and-conquer mergesort: the fork-join
/// (single-touch) and streaming-merge (local-touch) variants under
/// future-first, random work stealing vs the deterministic parsimonious
/// scheduler, against the `O(C·P·T∞²)` bound.
pub fn e12_dnc_sort(scale: Scale) -> Vec<Table> {
    let c = 16usize;
    let sizes = scale.pick(
        vec![(64usize, 8usize)],
        vec![(256, 16), (1_024, 32), (4_096, 64)],
    );
    let procs = scale.pick(vec![2usize], vec![2, 4, 8]);
    let mut columns = vec!["variant", "len", "grain"];
    columns.extend(THM12_COLUMNS);
    let mut t = Table::new(
        "E12 / Theorem 12 — divide-and-conquer mergesort, future-first, WS vs parsimonious",
        &columns,
    );
    let mut cells = Vec::new();
    for &(len, grain) in &sizes {
        for variant in ["fork-join", "streaming"] {
            cells.push((len, grain, variant));
        }
    }
    let rows = par_map(cells, |(len, grain, variant)| {
        let dag = match variant {
            "fork-join" => sort::mergesort(len, grain),
            _ => sort::mergesort_streaming(len, grain, 2 * grain),
        };
        let class = classify(&dag);
        assert!(class.is_structured_local_touch(), "{:?}", class.violations);
        let sp = span(&dag);
        let mut rows = Vec::new();
        for &p in &procs {
            for sched in [PolicySpec::ws_random(), PolicySpec::parsimonious()] {
                let mut row = vec![variant.to_string(), len.to_string(), grain.to_string()];
                row.extend(thm12_row(&dag, sp, p, c, ForkPolicy::FutureFirst, sched));
                rows.push(row);
            }
        }
        rows
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// E13 — Theorem 12 on wavefront stencil grids: row threads exchanging
/// boundary futures, interior blocks reused across time steps.
pub fn e13_stencil(scale: Scale) -> Vec<Table> {
    let c = 16usize;
    let shapes = scale.pick(
        vec![(3usize, 2usize, 3usize)],
        vec![(4, 4, 8), (8, 8, 8), (8, 4, 16)],
    );
    let procs = scale.pick(vec![2usize], vec![2, 4, 8]);
    let mut columns = vec!["rows", "width", "steps"];
    columns.extend(THM12_COLUMNS);
    let mut t = Table::new(
        "E13 / Theorem 12 — wavefront stencil grids, future-first, WS vs parsimonious",
        &columns,
    );
    let rows = par_map(shapes, |(rows, width, steps)| {
        let dag = stencil::stencil(rows, width, steps);
        let class = classify(&dag);
        assert!(class.is_structured_local_touch(), "{:?}", class.violations);
        let sp = span(&dag);
        let mut out = Vec::new();
        for &p in &procs {
            for sched in [PolicySpec::ws_random(), PolicySpec::parsimonious()] {
                let mut row = vec![rows.to_string(), width.to_string(), steps.to_string()];
                row.extend(thm12_row(&dag, sp, p, c, ForkPolicy::FutureFirst, sched));
                out.push(row);
            }
        }
        out
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// E14 — Theorem 12 on streaming pipelines with bounded backpressure: the
/// window sweep shows how tightening the in-flight bound shrinks span-side
/// slack while the Theorem 12 bound keeps holding; both fork policies run
/// (future-first against `P·T∞²`, parent-first against the general
/// `(P+t)·T∞` shape Theorem 10's lower bound lives in).
pub fn e14_backpressure(scale: Scale) -> Vec<Table> {
    let c = 16usize;
    let (stages, items, work) = scale.pick((2usize, 4usize, 2usize), (4, 16, 3));
    let windows = scale.pick(vec![1usize, 4], vec![1, 2, 4, 16]);
    let procs = scale.pick(vec![2usize], vec![2, 4, 8]);
    let mut t = Table::new(
        "E14 / Theorems 10 & 12 — bounded-backpressure pipelines, both policies, WS vs parsimonious",
        &[
            "stages",
            "items",
            "window",
            "policy",
            "P",
            "T_inf",
            "sched",
            "deviations",
            "dev bound",
            "extra misses",
            "steals",
            "within",
        ],
    );
    let rows = par_map(windows, |window| {
        let dag = backpressure::batched_pipeline(stages, items, window, work);
        let class = classify(&dag);
        assert!(class.is_structured_local_touch(), "{:?}", class.violations);
        let sp = span(&dag);
        let touches = dag.touches().count() as u64;
        let mut out = Vec::new();
        for policy in ForkPolicy::ALL {
            for &p in &procs {
                for sched in [PolicySpec::ws_random(), PolicySpec::parsimonious()] {
                    let (seq, rep) = run_with_sched(&dag, p, c, policy, sched);
                    let dev_bound = match policy {
                        ForkPolicy::FutureFirst => bounds::thm12_deviations(p as u64, sp),
                        ForkPolicy::ParentFirst => {
                            bounds::unstructured_deviations(p as u64, touches, sp)
                        }
                    };
                    let within = rep.deviations() <= dev_bound
                        && rep.additional_misses(&seq)
                            <= bounds::misses_from_deviations(c as u64, rep.deviations());
                    out.push(vec![
                        stages.to_string(),
                        items.to_string(),
                        window.to_string(),
                        policy.to_string(),
                        p.to_string(),
                        sp.to_string(),
                        sched.to_string(),
                        rep.deviations().to_string(),
                        dev_bound.to_string(),
                        rep.additional_misses(&seq).to_string(),
                        rep.steals().to_string(),
                        if within { "yes" } else { "NO" }.to_string(),
                    ]);
                }
            }
        }
        out
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// E15 — large-capacity locality sweep: the Theorem-12 workload families at
/// cache capacities from the paper's toy C = 16 up to 2²⁰ lines (the regime
/// real cache-simulation frameworks model). The theorems are stated for
/// arbitrary `C`; the sweep evaluates the full dense power-of-two grid from
/// *one* execution per `(family, P, scheduler)` via the stack-distance
/// profiler's [`capacity_sweep`] (Mattson's one-pass algorithm) — where the
/// seed path re-simulated once per capacity, capping the grid at 4 points.
///
/// One shard per family ([`par_map`]), so the table is byte-identical at
/// every thread count; and the rows are byte-identical to the per-capacity
/// [`e15_cache_capacity_per_c`] path on any shared grid (pinned in
/// `tests/parallel_determinism.rs`).
pub fn e15_cache_capacity(scale: Scale) -> Vec<Table> {
    e15_cache_capacity_with_grid(scale, &default_capacity_grid(scale))
}

/// One workload family of the E15/E17 sweeps: label plus DAG builder.
type Family = (&'static str, fn(Scale) -> Dag);

/// The Theorem-12 workload families E15 (and E17) sweep.
///
/// Full-scale sizes are chosen so the working sets straddle the swept
/// capacities (the mergesort variants touch tens of thousands of blocks,
/// comparable to C = 32768) — only tractable with O(1) cache models.
fn e15_families() -> [Family; 4] {
    [
        ("mergesort", |s| {
            sort::mergesort(s.pick(64, 65_536), s.pick(8, 64))
        }),
        ("mergesort-streaming", |s| {
            let grain = s.pick(8, 64);
            sort::mergesort_streaming(s.pick(64, 65_536), grain, 2 * grain)
        }),
        ("stencil", |s| {
            let (rows, width, steps) = s.pick((3, 2, 3), (48, 128, 6));
            stencil::stencil(rows, width, steps)
        }),
        ("pipeline-window4", |s| {
            let (stages, items) = s.pick((2, 4), (8, 512));
            backpressure::batched_pipeline(stages, items, 4, 3)
        }),
    ]
}

/// [`e15_cache_capacity`] over a caller-chosen capacity grid: one
/// [`capacity_sweep`] per family answers every grid point, so the grid's
/// resolution costs nothing extra. One shard per family; rows come out
/// family-major, then C, then `(P, scheduler)` — exactly the per-capacity
/// path's order, which [`e15_cache_capacity_per_c`] pins byte-identical.
pub fn e15_cache_capacity_with_grid(scale: Scale, grid: &CapacityGrid) -> Vec<Table> {
    let procs = scale.pick(vec![2usize], vec![2, 8]);
    let mut columns = vec!["family", "nodes", "blocks", "C"];
    columns.extend(THM12_COLUMNS);
    let mut t = Table::new(
        capacity_sweep_title("E15 / Theorem 12 at scale — locality sweep", scale, grid),
        &columns,
    );
    let rows = par_map(e15_families().to_vec(), |(name, build)| {
        let dag = build(scale);
        let class = classify(&dag);
        assert!(class.is_structured_local_touch(), "{:?}", class.violations);
        let sweep = capacity_sweep(
            &dag,
            ForkPolicy::FutureFirst,
            &procs,
            &[PolicySpec::ws_random(), PolicySpec::parsimonious()],
        );
        let mut out = Vec::new();
        for &c in grid.capacities() {
            for run in &sweep.runs {
                let mut row = vec![
                    name.to_string(),
                    dag.num_nodes().to_string(),
                    dag.block_space().to_string(),
                    c.to_string(),
                ];
                row.extend(thm12_columns_at(&sweep, run, c));
                out.push(row);
            }
        }
        out
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// The seed per-capacity E15 path: one full re-simulation per `(family,
/// C)` cell. Kept as the differential anchor the one-pass
/// [`e15_cache_capacity_with_grid`] is pinned byte-identical against (see
/// `tests/parallel_determinism.rs`) and as the bench baseline the speedup
/// is measured from.
pub fn e15_cache_capacity_per_c(scale: Scale, grid: &CapacityGrid) -> Vec<Table> {
    let capacities = grid.capacities().to_vec();
    let procs = scale.pick(vec![2usize], vec![2, 8]);
    let mut columns = vec!["family", "nodes", "blocks", "C"];
    columns.extend(THM12_COLUMNS);
    let mut t = Table::new(
        "E15 / Theorem 12 at scale — locality sweep, one re-simulation per capacity",
        &columns,
    );
    let mut cells = Vec::new();
    for &family in &e15_families() {
        for &c in &capacities {
            cells.push((family, c));
        }
    }
    let rows = par_map(cells, |((name, build), c)| {
        let dag = build(scale);
        let class = classify(&dag);
        assert!(class.is_structured_local_touch(), "{:?}", class.violations);
        let sp = span(&dag);
        // The sequential baseline depends on neither P nor the scheduler:
        // compute it once per (family, C) shard; every run in the shard
        // reuses it and one scratch.
        let base = SimConfig {
            cache_lines: c,
            fork_policy: ForkPolicy::FutureFirst,
            ..SimConfig::default()
        };
        let seq = ParallelSimulator::new(base).sequential(&dag);
        let mut scratch = wsf_core::SimScratch::new();
        let mut out = Vec::new();
        for &p in &procs {
            for sched in [PolicySpec::ws_random(), PolicySpec::parsimonious()] {
                let cfg = SimConfig {
                    processors: p,
                    ..base
                };
                let mut s = sched.instantiate(cfg.seed);
                let rep = ParallelSimulator::new(cfg).run_with_scratch(
                    &dag,
                    &seq,
                    &mut s,
                    false,
                    &mut scratch,
                );
                let mut row = vec![
                    name.to_string(),
                    dag.num_nodes().to_string(),
                    dag.block_space().to_string(),
                    c.to_string(),
                ];
                row.extend(thm12_columns(&seq, &rep, sp, p, c, sched));
                out.push(row);
            }
        }
        out
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// E16 — Theorems 16/18 at scale: the symmetric-exchange stencil (the
/// super-final workload family — per-neighbour boundary copies closed by a
/// super final node, which the one-sided E13 wavefront cannot express)
/// swept over the same cache capacities as E15. `steps = 1` instances are
/// exactly the Definition 13 class (Theorem 16); `steps > 1` instances
/// exchange with both neighbours and leave plain local-touch (Definition
/// 17's regime and one step beyond — the Theorem 18 formula is the bound
/// column either way, and every row's verdict is asserted in tests).
///
/// One shard per shape ([`par_map`]), each answering every capacity from
/// one [`capacity_sweep`], so the table is byte-identical at every thread
/// count and — on any shared grid — byte-identical to the per-capacity
/// [`e16_exchange_stencil_per_c`] path.
pub fn e16_exchange_stencil(scale: Scale) -> Vec<Table> {
    e16_exchange_stencil_with_grid(scale, &default_capacity_grid(scale))
}

/// The symmetric-exchange shapes E16 sweeps.
///
/// Full-scale shapes straddle the swept capacities like E15's: ~1.3k,
/// ~6.7k and ~34k distinct blocks, plus a steps = 1 shape (the pure
/// Theorem 16 / Definition 13 class) with a ~33k-block working set.
fn e16_shapes(scale: Scale) -> Vec<(usize, usize, usize)> {
    scale.pick(
        vec![(3usize, 2usize, 2usize), (4, 2, 1)],
        vec![(16, 64, 8), (48, 128, 6), (128, 256, 4), (64, 512, 1)],
    )
}

/// Classifies one E16 exchange-stencil DAG, asserting the structural
/// properties its theorem bounds rely on. Shared by both sweep paths.
fn e16_classify(dag: &Dag, rows: usize, steps: usize) -> bool {
    let class = classify(dag);
    assert!(class.structured, "{:?}", class.violations);
    assert!(class.super_final);
    if steps == 1 {
        assert!(class.single_touch, "{:?}", class.violations);
    } else if rows > 2 {
        assert!(
            !class.local_touch,
            "symmetric exchange leaves plain local-touch"
        );
    }
    class.single_touch
}

/// [`e16_exchange_stencil`] over a caller-chosen capacity grid (the E15
/// one-pass protocol; rows shape-major, then C, then `(P, scheduler)`).
pub fn e16_exchange_stencil_with_grid(scale: Scale, grid: &CapacityGrid) -> Vec<Table> {
    let procs = scale.pick(vec![2usize], vec![2, 8]);
    let mut columns = vec!["rows", "width", "steps", "nodes", "blocks", "C"];
    columns.extend(THM12_COLUMNS);
    let mut t = Table::new(
        capacity_sweep_title(
            "E16 / Theorems 16 & 18 at scale — symmetric-exchange stencils (super final node)",
            scale,
            grid,
        ),
        &columns,
    );
    let rows = par_map(e16_shapes(scale), |(rows, width, steps)| {
        let dag = stencil::stencil_exchange(rows, width, steps);
        let single_touch = e16_classify(&dag, rows, steps);
        let sweep = capacity_sweep(
            &dag,
            ForkPolicy::FutureFirst,
            &procs,
            &[PolicySpec::ws_random(), PolicySpec::parsimonious()],
        );
        let mut out = Vec::new();
        for &c in grid.capacities() {
            for run in &sweep.runs {
                let mut row = vec![
                    rows.to_string(),
                    width.to_string(),
                    steps.to_string(),
                    dag.num_nodes().to_string(),
                    dag.block_space().to_string(),
                    c.to_string(),
                ];
                row.extend(thm16_18_columns_at(&sweep, run, c, single_touch));
                out.push(row);
            }
        }
        out
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// The seed per-capacity E16 path (one re-simulation per `(shape, C)`
/// cell), kept as the differential anchor and bench baseline like
/// [`e15_cache_capacity_per_c`].
pub fn e16_exchange_stencil_per_c(scale: Scale, grid: &CapacityGrid) -> Vec<Table> {
    let capacities = grid.capacities().to_vec();
    let procs = scale.pick(vec![2usize], vec![2, 8]);
    let mut columns = vec!["rows", "width", "steps", "nodes", "blocks", "C"];
    columns.extend(THM12_COLUMNS);
    let mut t = Table::new(
        "E16 / Theorems 16 & 18 at scale — symmetric-exchange stencils, one re-simulation per capacity",
        &columns,
    );
    let shapes = e16_shapes(scale);
    let mut cells = Vec::new();
    for &shape in &shapes {
        for &c in &capacities {
            cells.push((shape, c));
        }
    }
    let rows = par_map(cells, |((rows, width, steps), c)| {
        let dag = stencil::stencil_exchange(rows, width, steps);
        let single_touch = e16_classify(&dag, rows, steps);
        let sp = span(&dag);
        let base = SimConfig {
            cache_lines: c,
            fork_policy: ForkPolicy::FutureFirst,
            ..SimConfig::default()
        };
        let seq = ParallelSimulator::new(base).sequential(&dag);
        let mut scratch = wsf_core::SimScratch::new();
        let mut out = Vec::new();
        for &p in &procs {
            for sched in [PolicySpec::ws_random(), PolicySpec::parsimonious()] {
                let cfg = SimConfig {
                    processors: p,
                    ..base
                };
                let mut s = sched.instantiate(cfg.seed);
                let rep = ParallelSimulator::new(cfg).run_with_scratch(
                    &dag,
                    &seq,
                    &mut s,
                    false,
                    &mut scratch,
                );
                let mut row = vec![
                    rows.to_string(),
                    width.to_string(),
                    steps.to_string(),
                    dag.num_nodes().to_string(),
                    dag.block_space().to_string(),
                    c.to_string(),
                ];
                row.extend(thm16_18_columns(&seq, &rep, sp, p, c, sched, single_touch));
                out.push(row);
            }
        }
        out
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// [`bound_verdict_columns`] against the Theorem 16 (single-touch,
/// `steps = 1`) or Theorem 18 (local-touch regime, `steps > 1`) formulas —
/// numerically Theorem 8's `P·T∞²` / `C·P·T∞²`, aliased for auditability.
fn thm16_18_columns(
    seq: &SeqReport,
    rep: &ExecutionReport,
    sp: u64,
    p: usize,
    c: usize,
    sched: PolicySpec,
    single_touch: bool,
) -> Vec<String> {
    let (dev_bound, miss_bound) = thm16_18_bounds(p, c, sp, single_touch);
    bound_verdict_columns(seq, rep, sp, p, sched, dev_bound, miss_bound)
}

/// The Theorem 16 (`steps = 1`) or Theorem 18 (deviation, additional-miss)
/// bound pair at the given parameters.
fn thm16_18_bounds(p: usize, c: usize, sp: u64, single_touch: bool) -> (u64, u64) {
    if single_touch {
        (
            bounds::thm16_deviations(p as u64, sp),
            bounds::thm16_additional_misses(c as u64, p as u64, sp),
        )
    } else {
        (
            bounds::thm18_deviations(p as u64, sp),
            bounds::thm18_additional_misses(c as u64, p as u64, sp),
        )
    }
}

/// [`bound_verdict_columns_raw`] for one capacity of a one-pass
/// [`CapacitySweep`] run, against the Theorem 12 formulas — the one-pass
/// counterpart of [`thm12_columns`].
fn thm12_columns_at(sweep: &CapacitySweep, run: &CapacityRun, c: usize) -> Vec<String> {
    let (p, sp) = (run.processors, sweep.span);
    bound_verdict_columns_raw(
        sp,
        p,
        run.scheduler,
        run.deviations,
        bounds::thm12_deviations(p as u64, sp),
        run.additional_misses_at(&sweep.seq_curve, c),
        bounds::thm12_additional_misses(c as u64, p as u64, sp),
        run.steals,
    )
}

/// [`bound_verdict_columns_raw`] for one capacity of a one-pass
/// [`CapacitySweep`] run, against the Theorem 16/18 formulas — the
/// one-pass counterpart of [`thm16_18_columns`].
fn thm16_18_columns_at(
    sweep: &CapacitySweep,
    run: &CapacityRun,
    c: usize,
    single_touch: bool,
) -> Vec<String> {
    let (p, sp) = (run.processors, sweep.span);
    let (dev_bound, miss_bound) = thm16_18_bounds(p, c, sp, single_touch);
    bound_verdict_columns_raw(
        sp,
        p,
        run.scheduler,
        run.deviations,
        dev_bound,
        run.additional_misses_at(&sweep.seq_curve, c),
        miss_bound,
        run.steals,
    )
}

/// The capacity grid an experiment sweeps when the caller does not supply
/// one: two points at `Scale::Quick`, the dense power-of-two grid at
/// `Scale::Full`.
pub fn default_capacity_grid(scale: Scale) -> CapacityGrid {
    scale.pick(CapacityGrid::quick(), CapacityGrid::dense())
}

/// Renders a capacity-sweep table title: the C range and point count,
/// plus the grid's truncation note when the caller swept something coarser
/// than `scale`'s default — so a truncated C-resolution shows up in the
/// table itself, not just the harness log.
fn capacity_sweep_title(prefix: &str, scale: Scale, grid: &CapacityGrid) -> String {
    let caps = grid.capacities();
    let (lo, hi) = (
        caps.iter().min().expect("grid is non-empty"),
        caps.iter().max().expect("grid is non-empty"),
    );
    let mut title = format!(
        "{prefix}, one-pass over C = {lo} … {hi} ({} points)",
        caps.len()
    );
    if grid != &default_capacity_grid(scale) {
        if let Some(note) = grid.truncation_note() {
            title.push_str(&format!(" [{note}]"));
        }
    }
    title
}

/// E17 — per-workload miss-ratio curves: every E15 family and two E16
/// exchange shapes profiled once with the stack-distance simulator, then
/// read out at every grid capacity. Each row shows the *sequential*
/// miss count and miss ratio at that capacity next to the parallel run's
/// standard bound-verdict columns (Theorem 12 for the families, Theorem
/// 16/18 for the exchange shapes) — the dense C-resolution picture of how
/// each working set falls into cache, with the theorem verdicts riding
/// along at every point.
pub fn e17_miss_ratio_curves(scale: Scale) -> Vec<Table> {
    e17_miss_ratio_curves_with_grid(scale, &default_capacity_grid(scale))
}

/// The E17 workload list: the Theorem-12 families plus two exchange
/// stencils (one `steps = 1` Theorem-16 instance, one Theorem-18
/// instance).
enum E17Workload {
    /// Index into [`e15_families`] (Theorem-12 bounds).
    Family(usize),
    /// An exchange-stencil shape (Theorem-16/18 bounds).
    Exchange(usize, usize, usize),
}

/// [`e17_miss_ratio_curves`] over a caller-chosen capacity grid.
pub fn e17_miss_ratio_curves_with_grid(scale: Scale, grid: &CapacityGrid) -> Vec<Table> {
    let p = scale.pick(2usize, 8);
    let exchanges = scale.pick(
        vec![(3usize, 2usize, 2usize), (4, 2, 1)],
        vec![(48, 128, 6), (64, 512, 1)],
    );
    let mut columns = vec!["workload", "blocks", "C", "seq misses", "seq ratio"];
    columns.extend(THM12_COLUMNS);
    let mut t = Table::new(
        capacity_sweep_title(
            "E17 / Theorems 12, 16 & 18 — miss-ratio curves (stack distance)",
            scale,
            grid,
        ),
        &columns,
    );
    let mut workloads: Vec<E17Workload> =
        (0..e15_families().len()).map(E17Workload::Family).collect();
    workloads.extend(
        exchanges
            .iter()
            .map(|&(r, w, s)| E17Workload::Exchange(r, w, s)),
    );
    let rows = par_map(workloads, |workload| {
        let (name, dag, single_touch, thm12) = match workload {
            E17Workload::Family(i) => {
                let (name, build) = e15_families()[i];
                let dag = build(scale);
                let class = classify(&dag);
                assert!(class.is_structured_local_touch(), "{:?}", class.violations);
                (name.to_string(), dag, false, true)
            }
            E17Workload::Exchange(r, w, s) => {
                let dag = stencil::stencil_exchange(r, w, s);
                let single_touch = e16_classify(&dag, r, s);
                (format!("exchange-{r}x{w}x{s}"), dag, single_touch, false)
            }
        };
        let sweep = capacity_sweep(
            &dag,
            ForkPolicy::FutureFirst,
            &[p],
            &[PolicySpec::ws_random()],
        );
        let run = &sweep.runs[0];
        let mut out = Vec::new();
        for &c in grid.capacities() {
            let mut row = vec![
                name.clone(),
                dag.block_space().to_string(),
                c.to_string(),
                sweep.seq_curve.misses_at(c).to_string(),
                format!("{:.4}", sweep.seq_curve.miss_ratio_at(c)),
            ];
            row.extend(if thm12 {
                thm12_columns_at(&sweep, run, c)
            } else {
                thm16_18_columns_at(&sweep, run, c, single_touch)
            });
            out.push(row);
        }
        out
    });
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    vec![t]
}

/// The simulator replay behind E18: every committed epoch becomes one
/// [`backpressure::batched_pipeline`] DAG (the stage topology the engine
/// executed) and is measured as a standard Theorem-12 row under both
/// sweep schedulers. The rows depend only on the committed log — which is
/// exactly why a faulted run must reproduce the fault-free table byte for
/// byte.
fn e18_epoch_miss_rows(
    policy: wsf_runtime::SpawnPolicy,
    store: &wsf_runtime::CheckpointStore,
    stages: usize,
    window: usize,
    work: usize,
    p: usize,
    c: usize,
) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for cp in store.log() {
        let dag = backpressure::batched_pipeline(stages, cp.items as usize, window, work);
        let class = classify(&dag);
        assert!(class.is_structured_local_touch(), "{:?}", class.violations);
        let sp = span(&dag);
        for sched in [PolicySpec::ws_random(), PolicySpec::parsimonious()] {
            let mut row = vec![
                policy.to_string(),
                cp.epoch.to_string(),
                cp.first_item.to_string(),
                cp.items.to_string(),
            ];
            row.extend(thm12_row(&dag, sp, p, c, ForkPolicy::FutureFirst, sched));
            out.push(row);
        }
    }
    out
}

/// E18 — fault-tolerant streaming epochs: the seeded stream runs through
/// the crash-recovery engine (`wsf_runtime::StreamEngine`) twice per spawn
/// policy — fault-free and under a seeded fault schedule of task panics,
/// worker kills, injector stalls and delayed wakeups
/// (`WSF_FAULT_SEED`, default 1; the CI fault-matrix job sweeps it) — and
/// every committed epoch is replayed as its `batched_pipeline` DAG on the
/// simulator for Theorem-12 per-epoch miss accounting. Because commits
/// happen only at barriers and transforms are pure over the epoch-start
/// snapshot, the faulted run must commit a byte-identical log, so its miss
/// table equals the fault-free one row for row; the summary table checks
/// the exactly-once invariants (valid contiguous log, states equal to the
/// sequential reference, fingerprint equal to the fault-free run).
pub fn e18_streaming_epochs(scale: Scale) -> Vec<Table> {
    use std::sync::Arc;
    use std::time::Duration;
    use wsf_runtime::{
        sequential_reference, EpochConfig, FaultPlan, FaultSpec, Runtime, SpawnPolicy, StreamEngine,
    };
    use wsf_workloads::streaming::{mix_stages, SeededStream};

    let c = 16usize;
    let sim_p = scale.pick(2usize, 4);
    let stages_n = scale.pick(2usize, 4);
    let epoch_items = scale.pick(8usize, 64);
    let epochs = scale.pick(3u64, 8);
    let (window, work) = (4usize, 2usize);
    // Ragged final epoch: the last barrier commits fewer items.
    let len = epoch_items as u64 * epochs - 3;
    let fault_seed: u64 = std::env::var("WSF_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let source = SeededStream::new(0x5eed_0018, len);
    let stages = mix_stages(stages_n, 18);
    let reference = sequential_reference(&stages, &source, epoch_items);
    let config = EpochConfig {
        epoch_items,
        window,
        max_retries: 8,
        retry_backoff: Duration::from_millis(1),
        task_timeout: Duration::from_secs(10),
    };
    let spec = FaultSpec {
        // Well under the `len` dequeues the stream guarantees, so every
        // drawn fault actually fires (keeps the summary deterministic).
        horizon: len / 2,
        panics: 2,
        kills: 1,
        stall_period: 5,
        stall: Duration::from_micros(100),
        wakeup_period: 3,
        wakeup_delay: Duration::from_micros(50),
    };

    let mut columns = vec!["policy", "epoch", "first item", "items"];
    columns.extend(THM12_COLUMNS);
    let mut misses = Table::new(
        format!(
            "E18 / Theorem 12 — per-epoch miss accounting under injected faults (fault seed {fault_seed})"
        ),
        &columns,
    );
    let mut summary = Table::new(
        format!("E18 — crash-recovery summary (fault seed {fault_seed})"),
        &[
            "policy",
            "threads",
            "fault plan",
            "epochs",
            "items",
            "exactly-once",
        ],
    );

    for policy in SpawnPolicy::ALL {
        let rt = Arc::new(Runtime::builder().threads(2).policy(policy).build());
        let mut baseline = StreamEngine::new(rt, stages.clone(), config.clone());
        baseline.run(&source).expect("E18 fault-free baseline");

        let plan = Arc::new(FaultPlan::seeded(fault_seed, &spec));
        let rt = Arc::new(
            Runtime::builder()
                .threads(2)
                .policy(policy)
                .fault_hooks(Arc::clone(&plan) as _)
                .build(),
        );
        let mut faulted = StreamEngine::new(rt, stages.clone(), config.clone());
        let report = faulted
            .run(&source)
            .unwrap_or_else(|e| panic!("E18 faulted run (seed {fault_seed}, {policy}): {e}"));

        let clean_rows =
            e18_epoch_miss_rows(policy, baseline.store(), stages_n, window, work, sim_p, c);
        let fault_rows =
            e18_epoch_miss_rows(policy, faulted.store(), stages_n, window, work, sim_p, c);
        assert_eq!(
            clean_rows, fault_rows,
            "E18 {policy}: faulted run must reproduce the fault-free per-epoch miss table"
        );

        let exactly_once = faulted.store().validate().is_ok()
            && faulted.committed_states() == reference
            && faulted.store().fingerprint() == baseline.store().fingerprint();
        summary.push_row(vec![
            policy.to_string(),
            "2".to_string(),
            plan.describe(),
            report.epochs_committed.to_string(),
            report.items.to_string(),
            if exactly_once { "yes" } else { "NO" }.to_string(),
        ]);
        // Scheduling-dependent diagnostics stay out of the table so it is
        // byte-identical across runs and thread counts.
        eprintln!(
            "E18 {policy}: retries={} inline_epochs={} fired: {}p/{}k stalls={} delays={}",
            report.retries,
            report.inline_epochs,
            plan.fired_panics(),
            plan.fired_kills(),
            plan.fired_stalls(),
            plan.fired_delays(),
        );
        for row in fault_rows {
            misses.push_row(row);
        }
    }
    vec![misses, summary]
}

/// One workload of the E19 tournament suite: name, DAG, and which bound
/// family governs it (`thm12` for the Theorem-12 families,
/// Theorem 16/18 — keyed by `single_touch` — for the exchange shapes).
struct E19Workload {
    name: &'static str,
    dag: Dag,
    thm12: bool,
    single_touch: bool,
}

/// The Theorem-12/16 workload suite the E19 tournament scores against:
/// the four E15 families plus one Theorem-16 (`steps = 1`) and one
/// Theorem-18 symmetric-exchange stencil. Instances are sized below the
/// E15 full-scale ones — the tournament simulates every workload once per
/// `(P, policy)` over the whole policy space, so the suite trades
/// working-set size for grid width (only the sizes shrink at
/// `Scale::Quick`; the policy grid never does).
fn e19_suite(scale: Scale) -> Vec<E19Workload> {
    let (len, grain) = scale.pick((64usize, 8usize), (1_024, 32));
    let families = [
        ("mergesort", sort::mergesort(len, grain), true),
        (
            "mergesort-streaming",
            sort::mergesort_streaming(len, grain, 2 * grain),
            true,
        ),
        (
            "stencil",
            {
                let (r, w, s) = scale.pick((3usize, 2usize, 3usize), (16, 32, 4));
                stencil::stencil(r, w, s)
            },
            true,
        ),
        (
            "pipeline-window4",
            {
                let (stages, items) = scale.pick((2usize, 4usize), (4, 64));
                backpressure::batched_pipeline(stages, items, 4, 3)
            },
            true,
        ),
    ];
    let mut suite: Vec<E19Workload> = families
        .into_iter()
        .map(|(name, dag, thm12)| {
            let class = classify(&dag);
            assert!(class.is_structured_local_touch(), "{:?}", class.violations);
            E19Workload {
                name,
                dag,
                thm12,
                single_touch: false,
            }
        })
        .collect();
    for (name, (r, w, s)) in [
        (
            "exchange-thm16",
            scale.pick((4usize, 2usize, 1usize), (16, 64, 1)),
        ),
        ("exchange-thm18", scale.pick((3, 2, 2), (16, 32, 4))),
    ] {
        let dag = stencil::stencil_exchange(r, w, s);
        let single_touch = e16_classify(&dag, r, s);
        suite.push(E19Workload {
            name,
            dag,
            thm12: false,
            single_touch,
        });
    }
    suite
}

/// The E19-promoted presets, in [`PolicySpec::NAMED`] order (everything
/// after the two historical baselines).
fn e19_presets() -> Vec<PolicySpec> {
    PolicySpec::NAMED
        .iter()
        .map(|&(_, spec)| spec)
        .filter(|spec| *spec != PolicySpec::ws_random() && *spec != PolicySpec::parsimonious())
        .collect()
}

/// E19 — the scheduler tournament: the simulator as a fitness oracle over
/// the composable steal-policy space. Grid-enumerates victim order ×
/// steal amount × patience × locality (80 points, ≥ 64 at every scale),
/// scores every point over the Theorem-12/16 workload suite × P ×
/// sampled capacities with one one-pass [`capacity_sweep`] per workload,
/// and emits three tables: aggregate scores with Pareto marks, the
/// Pareto front, and the promoted presets against the `ws-random`
/// baseline cell by cell — with the Theorem 8/10/12-shaped bound, the
/// slack left under it, and a `beats` verdict (fewer extra misses at
/// equal-or-better makespan) per `(workload, P, C)`.
pub fn e19_scheduler_tournament(scale: Scale) -> Vec<Table> {
    e19_scheduler_tournament_with_specs(scale, &policy_space())
}

/// [`e19_scheduler_tournament`] over a caller-chosen policy set (the
/// harness's `--schedulers`/`--patience` flags). A set narrower than the
/// default grid is flagged in the scores table's title, mirroring the
/// `--capacities` truncation convention.
pub fn e19_scheduler_tournament_with_specs(scale: Scale, specs: &[PolicySpec]) -> Vec<Table> {
    let suite = e19_suite(scale);
    let workloads: Vec<(String, Dag)> = suite
        .iter()
        .map(|w| (w.name.to_string(), w.dag.clone()))
        .collect();
    let config = TournamentConfig {
        // Two victim candidates minimum (P ≥ 3 would be better still, but
        // P = 4 keeps the quick grid inside the smoke-test budget) so the
        // victim-order dimension is never degenerate.
        processors: scale.pick(vec![2, 4], vec![2, 8]),
        specs: specs.to_vec(),
        capacities: scale.pick(vec![16, 256], vec![16, 256, 4096, 32768]),
        fork_policy: ForkPolicy::FutureFirst,
    };
    let t = run_tournament(&workloads, &config);

    let default_points = policy_space().len();
    let mut title = format!(
        "E19 — scheduler tournament: aggregate scores over {} policy points × the Theorem-12/16 suite",
        specs.len()
    );
    if specs.len() < default_points {
        title.push_str(&format!(
            " [note: policy set truncated to {} point(s) (default grid sweeps {})]",
            specs.len(),
            default_points
        ));
    }
    let mut scores = Table::new(
        title,
        &[
            "sched",
            "deviations",
            "steals",
            "extra misses",
            "makespan",
            "pareto",
        ],
    );
    for e in &t.entries {
        scores.push_row(vec![
            e.spec.to_string(),
            e.deviations.to_string(),
            e.steals.to_string(),
            e.extra_misses.to_string(),
            e.makespan.to_string(),
            if e.pareto { "yes" } else { "-" }.to_string(),
        ]);
    }

    // Policies that tie on the whole score tuple are mutually
    // non-dominated, so a raw front drowns in duplicates (at P = 2 every
    // victim order is degenerate, for one). Collapse ties: one row per
    // distinct score, first spec in grid order speaks for the group.
    let mut front = Table::new(
        "E19 — Pareto front on (deviations, extra misses, makespan), score ties collapsed",
        &[
            "sched",
            "deviations",
            "steals",
            "extra misses",
            "makespan",
            "ties",
        ],
    );
    let mut seen_scores: Vec<(u64, u64, u64)> = Vec::new();
    for e in t.pareto_front() {
        let score = (e.deviations, e.extra_misses, e.makespan);
        if seen_scores.contains(&score) {
            continue;
        }
        seen_scores.push(score);
        let ties = t
            .pareto_front()
            .filter(|o| (o.deviations, o.extra_misses, o.makespan) == score)
            .count();
        front.push_row(vec![
            e.spec.to_string(),
            e.deviations.to_string(),
            e.steals.to_string(),
            e.extra_misses.to_string(),
            e.makespan.to_string(),
            ties.to_string(),
        ]);
    }

    // The promoted presets against ws-random, cell by cell. Only presets
    // present in the evaluated set appear (an explicit --schedulers list
    // may omit them).
    let presets: Vec<PolicySpec> = e19_presets()
        .into_iter()
        .filter(|p| specs.contains(p))
        .collect();
    let mut promoted = Table::new(
        "E19 — promoted presets vs ws-random, per (workload, P, C) cell",
        &[
            "workload",
            "P",
            "C",
            "sched",
            "T_inf",
            "deviations",
            "dev bound",
            "slack",
            "extra misses",
            "miss bound",
            "d_misses",
            "makespan",
            "d_makespan",
            "beats",
            "within",
        ],
    );
    if specs.contains(&PolicySpec::ws_random()) {
        for (widx, w) in suite.iter().enumerate() {
            for &p in &config.processors {
                let base = t
                    .run(widx, p, &PolicySpec::ws_random())
                    .expect("ws-random cell evaluated");
                for (ci, &c) in config.capacities.iter().enumerate() {
                    for preset in &presets {
                        let run = t.run(widx, p, preset).expect("preset cell evaluated");
                        let (dev_bound, miss_bound) = if w.thm12 {
                            (
                                bounds::thm12_deviations(p as u64, run.span),
                                bounds::thm12_additional_misses(c as u64, p as u64, run.span),
                            )
                        } else {
                            thm16_18_bounds(p, c, run.span, w.single_touch)
                        };
                        let (misses, base_misses) = (run.extra_misses[ci], base.extra_misses[ci]);
                        let beats = misses < base_misses && run.makespan <= base.makespan;
                        let within = run.deviations <= dev_bound && misses <= miss_bound;
                        promoted.push_row(vec![
                            w.name.to_string(),
                            p.to_string(),
                            c.to_string(),
                            preset.to_string(),
                            run.span.to_string(),
                            run.deviations.to_string(),
                            dev_bound.to_string(),
                            (dev_bound.saturating_sub(run.deviations)).to_string(),
                            misses.to_string(),
                            miss_bound.to_string(),
                            format!("{:+}", misses as i64 - base_misses as i64),
                            run.makespan.to_string(),
                            format!("{:+}", run.makespan as i64 - base.makespan as i64),
                            if beats { "yes" } else { "-" }.to_string(),
                            if within { "yes" } else { "NO" }.to_string(),
                        ]);
                    }
                }
            }
        }
    }

    vec![scores, front, promoted]
}

/// The E20 tenant roster: E19-promoted policy points on distinct
/// simulated machines, each with its own seed — every tenant's
/// per-submission counters are fully determined by (policy, machine,
/// seed, shape), which is what makes the E20 tables reproducible.
fn e20_tenants(scale: Scale) -> Vec<(&'static str, wsf_server::TenantSpec)> {
    use wsf_core::PolicyConfig;
    use wsf_server::TenantSpec;
    let tenant = |policy, processors, cache_lines, seed| TenantSpec {
        policy,
        processors,
        cache_lines,
        fork_policy: ForkPolicy::FutureFirst,
        seed,
    };
    let mut tenants = vec![
        (
            "ws-half",
            tenant(PolicyConfig::ws_half(0x2001), 4, 64, 0x2001),
        ),
        (
            "ws-rr-eager",
            tenant(PolicyConfig::rr_eager(), 2, 32, 0x2002),
        ),
    ];
    if scale == Scale::Full {
        tenants.push((
            "ws-loaded-frugal",
            tenant(PolicyConfig::loaded_frugal(), 8, 128, 0x2003),
        ));
        tenants.push((
            "parsimonious",
            tenant(PolicyConfig::parsimonious(4), 4, 64, 0x2004),
        ));
    }
    tenants
}

/// Human-readable shape label for the E20 tables.
fn e20_shape_label(spec: &wsf_workloads::submission::ShapeSpec) -> String {
    use wsf_workloads::submission::ShapeSpec;
    match *spec {
        ShapeSpec::Mergesort { leaves } => format!("mergesort/{leaves}"),
        ShapeSpec::Stencil { rows, width, steps } => {
            format!("stencil/{rows}x{width}x{steps}")
        }
        ShapeSpec::Pipeline {
            stages,
            items,
            window,
            work,
        } => format!("pipeline/{stages}x{items}w{window}k{work}"),
    }
}

/// E20 — futures as a service: a real `wsf-server` instance is bound on a
/// TCP loopback socket and driven through the wire protocol with a
/// scripted zipfian multi-tenant mix of the workload-suite shapes
/// (mergesort / stencil / batched pipeline). Every completion the server
/// returns is checked against a local replay of the same (tenant, shape)
/// cell on this process's simulator — the per-tenant deterministic-seed
/// contract means the server's misses and deviations must equal the
/// replay's exactly, no matter how submissions interleaved across
/// executors on the way there. The tables keep only replay-determined
/// columns (latency and throughput are printed to stderr), so they render
/// byte-identically at every `--threads` setting and across runs.
pub fn e20_futures_service(scale: Scale) -> Vec<Table> {
    use std::time::{Duration, Instant};
    use wsf_server::{
        AdmissionMode, BenchClient, LatencyRecorder, Server, ServerConfig, ZipfSampler, STATUS_OK,
    };
    use wsf_workloads::submission::{ShapeScratch, ShapeSpec};

    let tenants = e20_tenants(scale);
    let shapes: [ShapeSpec; 3] = scale.pick(
        ShapeSpec::smoke_mix(),
        [
            ShapeSpec::Mergesort { leaves: 256 },
            ShapeSpec::Stencil {
                rows: 16,
                width: 32,
                steps: 8,
            },
            ShapeSpec::Pipeline {
                stages: 6,
                items: 64,
                window: 8,
                work: 2,
            },
        ],
    );
    let total = scale.pick(24usize, 240);
    let batch = 8usize;

    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            runtime_threads: scale.pick(2, 4),
            executors: 2,
            admission: AdmissionMode::QueueAll,
            tenants: tenants.iter().map(|&(_, t)| t).collect(),
            fault_hooks: None,
        },
    )
    .expect("bind E20 server");
    let mut client =
        BenchClient::connect_tcp(server.tcp_addr().expect("tcp addr")).expect("connect");

    // The scripted zipfian schedule: tenant popularity is zipf(s = 1.1)
    // over the roster, shapes cycle through the suite. Seeded, so the
    // expected per-tenant tallies below replay the same script.
    let mut zipf = ZipfSampler::new(tenants.len(), 1.1, 0xE20_5EED);
    let schedule: Vec<(usize, usize)> = (0..total)
        .map(|k| (zipf.sample(), k % shapes.len()))
        .collect();

    let started = Instant::now();
    let mut staged: Vec<Vec<(u64, ShapeSpec)>> = vec![Vec::new(); tenants.len()];
    for (k, &(t, s)) in schedule.iter().enumerate() {
        staged[t].push((k as u64 + 1, shapes[s]));
        if staged[t].len() == batch {
            client.submit_batch(t as u64, &staged[t]).expect("submit");
            staged[t].clear();
        }
    }
    for (t, pending) in staged.iter().enumerate() {
        if !pending.is_empty() {
            client.submit_batch(t as u64, pending).expect("submit");
        }
    }

    let mut completions = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    while completions.len() < total {
        assert!(
            Instant::now() < deadline,
            "E20 timed out at {}/{total} completions",
            completions.len()
        );
        client
            .recv_completions(&mut completions, Duration::from_secs(5))
            .expect("recv completions");
    }
    let wall = started.elapsed();

    // Ground truth: one local replay per (tenant, shape) cell.
    let replay: Vec<Vec<(u64, u64)>> = tenants
        .iter()
        .map(|(_, tenant)| {
            shapes
                .iter()
                .map(|shape| {
                    let mut b = DagBuilder::new();
                    let mut scratch = ShapeScratch::new();
                    let dag = shape.build_into(&mut b, &mut scratch);
                    let sim = ParallelSimulator::new(tenant.sim_config());
                    let seq = sim.sequential(&dag);
                    let mut sched = wsf_core::PolicyScheduler::new(tenant.policy);
                    let report = sim.run_against(&dag, &seq, &mut sched, false);
                    (report.cache_misses(), report.deviations())
                })
                .collect()
        })
        .collect();

    // Check every completion against its cell's replay; aggregate per cell.
    let mut subs = vec![vec![0u64; shapes.len()]; tenants.len()];
    let mut matched = vec![vec![true; shapes.len()]; tenants.len()];
    let mut latency = LatencyRecorder::new();
    for c in &completions {
        let k = (c.request_id - 1) as usize;
        let (t, s) = schedule[k];
        subs[t][s] += 1;
        let (misses, deviations) = replay[t][s];
        if c.status != STATUS_OK
            || c.misses != misses
            || c.deviations != deviations
            || c.footprint != shapes[s].footprint()
        {
            matched[t][s] = false;
        }
        latency.record(c.micros);
    }

    let mut per_cell = Table::new(
        format!(
            "E20 / futures as a service — scripted zipfian mix ({total} submissions, \
             {} tenants, TCP loopback), server vs local replay",
            tenants.len()
        ),
        &[
            "tenant",
            "policy",
            "P",
            "C",
            "shape",
            "subs",
            "footprint",
            "misses/sub",
            "devs/sub",
            "server == replay",
        ],
    );
    for (t, (name, tenant)) in tenants.iter().enumerate() {
        for (s, shape) in shapes.iter().enumerate() {
            let (misses, deviations) = replay[t][s];
            per_cell.push_row(vec![
                t.to_string(),
                name.to_string(),
                tenant.processors.to_string(),
                tenant.cache_lines.to_string(),
                e20_shape_label(shape),
                subs[t][s].to_string(),
                shape.footprint().to_string(),
                misses.to_string(),
                deviations.to_string(),
                if matched[t][s] { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }

    // Per-tenant accounting: the server's own tallies must equal the sums
    // the schedule and the replay predict.
    let mut summary = Table::new(
        "E20 / per-tenant accounting — server tallies vs schedule × replay",
        &[
            "tenant",
            "policy",
            "sent",
            "completed",
            "shed",
            "failed",
            "inflight",
            "misses",
            "deviations",
            "tallies match",
        ],
    );
    for (t, (name, _)) in tenants.iter().enumerate() {
        let sent: u64 = subs[t].iter().sum();
        let misses: u64 = (0..shapes.len()).map(|s| subs[t][s] * replay[t][s].0).sum();
        let deviations: u64 = (0..shapes.len()).map(|s| subs[t][s] * replay[t][s].1).sum();
        let r = server.core().tenant_report(t);
        let ok = r.completed == sent
            && r.shed == 0
            && r.failed == 0
            && r.inflight == 0
            && r.misses == misses
            && r.deviations == deviations;
        summary.push_row(vec![
            t.to_string(),
            name.to_string(),
            sent.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.failed.to_string(),
            r.inflight.to_string(),
            r.misses.to_string(),
            r.deviations.to_string(),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }

    // Latency and throughput are measured wall-clock quantities — honest
    // but machine-dependent, so they go to stderr, never into the tables.
    eprintln!(
        "E20: {total} submissions in {wall:.2?} ({:.0} DAGs/sec), latency p50 {} us, \
         p99 {} us, p999 {} us",
        total as f64 / wall.as_secs_f64().max(1e-9),
        latency.quantile(0.50),
        latency.quantile(0.99),
        latency.quantile(0.999),
    );

    let report = server.shutdown(Duration::from_secs(30));
    assert!(report.drained, "E20 server failed to drain at shutdown");
    vec![per_cell, summary]
}

fn fib_reference(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let next = a + b;
        a = b;
        b = next;
    }
    a
}

/// One validated pool execution of the hardware-validation loop (E21):
/// a preset-family DAG run on the real work-stealing pool at `processors`
/// workers, its touch trace replayed and checked against the theorem
/// bounds. Produced by [`e21_cells`]; the `hw_validate` bench bin archives
/// these (with perf counters where available) in `BENCH_simulator.json`.
#[derive(Clone, Debug)]
pub struct HwValidationCell {
    /// The workload family (`mergesort`, `stencil`, …).
    pub family: &'static str,
    /// Nodes in the DAG.
    pub nodes: usize,
    /// Distinct memory blocks of the DAG.
    pub blocks: usize,
    /// Pool workers the DAG was executed on.
    pub processors: usize,
    /// Which theorem's bounds apply (Thm 16/18 for the super-final
    /// exchange stencils, Thm 12 otherwise).
    pub bound_family: BoundFamily,
    /// The trace-replay verdict over the executed schedule.
    pub validation: TraceValidation,
    /// Tasks acquired by steal during the execution (trace provenance).
    pub steal_tasks: u64,
    /// Chains respawned by the fault-rescue sweep (0 without injection).
    pub rescued: usize,
}

/// The E21 workload matrix: the four Theorem-12 suite families (the
/// exchange stencil twice, once per bound family), each sized so the
/// theorem bounds exceed the node count — which makes every verdict
/// structurally "yes" on *any* executed schedule, keeping the table
/// byte-deterministic while the measured numbers vary run to run.
pub fn e21_matrix(scale: Scale) -> Vec<(&'static str, Arc<Dag>, BoundFamily)> {
    let (sort_shape, st, ex, bp) = scale.pick(
        (
            (64usize, 8usize),
            (3usize, 2, 3),
            (3usize, 2),
            (3usize, 12, 4, 1),
        ),
        ((512, 16), (8, 8, 4), (4, 8), (4, 48, 8, 1)),
    );
    vec![
        (
            "mergesort",
            Arc::new(sort::mergesort(sort_shape.0, sort_shape.1)),
            BoundFamily::Thm12,
        ),
        (
            "stencil",
            Arc::new(stencil::stencil(st.0, st.1, st.2)),
            BoundFamily::Thm12,
        ),
        (
            "stencil_exchange/1",
            Arc::new(stencil::stencil_exchange(ex.0, ex.1, 1)),
            BoundFamily::Thm16,
        ),
        (
            "stencil_exchange/2",
            Arc::new(stencil::stencil_exchange(ex.0, ex.1, 2)),
            BoundFamily::Thm18,
        ),
        (
            "batched_pipeline",
            Arc::new(backpressure::batched_pipeline(bp.0, bp.1, bp.2, bp.3)),
            BoundFamily::Thm12,
        ),
    ]
}

/// Runs and validates one E21 cell: `dag` executed on a fresh traced pool
/// of `processors` workers, `C = 16` per-worker private LRU caches. The
/// `hw_validate` bin calls this directly so it can bracket each execution
/// with a hardware miss counter.
pub fn e21_cell(
    family: &'static str,
    dag: &Arc<Dag>,
    processors: usize,
    bound_family: BoundFamily,
) -> HwValidationCell {
    let c = 16usize;
    let rt = Arc::new(
        Runtime::builder()
            .threads(processors)
            .policy(SpawnPolicy::ChildFirst)
            .touch_trace(4 * dag.num_nodes() + 64)
            .build(),
    );
    let report = dag_exec::run_dag_on_pool(&rt, dag, ForkPolicy::FutureFirst);
    let trace = rt.touch_trace().expect("tracing enabled");
    let validation = validate_trace(
        dag,
        &trace,
        ForkPolicy::FutureFirst,
        c,
        processors as u64,
        bound_family,
    );
    // The structural determinism guarantee: with `nodes` at or below both
    // bounds, no executed schedule can violate them (deviations and extra
    // misses are each at most one per node).
    assert!(
        dag.num_nodes() as u64 <= validation.deviation_bound
            && dag.num_nodes() as u64 <= validation.miss_bound,
        "{family}: shape too large for deterministic verdicts \
         ({} nodes, bounds {} / {})",
        dag.num_nodes(),
        validation.deviation_bound,
        validation.miss_bound,
    );
    HwValidationCell {
        family,
        nodes: dag.num_nodes(),
        blocks: dag.block_space(),
        processors,
        bound_family,
        validation,
        steal_tasks: trace.steal_tasks(),
        rescued: report.rescued,
    }
}

/// Runs the E21 matrix — every [`e21_matrix`] family on real pools at
/// `P ∈ {1, 2, 4}` with tracing on — and validates each executed schedule.
pub fn e21_cells(scale: Scale) -> Vec<HwValidationCell> {
    let mut cells = Vec::new();
    for (family, dag, bound_family) in e21_matrix(scale) {
        for p in [1usize, 2, 4] {
            cells.push(e21_cell(family, &dag, p, bound_family));
        }
    }
    cells
}

/// E21 — the hardware-validation loop: the Theorem-12/16/18 suite
/// families executed on the *real* work-stealing pool at `P ∈ {1, 2, 4}`,
/// their block-touch traces replayed through the cache simulator and
/// checked against the theorem bounds — bound verdicts over executed
/// schedules rather than simulated ones.
///
/// The table is byte-deterministic at any `--threads` (shapes are sized so
/// the bounds exceed the node count; see [`e21_matrix`]); the run-varying
/// measurements — deviations, extra misses, steals — go to stderr, and the
/// `hw_validate` bench bin archives them in `BENCH_simulator.json`.
pub fn e21_hw_validate(scale: Scale) -> Vec<Table> {
    let columns = [
        "family",
        "nodes",
        "blocks",
        "thm",
        "P",
        "T_inf",
        "seq misses",
        "dev bound",
        "miss bound",
        "p1",
        "within",
    ];
    let mut t = Table::new(
        "E21 / hardware-validation loop — executed schedules vs Theorems 12/16/18 (C = 16)",
        &columns,
    );
    for cell in e21_cells(scale) {
        let v = &cell.validation;
        eprintln!(
            "E21 {} P={}: deviations={} extra_misses={} runtime_misses={} \
             steal_tasks={} rescued={} coverage={}",
            cell.family,
            cell.processors,
            v.deviations,
            v.extra_misses,
            v.runtime_misses,
            cell.steal_tasks,
            cell.rescued,
            v.coverage_ok,
        );
        t.push_row(vec![
            cell.family.to_string(),
            cell.nodes.to_string(),
            cell.blocks.to_string(),
            cell.bound_family.label().to_string(),
            cell.processors.to_string(),
            v.span.to_string(),
            v.seq_misses.to_string(),
            v.deviation_bound.to_string(),
            v.miss_bound.to_string(),
            match v.p1_exact {
                Some(true) => "exact",
                Some(false) => "DIVERGED",
                None => "-",
            }
            .to_string(),
            if v.within { "yes" } else { "NO" }.to_string(),
        ]);
    }
    vec![t]
}

/// Runs every experiment at the given scale.
pub fn run_all(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(e1_thm8_upper(scale));
    tables.extend(e2_thm9_lower(scale));
    tables.extend(e3_thm10_parent_first(scale));
    tables.extend(e4_unstructured(scale));
    tables.extend(e5_local_touch(scale));
    tables.extend(e6_super_final(scale));
    tables.extend(e7_lemma4(scale));
    tables.extend(e8_policy_comparison(scale));
    tables.extend(e9_applications(scale));
    tables.extend(e10_runtime(scale));
    tables.extend(e11_bulk_sweep(scale));
    tables.extend(e12_dnc_sort(scale));
    tables.extend(e13_stencil(scale));
    tables.extend(e14_backpressure(scale));
    tables.extend(e15_cache_capacity(scale));
    tables.extend(e16_exchange_stencil(scale));
    tables.extend(e17_miss_ratio_curves(scale));
    tables.extend(e18_streaming_epochs(scale));
    tables.extend(e19_scheduler_tournament(scale));
    tables.extend(e20_futures_service(scale));
    tables.extend(e21_hw_validate(scale));
    tables
}

/// One experiment registry entry: id, description, runner.
pub type Experiment = (&'static str, &'static str, fn(Scale) -> Vec<Table>);

/// The experiment registry: id, description, runner.
pub fn registry() -> Vec<Experiment> {
    vec![
        ("e1", "Theorem 8 upper bound (future-first)", e1_thm8_upper),
        ("e2", "Theorem 9 lower bound (Figure 6)", e2_thm9_lower),
        (
            "e3",
            "Theorem 10 lower bound (Figures 7(b), 8)",
            e3_thm10_parent_first,
        ),
        ("e4", "Figure 2/3 background bounds", e4_unstructured),
        ("e5", "Theorem 12 local-touch computations", e5_local_touch),
        ("e6", "Theorems 16/18 super final node", e6_super_final),
        ("e7", "Lemmas 4/11/14 sequential order", e7_lemma4),
        ("e8", "future-first vs parent-first", e8_policy_comparison),
        ("e9", "application workloads", e9_applications),
        ("e10", "real runtime", e10_runtime),
        ("e11", "bulk random sweep (thread-sharded)", e11_bulk_sweep),
        (
            "e12",
            "Theorem 12 divide-and-conquer mergesort",
            e12_dnc_sort,
        ),
        ("e13", "Theorem 12 wavefront stencil grids", e13_stencil),
        (
            "e14",
            "Theorems 10/12 bounded-backpressure pipelines",
            e14_backpressure,
        ),
        (
            "e15",
            "large-capacity locality sweep (one-pass, C = 16 … 2^20)",
            e15_cache_capacity,
        ),
        (
            "e16",
            "Theorems 16/18 symmetric-exchange stencils (super final node)",
            e16_exchange_stencil,
        ),
        (
            "e17",
            "one-pass miss-ratio curves (stack distance)",
            e17_miss_ratio_curves,
        ),
        (
            "e18",
            "fault-tolerant streaming epochs (crash recovery)",
            e18_streaming_epochs,
        ),
        (
            "e19",
            "scheduler tournament over the composable steal-policy space (Pareto front)",
            e19_scheduler_tournament,
        ),
        (
            "e20",
            "futures as a service (wsf-server over TCP, zipfian multi-tenant mix)",
            e20_futures_service,
        ),
        (
            "e21",
            "hardware-validation loop (runtime traces vs Theorem 12/16/18 bounds)",
            e21_hw_validate,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_runs_every_experiment() {
        let tables = run_all(Scale::Quick);
        assert!(tables.len() >= 10);
        for table in &tables {
            assert!(!table.is_empty(), "table {} has no rows", table.title);
            assert!(!table.render().is_empty());
        }
    }

    #[test]
    fn lemma4_has_no_violations() {
        for table in e7_lemma4(Scale::Quick) {
            for row in &table.rows {
                assert_eq!(row.last().map(String::as_str), Some("0"), "row {row:?}");
            }
        }
    }

    #[test]
    fn registry_ids_are_unique_and_runnable() {
        let reg = registry();
        assert_eq!(reg.len(), 21);
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 21);
    }

    #[test]
    fn thm12_suite_tables_respect_their_bounds() {
        // The acceptance contract of the Theorem-12/16/18 workload suites:
        // every E12–E18 row reports "yes" in its bound-verdict column, for
        // both the random-WS and the parsimonious scheduler — E15/E16/E17
        // extend the check across the capacity sweeps (E16 over the
        // super-final exchange stencils, E17 over the one-pass miss-ratio
        // curves) and E18 across its injected fault schedule (both the
        // per-epoch miss table and the crash-recovery summary end in a
        // verdict column).
        for runner in [
            e12_dnc_sort,
            e13_stencil,
            e14_backpressure,
            e15_cache_capacity,
            e16_exchange_stencil,
            e17_miss_ratio_curves,
            e18_streaming_epochs,
            e21_hw_validate,
        ] {
            for table in runner(Scale::Quick) {
                assert!(!table.is_empty(), "{}", table.title);
                for row in &table.rows {
                    assert_eq!(
                        row.last().map(String::as_str),
                        Some("yes"),
                        "{}: row {row:?} violates its bound",
                        table.title
                    );
                }
            }
        }
    }

    #[test]
    fn e19_covers_the_space_and_respects_the_bounds() {
        let tables = e19_scheduler_tournament(Scale::Quick);
        assert_eq!(tables.len(), 3);
        let [scores, front, promoted] = &tables[..] else {
            unreachable!()
        };
        // ≥ 64 policy points at every scale — the quick grid is the full
        // grid; only the workload sizes shrink.
        assert!(scores.len() >= 64, "{} policy points", scores.len());
        assert!(!front.is_empty(), "Pareto front is never empty");
        // Every promoted-preset cell stays within its governing theorem
        // bound — steal-half and the other dimensions do not break the
        // Theorem 12/16/18 regime on this suite.
        assert!(!promoted.is_empty());
        for row in &promoted.rows {
            assert_eq!(
                row.last().map(String::as_str),
                Some("yes"),
                "{}: row {row:?} violates its bound",
                promoted.title
            );
        }
    }

    #[test]
    #[ignore = "full-scale tournament; seconds-long in debug builds"]
    fn e19_full_scale_has_a_preset_beating_ws_random() {
        // The promotion contract (see docs/EXPERIMENTS.md §E19): at full
        // scale at least one promoted preset beats ws-random on extra
        // misses at equal-or-better makespan in some (workload, P, C)
        // cell. `beats` is the second-to-last column.
        let tables = e19_scheduler_tournament(Scale::Full);
        let promoted = &tables[2];
        assert!(
            promoted.rows.iter().any(|row| row[row.len() - 2] == "yes"),
            "no promoted preset beats ws-random in any cell"
        );
    }

    #[test]
    fn e8_future_first_never_loses_badly_on_structured_dags() {
        // On the adversarial DAGs the random scheduler may or may not hit
        // the worst case, but future-first should never be drastically worse
        // than parent-first on the app workloads (last rows).
        let tables = e8_policy_comparison(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 4);
    }
}
