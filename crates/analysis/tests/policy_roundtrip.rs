//! Property tests for the [`PolicySpec`] textual form: `Display` and
//! [`PolicySpec::parse`] must round-trip over the whole steal-policy
//! space — the 80-point tournament grid, the named presets, and arbitrary
//! points including random-victim seeds — and `parse` must reject (never
//! panic on, never silently mangle) invalid input. The textual form is
//! load-bearing: experiment tables, the harness's `--schedulers` flag and
//! the E19 promotion report all identify policies by it.

use proptest::prelude::*;
use wsf_analysis::{policy_space, OrderSpec, PolicySpec};
use wsf_core::StealAmount;

/// The deterministic backbone: every point of the E19 tournament grid
/// (5 orders x 2 amounts x 4 patiences x 2 cache flags = 80) and every
/// named preset round-trips exactly.
#[test]
fn the_tournament_grid_and_presets_round_trip() {
    let grid = policy_space();
    assert_eq!(grid.len(), 80, "the tournament grid is the 80-point space");
    for spec in grid {
        let text = spec.to_string();
        assert_eq!(PolicySpec::parse(&text), Ok(spec), "round trip of {text:?}");
    }
    for (name, spec) in PolicySpec::NAMED {
        assert_eq!(spec.to_string(), *name, "presets print their table name");
        assert_eq!(PolicySpec::parse(name).as_ref(), Ok(spec));
    }
}

/// An arbitrary point of the policy space: any victim order (with any
/// explicit random seed), either steal amount, any `u32` patience, both
/// cache-preference flags.
fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    (
        0u8..6,
        any::<u64>(),
        any::<bool>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(tag, seed, half, patience, prefer_cached)| PolicySpec {
            order: match tag {
                0 => OrderSpec::Random(None),
                1 => OrderSpec::Random(Some(seed)),
                2 => OrderSpec::LowestId,
                3 => OrderSpec::RoundRobin,
                4 => OrderSpec::MostLoaded,
                _ => OrderSpec::LastVictim,
            },
            amount: if half {
                StealAmount::Half
            } else {
                StealAmount::One
            },
            patience,
            prefer_cached,
        })
}

/// Arbitrary strings over the policy grammar's own alphabet — the inputs
/// most likely to be *nearly* valid.
fn arb_grammar_soup() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789+@, -";
    proptest::collection::vec(0usize..ALPHABET.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

proptest! {
    /// Any point of the space — including explicit `random@SEED` seeds and
    /// patience values far off the grid — survives print-then-parse.
    #[test]
    fn any_spec_round_trips(spec in arb_spec()) {
        let text = spec.to_string();
        prop_assert_eq!(PolicySpec::parse(&text), Ok(spec), "{}", text);
    }

    /// `parse` never panics, whatever bytes arrive (harness flags are
    /// user-typed) — and anything it does accept is *stable*: printing the
    /// accepted spec and parsing again yields the same spec, so no input
    /// is silently mangled into a different policy on a save/load cycle.
    #[test]
    fn grammar_soup_is_rejected_or_stable(s in arb_grammar_soup()) {
        if let Ok(spec) = PolicySpec::parse(&s) {
            prop_assert_eq!(PolicySpec::parse(&spec.to_string()), Ok(spec));
        }
    }

    /// An unknown modifier token can never sneak through after a valid
    /// order prefix. (`half` and `cache` cannot be drawn: the first
    /// character is past `h` in the alphabet and `pN` needs a digit.)
    #[test]
    fn unknown_modifiers_are_rejected(ix in proptest::collection::vec(0usize..18, 1..7)) {
        const TAIL: &[u8] = b"qrstuvwxyzijklmnop";
        let junk: String = ix.into_iter().map(|i| TAIL[i] as char).collect();
        prop_assert!(
            PolicySpec::parse(&format!("lowest+{junk}")).is_err(),
            "modifier {junk:?} must be rejected",
        );
    }
}

/// The fixed rejection cases the harness documentation promises.
#[test]
fn documented_invalid_forms_are_rejected() {
    for bad in [
        "",
        "speediest",
        "random@",
        "random@notanumber",
        "random@-3",
        "lowest+pfour",
        "lowest+p",
        "lowest+double",
        "rr++",
        "+half",
    ] {
        assert!(PolicySpec::parse(bad).is_err(), "{bad:?} must be rejected");
    }
    assert!(PolicySpec::parse_list("").is_err());
    assert!(PolicySpec::parse_list("ws-random,,parsimonious").is_err());
}
