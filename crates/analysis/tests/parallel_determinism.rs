//! The thread-sharded sweeps must be *bit-identical* to sequential runs:
//! rendering any experiment table at `threads = 1` and at `threads = 4`
//! must produce the same bytes, for multiple workload seeds and both fork
//! policies. This is the contract that makes the parallel sweep a pure
//! performance change.
//!
//! Everything lives in ONE `#[test]` because `set_threads` mutates
//! process-global state and cargo's harness runs `#[test]` functions
//! concurrently — two tests toggling the thread count could silently turn
//! the `threads = 1` baseline into a sharded run and make the comparison
//! vacuous.

use wsf_analysis::{
    experiments, seed_sweep, set_threads, CapacityGrid, PolicySpec, Scale, SweepConfig,
};
use wsf_core::ForkPolicy;

fn render_sweep(threads: usize, seeds: Vec<u64>, policies: Vec<ForkPolicy>) -> String {
    set_threads(threads);
    let table = seed_sweep(&SweepConfig {
        target_nodes: 1_500,
        seeds,
        processors: vec![2, 4],
        policies,
        cache_lines: vec![8, 16],
        schedulers: vec![PolicySpec::ws_random(), PolicySpec::parsimonious()],
    });
    set_threads(0);
    table.render()
}

#[test]
fn sweeps_and_experiments_are_byte_identical_across_thread_counts() {
    // Two seeds and both fork policies, as the issue demands — and a third
    // seed for good measure.
    let seeds = vec![11u64, 42, 7];
    let policies = ForkPolicy::ALL.to_vec();
    let sequential = render_sweep(1, seeds.clone(), policies.clone());
    let sharded = render_sweep(4, seeds.clone(), policies.clone());
    assert!(!sequential.is_empty());
    assert_eq!(
        sequential, sharded,
        "threads=4 sweep must render the same bytes as threads=1"
    );
    // And an oversubscribed run (more threads than shards).
    let oversubscribed = render_sweep(16, seeds, policies);
    assert_eq!(sequential, oversubscribed);

    // The sharded experiments (E1, E5, E6, E8, E9 and the Theorem-12/16/18
    // suites E12–E16) re-assemble their rows in input order; their rendered
    // tables must not depend on threads. For E12–E16 this is the issues'
    // acceptance contract: the measured workload tables are byte-identical
    // at every `--threads` setting (E15/E16 additionally exercise the
    // large-capacity indexed cache models, E16 over the super-final
    // symmetric-exchange stencils). E18 runs the real crash-recovery
    // engine under an injected fault schedule and keeps only
    // commit-log-derived columns in its tables, so it too must render the
    // same bytes regardless of sharding threads or fault timing.
    let runners: Vec<fn(Scale) -> Vec<wsf_analysis::Table>> = vec![
        experiments::e1_thm8_upper,
        experiments::e5_local_touch,
        experiments::e6_super_final,
        experiments::e8_policy_comparison,
        experiments::e9_applications,
        experiments::e12_dnc_sort,
        experiments::e13_stencil,
        experiments::e14_backpressure,
        experiments::e15_cache_capacity,
        experiments::e16_exchange_stencil,
        experiments::e17_miss_ratio_curves,
        experiments::e18_streaming_epochs,
        experiments::e19_scheduler_tournament,
        // E20 drives a real TCP server; its tables keep only columns
        // determined by the scripted schedule and the per-tenant replay
        // (latency goes to stderr), so they too must render identically.
        experiments::e20_futures_service,
        // E21 executes DAGs on the real pool; its tables keep only the
        // structural columns (shape, bounds, verdicts — guaranteed for
        // any executed schedule of these sizes), with the measured
        // deviation/miss numbers on stderr, so they too must render
        // identically.
        experiments::e21_hw_validate,
    ];
    for runner in runners {
        set_threads(1);
        let sequential: Vec<String> = runner(Scale::Quick).iter().map(|t| t.render()).collect();
        set_threads(4);
        let sharded: Vec<String> = runner(Scale::Quick).iter().map(|t| t.render()).collect();
        set_threads(0);
        assert_eq!(sequential, sharded);
    }

    // The one-pass E15/E16 paths over the dense grid: still byte-identical
    // at every thread count (each family/shape is one shard; a denser grid
    // adds rows, not shards).
    let dense = CapacityGrid::dense();
    for grid_runner in [
        experiments::e15_cache_capacity_with_grid,
        experiments::e16_exchange_stencil_with_grid,
    ] {
        set_threads(1);
        let sequential: Vec<String> = grid_runner(Scale::Quick, &dense)
            .iter()
            .map(|t| t.render())
            .collect();
        set_threads(4);
        let sharded: Vec<String> = grid_runner(Scale::Quick, &dense)
            .iter()
            .map(|t| t.render())
            .collect();
        set_threads(0);
        assert_eq!(sequential, sharded);
    }

    // The regression pin behind replacing the per-capacity loops: on the
    // legacy 4-capacity grid the one-pass rows must be *byte-identical* to
    // the seed per-capacity simulation rows (titles differ — the one-pass
    // title names its grid — so the comparison is row-wise).
    set_threads(1);
    let legacy = CapacityGrid::legacy();
    type GridRunner = fn(Scale, &CapacityGrid) -> Vec<wsf_analysis::Table>;
    let pairs: [(GridRunner, GridRunner); 2] = [
        (
            experiments::e15_cache_capacity_with_grid,
            experiments::e15_cache_capacity_per_c,
        ),
        (
            experiments::e16_exchange_stencil_with_grid,
            experiments::e16_exchange_stencil_per_c,
        ),
    ];
    for (one_pass, per_c) in pairs {
        let one_pass_rows: Vec<_> = one_pass(Scale::Quick, &legacy)
            .into_iter()
            .flat_map(|t| t.rows)
            .collect();
        let per_c_rows: Vec<_> = per_c(Scale::Quick, &legacy)
            .into_iter()
            .flat_map(|t| t.rows)
            .collect();
        assert!(!one_pass_rows.is_empty());
        assert_eq!(
            one_pass_rows, per_c_rows,
            "one-pass sweep rows must be byte-identical to per-capacity simulation"
        );
    }
    set_threads(0);
}

/// The full-scale version of the row pin above — the acceptance criterion
/// verbatim (one-pass E15 at the legacy 4 capacities reproduces the seed
/// tables byte-identically at `Scale::Full`). Minutes-long; run with
/// `cargo test -p wsf-analysis -- --ignored`. Uses whatever thread count
/// is configured (the pin above already proves thread-independence).
#[test]
#[ignore = "full-scale E15 re-simulation; minutes-long"]
fn full_scale_one_pass_e15_matches_per_capacity_rows() {
    let legacy = CapacityGrid::legacy();
    let one_pass: Vec<_> = experiments::e15_cache_capacity_with_grid(Scale::Full, &legacy)
        .into_iter()
        .flat_map(|t| t.rows)
        .collect();
    let per_c: Vec<_> = experiments::e15_cache_capacity_per_c(Scale::Full, &legacy)
        .into_iter()
        .flat_map(|t| t.rows)
        .collect();
    assert!(!one_pass.is_empty());
    assert_eq!(one_pass, per_c);
}
