//! The thread-sharded sweeps must be *bit-identical* to sequential runs:
//! rendering any experiment table at `threads = 1` and at `threads = 4`
//! must produce the same bytes, for multiple workload seeds and both fork
//! policies. This is the contract that makes the parallel sweep a pure
//! performance change.
//!
//! Everything lives in ONE `#[test]` because `set_threads` mutates
//! process-global state and cargo's harness runs `#[test]` functions
//! concurrently — two tests toggling the thread count could silently turn
//! the `threads = 1` baseline into a sharded run and make the comparison
//! vacuous.

use wsf_analysis::{experiments, seed_sweep, set_threads, Scale, SweepConfig, SweepScheduler};
use wsf_core::ForkPolicy;

fn render_sweep(threads: usize, seeds: Vec<u64>, policies: Vec<ForkPolicy>) -> String {
    set_threads(threads);
    let table = seed_sweep(&SweepConfig {
        target_nodes: 1_500,
        seeds,
        processors: vec![2, 4],
        policies,
        cache_lines: vec![8, 16],
        schedulers: vec![SweepScheduler::RandomWs, SweepScheduler::Parsimonious],
    });
    set_threads(0);
    table.render()
}

#[test]
fn sweeps_and_experiments_are_byte_identical_across_thread_counts() {
    // Two seeds and both fork policies, as the issue demands — and a third
    // seed for good measure.
    let seeds = vec![11u64, 42, 7];
    let policies = ForkPolicy::ALL.to_vec();
    let sequential = render_sweep(1, seeds.clone(), policies.clone());
    let sharded = render_sweep(4, seeds.clone(), policies.clone());
    assert!(!sequential.is_empty());
    assert_eq!(
        sequential, sharded,
        "threads=4 sweep must render the same bytes as threads=1"
    );
    // And an oversubscribed run (more threads than shards).
    let oversubscribed = render_sweep(16, seeds, policies);
    assert_eq!(sequential, oversubscribed);

    // The sharded experiments (E1, E5, E6, E8, E9 and the Theorem-12/16/18
    // suites E12–E16) re-assemble their rows in input order; their rendered
    // tables must not depend on threads. For E12–E16 this is the issues'
    // acceptance contract: the measured workload tables are byte-identical
    // at every `--threads` setting (E15/E16 additionally exercise the
    // large-capacity indexed cache models, E16 over the super-final
    // symmetric-exchange stencils).
    let runners: Vec<fn(Scale) -> Vec<wsf_analysis::Table>> = vec![
        experiments::e1_thm8_upper,
        experiments::e5_local_touch,
        experiments::e6_super_final,
        experiments::e8_policy_comparison,
        experiments::e9_applications,
        experiments::e12_dnc_sort,
        experiments::e13_stencil,
        experiments::e14_backpressure,
        experiments::e15_cache_capacity,
        experiments::e16_exchange_stencil,
    ];
    for runner in runners {
        set_threads(1);
        let sequential: Vec<String> = runner(Scale::Quick).iter().map(|t| t.render()).collect();
        set_threads(4);
        let sharded: Vec<String> = runner(Scale::Quick).iter().map(|t| t.render()).collect();
        set_threads(0);
        assert_eq!(sequential, sharded);
    }
}
