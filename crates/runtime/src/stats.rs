//! Runtime execution counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters updated by the workers.
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    pub tasks_executed: AtomicU64,
    pub steals: AtomicU64,
    pub failed_steals: AtomicU64,
    pub futures_created: AtomicU64,
    pub touches: AtomicU64,
    pub inline_runs: AtomicU64,
    pub helped_tasks: AtomicU64,
    pub wakeups: AtomicU64,
    pub panics: AtomicU64,
    pub worker_deaths: AtomicU64,
}

impl AtomicStats {
    pub(crate) fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            failed_steals: self.failed_steals.load(Ordering::Relaxed),
            futures_created: self.futures_created.load(Ordering::Relaxed),
            touches: self.touches.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
            helped_tasks: self.helped_tasks.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
        }
    }
}

/// Per-worker atomic counters. Each worker owns one slot (cache-padded in
/// the pool) so the hot-path increments never contend or false-share.
#[derive(Debug, Default)]
pub(crate) struct WorkerCounters {
    pub steals: AtomicU64,
    pub executed: AtomicU64,
}

/// A point-in-time snapshot of one worker's counters (see
/// [`crate::Runtime::worker_stats`]). Once the pool is quiescent, the
/// per-worker figures sum to the corresponding [`RuntimeStats`] totals.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's index in the pool.
    pub index: usize,
    /// Successful steals performed *by* this worker.
    pub steals: u64,
    /// Deque/injector tasks executed by this worker (including tasks run
    /// while helping inside a touch).
    pub tasks_executed: u64,
}

/// A point-in-time snapshot of the runtime's counters.
///
/// These are the observable analogues of the quantities the simulator
/// counts exactly: steals correspond to potential deviations, and
/// `inline_runs` counts futures executed by their creating worker without
/// ever becoming stealable (perfect locality).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Deque/injector tasks executed by the workers.
    pub tasks_executed: u64,
    /// Successful steals between workers.
    pub steals: u64,
    /// Steal attempts that found every other deque empty.
    pub failed_steals: u64,
    /// Futures created.
    pub futures_created: u64,
    /// Futures touched.
    pub touches: u64,
    /// Futures run inline by their creator (child-first fast path).
    pub inline_runs: u64,
    /// Tasks executed while helping inside a touch.
    pub helped_tasks: u64,
    /// Idle-worker wakeups issued on task arrival. Each push wakes at most
    /// one parked worker (`notify_one`) and none when every worker is
    /// already awake, so this stays bounded by the number of queued tasks
    /// instead of multiplying by the worker count (the pre-fix
    /// `notify_all`-per-push thundering herd).
    pub wakeups: u64,
    /// Task-body panics contained by the workers' `catch_unwind`. Each one
    /// fails its future with [`crate::TaskError::Panicked`] instead of
    /// unwinding through (and losing) the worker thread.
    pub panics: u64,
    /// Workers killed permanently by the fault injector. The pool degrades
    /// to the surviving workers; the dead worker's queued tasks remain
    /// stealable.
    pub worker_deaths: u64,
}

impl RuntimeStats {
    /// Difference of two snapshots (`self` minus `earlier`), saturating.
    pub fn since(&self, earlier: &RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            steals: self.steals.saturating_sub(earlier.steals),
            failed_steals: self.failed_steals.saturating_sub(earlier.failed_steals),
            futures_created: self.futures_created.saturating_sub(earlier.futures_created),
            touches: self.touches.saturating_sub(earlier.touches),
            inline_runs: self.inline_runs.saturating_sub(earlier.inline_runs),
            helped_tasks: self.helped_tasks.saturating_sub(earlier.helped_tasks),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            panics: self.panics.saturating_sub(earlier.panics),
            worker_deaths: self.worker_deaths.saturating_sub(earlier.worker_deaths),
        }
    }

    /// Field-wise accumulation of a delta into a running total, saturating.
    /// Per-tenant accounting takes [`RuntimeStats::since`] deltas bracketing
    /// each submission window and folds them into the tenant's tally.
    pub fn accumulate(&mut self, delta: &RuntimeStats) {
        self.tasks_executed = self.tasks_executed.saturating_add(delta.tasks_executed);
        self.steals = self.steals.saturating_add(delta.steals);
        self.failed_steals = self.failed_steals.saturating_add(delta.failed_steals);
        self.futures_created = self.futures_created.saturating_add(delta.futures_created);
        self.touches = self.touches.saturating_add(delta.touches);
        self.inline_runs = self.inline_runs.saturating_add(delta.inline_runs);
        self.helped_tasks = self.helped_tasks.saturating_add(delta.helped_tasks);
        self.wakeups = self.wakeups.saturating_add(delta.wakeups);
        self.panics = self.panics.saturating_add(delta.panics);
        self.worker_deaths = self.worker_deaths.saturating_add(delta.worker_deaths);
    }

    /// Fraction of created futures that were run inline by their creator.
    pub fn inline_fraction(&self) -> f64 {
        if self.futures_created == 0 {
            0.0
        } else {
            self.inline_runs as f64 / self.futures_created as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let a = AtomicStats::default();
        a.tasks_executed.store(10, Ordering::Relaxed);
        a.steals.store(3, Ordering::Relaxed);
        a.futures_created.store(4, Ordering::Relaxed);
        a.inline_runs.store(2, Ordering::Relaxed);
        let s1 = a.snapshot();
        assert_eq!(s1.tasks_executed, 10);
        assert_eq!(s1.steals, 3);
        assert!((s1.inline_fraction() - 0.5).abs() < 1e-12);

        a.tasks_executed.store(15, Ordering::Relaxed);
        let s2 = a.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.tasks_executed, 5);
        assert_eq!(d.steals, 0);
    }

    #[test]
    fn accumulate_is_field_wise_and_saturating() {
        let mut total = RuntimeStats {
            tasks_executed: 7,
            steals: 1,
            ..RuntimeStats::default()
        };
        let delta = RuntimeStats {
            tasks_executed: 3,
            futures_created: 2,
            worker_deaths: u64::MAX,
            ..RuntimeStats::default()
        };
        total.accumulate(&delta);
        assert_eq!(total.tasks_executed, 10);
        assert_eq!(total.steals, 1);
        assert_eq!(total.futures_created, 2);
        total.accumulate(&delta);
        assert_eq!(total.worker_deaths, u64::MAX);
    }

    #[test]
    fn inline_fraction_handles_zero() {
        assert_eq!(RuntimeStats::default().inline_fraction(), 0.0);
    }
}
