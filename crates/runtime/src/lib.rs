//! # wsf-runtime — a work-stealing runtime with structured single-touch futures
//!
//! A real (thread-based) counterpart to the execution simulator in
//! `wsf-core`: a rayon-style work-stealing thread pool whose unit of
//! parallelism is the *single-touch future* of the paper.
//!
//! * Each worker owns a lock-free Chase–Lev deque (`wsf-deque`); idle
//!   workers steal from the top of other workers' deques — the
//!   parsimonious work-stealing scheduler of Section 3.
//! * [`Runtime::spawn_future`] creates a future; [`Future::touch`] consumes
//!   the handle, so every future is touched at most once — the structured
//!   single-touch discipline (Definition 2) enforced by the type system.
//!   Handles may be sent to other tasks before being touched, which is the
//!   "future passed to another thread" pattern of Figure 5(b).
//! * [`SpawnPolicy`] selects between child-first (future-first) and
//!   helper-first (parent-first) scheduling of newly created futures, the
//!   choice whose locality consequences Theorems 8 and 10 contrast.
//! * [`Runtime::join`] is the fork-join special case (Cilk spawn/sync).
//!
//! ```
//! use wsf_runtime::Runtime;
//!
//! fn fib(rt: &std::sync::Arc<Runtime>, n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let rt2 = std::sync::Arc::clone(rt);
//!     let f = rt.spawn_future(move || fib(&rt2, n - 1));
//!     let rest = fib(rt, n - 2);
//!     f.touch() + rest
//! }
//!
//! let rt = std::sync::Arc::new(Runtime::new(2));
//! assert_eq!(fib(&rt, 12), 144);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod epoch;
mod faultd;
mod future;
mod policy;
mod pool;
mod stats;
mod trace;

pub use epoch::{
    sequential_reference, Checkpoint, CheckpointStore, EngineError, EngineReport, EpochConfig,
    StreamEngine, StreamSource, StreamStage,
};
pub use faultd::{FaultAction, FaultHooks, FaultPlan, FaultSpec};
pub use future::{Future, TaskError, TouchOutcome};
pub use policy::SpawnPolicy;
pub use pool::{HungWorker, Runtime, RuntimeBuilder, ShutdownError};
pub use stats::{RuntimeStats, WorkerStats};
pub use trace::{TaskOrigin, TouchEvent, TouchTrace};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn runtimes_under_test() -> Vec<Arc<Runtime>> {
        SpawnPolicy::ALL
            .iter()
            .flat_map(|&policy| {
                [1usize, 2, 4].into_iter().map(move |threads| {
                    Arc::new(Runtime::builder().threads(threads).policy(policy).build())
                })
            })
            .collect()
    }

    #[test]
    fn single_future_round_trip() {
        for rt in runtimes_under_test() {
            let f = rt.spawn_future(|| 6 * 7);
            assert_eq!(f.touch(), 42);
            assert!(rt.stats().futures_created >= 1);
            assert!(rt.stats().touches >= 1);
        }
    }

    #[test]
    fn many_independent_futures() {
        for rt in runtimes_under_test() {
            let futures: Vec<_> = (0..100u64)
                .map(|i| rt.spawn_future(move || i * i))
                .collect();
            let total: u64 = futures.into_iter().map(|f| f.touch()).sum();
            assert_eq!(total, (0..100u64).map(|i| i * i).sum());
        }
    }

    #[test]
    fn nested_fib_with_futures() {
        fn fib(rt: &Arc<Runtime>, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let rt2 = Arc::clone(rt);
            let f = rt.spawn_future(move || fib(&rt2, n - 1));
            let rest = fib(rt, n - 2);
            f.touch() + rest
        }
        for rt in runtimes_under_test() {
            assert_eq!(fib(&rt, 15), 610);
        }
    }

    #[test]
    fn join_runs_both_sides() {
        for rt in runtimes_under_test() {
            let counter = Arc::new(AtomicU64::new(0));
            let (c1, c2) = (Arc::clone(&counter), Arc::clone(&counter));
            let (a, b) = rt.join(
                move || {
                    c1.fetch_add(1, Ordering::SeqCst);
                    "left"
                },
                move || {
                    c2.fetch_add(1, Ordering::SeqCst);
                    "right"
                },
            );
            assert_eq!((a, b), ("left", "right"));
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        }
    }

    #[test]
    fn nested_joins_compute_a_reduction() {
        fn sum(rt: &Arc<Runtime>, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let rt_a = Arc::clone(rt);
            let rt_b = Arc::clone(rt);
            let (a, b) = rt.join(move || sum(&rt_a, lo, mid), move || sum(&rt_b, mid, hi));
            a + b
        }
        for rt in runtimes_under_test() {
            assert_eq!(sum(&rt, 0, 1000), 499_500);
        }
    }

    #[test]
    fn futures_passed_to_other_tasks_single_touch() {
        // Figure 5(b): a future created by one task is touched by another.
        for rt in runtimes_under_test() {
            let x = rt.spawn_future(|| 21u64);
            let rt2 = Arc::clone(&rt);
            let consumer = rt.spawn_future(move || x.touch() * 2);
            assert_eq!(consumer.touch(), 42);
            drop(rt2);
        }
    }

    #[test]
    fn futures_touched_in_creation_order() {
        // Figure 5(a): futures touched in an order fork-join cannot express.
        for rt in runtimes_under_test() {
            let a = rt.spawn_future(|| 1u32);
            let b = rt.spawn_future(|| 2u32);
            let c = rt.spawn_future(|| 3u32);
            assert_eq!(a.touch(), 1);
            assert_eq!(b.touch(), 2);
            assert_eq!(c.touch(), 3);
        }
    }

    #[test]
    fn is_ready_becomes_true_after_completion() {
        let rt = Runtime::builder().threads(2).build();
        let f = rt.spawn_future(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            5
        });
        // Eventually ready (worker executes it); poll with a timeout.
        let start = std::time::Instant::now();
        while !f.is_ready() && start.elapsed() < std::time::Duration::from_secs(5) {
            std::thread::yield_now();
        }
        assert_eq!(f.touch(), 5);
    }

    #[test]
    fn child_first_runs_futures_inline_on_workers() {
        let rt = Arc::new(
            Runtime::builder()
                .threads(2)
                .policy(SpawnPolicy::ChildFirst)
                .build(),
        );
        // Spawn a future from *inside* a worker task so the child-first
        // inline fast path applies.
        let rt2 = Arc::clone(&rt);
        let outer = rt.spawn_future(move || {
            let inner = rt2.spawn_future(|| 7u64);
            inner.touch() + 1
        });
        assert_eq!(outer.touch(), 8);
        let stats = rt.stats();
        assert!(stats.inline_runs >= 1, "stats: {stats:?}");
    }

    #[test]
    fn helper_first_defers_futures_to_the_deque() {
        let rt = Arc::new(
            Runtime::builder()
                .threads(2)
                .policy(SpawnPolicy::HelperFirst)
                .build(),
        );
        let rt2 = Arc::clone(&rt);
        let outer = rt.spawn_future(move || {
            let fs: Vec<_> = (0..16u64).map(|i| rt2.spawn_future(move || i)).collect();
            fs.into_iter().map(|f| f.touch()).sum::<u64>()
        });
        assert_eq!(outer.touch(), 120);
        assert_eq!(rt.stats().inline_runs, 0, "helper-first never runs inline");
    }

    #[test]
    fn builder_accessors() {
        let rt = Runtime::builder()
            .threads(3)
            .policy(SpawnPolicy::HelperFirst)
            .inline_depth_limit(4)
            .build();
        assert_eq!(rt.num_threads(), 3);
        assert_eq!(rt.policy(), SpawnPolicy::HelperFirst);
        // No work has been submitted; only idle-scan counters may be nonzero.
        let stats = rt.stats();
        assert_eq!(stats.futures_created, 0);
        assert_eq!(stats.tasks_executed, 0);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.touches, 0);
    }

    #[test]
    fn deep_inline_recursion_falls_back_to_the_deque() {
        let rt = Arc::new(
            Runtime::builder()
                .threads(2)
                .policy(SpawnPolicy::ChildFirst)
                .inline_depth_limit(4)
                .build(),
        );
        fn chain(rt: &Arc<Runtime>, depth: u64) -> u64 {
            if depth == 0 {
                return 0;
            }
            let rt2 = Arc::clone(rt);
            let f = rt.spawn_future(move || chain(&rt2, depth - 1));
            f.touch() + 1
        }
        let rt2 = Arc::clone(&rt);
        let outer = rt.spawn_future(move || chain(&rt2, 64));
        assert_eq!(outer.touch(), 64);
    }

    #[test]
    fn stats_accumulate_across_work() {
        let rt = Arc::new(Runtime::builder().threads(4).build());
        let before = rt.stats();
        let futures: Vec<_> = (0..50u64).map(|i| rt.defer_future(move || i)).collect();
        let sum: u64 = futures.into_iter().map(|f| f.touch()).sum();
        assert_eq!(sum, 1225);
        let delta = rt.stats().since(&before);
        assert_eq!(delta.futures_created, 50);
        assert_eq!(delta.touches, 50);
        assert!(delta.tasks_executed >= 50);
    }
}
