//! Epoch-based streaming execution with checkpoint/restore.
//!
//! The batch runtime executes one closed DAG per run; a crashed worker
//! loses everything. This module turns it into a long-running streaming
//! engine in the epoch-manager style of dataflow systems: an unbounded
//! item stream is carved into **epochs** (a commit barrier every N
//! items), each epoch's items are pushed through a chain of
//! [`StreamStage`]s as a window of in-flight futures, and at each barrier
//! the per-stage states plus the epoch's [`RuntimeStats`] delta and
//! per-stage touch counts are committed to a [`CheckpointStore`]. A
//! failure mid-epoch (injected panic, killed worker, stranded or
//! timed-out task) aborts only the *uncommitted* attempt: the engine
//! retries the epoch with bounded exponential backoff from the last
//! committed states, and a restarted engine ([`StreamEngine::resume`])
//! replays nothing before the last committed barrier.
//!
//! Determinism is by construction, which is what makes recovery testable:
//! * [`StreamStage::transform`] is a pure function of the *epoch-start*
//!   state snapshot and the item, so in-flight items of one epoch can run
//!   in any order on any worker;
//! * [`StreamStage::fold`] is applied sequentially, in item order, at the
//!   commit barrier.
//!
//! Committed states therefore depend only on the source and the epoch
//! partition — not on scheduling, retries, or injected faults. The
//! crash-recovery tests and experiment E18 assert exactly that: a run
//! under a seeded fault plan commits byte-identical checkpoints to a
//! fault-free run.

use crate::future::{TaskError, TouchOutcome};
use crate::pool::Runtime;
use crate::stats::RuntimeStats;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An indexed, replayable source of stream items.
///
/// Indexed access (rather than a `next()` cursor) is what makes epoch
/// retry and restore cheap: an aborted epoch re-reads exactly its own
/// items, and a resumed engine starts at the last committed offset
/// without replaying the prefix.
pub trait StreamSource: Send + Sync {
    /// The item at stream offset `index`, or `None` past the end of a
    /// finite stream.
    fn item(&self, index: u64) -> Option<u64>;
}

impl<F> StreamSource for F
where
    F: Fn(u64) -> Option<u64> + Send + Sync,
{
    fn item(&self, index: u64) -> Option<u64> {
        self(index)
    }
}

/// One stage of the streaming pipeline.
///
/// Stages are chained: stage 0 transforms the raw item, stage `s + 1`
/// transforms stage `s`'s output — the `batched_pipeline` topology. Each
/// stage carries one `u64` of state, updated only at commit barriers.
pub trait StreamStage: Send + Sync {
    /// The stage's initial state.
    fn init(&self) -> u64 {
        0
    }

    /// Pure per-item work: maps this stage's input to its output, reading
    /// only the *epoch-start* snapshot of the stage state. Must not
    /// depend on execution order (it runs concurrently, and re-runs on
    /// epoch retry).
    fn transform(&self, state: u64, input: u64) -> u64;

    /// Sequential state update, applied in item order at the commit
    /// barrier. May be order-sensitive; the engine guarantees item order.
    fn fold(&self, state: u64, output: u64) -> u64;
}

/// Tuning knobs of the [`StreamEngine`].
#[derive(Clone, Debug)]
pub struct EpochConfig {
    /// Commit barrier cadence: items per epoch (clamped to at least 1).
    pub epoch_items: usize,
    /// In-flight window: how many item futures run concurrently within an
    /// epoch (clamped to at least 1).
    pub window: usize,
    /// How many times a failed epoch is retried before the run errors.
    pub max_retries: u32,
    /// Base backoff slept after a failed attempt (doubled per retry).
    pub retry_backoff: Duration,
    /// Deadline for any single item future before the attempt is declared
    /// failed (covers tasks lost to pathological stalls).
    pub task_timeout: Duration,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            epoch_items: 64,
            window: 8,
            max_retries: 4,
            retry_backoff: Duration::from_millis(1),
            task_timeout: Duration::from_secs(5),
        }
    }
}

/// The state committed at one epoch barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Epoch number (0-based, contiguous).
    pub epoch: u64,
    /// Stream offset of the epoch's first item.
    pub first_item: u64,
    /// Items committed in this epoch (the last epoch of a finite stream
    /// may be short).
    pub items: u64,
    /// Per-stage states after folding this epoch's outputs.
    pub stage_states: Vec<u64>,
    /// Per-stage value touches in this epoch (one per item per stage in
    /// the chained topology; recorded per stage so heterogeneous
    /// topologies can diverge later).
    pub stage_touches: Vec<u64>,
    /// Runtime-counter delta of the attempt that committed. Diagnostic:
    /// unlike the fields above it is *not* deterministic (stragglers from
    /// an aborted attempt may land in it), so it is excluded from
    /// [`CheckpointStore::fingerprint`].
    pub stats: RuntimeStats,
}

impl Checkpoint {
    /// First stream offset *after* this epoch.
    pub fn next_item(&self) -> u64 {
        self.first_item + self.items
    }
}

const ENCODE_MAGIC: u64 = 0x5753_4643_4850_5431; // "WSFCHPT1" spirit
const ENCODE_VERSION: u64 = 1;

/// Words per encoded `RuntimeStats`.
const STATS_WORDS: usize = 10;

fn encode_stats(s: &RuntimeStats, out: &mut Vec<u64>) {
    out.extend_from_slice(&[
        s.tasks_executed,
        s.steals,
        s.failed_steals,
        s.futures_created,
        s.touches,
        s.inline_runs,
        s.helped_tasks,
        s.wakeups,
        s.panics,
        s.worker_deaths,
    ]);
}

fn decode_stats(words: &[u64]) -> RuntimeStats {
    RuntimeStats {
        tasks_executed: words[0],
        steals: words[1],
        failed_steals: words[2],
        futures_created: words[3],
        touches: words[4],
        inline_runs: words[5],
        helped_tasks: words[6],
        wakeups: words[7],
        panics: words[8],
        worker_deaths: words[9],
    }
}

/// The committed checkpoint log of one stream: the durable state a
/// restarted engine resumes from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStore {
    log: Vec<Checkpoint>,
}

impl CheckpointStore {
    /// An empty log (a stream that has committed nothing).
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Number of committed epochs.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether nothing has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The committed checkpoints, oldest first.
    pub fn log(&self) -> &[Checkpoint] {
        &self.log
    }

    /// The most recent commit, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.log.last()
    }

    /// Appends a commit.
    ///
    /// # Panics
    /// Panics if the checkpoint does not extend the log contiguously
    /// (wrong epoch number or stream offset) — an engine bug, not a
    /// recoverable condition.
    pub fn commit(&mut self, cp: Checkpoint) {
        assert_eq!(cp.epoch, self.log.len() as u64, "non-contiguous epoch");
        let expected_first = self.latest().map_or(0, Checkpoint::next_item);
        assert_eq!(
            cp.first_item, expected_first,
            "non-contiguous stream offset"
        );
        self.log.push(cp);
    }

    /// Checks the exactly-once commit invariants: epochs are `0..n` with
    /// no gap or duplicate, every epoch is non-empty, stream offsets
    /// chain, and stage vector widths agree.
    pub fn validate(&self) -> Result<(), String> {
        let mut next_item = 0u64;
        let width = self.log.first().map(|cp| cp.stage_states.len());
        for (i, cp) in self.log.iter().enumerate() {
            if cp.epoch != i as u64 {
                return Err(format!("epoch {} at log position {i}", cp.epoch));
            }
            if cp.first_item != next_item {
                return Err(format!(
                    "epoch {i} starts at {} but the stream is at {next_item}",
                    cp.first_item
                ));
            }
            if cp.items == 0 {
                return Err(format!("epoch {i} committed zero items"));
            }
            if Some(cp.stage_states.len()) != width
                || cp.stage_touches.len() != cp.stage_states.len()
            {
                return Err(format!("epoch {i} has inconsistent stage width"));
            }
            next_item = cp.next_item();
        }
        Ok(())
    }

    /// FNV-1a hash of the deterministic payload (epochs, offsets, item
    /// counts, stage states and touches — *not* the stats diagnostics).
    /// Two runs committed the same stream state iff their fingerprints
    /// match; the recovery tests compare faulted runs against fault-free
    /// ones with this.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.log.len() as u64);
        for cp in &self.log {
            mix(cp.epoch);
            mix(cp.first_item);
            mix(cp.items);
            mix(cp.stage_states.len() as u64);
            for &s in &cp.stage_states {
                mix(s);
            }
            for &t in &cp.stage_touches {
                mix(t);
            }
        }
        h
    }

    /// Serializes the log to a flat word stream (the repo vendors no
    /// serde; a fixed little-endian word layout is all restore needs).
    pub fn encode(&self) -> Vec<u64> {
        let stages = self.log.first().map_or(0, |cp| cp.stage_states.len());
        let mut out = vec![
            ENCODE_MAGIC,
            ENCODE_VERSION,
            self.log.len() as u64,
            stages as u64,
        ];
        for cp in &self.log {
            out.extend_from_slice(&[cp.epoch, cp.first_item, cp.items]);
            out.extend_from_slice(&cp.stage_states);
            out.extend_from_slice(&cp.stage_touches);
            encode_stats(&cp.stats, &mut out);
        }
        out
    }

    /// Inverse of [`CheckpointStore::encode`]; validates framing and the
    /// commit invariants.
    pub fn decode(words: &[u64]) -> Result<CheckpointStore, String> {
        if words.len() < 4 {
            return Err("checkpoint stream too short".into());
        }
        if words[0] != ENCODE_MAGIC {
            return Err("bad checkpoint magic".into());
        }
        if words[1] != ENCODE_VERSION {
            return Err(format!("unsupported checkpoint version {}", words[1]));
        }
        let n = words[2] as usize;
        let stages = words[3] as usize;
        let per_cp = 3 + 2 * stages + STATS_WORDS;
        if words.len() != 4 + n * per_cp {
            return Err(format!(
                "checkpoint stream length {} != expected {}",
                words.len(),
                4 + n * per_cp
            ));
        }
        let mut log = Vec::with_capacity(n);
        let mut at = 4;
        for _ in 0..n {
            let w = &words[at..at + per_cp];
            log.push(Checkpoint {
                epoch: w[0],
                first_item: w[1],
                items: w[2],
                stage_states: w[3..3 + stages].to_vec(),
                stage_touches: w[3 + stages..3 + 2 * stages].to_vec(),
                stats: decode_stats(&w[3 + 2 * stages..]),
            });
            at += per_cp;
        }
        let store = CheckpointStore { log };
        store.validate()?;
        Ok(store)
    }
}

/// Why one epoch attempt was aborted (internal; surfaces in
/// [`EngineError`] once retries are exhausted).
#[derive(Clone, Debug)]
enum EpochFault {
    /// An item future failed: panicked body or killed worker.
    Task(TaskError),
    /// An item future missed [`EpochConfig::task_timeout`].
    TimedOut,
    /// Every worker died while the attempt's tasks were still queued.
    Stranded,
}

impl std::fmt::Display for EpochFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochFault::Task(e) => write!(f, "{e}"),
            EpochFault::TimedOut => write!(f, "item future exceeded the task timeout"),
            EpochFault::Stranded => write!(f, "all workers died with tasks still queued"),
        }
    }
}

/// A streaming run failed permanently.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// An epoch kept failing past [`EpochConfig::max_retries`]; the
    /// engine is still positioned at the last committed barrier, so a
    /// caller may resume after addressing the cause.
    EpochFailed {
        /// The epoch that could not commit.
        epoch: u64,
        /// Attempts made (1 initial + retries).
        attempts: u32,
        /// Description of the last failure.
        last_fault: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EpochFailed {
                epoch,
                attempts,
                last_fault,
            } => write!(
                f,
                "epoch {epoch} failed after {attempts} attempts (last: {last_fault})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// What a (partial) streaming run did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Epochs committed by this call.
    pub epochs_committed: u64,
    /// Items committed by this call.
    pub items: u64,
    /// Aborted epoch attempts that were retried.
    pub retries: u64,
    /// Epochs executed inline on the driver thread because no live worker
    /// remained (graceful degradation).
    pub inline_epochs: u64,
}

/// The epoch manager: drives a [`StreamSource`] through the stage chain
/// on a [`Runtime`], committing a [`Checkpoint`] at every barrier.
pub struct StreamEngine {
    rt: Arc<Runtime>,
    stages: Vec<Arc<dyn StreamStage>>,
    config: EpochConfig,
    store: CheckpointStore,
}

impl StreamEngine {
    /// An engine starting a fresh stream (offset 0, initial stage states).
    pub fn new(rt: Arc<Runtime>, stages: Vec<Arc<dyn StreamStage>>, config: EpochConfig) -> Self {
        StreamEngine {
            rt,
            stages,
            config,
            store: CheckpointStore::new(),
        }
    }

    /// An engine resuming from a previously committed log — the process
    /// restart path. Validates the log; the stream continues at
    /// [`StreamEngine::next_item`], replaying nothing before it.
    pub fn resume(
        rt: Arc<Runtime>,
        stages: Vec<Arc<dyn StreamStage>>,
        config: EpochConfig,
        store: CheckpointStore,
    ) -> Result<Self, String> {
        store.validate()?;
        if let Some(cp) = store.latest() {
            if cp.stage_states.len() != stages.len() {
                return Err(format!(
                    "log has {} stages, engine has {}",
                    cp.stage_states.len(),
                    stages.len()
                ));
            }
        }
        Ok(StreamEngine {
            rt,
            stages,
            config,
            store,
        })
    }

    /// The committed log so far.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Consumes the engine, yielding the committed log (what a process
    /// would persist before exiting).
    pub fn into_store(self) -> CheckpointStore {
        self.store
    }

    /// Current per-stage states: the last committed ones, or the initial
    /// states for a fresh stream.
    pub fn committed_states(&self) -> Vec<u64> {
        match self.store.latest() {
            Some(cp) => cp.stage_states.clone(),
            None => self.stages.iter().map(|s| s.init()).collect(),
        }
    }

    /// The stream offset the next epoch starts at.
    pub fn next_item(&self) -> u64 {
        self.store.latest().map_or(0, Checkpoint::next_item)
    }

    /// Runs until the source is exhausted.
    pub fn run(&mut self, source: &dyn StreamSource) -> Result<EngineReport, EngineError> {
        self.run_epochs(source, u64::MAX)
    }

    /// Runs at most `max_epochs` commit barriers (or until the source is
    /// exhausted). On error the engine stays at the last committed
    /// barrier; committed work is never lost or repeated.
    pub fn run_epochs(
        &mut self,
        source: &dyn StreamSource,
        max_epochs: u64,
    ) -> Result<EngineReport, EngineError> {
        let mut report = EngineReport::default();
        let epoch_items = self.config.epoch_items.max(1);
        while report.epochs_committed < max_epochs {
            let first = self.next_item();
            let items: Vec<u64> = (0..epoch_items as u64)
                .map_while(|k| source.item(first + k))
                .collect();
            if items.is_empty() {
                break;
            }
            let epoch = self.store.len() as u64;
            let base_states = self.committed_states();

            let mut attempt: u32 = 0;
            let (new_states, stats_delta) = loop {
                let before = self.rt.stats();
                match self.try_epoch(&items, &base_states, &mut report) {
                    Ok(states) => break (states, self.rt.stats().since(&before)),
                    Err(fault) => {
                        attempt += 1;
                        if attempt > self.config.max_retries {
                            return Err(EngineError::EpochFailed {
                                epoch,
                                attempts: attempt,
                                last_fault: fault.to_string(),
                            });
                        }
                        report.retries += 1;
                        // Bounded exponential backoff before re-running the
                        // epoch from the committed states.
                        let exp = (attempt - 1).min(10);
                        std::thread::sleep(self.config.retry_backoff * (1u32 << exp));
                    }
                }
            };

            self.store.commit(Checkpoint {
                epoch,
                first_item: first,
                items: items.len() as u64,
                stage_states: new_states,
                stage_touches: vec![items.len() as u64; self.stages.len()],
                stats: stats_delta,
            });
            report.epochs_committed += 1;
            report.items += items.len() as u64;
        }
        Ok(report)
    }

    /// One attempt at one epoch: transform the items (in parallel, from
    /// the epoch-start snapshot) and fold them in item order. Any failure
    /// aborts the whole attempt; nothing escapes into committed state.
    fn try_epoch(
        &self,
        items: &[u64],
        base_states: &[u64],
        report: &mut EngineReport,
    ) -> Result<Vec<u64>, EpochFault> {
        if self.rt.live_workers() == 0 {
            // Graceful degradation: every worker died. The driver thread
            // executes the epoch inline — slower, but the stream keeps
            // committing (and the result is identical by purity).
            report.inline_epochs += 1;
            let mut states = base_states.to_vec();
            for &item in items {
                let outs = chain_transforms(&self.stages, base_states, item);
                fold_outputs(&self.stages, &mut states, &outs);
            }
            return Ok(states);
        }

        let snapshot: Arc<Vec<u64>> = Arc::new(base_states.to_vec());
        let window = self.config.window.max(1);
        let mut states = base_states.to_vec();
        let mut inflight = VecDeque::with_capacity(window);

        for &item in items {
            if inflight.len() == window {
                let outs = self.await_item(inflight.pop_front().expect("window non-empty"))?;
                fold_outputs(&self.stages, &mut states, &outs);
            }
            let stages = self.stages.clone();
            let snap = Arc::clone(&snapshot);
            inflight.push_back(
                self.rt
                    .defer_future(move || chain_transforms(&stages, &snap, item)),
            );
            // A failed attempt drops `inflight` here: orphaned in-flight
            // tasks may still complete later, but their results are
            // discarded and the retry recomputes from `base_states`, so
            // committed effects stay exactly-once.
        }
        while let Some(fut) = inflight.pop_front() {
            let outs = self.await_item(fut)?;
            fold_outputs(&self.stages, &mut states, &outs);
        }
        Ok(states)
    }

    /// Touches one item future in bounded slices, watching for the two
    /// conditions a plain blocking touch would hang on: the worker set
    /// dying entirely, and a task lost past the timeout.
    fn await_item(&self, fut: crate::future::Future<Vec<u64>>) -> Result<Vec<u64>, EpochFault> {
        const SLICE: Duration = Duration::from_millis(2);
        let deadline = Instant::now() + self.config.task_timeout;
        let mut fut = fut;
        loop {
            match fut.touch_within(SLICE) {
                TouchOutcome::Ready(v) => return Ok(v),
                TouchOutcome::Failed(e) => return Err(EpochFault::Task(e)),
                TouchOutcome::Pending(back) => {
                    fut = back;
                    if self.rt.live_workers() == 0 {
                        return Err(EpochFault::Stranded);
                    }
                    if Instant::now() >= deadline {
                        return Err(EpochFault::TimedOut);
                    }
                }
            }
        }
    }
}

/// Chained transforms of one item from the epoch-start snapshot: returns
/// each stage's output (`outs[s]` feeds stage `s + 1`).
fn chain_transforms(stages: &[Arc<dyn StreamStage>], snapshot: &[u64], item: u64) -> Vec<u64> {
    let mut outs = Vec::with_capacity(stages.len());
    let mut x = item;
    for (s, stage) in stages.iter().enumerate() {
        x = stage.transform(snapshot[s], x);
        outs.push(x);
    }
    outs
}

/// Sequential fold of one item's stage outputs into the working states.
fn fold_outputs(stages: &[Arc<dyn StreamStage>], states: &mut [u64], outs: &[u64]) {
    for (s, stage) in stages.iter().enumerate() {
        states[s] = stage.fold(states[s], outs[s]);
    }
}

/// The canonical single-threaded reference: exactly the engine's
/// semantics (epoch-start snapshots every `epoch_items` items, folds in
/// item order) with no runtime involved. Recovery tests compare engine
/// runs — faulted or not — against this.
pub fn sequential_reference(
    stages: &[Arc<dyn StreamStage>],
    source: &dyn StreamSource,
    epoch_items: usize,
) -> Vec<u64> {
    let epoch_items = epoch_items.max(1);
    let mut states: Vec<u64> = stages.iter().map(|s| s.init()).collect();
    let mut idx = 0u64;
    'stream: loop {
        let snapshot = states.clone();
        for _ in 0..epoch_items {
            let Some(item) = source.item(idx) else {
                break 'stream;
            };
            let outs = chain_transforms(stages, &snapshot, item);
            fold_outputs(stages, &mut states, &outs);
            idx += 1;
        }
        if source.item(idx).is_none() {
            break;
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpawnPolicy;

    /// An order-sensitive test stage: transform mixes the snapshot in,
    /// fold rotates before adding so reordered folds change the state.
    struct Mix(u64);

    impl StreamStage for Mix {
        fn init(&self) -> u64 {
            self.0
        }
        fn transform(&self, state: u64, input: u64) -> u64 {
            (input ^ state)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15 | self.0)
                .rotate_left(7)
        }
        fn fold(&self, state: u64, output: u64) -> u64 {
            state.rotate_left(5).wrapping_add(output)
        }
    }

    fn stages() -> Vec<Arc<dyn StreamStage>> {
        vec![Arc::new(Mix(1)), Arc::new(Mix(2)), Arc::new(Mix(3))]
    }

    fn source(len: u64) -> impl StreamSource {
        move |i: u64| (i < len).then(|| i.wrapping_mul(0xd134_2543_de82_ef95) ^ 0xabcd)
    }

    fn config() -> EpochConfig {
        EpochConfig {
            epoch_items: 8,
            window: 3,
            ..EpochConfig::default()
        }
    }

    #[test]
    fn engine_matches_sequential_reference() {
        for &policy in SpawnPolicy::ALL.iter() {
            let rt = Arc::new(Runtime::builder().threads(2).policy(policy).build());
            let mut engine = StreamEngine::new(rt, stages(), config());
            let src = source(29); // ragged final epoch
            let report = engine.run(&src).expect("fault-free run commits");
            assert_eq!(report.epochs_committed, 4);
            assert_eq!(report.items, 29);
            assert_eq!(report.retries, 0);
            engine.store().validate().expect("log invariants");
            assert_eq!(
                engine.committed_states(),
                sequential_reference(&stages(), &src, 8),
                "policy {policy}"
            );
        }
    }

    #[test]
    fn run_epochs_is_incremental_and_stops_at_source_end() {
        let rt = Arc::new(Runtime::new(2));
        let mut engine = StreamEngine::new(rt, stages(), config());
        let src = source(20);
        let r1 = engine.run_epochs(&src, 1).unwrap();
        assert_eq!((r1.epochs_committed, r1.items), (1, 8));
        assert_eq!(engine.next_item(), 8);
        let r2 = engine.run_epochs(&src, 10).unwrap();
        assert_eq!((r2.epochs_committed, r2.items), (2, 12));
        assert_eq!(
            engine.committed_states(),
            sequential_reference(&stages(), &src, 8)
        );
        // Exhausted source: further runs are no-ops.
        let r3 = engine.run(&src).unwrap();
        assert_eq!(r3, EngineReport::default());
    }

    #[test]
    fn encode_decode_round_trips_and_resume_continues() {
        let rt = Arc::new(Runtime::new(2));
        let src = source(24);
        let mut engine = StreamEngine::new(Arc::clone(&rt), stages(), config());
        engine.run_epochs(&src, 2).unwrap();
        let words = engine.store().encode();
        let decoded = CheckpointStore::decode(&words).expect("round trip");
        assert_eq!(&decoded, engine.store());

        // "Restart the process": a fresh engine resumes from the decoded
        // log and finishes the stream identically.
        let mut resumed = StreamEngine::resume(rt, stages(), config(), decoded).expect("resumable");
        assert_eq!(resumed.next_item(), 16);
        resumed.run(&src).unwrap();
        assert_eq!(
            resumed.committed_states(),
            sequential_reference(&stages(), &src, 8)
        );
        assert_eq!(resumed.store().len(), 3);
    }

    #[test]
    fn decode_rejects_corrupt_streams() {
        assert!(CheckpointStore::decode(&[]).is_err());
        assert!(CheckpointStore::decode(&[1, 2, 3, 4]).is_err());
        let rt = Arc::new(Runtime::new(1));
        let mut engine = StreamEngine::new(rt, stages(), config());
        engine.run_epochs(&source(8), 1).unwrap();
        let mut words = engine.store().encode();
        let ok = CheckpointStore::decode(&words).unwrap();
        assert_eq!(ok.fingerprint(), engine.store().fingerprint());
        words.pop();
        assert!(CheckpointStore::decode(&words).is_err(), "truncated");
        let mut bad_version = engine.store().encode();
        bad_version[1] = 99;
        assert!(CheckpointStore::decode(&bad_version).is_err());
    }

    #[test]
    fn fingerprint_ignores_stats_but_sees_state() {
        let rt = Arc::new(Runtime::new(2));
        let mut engine = StreamEngine::new(rt, stages(), config());
        engine.run_epochs(&source(8), 1).unwrap();
        let mut store = engine.store().clone();
        let fp = store.fingerprint();
        store.log[0].stats.steals += 17;
        assert_eq!(store.fingerprint(), fp, "stats are diagnostics");
        store.log[0].stage_states[0] ^= 1;
        assert_ne!(store.fingerprint(), fp, "state changes are visible");
    }

    #[test]
    fn resume_rejects_wrong_stage_count() {
        let rt = Arc::new(Runtime::new(1));
        let mut engine = StreamEngine::new(Arc::clone(&rt), stages(), config());
        engine.run_epochs(&source(8), 1).unwrap();
        let store = engine.into_store();
        let two: Vec<Arc<dyn StreamStage>> = vec![Arc::new(Mix(1)), Arc::new(Mix(2))];
        assert!(StreamEngine::resume(rt, two, config(), store).is_err());
    }
}
