//! `TouchTrace` — a zero-cost-when-disabled block-touch recorder.
//!
//! The simulator side of the repo measures locality on *simulated*
//! schedules; this module is the runtime side of the hardware-validation
//! loop: it records, per worker, the sequence of `(node, block)` touches a
//! real pool execution performs, interleaved with task-provenance events
//! (was the task popped locally, pulled from the injector, stolen — and
//! from whom — or run inline). The per-worker sequences replay through
//! `wsf_cache::replay` and classify against the simulator's deviation
//! accounting in `wsf_analysis::validate`.
//!
//! The recorder follows the same discipline as [`crate::FaultHooks`]:
//! stored as `Option<Arc<TouchTrace>>` on the pool, so every dispatch site
//! pays one never-taken branch when tracing is disabled (the default and
//! every production configuration). When enabled, each lane's buffer is
//! reserved up front ([`TouchTrace::new`]) and [`TouchTrace::record`]
//! never grows it: events beyond the capacity are dropped and counted in
//! [`TouchTrace::dropped`], so recording itself performs no heap
//! allocation after construction (proved by the `alloc_free` integration
//! test).
//!
//! Lanes `0..workers` belong to the worker threads; the last lane
//! ([`TouchTrace::external_lane`]) collects events recorded from
//! non-worker threads (e.g. a rescue pass finishing a DAG after the fault
//! injector killed every worker).

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a dequeued task came from — the runtime analogue of the
/// simulator's steal accounting, recorded into the lane of the worker
/// that acquired the task.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TaskOrigin {
    /// Popped from the worker's own deque (bottom, LIFO — the
    /// parsimonious fast path).
    Local,
    /// Pulled from the global injector (externally submitted work).
    Inject,
    /// Stolen from the top of another worker's deque.
    Steal {
        /// Index of the victim worker.
        victim: u32,
    },
    /// A future executed inline by its creating worker (the child-first
    /// fast path; it never became a queued task).
    Inline,
}

/// One recorded event of a worker lane.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TouchEvent {
    /// The lane's worker acquired a task with the given provenance. The
    /// `Node` events that follow (until the next `Task` event) were
    /// executed under it.
    Task {
        /// Where the task came from.
        origin: TaskOrigin,
    },
    /// A DAG node was executed on this lane, touching `block` (or nothing
    /// for a silent node).
    Node {
        /// The executed node's index.
        node: u32,
        /// The memory block the node touches, if any.
        block: Option<u32>,
    },
}

/// A per-lane block-touch recorder attached to a [`crate::Runtime`] via
/// [`crate::RuntimeBuilder::touch_trace`].
pub struct TouchTrace {
    /// One buffer per worker plus one external lane, each cache-padded so
    /// concurrent recording on different lanes never false-shares.
    lanes: Vec<CachePadded<Mutex<Vec<TouchEvent>>>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TouchTrace {
    /// Creates a recorder for a pool of `workers` threads, reserving
    /// `capacity` events per lane up front (one extra lane collects events
    /// from non-worker threads). This is the *only* point at which the
    /// recorder allocates; recording drops (and counts) events beyond the
    /// reserve instead of growing.
    pub fn new(workers: usize, capacity: usize) -> Arc<TouchTrace> {
        Arc::new(TouchTrace {
            lanes: (0..workers + 1)
                .map(|_| CachePadded::new(Mutex::new(Vec::with_capacity(capacity))))
                .collect(),
            capacity,
            dropped: AtomicU64::new(0),
        })
    }

    /// Number of lanes (workers + 1; the last is the external lane).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Index of the lane that collects events recorded from non-worker
    /// threads.
    pub fn external_lane(&self) -> usize {
        self.lanes.len() - 1
    }

    /// The per-lane event capacity reserved at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records `event` into `lane`, dropping it (counted) if the lane's
    /// reserve is exhausted. Never allocates.
    pub fn record(&self, lane: usize, event: TouchEvent) {
        let mut buf = self.lanes[lane].lock();
        if buf.len() < self.capacity {
            buf.push(event);
        } else {
            drop(buf);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped because a lane's reserve was exhausted. A validation
    /// run with `dropped() > 0` under-recorded and must be retried with a
    /// larger capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A snapshot of one lane's events, in recording order.
    pub fn events(&self, lane: usize) -> Vec<TouchEvent> {
        self.lanes[lane].lock().clone()
    }

    /// One lane's `(node, block)` touch sequence, in execution order
    /// (provenance events filtered out) — the replay input format.
    pub fn node_trace(&self, lane: usize) -> Vec<(u32, Option<u32>)> {
        self.lanes[lane]
            .lock()
            .iter()
            .filter_map(|e| match e {
                TouchEvent::Node { node, block } => Some((*node, *block)),
                TouchEvent::Task { .. } => None,
            })
            .collect()
    }

    /// Total events currently recorded across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().len()).sum()
    }

    /// Tasks acquired by steal across all lanes (the runtime counterpart
    /// of the simulator's per-run steal count).
    pub fn steal_tasks(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| {
                l.lock()
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            TouchEvent::Task {
                                origin: TaskOrigin::Steal { .. }
                            }
                        )
                    })
                    .count() as u64
            })
            .sum()
    }

    /// Clears every lane (keeping the reserves) and the drop counter, so
    /// one recorder can bracket several runs.
    pub fn clear(&self) {
        for lane in &self.lanes {
            lane.lock().clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for TouchTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TouchTrace")
            .field("lanes", &self.lanes.len())
            .field("capacity", &self.capacity)
            .field("events", &self.total_events())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_lane_in_order() {
        let t = TouchTrace::new(2, 8);
        assert_eq!(t.lanes(), 3);
        assert_eq!(t.external_lane(), 2);
        t.record(
            0,
            TouchEvent::Task {
                origin: TaskOrigin::Inject,
            },
        );
        t.record(
            0,
            TouchEvent::Node {
                node: 0,
                block: Some(7),
            },
        );
        t.record(
            1,
            TouchEvent::Node {
                node: 1,
                block: None,
            },
        );
        assert_eq!(t.node_trace(0), vec![(0, Some(7))]);
        assert_eq!(t.node_trace(1), vec![(1, None)]);
        assert_eq!(t.events(0).len(), 2);
        assert_eq!(t.total_events(), 3);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn over_capacity_events_are_dropped_and_counted() {
        let t = TouchTrace::new(1, 2);
        for n in 0..5u32 {
            t.record(
                0,
                TouchEvent::Node {
                    node: n,
                    block: None,
                },
            );
        }
        assert_eq!(t.node_trace(0).len(), 2, "reserve bounds the lane");
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.total_events(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn steal_tasks_counts_only_steal_provenance() {
        let t = TouchTrace::new(2, 8);
        t.record(
            0,
            TouchEvent::Task {
                origin: TaskOrigin::Local,
            },
        );
        t.record(
            1,
            TouchEvent::Task {
                origin: TaskOrigin::Steal { victim: 0 },
            },
        );
        t.record(
            1,
            TouchEvent::Task {
                origin: TaskOrigin::Inline,
            },
        );
        assert_eq!(t.steal_tasks(), 1);
    }
}
