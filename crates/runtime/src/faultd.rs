//! `faultd` — deterministic, seed-driven fault injection for the runtime.
//!
//! Crash-recovery code that is only ever exercised by real crashes is
//! untested code. This module lets tests and experiments *cause* failures
//! on demand, deterministically: a [`FaultPlan`] derived from a seed
//! decides, purely as a function of a global task sequence number, which
//! task panics, which execution kills its worker, and how often injector
//! operations or wakeups stall. The same seed always produces the same
//! plan, so a failing fault schedule is replayable by seed alone — the
//! seeded-schedule-exploration spirit of parsimonious DPOR applied to
//! fault schedules rather than interleavings.
//!
//! The runtime consults the hooks through [`FaultHooks`], an object-safe
//! trait stored as `Option<Arc<dyn FaultHooks>>` on the pool. When no
//! hooks are installed (the default, and every production configuration)
//! each dispatch site pays one always-false branch on an `Option` that
//! never changes after construction — the zero-cost-when-disabled
//! discipline. The per-task sequence counter is only advanced when hooks
//! are present.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wsf_deque::StallSite;

/// What the fault layer decided for one dequeued task.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Run the task normally.
    None,
    /// Make the task body panic (through the real unwind path; the panic
    /// is contained by the worker's `catch_unwind` and surfaced as a
    /// [`crate::TaskError::Panicked`] at touch time).
    PanicTask,
    /// Fail the task's future with [`crate::TaskError::WorkerKilled`] and
    /// terminate the executing worker permanently — a crashed worker. The
    /// pool degrades to the surviving workers; tasks left on the dead
    /// worker's deque remain stealable.
    KillWorker,
    /// Sleep for the given duration before running the task (a stalled
    /// worker).
    StallTask(Duration),
}

/// Injection points the runtime consults while executing.
///
/// Every method has a no-fault default, so an implementation overrides
/// only the sites it cares about. Implementations must be deterministic
/// functions of their arguments and internal (seeded) state if the fault
/// schedule is to be replayable.
pub trait FaultHooks: Send + Sync + 'static {
    /// Called once per task dequeued by a worker, with the worker index
    /// and the global task sequence number (a counter over all dequeued
    /// tasks, advanced only when hooks are installed).
    fn on_task(&self, _worker: usize, _seq: u64) -> FaultAction {
        FaultAction::None
    }

    /// Called when a parked worker wakes; returns an extra delay to apply
    /// before it rescans for work (a delayed wakeup).
    fn on_wakeup(&self, _worker: usize) -> Option<Duration> {
        None
    }

    /// Called at the top of every injector push/steal (inside the
    /// injector's epoch registration); returns how long the operation
    /// should stall in flight.
    fn on_injector(&self, _site: StallSite) -> Option<Duration> {
        None
    }
}

/// Parameters from which [`FaultPlan::seeded`] draws a concrete plan.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Task-sequence horizon: panic/kill sequence numbers are drawn
    /// uniformly from `0..horizon`. Choose it at most the number of tasks
    /// the workload is guaranteed to dequeue so every drawn fault fires.
    pub horizon: u64,
    /// Number of injected task panics.
    pub panics: usize,
    /// Number of injected worker kills.
    pub kills: usize,
    /// Every `stall_period`-th injector operation stalls (0 disables).
    pub stall_period: u64,
    /// How long a stalled injector operation sleeps.
    pub stall: Duration,
    /// Every `wakeup_period`-th wakeup is delayed (0 disables).
    pub wakeup_period: u64,
    /// How long a delayed wakeup sleeps.
    pub wakeup_delay: Duration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            horizon: 256,
            panics: 2,
            kills: 1,
            stall_period: 7,
            stall: Duration::from_micros(200),
            wakeup_period: 5,
            wakeup_delay: Duration::from_micros(100),
        }
    }
}

/// A concrete, replayable fault schedule: sorted task-sequence numbers
/// for panics and kills plus stall/delay cadences, all derived from a
/// seed. Implements [`FaultHooks`]; counters record what actually fired
/// so tests can assert the schedule was exercised.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    panics: Vec<u64>,
    kills: Vec<u64>,
    stall_period: u64,
    stall: Duration,
    wakeup_period: u64,
    wakeup_delay: Duration,
    injector_ops: AtomicU64,
    wakeups: AtomicU64,
    fired_panics: AtomicU64,
    fired_kills: AtomicU64,
    fired_stalls: AtomicU64,
    fired_delays: AtomicU64,
}

/// `splitmix64` — the tiny, high-quality mixer used to expand the seed
/// into draw decisions (deterministic, dependency-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Draws a concrete plan from `seed` under `spec`. The same
    /// `(seed, spec)` always yields the same plan. Panic and kill
    /// sequence numbers are distinct (a task either panics or kills its
    /// worker, never both).
    pub fn seeded(seed: u64, spec: &FaultSpec) -> FaultPlan {
        let mut rng = seed ^ 0xd6e8_feb8_6659_fd93;
        let wanted = spec.panics + spec.kills;
        let mut drawn: Vec<u64> = Vec::with_capacity(wanted);
        // Rejection-sample distinct sequence numbers; the horizon is
        // clamped so the draw always terminates.
        let horizon = spec.horizon.max(wanted as u64).max(1);
        while drawn.len() < wanted {
            let s = splitmix64(&mut rng) % horizon;
            if !drawn.contains(&s) {
                drawn.push(s);
            }
        }
        let mut panics: Vec<u64> = drawn[..spec.panics].to_vec();
        let mut kills: Vec<u64> = drawn[spec.panics..].to_vec();
        panics.sort_unstable();
        kills.sort_unstable();
        FaultPlan {
            seed,
            panics,
            kills,
            stall_period: spec.stall_period,
            stall: spec.stall,
            wakeup_period: spec.wakeup_period,
            wakeup_delay: spec.wakeup_delay,
            injector_ops: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            fired_panics: AtomicU64::new(0),
            fired_kills: AtomicU64::new(0),
            fired_stalls: AtomicU64::new(0),
            fired_delays: AtomicU64::new(0),
        }
    }

    /// The seed the plan was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Task sequence numbers scheduled to panic.
    pub fn panic_seqs(&self) -> &[u64] {
        &self.panics
    }

    /// Task sequence numbers scheduled to kill their worker.
    pub fn kill_seqs(&self) -> &[u64] {
        &self.kills
    }

    /// Injected panics that actually fired so far.
    pub fn fired_panics(&self) -> u64 {
        self.fired_panics.load(Ordering::Relaxed)
    }

    /// Injected worker kills that actually fired so far.
    pub fn fired_kills(&self) -> u64 {
        self.fired_kills.load(Ordering::Relaxed)
    }

    /// Injector stalls that actually fired so far.
    pub fn fired_stalls(&self) -> u64 {
        self.fired_stalls.load(Ordering::Relaxed)
    }

    /// Delayed wakeups that actually fired so far.
    pub fn fired_delays(&self) -> u64 {
        self.fired_delays.load(Ordering::Relaxed)
    }

    /// A one-line, deterministic description of the drawn schedule
    /// (suitable for table cells: independent of what has fired).
    pub fn describe(&self) -> String {
        format!(
            "{}p/{}k stall%{} wake%{}",
            self.panics.len(),
            self.kills.len(),
            self.stall_period,
            self.wakeup_period
        )
    }
}

impl FaultHooks for FaultPlan {
    fn on_task(&self, _worker: usize, seq: u64) -> FaultAction {
        if self.kills.binary_search(&seq).is_ok() {
            self.fired_kills.fetch_add(1, Ordering::Relaxed);
            return FaultAction::KillWorker;
        }
        if self.panics.binary_search(&seq).is_ok() {
            self.fired_panics.fetch_add(1, Ordering::Relaxed);
            return FaultAction::PanicTask;
        }
        FaultAction::None
    }

    fn on_wakeup(&self, _worker: usize) -> Option<Duration> {
        if self.wakeup_period == 0 {
            return None;
        }
        let n = self.wakeups.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.wakeup_period) {
            self.fired_delays.fetch_add(1, Ordering::Relaxed);
            Some(self.wakeup_delay)
        } else {
            None
        }
    }

    fn on_injector(&self, _site: StallSite) -> Option<Duration> {
        if self.stall_period == 0 {
            return None;
        }
        let n = self.injector_ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.stall_period) {
            self.fired_stalls.fetch_add(1, Ordering::Relaxed);
            Some(self.stall)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_disjoint() {
        let spec = FaultSpec {
            horizon: 64,
            panics: 4,
            kills: 3,
            ..FaultSpec::default()
        };
        let a = FaultPlan::seeded(17, &spec);
        let b = FaultPlan::seeded(17, &spec);
        assert_eq!(a.panic_seqs(), b.panic_seqs());
        assert_eq!(a.kill_seqs(), b.kill_seqs());
        assert_eq!(a.panic_seqs().len(), 4);
        assert_eq!(a.kill_seqs().len(), 3);
        for s in a.panic_seqs() {
            assert!(!a.kill_seqs().contains(s), "panic and kill share seq {s}");
            assert!(*s < 64);
        }
        let c = FaultPlan::seeded(18, &spec);
        assert!(
            a.panic_seqs() != c.panic_seqs() || a.kill_seqs() != c.kill_seqs(),
            "different seeds should draw different schedules"
        );
    }

    #[test]
    fn plan_fires_at_exactly_the_drawn_seqs() {
        let spec = FaultSpec {
            horizon: 32,
            panics: 2,
            kills: 1,
            stall_period: 3,
            wakeup_period: 2,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::seeded(5, &spec);
        let mut panics = 0;
        let mut kills = 0;
        for seq in 0..32 {
            match plan.on_task(0, seq) {
                FaultAction::PanicTask => panics += 1,
                FaultAction::KillWorker => kills += 1,
                FaultAction::None => {}
                FaultAction::StallTask(_) => unreachable!("plan never stalls tasks"),
            }
        }
        assert_eq!(panics, 2);
        assert_eq!(kills, 1);
        assert_eq!(plan.fired_panics(), 2);
        assert_eq!(plan.fired_kills(), 1);

        // Cadence hooks: every 3rd injector op, every 2nd wakeup.
        let stalls = (1..=9)
            .filter(|_| plan.on_injector(StallSite::Push).is_some())
            .count();
        assert_eq!(stalls, 3);
        let delays = (1..=4).filter(|_| plan.on_wakeup(0).is_some()).count();
        assert_eq!(delays, 2);
    }

    #[test]
    fn horizon_smaller_than_faults_still_terminates() {
        let spec = FaultSpec {
            horizon: 1,
            panics: 3,
            kills: 2,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::seeded(0, &spec);
        assert_eq!(plan.panic_seqs().len() + plan.kill_seqs().len(), 5);
    }

    #[test]
    fn default_hooks_are_no_ops() {
        struct Quiet;
        impl FaultHooks for Quiet {}
        let q = Quiet;
        assert_eq!(q.on_task(0, 0), FaultAction::None);
        assert!(q.on_wakeup(0).is_none());
        assert!(q.on_injector(StallSite::Steal).is_none());
    }
}
