//! Single-touch futures.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a future's body never produced a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError {
    /// The task body panicked; the payload's message (when it was a
    /// string) is preserved. The panic was contained on the worker — the
    /// pool stays live.
    Panicked(String),
    /// The worker that dequeued the task was killed (by the fault
    /// injector) before running the body.
    WorkerKilled,
}

impl TaskError {
    pub(crate) fn from_panic(payload: Box<dyn std::any::Any + Send>) -> TaskError {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        TaskError::Panicked(msg)
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            TaskError::WorkerKilled => write!(f, "worker killed before running the task"),
        }
    }
}

impl std::error::Error for TaskError {}

/// The result of a bounded touch ([`Future::touch_within`]).
#[derive(Debug)]
pub enum TouchOutcome<T> {
    /// The value arrived within the deadline.
    Ready(T),
    /// The task failed (panic or killed worker) within the deadline.
    Failed(TaskError),
    /// The deadline passed; the handle is returned so the caller can
    /// retry, keep waiting, or drop it (abandoning the result).
    Pending(Future<T>),
}

/// The shared completion slot of a future.
pub(crate) struct FutureState<T> {
    slot: Mutex<Slot<T>>,
    cond: Condvar,
}

enum Slot<T> {
    Pending,
    Done(T),
    Failed(TaskError),
    Taken,
}

impl<T> Slot<T> {
    fn is_settled(&self) -> bool {
        matches!(self, Slot::Done(_) | Slot::Failed(_))
    }

    /// Takes a settled slot's outcome, leaving `Taken`.
    fn take_settled(&mut self) -> Option<Result<T, TaskError>> {
        if !self.is_settled() {
            return None;
        }
        match std::mem::replace(self, Slot::Taken) {
            Slot::Done(v) => Some(Ok(v)),
            Slot::Failed(e) => Some(Err(e)),
            _ => unreachable!(),
        }
    }
}

impl<T> FutureState<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(FutureState {
            slot: Mutex::new(Slot::Pending),
            cond: Condvar::new(),
        })
    }

    /// Stores the computed value and wakes any blocked toucher.
    ///
    /// # Panics
    /// Panics if the future was already completed (each future body runs
    /// exactly once).
    pub(crate) fn complete(&self, value: T) {
        let mut slot = self.slot.lock();
        match *slot {
            Slot::Pending => *slot = Slot::Done(value),
            _ => panic!("future completed twice"),
        }
        drop(slot);
        self.cond.notify_all();
    }

    /// Marks the future failed (panicked body or killed worker) and wakes
    /// any blocked toucher.
    ///
    /// # Panics
    /// Panics if the future was already completed.
    pub(crate) fn fail(&self, err: TaskError) {
        let mut slot = self.slot.lock();
        match *slot {
            Slot::Pending => *slot = Slot::Failed(err),
            _ => panic!("future completed twice"),
        }
        drop(slot);
        self.cond.notify_all();
    }

    /// Whether the outcome has been produced (and not yet taken).
    pub(crate) fn is_done(&self) -> bool {
        self.slot.lock().is_settled()
    }

    /// Takes the outcome if the future has settled.
    pub(crate) fn try_take(&self) -> Option<Result<T, TaskError>> {
        self.slot.lock().take_settled()
    }

    /// Blocks the calling thread until the future settles and takes the
    /// outcome.
    pub(crate) fn wait_take(&self) -> Result<T, TaskError> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(outcome) = slot.take_settled() {
                return outcome;
            }
            self.cond.wait(&mut slot);
        }
    }

    /// Blocks until the future settles or `timeout` elapses.
    pub(crate) fn wait_take_for(&self, timeout: Duration) -> Option<Result<T, TaskError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock();
        loop {
            if let Some(outcome) = slot.take_settled() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cond.wait_for(&mut slot, deadline - now);
        }
    }
}

/// A handle to the result of an asynchronous computation spawned on the
/// [`crate::Runtime`].
///
/// The paper's *single-touch* discipline is enforced statically:
/// [`Future::touch`] consumes the handle, so a future can be touched at most
/// once, by whichever thread the handle has been passed to — exactly the
/// structured use of futures (Definition 2) for which Theorem 8 guarantees
/// good cache locality under the child-first policy.
#[must_use = "a future that is never touched is never synchronized with"]
pub struct Future<T> {
    pub(crate) state: Arc<FutureState<T>>,
    pub(crate) runtime: Arc<crate::pool::Inner>,
}

impl<T: Send + 'static> Future<T> {
    /// Whether the outcome is already available (touching would not block).
    pub fn is_ready(&self) -> bool {
        self.state.is_done()
    }

    /// Waits for the result, helping to execute other runtime tasks while
    /// it is not ready (work-stealing "help-first" waiting), and returns it.
    ///
    /// Consuming `self` makes a second touch a compile-time error.
    ///
    /// # Panics
    /// Panics if the task failed — its body panicked (the contained panic
    /// resurfaces here, at the synchronization point) or its worker was
    /// killed. Use [`Future::touch_result`] to observe failure as a value.
    pub fn touch(self) -> T {
        match self.touch_result() {
            Ok(v) => v,
            Err(e) => panic!("touched a failed future: {e}"),
        }
    }

    /// Like [`Future::touch`], but surfaces task failure (panicked body,
    /// killed worker) as an [`Err`] instead of panicking.
    pub fn touch_result(self) -> Result<T, TaskError> {
        crate::pool::Inner::touch(&self.runtime, &self.state)
    }

    /// Waits for the outcome at most `timeout` (helping to run tasks on a
    /// worker thread, blocking elsewhere). On timeout the handle is
    /// returned inside [`TouchOutcome::Pending`], so the single-touch
    /// discipline is preserved across retries.
    pub fn touch_within(self, timeout: Duration) -> TouchOutcome<T> {
        match crate::pool::Inner::touch_within(&self.runtime, &self.state, timeout) {
            Some(Ok(v)) => TouchOutcome::Ready(v),
            Some(Err(e)) => TouchOutcome::Failed(e),
            None => TouchOutcome::Pending(self),
        }
    }
}

impl<T> std::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Future")
            .field("ready", &self.state.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_take() {
        let s = FutureState::new();
        assert!(!s.is_done());
        assert!(s.try_take().is_none());
        s.complete(41);
        assert!(s.is_done());
        assert_eq!(s.try_take(), Some(Ok(41)));
        assert!(!s.is_done(), "taking empties the slot");
        assert!(s.try_take().is_none());
    }

    #[test]
    fn fail_then_take() {
        let s = FutureState::<u32>::new();
        s.fail(TaskError::WorkerKilled);
        assert!(s.is_done(), "a failed future is settled");
        assert_eq!(s.try_take(), Some(Err(TaskError::WorkerKilled)));
        assert!(s.try_take().is_none());
    }

    #[test]
    fn wait_take_blocks_until_complete() {
        let s = FutureState::new();
        let s2 = Arc::clone(&s);
        let handle = std::thread::spawn(move || s2.wait_take());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.complete("done".to_string());
        assert_eq!(handle.join().unwrap(), Ok("done".to_string()));
    }

    #[test]
    fn wait_take_for_times_out_then_succeeds() {
        let s = FutureState::<u32>::new();
        assert!(s.wait_take_for(Duration::from_millis(5)).is_none());
        s.complete(7);
        assert_eq!(s.wait_take_for(Duration::from_millis(5)), Some(Ok(7)));
    }

    #[test]
    fn wait_take_wakes_on_failure() {
        let s = FutureState::<u32>::new();
        let s2 = Arc::clone(&s);
        let handle = std::thread::spawn(move || s2.wait_take());
        std::thread::sleep(std::time::Duration::from_millis(10));
        s.fail(TaskError::Panicked("boom".into()));
        assert_eq!(
            handle.join().unwrap(),
            Err(TaskError::Panicked("boom".into()))
        );
    }

    #[test]
    #[should_panic(expected = "future completed twice")]
    fn double_complete_panics() {
        let s = FutureState::new();
        s.complete(1);
        s.complete(2);
    }

    #[test]
    #[should_panic(expected = "future completed twice")]
    fn fail_after_complete_panics() {
        let s = FutureState::new();
        s.complete(1);
        s.fail(TaskError::WorkerKilled);
    }

    #[test]
    fn task_error_display() {
        assert_eq!(
            TaskError::Panicked("x".into()).to_string(),
            "task panicked: x"
        );
        assert_eq!(
            TaskError::WorkerKilled.to_string(),
            "worker killed before running the task"
        );
    }
}
