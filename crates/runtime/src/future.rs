//! Single-touch futures.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// The shared completion slot of a future.
pub(crate) struct FutureState<T> {
    slot: Mutex<Slot<T>>,
    cond: Condvar,
}

enum Slot<T> {
    Pending,
    Done(T),
    Taken,
}

impl<T> FutureState<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(FutureState {
            slot: Mutex::new(Slot::Pending),
            cond: Condvar::new(),
        })
    }

    /// Stores the computed value and wakes any blocked toucher.
    ///
    /// # Panics
    /// Panics if the future was already completed (each future body runs
    /// exactly once).
    pub(crate) fn complete(&self, value: T) {
        let mut slot = self.slot.lock();
        match *slot {
            Slot::Pending => *slot = Slot::Done(value),
            _ => panic!("future completed twice"),
        }
        drop(slot);
        self.cond.notify_all();
    }

    /// Whether the value has been produced (and not yet taken).
    pub(crate) fn is_done(&self) -> bool {
        matches!(*self.slot.lock(), Slot::Done(_))
    }

    /// Takes the value if it is ready.
    pub(crate) fn try_take(&self) -> Option<T> {
        let mut slot = self.slot.lock();
        if matches!(*slot, Slot::Done(_)) {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Done(v) => Some(v),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }

    /// Blocks the calling thread until the value is ready and takes it.
    pub(crate) fn wait_take(&self) -> T {
        let mut slot = self.slot.lock();
        loop {
            if matches!(*slot, Slot::Done(_)) {
                match std::mem::replace(&mut *slot, Slot::Taken) {
                    Slot::Done(v) => return v,
                    _ => unreachable!(),
                }
            }
            self.cond.wait(&mut slot);
        }
    }
}

/// A handle to the result of an asynchronous computation spawned on the
/// [`crate::Runtime`].
///
/// The paper's *single-touch* discipline is enforced statically:
/// [`Future::touch`] consumes the handle, so a future can be touched at most
/// once, by whichever thread the handle has been passed to — exactly the
/// structured use of futures (Definition 2) for which Theorem 8 guarantees
/// good cache locality under the child-first policy.
#[must_use = "a future that is never touched is never synchronized with"]
pub struct Future<T> {
    pub(crate) state: Arc<FutureState<T>>,
    pub(crate) runtime: Arc<crate::pool::Inner>,
}

impl<T: Send + 'static> Future<T> {
    /// Whether the result is already available (touching would not block).
    pub fn is_ready(&self) -> bool {
        self.state.is_done()
    }

    /// Waits for the result, helping to execute other runtime tasks while
    /// it is not ready (work-stealing "help-first" waiting), and returns it.
    ///
    /// Consuming `self` makes a second touch a compile-time error.
    pub fn touch(self) -> T {
        crate::pool::Inner::touch(&self.runtime, &self.state)
    }
}

impl<T> std::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Future")
            .field("ready", &self.state.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_take() {
        let s = FutureState::new();
        assert!(!s.is_done());
        assert!(s.try_take().is_none());
        s.complete(41);
        assert!(s.is_done());
        assert_eq!(s.try_take(), Some(41));
        assert!(!s.is_done(), "taking empties the slot");
        assert!(s.try_take().is_none());
    }

    #[test]
    fn wait_take_blocks_until_complete() {
        let s = FutureState::new();
        let s2 = Arc::clone(&s);
        let handle = std::thread::spawn(move || s2.wait_take());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.complete("done".to_string());
        assert_eq!(handle.join().unwrap(), "done");
    }

    #[test]
    #[should_panic(expected = "future completed twice")]
    fn double_complete_panics() {
        let s = FutureState::new();
        s.complete(1);
        s.complete(2);
    }
}
