//! Spawn policies of the real runtime.

/// How a worker schedules a newly created future relative to its own
/// continuation.
///
/// This is the runtime counterpart of the simulator's
/// `ForkPolicy`: the paper's *future-first* rule corresponds to running the
/// spawned computation before the spawning thread's continuation
/// (child-first / work-first), while *parent-first* corresponds to making
/// the spawned computation stealable and continuing with the parent
/// (helper-first / help-first).
///
/// A library runtime without compiler support cannot suspend and expose the
/// parent continuation for stealing, so `ChildFirst` is realized by running
/// the future body inline at creation when the local deque is shallow (the
/// common depth-first case) and `HelperFirst` by always deferring the body
/// to the deque. `Runtime::join` always uses the child-first discipline,
/// exactly like Cilk's spawn/sync.
///
/// Fault-injection note: dequeue-time faults (`faultd`'s task panic /
/// worker kill) apply to *queued* tasks. A child-first future that runs
/// inline at spawn never crosses a queue, so under `ChildFirst` the
/// injectable surface is the non-inline residue (deep spawns past the
/// inline depth limit, external submissions), while under `HelperFirst`
/// every future is injectable. The crash-recovery tests therefore run
/// their seeded fault schedules under both variants.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum SpawnPolicy {
    /// Run spawned futures eagerly (future-first / work-first).
    #[default]
    ChildFirst,
    /// Defer spawned futures to the deque and keep executing the parent
    /// (parent-first / help-first).
    HelperFirst,
}

impl SpawnPolicy {
    /// All policies.
    pub const ALL: [SpawnPolicy; 2] = [SpawnPolicy::ChildFirst, SpawnPolicy::HelperFirst];

    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            SpawnPolicy::ChildFirst => "child-first",
            SpawnPolicy::HelperFirst => "helper-first",
        }
    }
}

impl std::fmt::Display for SpawnPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_default() {
        assert_eq!(SpawnPolicy::ChildFirst.label(), "child-first");
        assert_eq!(SpawnPolicy::HelperFirst.to_string(), "helper-first");
        assert_eq!(SpawnPolicy::default(), SpawnPolicy::ChildFirst);
        assert_eq!(SpawnPolicy::ALL.len(), 2);
    }
}
