//! The work-stealing thread pool.

use crate::future::{Future, FutureState};
use crate::policy::SpawnPolicy;
use crate::stats::{AtomicStats, RuntimeStats};
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use wsf_deque::{deque, Injector, Steal, Stealer, Worker};

/// A unit of work queued on the pool.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared state of the pool, visible to every worker and to external
/// threads holding futures.
pub(crate) struct Inner {
    stealers: Vec<Stealer<Task>>,
    /// Lock-free MPMC queue for tasks submitted from outside the pool
    /// (external `spawn_future`/`defer_future` callers); workers drain it
    /// after their own deque and before stealing.
    injector: Injector<Task>,
    idle_mutex: Mutex<()>,
    idle_cond: Condvar,
    /// Number of workers currently parked (or about to park) on
    /// `idle_cond`. Task-arrival notifications are skipped entirely when it
    /// is zero and wake a *single* worker otherwise — one task can only be
    /// claimed by one worker, so `notify_all` per push just stampeded every
    /// sleeper through the mutex to find nothing (the classic thundering
    /// herd). The small window where a worker has failed its final
    /// `find_task` but not yet registered as idle is covered by the bounded
    /// 1 ms `wait_for` in the worker loop, exactly as before.
    idle_workers: AtomicUsize,
    shutdown: AtomicBool,
    policy: SpawnPolicy,
    inline_depth_limit: usize,
    pub(crate) stats: AtomicStats,
}

struct WorkerLocal {
    inner: Arc<Inner>,
    index: usize,
    worker: Worker<Task>,
    rng: RefCell<SmallRng>,
    inline_depth: std::cell::Cell<usize>,
}

thread_local! {
    static CURRENT: RefCell<Option<WorkerLocal>> = const { RefCell::new(None) };
}

/// Runs `f` with the calling thread's worker context, if the calling thread
/// is one of this pool's workers.
fn with_worker<R>(inner: &Arc<Inner>, f: impl FnOnce(&WorkerLocal) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some(w) if Arc::ptr_eq(&w.inner, inner) => Some(f(w)),
            _ => None,
        }
    })
}

impl Inner {
    /// Signals that one task became available: wakes at most one idle
    /// worker, and none when every worker is already awake.
    fn notify(&self) {
        if self.idle_workers.load(Ordering::SeqCst) > 0 {
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            self.idle_cond.notify_one();
        }
    }

    fn push_injector(&self, task: Task) {
        self.injector.push(task);
        self.notify();
    }

    fn pop_injector(&self) -> Option<Task> {
        self.injector.steal()
    }

    /// Finds a task for the worker `index`: its own deque first, then the
    /// global injector, then stealing from a random victim.
    fn find_task(self: &Arc<Self>, local: &WorkerLocal) -> Option<Task> {
        if let Some(t) = local.worker.pop() {
            return Some(t);
        }
        if let Some(t) = self.pop_injector() {
            return Some(t);
        }
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = local.rng.borrow_mut().gen_range(0..n);
        let mut saw_retry = false;
        for offset in 0..n {
            let victim = (start + offset) % n;
            if victim == local.index {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(t) => {
                        self.stats.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                    Steal::Retry => {
                        saw_retry = true;
                        continue;
                    }
                    Steal::Empty => break,
                }
            }
        }
        if !saw_retry {
            self.stats.failed_steals.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    fn run_task(self: &Arc<Self>, task: Task) {
        self.stats.tasks_executed.fetch_add(1, Ordering::Relaxed);
        task();
    }

    /// The waiting side of [`Future::touch`]: help run tasks until the
    /// future completes (on a worker thread), or block (elsewhere).
    pub(crate) fn touch<T: Send + 'static>(inner: &Arc<Inner>, state: &Arc<FutureState<T>>) -> T {
        inner.stats.touches.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = state.try_take() {
            return v;
        }
        let on_worker = with_worker(inner, |_| ()).is_some();
        if on_worker {
            loop {
                if let Some(v) = state.try_take() {
                    return v;
                }
                let task = with_worker(inner, |local| inner.find_task(local)).flatten();
                match task {
                    Some(t) => {
                        inner.stats.helped_tasks.fetch_add(1, Ordering::Relaxed);
                        inner.run_task(t);
                    }
                    None => {
                        if let Some(v) = state.try_take() {
                            return v;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        } else {
            state.wait_take()
        }
    }

    fn worker_loop(self: Arc<Self>, index: usize, worker: Worker<Task>) {
        let local = WorkerLocal {
            inner: Arc::clone(&self),
            index,
            worker,
            rng: RefCell::new(SmallRng::seed_from_u64(0x9e3779b97f4a7c15 ^ index as u64)),
            inline_depth: std::cell::Cell::new(0),
        };
        CURRENT.with(|c| *c.borrow_mut() = Some(local));

        loop {
            let task = CURRENT.with(|c| {
                let borrow = c.borrow();
                let local = borrow.as_ref().expect("worker context installed");
                self.find_task(local)
            });
            match task {
                Some(t) => self.run_task(t),
                None => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let mut guard = self.idle_mutex.lock();
                    self.idle_workers.fetch_add(1, Ordering::SeqCst);
                    // Re-check under the lock so a notify between the failed
                    // find and this wait is not lost for long (and the
                    // bounded wait caps the one remaining race: a push that
                    // read `idle_workers == 0` just before the increment).
                    if !self.shutdown.load(Ordering::Acquire) {
                        self.idle_cond
                            .wait_for(&mut guard, Duration::from_millis(1));
                    }
                    self.idle_workers.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }

        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Configures and builds a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeBuilder {
    threads: usize,
    policy: SpawnPolicy,
    inline_depth_limit: usize,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: SpawnPolicy::ChildFirst,
            inline_depth_limit: 128,
        }
    }
}

impl RuntimeBuilder {
    /// Sets the number of worker threads (`P`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the spawn policy.
    pub fn policy(mut self, policy: SpawnPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how deep child-first inline execution may nest before newly
    /// created futures are deferred to the deque instead.
    pub fn inline_depth_limit(mut self, limit: usize) -> Self {
        self.inline_depth_limit = limit;
        self
    }

    /// Builds the runtime, spawning its worker threads.
    pub fn build(self) -> Runtime {
        let mut workers = Vec::with_capacity(self.threads);
        let mut stealers = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let (w, s) = deque::<Task>();
            workers.push(w);
            stealers.push(s);
        }
        let inner = Arc::new(Inner {
            stealers,
            injector: Injector::new(),
            idle_mutex: Mutex::new(()),
            idle_cond: Condvar::new(),
            idle_workers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            policy: self.policy,
            inline_depth_limit: self.inline_depth_limit,
            stats: AtomicStats::default(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wsf-worker-{index}"))
                    .spawn(move || inner.worker_loop(index, worker))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime { inner, handles }
    }
}

/// A work-stealing thread pool with structured single-touch futures.
///
/// ```
/// use wsf_runtime::{Runtime, SpawnPolicy};
///
/// let rt = Runtime::builder().threads(2).policy(SpawnPolicy::ChildFirst).build();
/// let f = rt.spawn_future(|| (1..=10).sum::<u64>());
/// let (a, b) = rt.join(|| 2 + 2, || 3 * 3);
/// assert_eq!(f.touch(), 55);
/// assert_eq!((a, b), (4, 9));
/// ```
pub struct Runtime {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Creates a runtime with `threads` workers and the default
    /// (child-first) policy.
    pub fn new(threads: usize) -> Self {
        Runtime::builder().threads(threads).build()
    }

    /// Returns a builder for finer configuration.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.handles.len()
    }

    /// The configured spawn policy.
    pub fn policy(&self) -> SpawnPolicy {
        self.inner.policy
    }

    /// A snapshot of the runtime's counters.
    pub fn stats(&self) -> RuntimeStats {
        self.inner.stats.snapshot()
    }

    /// Spawns `f` as a future and returns its single-touch handle.
    ///
    /// Under the child-first policy, a future created on a worker thread is
    /// run immediately by that worker (up to a nesting limit), mirroring the
    /// paper's future-first rule; under the helper-first policy it is pushed
    /// onto the worker's deque, where other workers may steal it.
    pub fn spawn_future<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.inner
            .stats
            .futures_created
            .fetch_add(1, Ordering::Relaxed);
        let state = FutureState::new();

        let run_inline = self.inner.policy == SpawnPolicy::ChildFirst
            && with_worker(&self.inner, |local| {
                let depth = local.inline_depth.get();
                if depth < self.inner.inline_depth_limit {
                    local.inline_depth.set(depth + 1);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);

        if run_inline {
            // Future-first: evaluate the future body now, on the creating
            // worker, before the parent's continuation.
            self.inner.stats.inline_runs.fetch_add(1, Ordering::Relaxed);
            state.complete(f());
            with_worker(&self.inner, |local| {
                local.inline_depth.set(local.inline_depth.get() - 1);
            });
        } else {
            let task_state = Arc::clone(&state);
            let task: Task = Box::new(move || task_state.complete(f()));
            self.push_task(task);
        }

        Future {
            state,
            runtime: Arc::clone(&self.inner),
        }
    }

    /// Runs `a` and `b`, potentially in parallel, and returns both results.
    ///
    /// `b` is made stealable while the calling thread runs `a` inline, then
    /// the result of `b` is touched — the fork-join (spawn/sync) special
    /// case of single-touch futures.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send + 'static,
        B: FnOnce() -> RB + Send + 'static,
        RA: Send + 'static,
        RB: Send + 'static,
    {
        let fb = self.defer_future(b);
        let ra = a();
        let rb = fb.touch();
        (ra, rb)
    }

    /// Spawns `f` as a deque task regardless of the spawn policy (always
    /// stealable, never inline).
    pub fn defer_future<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.inner
            .stats
            .futures_created
            .fetch_add(1, Ordering::Relaxed);
        let state = FutureState::new();
        let task_state = Arc::clone(&state);
        let task: Task = Box::new(move || task_state.complete(f()));
        self.push_task(task);
        Future {
            state,
            runtime: Arc::clone(&self.inner),
        }
    }

    fn push_task(&self, task: Task) {
        let mut slot = Some(task);
        let pushed = with_worker(&self.inner, |local| {
            local
                .worker
                .push(slot.take().expect("task not yet consumed"));
        });
        match pushed {
            Some(()) => self.inner.notify(),
            None => self
                .inner
                .push_injector(slot.take().expect("task not pushed locally")),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Shutdown must reach *every* parked worker, not just one.
        self.inner.idle_cond.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
