//! The work-stealing thread pool.

use crate::faultd::{FaultAction, FaultHooks};
use crate::future::{Future, FutureState, TaskError};
use crate::policy::SpawnPolicy;
use crate::stats::{AtomicStats, RuntimeStats, WorkerCounters, WorkerStats};
use crate::trace::{TaskOrigin, TouchEvent, TouchTrace};
use crossbeam_utils::CachePadded;
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wsf_deque::{deque, Injector, Steal, Stealer, Worker};

/// A unit of work queued on the pool.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Where a worker currently is, for the shutdown watchdog's diagnosis.
/// Stored relaxed in `Inner::worker_sites`; purely informational.
const SITE_LAUNCHING: u8 = 0;
const SITE_SCANNING: u8 = 1;
const SITE_EXECUTING: u8 = 2;
const SITE_PARKED: u8 = 3;
const SITE_DEAD: u8 = 4;

fn site_label(site: u8) -> &'static str {
    match site {
        SITE_SCANNING => "scanning its deque/injector for work",
        SITE_EXECUTING => "executing a task",
        SITE_PARKED => "parked on the idle condvar",
        SITE_DEAD => "exited",
        _ => "launching",
    }
}

/// A fault the worker loop has scheduled for the task it is about to run;
/// consumed by the task wrapper (see `make_task`).
#[derive(Copy, Clone, PartialEq, Eq)]
enum InjectedFault {
    None,
    Panic,
    Kill,
}

thread_local! {
    static INJECTED: Cell<InjectedFault> = const { Cell::new(InjectedFault::None) };
}

/// Shared state of the pool, visible to every worker and to external
/// threads holding futures.
pub(crate) struct Inner {
    stealers: Vec<Stealer<Task>>,
    /// Lock-free MPMC queue for tasks submitted from outside the pool
    /// (external `spawn_future`/`defer_future` callers); workers drain it
    /// after their own deque and before stealing.
    injector: Injector<Task>,
    idle_mutex: Mutex<()>,
    idle_cond: Condvar,
    /// Number of workers currently parked (or about to park) on
    /// `idle_cond`. Task-arrival notifications are skipped entirely when it
    /// is zero and wake a *single* worker otherwise — one task can only be
    /// claimed by one worker, so `notify_all` per push just stampeded every
    /// sleeper through the mutex to find nothing (the classic thundering
    /// herd). The small window where a worker has failed its final
    /// `find_task` but not yet registered as idle is covered by the bounded
    /// 1 ms `wait_for` in the worker loop, exactly as before.
    idle_workers: AtomicUsize,
    shutdown: AtomicBool,
    policy: SpawnPolicy,
    inline_depth_limit: usize,
    /// Fault-injection hooks; `None` (the default) costs one never-taken
    /// branch per dispatch site.
    hooks: Option<Arc<dyn FaultHooks>>,
    /// Workers still running their loop. Decremented on shutdown *and*
    /// when the fault injector kills a worker permanently; a task can
    /// strand (never be executed) only once this reaches zero.
    live_workers: AtomicUsize,
    /// Global dequeued-task sequence number, advanced only when fault
    /// hooks are installed; the coordinate system of seeded fault plans.
    task_seq: AtomicU64,
    /// Per-worker location tags for the shutdown watchdog (`SITE_*`).
    worker_sites: Vec<AtomicU8>,
    pub(crate) stats: AtomicStats,
    /// Block-touch recorder; `None` (the default) costs one never-taken
    /// branch per dispatch site, mirroring `hooks`.
    trace: Option<Arc<TouchTrace>>,
    /// Per-worker steal/execute counters, one cache-padded slot per worker
    /// so each writer owns its line (the per-thread analogue of the
    /// injector's striped epoch counters).
    worker_stats: Vec<CachePadded<WorkerCounters>>,
}

struct WorkerLocal {
    inner: Arc<Inner>,
    index: usize,
    worker: Worker<Task>,
    rng: RefCell<SmallRng>,
    inline_depth: Cell<usize>,
}

thread_local! {
    static CURRENT: RefCell<Option<WorkerLocal>> = const { RefCell::new(None) };
}

/// Runs `f` with the calling thread's worker context, if the calling thread
/// is one of this pool's workers.
fn with_worker<R>(inner: &Arc<Inner>, f: impl FnOnce(&WorkerLocal) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some(w) if Arc::ptr_eq(&w.inner, inner) => Some(f(w)),
            _ => None,
        }
    })
}

/// Wraps a future body into a queued task: consumes any injected fault,
/// contains panics with `catch_unwind`, and settles the future exactly
/// once — with the value, or with a [`TaskError`] describing the failure.
/// A panicking body therefore never unwinds through (and never loses) the
/// worker thread; the panic resurfaces at the touch point instead.
fn make_task<T, F>(inner: &Arc<Inner>, state: &Arc<FutureState<T>>, f: F) -> Task
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let state = Arc::clone(state);
    let inner = Arc::clone(inner);
    Box::new(move || {
        let fault = INJECTED.replace(InjectedFault::None);
        if fault == InjectedFault::Kill {
            // The worker "crashed" before running the body: fail the
            // future so touchers learn of the loss instead of hanging.
            state.fail(TaskError::WorkerKilled);
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if fault == InjectedFault::Panic {
                panic!("wsf-faultd: injected task panic");
            }
            f()
        }));
        match result {
            Ok(v) => state.complete(v),
            Err(payload) => {
                inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                state.fail(TaskError::from_panic(payload));
            }
        }
    })
}

impl Inner {
    /// Signals that one task became available: wakes at most one idle
    /// worker, and none when every worker is already awake.
    fn notify(&self) {
        if self.idle_workers.load(Ordering::SeqCst) > 0 {
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            self.idle_cond.notify_one();
        }
    }

    fn push_injector(&self, task: Task) {
        self.injector.push(task);
        self.notify();
    }

    fn pop_injector(&self) -> Option<Task> {
        self.injector.steal()
    }

    fn set_site(&self, index: usize, site: u8) {
        self.worker_sites[index].store(site, Ordering::Relaxed);
    }

    /// Finds a task for the worker `index`: its own deque first, then the
    /// global injector, then stealing from a random victim.
    fn find_task(self: &Arc<Self>, local: &WorkerLocal) -> Option<Task> {
        if let Some(t) = local.worker.pop() {
            self.record_origin(local.index, TaskOrigin::Local);
            return Some(t);
        }
        if let Some(t) = self.pop_injector() {
            self.record_origin(local.index, TaskOrigin::Inject);
            return Some(t);
        }
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = local.rng.borrow_mut().gen_range(0..n);
        let mut saw_retry = false;
        for offset in 0..n {
            let victim = (start + offset) % n;
            if victim == local.index {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(t) => {
                        self.stats.steals.fetch_add(1, Ordering::Relaxed);
                        self.worker_stats[local.index]
                            .steals
                            .fetch_add(1, Ordering::Relaxed);
                        self.record_origin(
                            local.index,
                            TaskOrigin::Steal {
                                victim: victim as u32,
                            },
                        );
                        return Some(t);
                    }
                    Steal::Retry => {
                        saw_retry = true;
                        continue;
                    }
                    Steal::Empty => break,
                }
            }
        }
        if !saw_retry {
            self.stats.failed_steals.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Records a task-provenance event into `lane` when tracing is on.
    fn record_origin(&self, lane: usize, origin: TaskOrigin) {
        if let Some(trace) = &self.trace {
            trace.record(lane, TouchEvent::Task { origin });
        }
    }

    fn run_task(self: &Arc<Self>, index: usize, task: Task) {
        self.stats.tasks_executed.fetch_add(1, Ordering::Relaxed);
        self.worker_stats[index]
            .executed
            .fetch_add(1, Ordering::Relaxed);
        // Backstop only: every queued task is a `make_task` wrapper that
        // contains its own panics, so this catch should never observe one.
        // It exists so a future wrapper bug still cannot unwind through
        // (and silently lose) a worker thread.
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            self.stats.panics.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The waiting side of [`Future::touch_result`]: help run tasks until
    /// the future settles (on a worker thread), or block (elsewhere).
    ///
    /// Blocks indefinitely if the future's task strands — possible only
    /// once every worker has been killed; bounded waiting is
    /// [`Inner::touch_within`].
    pub(crate) fn touch<T: Send + 'static>(
        inner: &Arc<Inner>,
        state: &Arc<FutureState<T>>,
    ) -> Result<T, TaskError> {
        inner.stats.touches.fetch_add(1, Ordering::Relaxed);
        if let Some(outcome) = state.try_take() {
            return outcome;
        }
        let on_worker = with_worker(inner, |_| ()).is_some();
        if on_worker {
            loop {
                if let Some(outcome) = state.try_take() {
                    return outcome;
                }
                let task = with_worker(inner, |local| {
                    inner.find_task(local).map(|t| (t, local.index))
                })
                .flatten();
                match task {
                    Some((t, index)) => {
                        inner.stats.helped_tasks.fetch_add(1, Ordering::Relaxed);
                        inner.run_task(index, t);
                    }
                    None => {
                        if let Some(outcome) = state.try_take() {
                            return outcome;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        } else {
            state.wait_take()
        }
    }

    /// Bounded-deadline variant of [`Inner::touch`]: returns `None` when
    /// `timeout` elapses before the future settles. A touch is counted
    /// only when an outcome is actually taken, so retried bounded touches
    /// do not inflate `RuntimeStats::touches`.
    pub(crate) fn touch_within<T: Send + 'static>(
        inner: &Arc<Inner>,
        state: &Arc<FutureState<T>>,
        timeout: Duration,
    ) -> Option<Result<T, TaskError>> {
        let deadline = Instant::now() + timeout;
        let on_worker = with_worker(inner, |_| ()).is_some();
        let outcome = if on_worker {
            loop {
                if let Some(outcome) = state.try_take() {
                    break Some(outcome);
                }
                if Instant::now() >= deadline {
                    break None;
                }
                let task = with_worker(inner, |local| {
                    inner.find_task(local).map(|t| (t, local.index))
                })
                .flatten();
                match task {
                    Some((t, index)) => {
                        inner.stats.helped_tasks.fetch_add(1, Ordering::Relaxed);
                        inner.run_task(index, t);
                    }
                    None => std::thread::yield_now(),
                }
            }
        } else {
            state.wait_take_for(timeout)
        };
        if outcome.is_some() {
            inner.stats.touches.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    fn worker_loop(self: Arc<Self>, index: usize, worker: Worker<Task>) {
        let local = WorkerLocal {
            inner: Arc::clone(&self),
            index,
            worker,
            rng: RefCell::new(SmallRng::seed_from_u64(0x9e3779b97f4a7c15 ^ index as u64)),
            inline_depth: Cell::new(0),
        };
        CURRENT.with(|c| *c.borrow_mut() = Some(local));
        let mut killed = false;

        loop {
            self.set_site(index, SITE_SCANNING);
            let task = CURRENT.with(|c| {
                let borrow = c.borrow();
                let local = borrow.as_ref().expect("worker context installed");
                self.find_task(local)
            });
            match task {
                Some(t) => {
                    let action = match &self.hooks {
                        Some(h) => h.on_task(index, self.task_seq.fetch_add(1, Ordering::Relaxed)),
                        None => FaultAction::None,
                    };
                    self.set_site(index, SITE_EXECUTING);
                    match action {
                        FaultAction::None => self.run_task(index, t),
                        FaultAction::StallTask(delay) => {
                            std::thread::sleep(delay);
                            self.run_task(index, t);
                        }
                        FaultAction::PanicTask => {
                            INJECTED.set(InjectedFault::Panic);
                            self.run_task(index, t);
                            INJECTED.set(InjectedFault::None);
                        }
                        FaultAction::KillWorker => {
                            INJECTED.set(InjectedFault::Kill);
                            self.run_task(index, t);
                            INJECTED.set(InjectedFault::None);
                            killed = true;
                        }
                    }
                    if killed {
                        break;
                    }
                }
                None => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let mut guard = self.idle_mutex.lock();
                    self.idle_workers.fetch_add(1, Ordering::SeqCst);
                    self.set_site(index, SITE_PARKED);
                    // Re-check under the lock so a notify between the failed
                    // find and this wait is not lost for long (and the
                    // bounded wait caps the one remaining race: a push that
                    // read `idle_workers == 0` just before the increment).
                    if !self.shutdown.load(Ordering::Acquire) {
                        self.idle_cond
                            .wait_for(&mut guard, Duration::from_millis(1));
                    }
                    self.idle_workers.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                    if let Some(h) = &self.hooks {
                        if let Some(delay) = h.on_wakeup(index) {
                            std::thread::sleep(delay);
                        }
                    }
                }
            }
        }

        // Exit path: clean shutdown, or killed by the fault injector. The
        // dead worker's deque stays stealable (the pool holds its
        // `Stealer`), so its queued tasks are not lost — the pool degrades
        // to the surviving workers.
        self.set_site(index, SITE_DEAD);
        if killed {
            self.stats.worker_deaths.fetch_add(1, Ordering::Relaxed);
        }
        self.live_workers.fetch_sub(1, Ordering::SeqCst);
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Configures and builds a [`Runtime`].
#[derive(Clone)]
pub struct RuntimeBuilder {
    threads: usize,
    policy: SpawnPolicy,
    inline_depth_limit: usize,
    hooks: Option<Arc<dyn FaultHooks>>,
    trace_capacity: Option<usize>,
}

impl std::fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("threads", &self.threads)
            .field("policy", &self.policy)
            .field("inline_depth_limit", &self.inline_depth_limit)
            .field("fault_hooks", &self.hooks.is_some())
            .field("trace_capacity", &self.trace_capacity)
            .finish()
    }
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: SpawnPolicy::ChildFirst,
            inline_depth_limit: 128,
            hooks: None,
            trace_capacity: None,
        }
    }
}

impl RuntimeBuilder {
    /// Sets the number of worker threads (`P`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the spawn policy.
    pub fn policy(mut self, policy: SpawnPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how deep child-first inline execution may nest before newly
    /// created futures are deferred to the deque instead.
    pub fn inline_depth_limit(mut self, limit: usize) -> Self {
        self.inline_depth_limit = limit;
        self
    }

    /// Installs fault-injection hooks (see [`FaultHooks`]). Without
    /// this call the runtime pays one never-taken branch per dispatch
    /// site and the task sequence counter is never advanced.
    pub fn fault_hooks(mut self, hooks: Arc<dyn FaultHooks>) -> Self {
        self.hooks = Some(hooks);
        self
    }

    /// Enables block-touch tracing (see [`TouchTrace`]), reserving
    /// `capacity` events per lane up front. The recorder is constructed by
    /// [`RuntimeBuilder::build`] with one lane per worker plus an external
    /// lane, and is reachable through [`Runtime::touch_trace`]. Without
    /// this call tracing costs one never-taken branch per dispatch site.
    pub fn touch_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Builds the runtime, spawning its worker threads.
    pub fn build(self) -> Runtime {
        let mut workers = Vec::with_capacity(self.threads);
        let mut stealers = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let (w, s) = deque::<Task>();
            workers.push(w);
            stealers.push(s);
        }
        let injector = Injector::new();
        if let Some(hooks) = &self.hooks {
            let hooks = Arc::clone(hooks);
            injector.install_stall_hook(move |site| {
                if let Some(delay) = hooks.on_injector(site) {
                    std::thread::sleep(delay);
                }
            });
        }
        let inner = Arc::new(Inner {
            stealers,
            injector,
            idle_mutex: Mutex::new(()),
            idle_cond: Condvar::new(),
            idle_workers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            policy: self.policy,
            inline_depth_limit: self.inline_depth_limit,
            hooks: self.hooks,
            live_workers: AtomicUsize::new(self.threads),
            task_seq: AtomicU64::new(0),
            worker_sites: (0..self.threads)
                .map(|_| AtomicU8::new(SITE_LAUNCHING))
                .collect(),
            stats: AtomicStats::default(),
            trace: self
                .trace_capacity
                .map(|capacity| TouchTrace::new(self.threads, capacity)),
            worker_stats: (0..self.threads)
                .map(|_| CachePadded::new(WorkerCounters::default()))
                .collect(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wsf-worker-{index}"))
                    .spawn(move || inner.worker_loop(index, worker))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime { inner, handles }
    }
}

/// A worker that had not exited when [`Runtime::shutdown_timeout`] gave up.
#[derive(Clone, Debug)]
pub struct HungWorker {
    /// Index of the hung worker thread.
    pub index: usize,
    /// Where the worker was last observed (which deque/injector scan,
    /// task execution, or condvar park it was in).
    pub site: &'static str,
}

/// Returned by [`Runtime::shutdown_timeout`] when workers failed to exit
/// within the deadline. The hung workers are left detached (the error
/// does not block on them), with their last observed locations for
/// diagnosis.
#[derive(Clone, Debug)]
pub struct ShutdownError {
    /// The workers that never exited, with their last observed sites.
    pub hung: Vec<HungWorker>,
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shutdown timed out; {} worker(s) hung:", self.hung.len())?;
        for w in &self.hung {
            write!(f, " worker {} ({});", w.index, w.site)?;
        }
        Ok(())
    }
}

impl std::error::Error for ShutdownError {}

/// A work-stealing thread pool with structured single-touch futures.
///
/// ```
/// use wsf_runtime::{Runtime, SpawnPolicy};
///
/// let rt = Runtime::builder().threads(2).policy(SpawnPolicy::ChildFirst).build();
/// let f = rt.spawn_future(|| (1..=10).sum::<u64>());
/// let (a, b) = rt.join(|| 2 + 2, || 3 * 3);
/// assert_eq!(f.touch(), 55);
/// assert_eq!((a, b), (4, 9));
/// ```
pub struct Runtime {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Creates a runtime with `threads` workers and the default
    /// (child-first) policy.
    pub fn new(threads: usize) -> Self {
        Runtime::builder().threads(threads).build()
    }

    /// Returns a builder for finer configuration.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Number of worker threads the pool was built with.
    pub fn num_threads(&self) -> usize {
        self.handles.len()
    }

    /// Number of workers still running (smaller than
    /// [`Runtime::num_threads`] once the fault injector has killed
    /// workers). When it reaches zero, queued tasks can no longer be
    /// executed by the pool — callers should degrade to inline execution.
    pub fn live_workers(&self) -> usize {
        self.inner.live_workers.load(Ordering::SeqCst)
    }

    /// The configured spawn policy.
    pub fn policy(&self) -> SpawnPolicy {
        self.inner.policy
    }

    /// A snapshot of the runtime's counters.
    pub fn stats(&self) -> RuntimeStats {
        self.inner.stats.snapshot()
    }

    /// Per-worker steal/execute snapshots, indexed by worker. Each worker's
    /// counters sum to the global [`RuntimeStats`] figures once the pool is
    /// quiescent (asserted by `pool_smoke`).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.inner
            .worker_stats
            .iter()
            .enumerate()
            .map(|(index, c)| WorkerStats {
                index,
                steals: c.steals.load(Ordering::Relaxed),
                tasks_executed: c.executed.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The touch-trace recorder, when the runtime was built with
    /// [`RuntimeBuilder::touch_trace`].
    pub fn touch_trace(&self) -> Option<Arc<TouchTrace>> {
        self.inner.trace.as_ref().map(Arc::clone)
    }

    /// Index of the calling worker thread, if the caller is one of this
    /// pool's workers.
    pub fn current_worker(&self) -> Option<usize> {
        with_worker(&self.inner, |local| local.index)
    }

    /// Records the execution of DAG node `node` touching `block` into the
    /// calling thread's trace lane (the external lane when the caller is
    /// not one of this pool's workers). No-op when tracing is disabled.
    pub fn trace_node(&self, node: u32, block: Option<u32>) {
        if let Some(trace) = &self.inner.trace {
            let lane = with_worker(&self.inner, |local| local.index)
                .unwrap_or_else(|| trace.external_lane());
            trace.record(lane, TouchEvent::Node { node, block });
        }
    }

    /// Spawns `f` as a future and returns its single-touch handle.
    ///
    /// Under the child-first policy, a future created on a worker thread is
    /// run immediately by that worker (up to a nesting limit), mirroring the
    /// paper's future-first rule; under the helper-first policy it is pushed
    /// onto the worker's deque, where other workers may steal it.
    pub fn spawn_future<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.inner
            .stats
            .futures_created
            .fetch_add(1, Ordering::Relaxed);
        let state = FutureState::new();

        let run_inline = self.inner.policy == SpawnPolicy::ChildFirst
            && with_worker(&self.inner, |local| {
                let depth = local.inline_depth.get();
                if depth < self.inner.inline_depth_limit {
                    local.inline_depth.set(depth + 1);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);

        if run_inline {
            // Future-first: evaluate the future body now, on the creating
            // worker, before the parent's continuation. Panics are
            // contained here exactly as on the queued path, so inline and
            // deferred futures fail identically (at the touch point).
            self.inner.stats.inline_runs.fetch_add(1, Ordering::Relaxed);
            if self.inner.trace.is_some() {
                if let Some(lane) = with_worker(&self.inner, |local| local.index) {
                    self.inner.record_origin(lane, TaskOrigin::Inline);
                }
            }
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => state.complete(v),
                Err(payload) => {
                    self.inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                    state.fail(TaskError::from_panic(payload));
                }
            }
            with_worker(&self.inner, |local| {
                local.inline_depth.set(local.inline_depth.get() - 1);
            });
        } else {
            self.push_task(make_task(&self.inner, &state, f));
        }

        Future {
            state,
            runtime: Arc::clone(&self.inner),
        }
    }

    /// Runs `a` and `b`, potentially in parallel, and returns both results.
    ///
    /// `b` is made stealable while the calling thread runs `a` inline, then
    /// the result of `b` is touched — the fork-join (spawn/sync) special
    /// case of single-touch futures.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send + 'static,
        B: FnOnce() -> RB + Send + 'static,
        RA: Send + 'static,
        RB: Send + 'static,
    {
        let fb = self.defer_future(b);
        let ra = a();
        let rb = fb.touch();
        (ra, rb)
    }

    /// Spawns `f` as a deque task regardless of the spawn policy (always
    /// stealable, never inline).
    pub fn defer_future<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.inner
            .stats
            .futures_created
            .fetch_add(1, Ordering::Relaxed);
        let state = FutureState::new();
        self.push_task(make_task(&self.inner, &state, f));
        Future {
            state,
            runtime: Arc::clone(&self.inner),
        }
    }

    /// Shuts the pool down, waiting at most `timeout` for the workers to
    /// exit. On success returns the final counter snapshot. If a worker
    /// is hung (stalled in a task, or wedged on a queue), the error names
    /// each hung worker and the site it was last observed at — and the
    /// hung threads are *detached*, so neither this call nor the
    /// subsequent drop blocks on them.
    pub fn shutdown_timeout(mut self, timeout: Duration) -> Result<RuntimeStats, ShutdownError> {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.idle_cond.notify_all();
        let deadline = Instant::now() + timeout;
        while self.handles.iter().any(|h| !h.is_finished()) {
            if Instant::now() >= deadline {
                let hung: Vec<HungWorker> = self
                    .handles
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| !h.is_finished())
                    .map(|(index, _)| HungWorker {
                        index,
                        site: site_label(self.inner.worker_sites[index].load(Ordering::Relaxed)),
                    })
                    .collect();
                let err = ShutdownError { hung };
                eprintln!("wsf-runtime: {err}");
                // Detach: dropping the handles lets the process exit (or
                // the caller proceed) without joining the hung threads.
                self.handles.clear();
                return Err(err);
            }
            // Keep nudging parked workers; their bounded wait re-checks
            // `shutdown` on every 1 ms tick anyway.
            self.inner.idle_cond.notify_all();
            std::thread::sleep(Duration::from_micros(200));
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        Ok(self.inner.stats.snapshot())
    }

    fn push_task(&self, task: Task) {
        let mut slot = Some(task);
        let pushed = with_worker(&self.inner, |local| {
            local
                .worker
                .push(slot.take().expect("task not yet consumed"));
        });
        match pushed {
            Some(()) => self.inner.notify(),
            None => self
                .inner
                .push_injector(slot.take().expect("task not pushed locally")),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Shutdown must reach *every* parked worker, not just one.
        self.inner.idle_cond.notify_all();
        // The last `Arc<Runtime>` can be dropped *by a worker* when a task
        // closure owns a clone (e.g. a straggler DAG chain finishing after
        // the submitting thread released its handle). Joining would then
        // self-deadlock, so detach instead: the workers observe `shutdown`
        // and exit on their own.
        let on_worker = with_worker(&self.inner, |_| ()).is_some();
        for handle in self.handles.drain(..) {
            if !on_worker {
                let _ = handle.join();
            }
        }
    }
}
