//! Smoke tests of the real thread pool: spawn/touch fan-outs under both
//! [`SpawnPolicy`] variants, checking results and the consistency of the
//! [`RuntimeStats`] counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wsf_runtime::{Runtime, RuntimeStats, SpawnPolicy, TaskError};

/// Recursive fork-join fib on the runtime (the canonical fan-out).
fn fib(rt: &Arc<Runtime>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let rt2 = Arc::clone(rt);
    let future = rt.spawn_future(move || fib(&rt2, n - 2));
    let a = fib(rt, n - 1);
    a + future.touch()
}

fn fib_reference(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let next = a + b;
        a = b;
        b = next;
    }
    a
}

/// Asserts the internal consistency relations between the counters.
fn assert_stats_consistent(stats: &RuntimeStats, context: &str) {
    assert!(
        stats.touches <= stats.futures_created,
        "{context}: touched {} futures but only {} were created",
        stats.touches,
        stats.futures_created
    );
    assert!(
        stats.inline_runs <= stats.futures_created,
        "{context}: {} inline runs exceed {} created futures",
        stats.inline_runs,
        stats.futures_created
    );
    // Every non-inline future becomes a deque/injector task; steals and
    // helped tasks are both subsets of the executed tasks.
    let queued = stats.futures_created - stats.inline_runs;
    assert!(
        stats.tasks_executed <= queued,
        "{context}: executed {} tasks but only {} were ever queued",
        stats.tasks_executed,
        queued
    );
    assert!(
        stats.steals <= stats.tasks_executed,
        "{context}: {} steals exceed {} executed tasks",
        stats.steals,
        stats.tasks_executed
    );
    assert!(
        stats.helped_tasks <= stats.tasks_executed,
        "{context}: {} helped tasks exceed {} executed tasks",
        stats.helped_tasks,
        stats.tasks_executed
    );
    let frac = stats.inline_fraction();
    assert!(
        (0.0..=1.0).contains(&frac),
        "{context}: inline fraction {frac} out of range"
    );
    // Task-arrival wakeups are notify_one per push (and only when a worker
    // is parked), so they can never exceed the number of queued tasks.
    assert!(
        stats.wakeups <= queued,
        "{context}: {} wakeups exceed {} queued tasks — the herd is back",
        stats.wakeups,
        queued
    );
    // Every contained panic belongs to some future body.
    assert!(
        stats.panics <= stats.futures_created,
        "{context}: {} panics exceed {} created futures",
        stats.panics,
        stats.futures_created
    );
}

#[test]
fn fib_fanout_under_both_policies() {
    for policy in SpawnPolicy::ALL {
        for threads in [1usize, 2, 4] {
            let rt = Arc::new(Runtime::builder().threads(threads).policy(policy).build());
            let n = 16u64;
            let got = fib(&rt, n);
            assert_eq!(
                got,
                fib_reference(n),
                "fib({n}) wrong under {policy} with {threads} threads"
            );
            let stats = rt.stats();
            assert!(
                stats.futures_created > 0,
                "{policy}: fan-out created futures"
            );
            assert_eq!(
                stats.touches, stats.futures_created,
                "{policy}: every future is touched exactly once"
            );
            assert_stats_consistent(&stats, &format!("{policy}/{threads}t"));
        }
    }
}

#[test]
fn wide_flat_fanout_executes_every_task_once() {
    const FUTURES: usize = 500;
    for policy in SpawnPolicy::ALL {
        let rt = Arc::new(Runtime::builder().threads(4).policy(policy).build());
        let counter = Arc::new(AtomicU64::new(0));
        let futures: Vec<_> = (0..FUTURES)
            .map(|i| {
                let counter = Arc::clone(&counter);
                rt.spawn_future(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i as u64
                })
            })
            .collect();
        let sum: u64 = futures.into_iter().map(|f| f.touch()).sum();
        assert_eq!(sum, (0..FUTURES as u64).sum::<u64>(), "{policy}");
        assert_eq!(
            counter.load(Ordering::Relaxed),
            FUTURES as u64,
            "{policy}: every body ran exactly once"
        );
        let stats = rt.stats();
        assert_eq!(stats.futures_created, FUTURES as u64, "{policy}");
        assert_eq!(stats.touches, FUTURES as u64, "{policy}");
        assert_stats_consistent(&stats, &format!("flat fanout / {policy}"));
    }
}

#[test]
fn child_first_runs_nested_futures_inline() {
    // Under the future-first (child-first) policy, a single-threaded
    // runtime must run nested futures inline (there is nobody to steal
    // them), which is exactly the paper's locality argument.
    let rt = Arc::new(
        Runtime::builder()
            .threads(1)
            .policy(SpawnPolicy::ChildFirst)
            .build(),
    );
    assert_eq!(fib(&rt, 12), fib_reference(12));
    let stats = rt.stats();
    assert!(
        stats.inline_fraction() > 0.5,
        "child-first on one thread should inline most futures, got {}",
        stats.inline_fraction()
    );
    assert_stats_consistent(&stats, "child-first inline");
}

#[test]
fn helper_first_makes_futures_stealable() {
    // Helper-first never runs futures inline at spawn; with several
    // workers, steals (or injector pulls counted as executed tasks) must
    // account for every future.
    let rt = Arc::new(
        Runtime::builder()
            .threads(4)
            .policy(SpawnPolicy::HelperFirst)
            .build(),
    );
    assert_eq!(fib(&rt, 14), fib_reference(14));
    let stats = rt.stats();
    assert_eq!(
        stats.inline_runs, 0,
        "helper-first must not inline at spawn"
    );
    assert_eq!(
        stats.tasks_executed, stats.futures_created,
        "every queued future body executes exactly once"
    );
    assert_stats_consistent(&stats, "helper-first");
}

#[test]
fn join_combines_both_results() {
    for policy in SpawnPolicy::ALL {
        let rt = Runtime::builder().threads(2).policy(policy).build();
        let (a, b) = rt.join(|| 6 * 7, || "futures".len());
        assert_eq!((a, b), (42, 7), "{policy}");
    }
}

#[test]
fn external_submissions_never_lose_tasks() {
    // Tasks pushed from outside the pool go through the lock-free injector;
    // every one must execute exactly once and every touch must complete
    // (no lost wakeups), even with several external submitter threads
    // racing each other and the workers.
    for policy in SpawnPolicy::ALL {
        let rt = Arc::new(Runtime::builder().threads(2).policy(policy).build());
        let executed = Arc::new(AtomicU64::new(0));
        let submitters = 4usize;
        let per_submitter = 500usize;

        std::thread::scope(|scope| {
            for _ in 0..submitters {
                let rt = Arc::clone(&rt);
                let executed = Arc::clone(&executed);
                scope.spawn(move || {
                    let futures: Vec<_> = (0..per_submitter)
                        .map(|i| {
                            let executed = Arc::clone(&executed);
                            // defer_future always queues (never inlines), so
                            // every one of these crosses the injector when
                            // submitted from this non-worker thread.
                            rt.defer_future(move || {
                                executed.fetch_add(1, Ordering::Relaxed);
                                i as u64
                            })
                        })
                        .collect();
                    let sum: u64 = futures.into_iter().map(|f| f.touch()).sum();
                    assert_eq!(sum, (0..per_submitter as u64).sum::<u64>(), "{policy}");
                });
            }
        });

        assert_eq!(
            executed.load(Ordering::Relaxed),
            (submitters * per_submitter) as u64,
            "{policy}: every injected task executed exactly once"
        );
    }
}

#[test]
fn parked_workers_are_woken_one_per_task() {
    // Let the pool go fully idle (workers park within ~1 ms), then feed it
    // tasks from outside. Each arrival should wake a parked worker —
    // `wakeups` must move — but never more than one per push.
    let rt = Arc::new(Runtime::builder().threads(4).build());
    std::thread::sleep(std::time::Duration::from_millis(50));

    let mut total = 0u64;
    for _ in 0..20 {
        let futures: Vec<_> = (0..5).map(|i| rt.defer_future(move || i as u64)).collect();
        total += futures.into_iter().map(|f| f.touch()).sum::<u64>();
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(total, 20 * 10, "sum of 0..5 per round");

    let stats = rt.stats();
    assert!(
        stats.wakeups >= 1,
        "parked workers were never woken by arrivals (wakeups = 0)"
    );
    assert!(
        stats.wakeups <= stats.futures_created - stats.inline_runs,
        "{} wakeups for {} queued tasks",
        stats.wakeups,
        stats.futures_created - stats.inline_runs
    );
    assert_stats_consistent(&stats, "parked wakeups");
}

#[test]
fn panicking_task_is_contained_and_pool_stays_live() {
    // Regression: a panicking task body used to unwind straight through
    // its worker thread, killing it silently. The panic must be contained,
    // surfaced as a TaskError at the touch point, counted in
    // `RuntimeStats::panics` — and the pool must keep serving work.
    for policy in SpawnPolicy::ALL {
        let rt = Arc::new(Runtime::builder().threads(2).policy(policy).build());

        let bad = rt.spawn_future(|| -> u64 { panic!("intentional test panic") });
        match bad.touch_result() {
            Err(TaskError::Panicked(msg)) => {
                assert!(
                    msg.contains("intentional test panic"),
                    "{policy}: payload message preserved, got {msg:?}"
                );
            }
            other => panic!("{policy}: expected a contained panic, got {other:?}"),
        }

        let stats = rt.stats();
        assert_eq!(stats.panics, 1, "{policy}: the panic was counted");
        assert_eq!(rt.live_workers(), 2, "{policy}: no worker died");

        // The pool still executes a full fan-out afterwards.
        let futures: Vec<_> = (0..100u64).map(|i| rt.defer_future(move || i)).collect();
        let sum: u64 = futures.into_iter().map(|f| f.touch()).sum();
        assert_eq!(sum, 4950, "{policy}: pool serves work after a panic");
        assert_stats_consistent(&rt.stats(), &format!("post-panic / {policy}"));

        // And shutdown still completes promptly.
        let rt = Arc::into_inner(rt).expect("sole owner");
        rt.shutdown_timeout(Duration::from_secs(5))
            .unwrap_or_else(|e| panic!("{policy}: shutdown hung after a panic: {e}"));
    }
}

#[test]
fn inline_child_first_panic_is_contained_too() {
    // The child-first inline fast path runs the body on the *spawning*
    // worker; its panic must be contained identically (surfacing at the
    // touch, not unwinding into the spawner's own task).
    let rt = Arc::new(
        Runtime::builder()
            .threads(2)
            .policy(SpawnPolicy::ChildFirst)
            .build(),
    );
    let rt2 = Arc::clone(&rt);
    let outer = rt.spawn_future(move || {
        let inner = rt2.spawn_future(|| -> u64 { panic!("inline boom") });
        match inner.touch_result() {
            Err(TaskError::Panicked(msg)) => msg.contains("inline boom"),
            _ => false,
        }
    });
    assert!(
        outer.touch(),
        "inner panic observed as an error by the outer task"
    );
    assert!(rt.stats().inline_runs >= 1, "the inline path was exercised");
    assert_eq!(rt.stats().panics, 1);
}

#[test]
fn touch_resurfaces_the_contained_panic() {
    // `touch()` (the panicking variant) re-raises the failure at the
    // synchronization point — the caller that demanded the value.
    let rt = Runtime::builder().threads(2).build();
    let f = rt.spawn_future(|| -> u64 { panic!("resurface me") });
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.touch()));
    let payload = caught.expect_err("touch must panic on a failed future");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("touched a failed future") && msg.contains("resurface me"),
        "got {msg:?}"
    );
}

#[test]
fn shutdown_timeout_succeeds_on_an_idle_pool() {
    let rt = Runtime::builder().threads(4).build();
    let futures: Vec<_> = (0..50u64).map(|i| rt.defer_future(move || i)).collect();
    let sum: u64 = futures.into_iter().map(|f| f.touch()).sum();
    assert_eq!(sum, 1225);
    let stats = rt
        .shutdown_timeout(Duration::from_secs(5))
        .expect("idle pool shuts down well before the deadline");
    assert_eq!(stats.futures_created, 50);
}

#[test]
fn shutdown_watchdog_names_the_hung_worker() {
    // A task that blocks indefinitely wedges its worker; shutdown_timeout
    // must return (not hang), name the worker, and say where it was stuck.
    let rt = Runtime::builder().threads(2).build();
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let _stuck = rt.defer_future(move || {
        while !g.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        0u64
    });
    // Let a worker dequeue the task and block in its body.
    std::thread::sleep(Duration::from_millis(30));

    let err = rt
        .shutdown_timeout(Duration::from_millis(50))
        .expect_err("a wedged worker must trip the watchdog");
    assert_eq!(err.hung.len(), 1, "exactly one worker is wedged: {err}");
    assert_eq!(err.hung[0].site, "executing a task", "{err}");
    let rendered = err.to_string();
    assert!(
        rendered.contains("shutdown timed out") && rendered.contains("executing a task"),
        "diagnostic names the site: {rendered}"
    );

    // Release the worker so the detached thread exits cleanly.
    gate.store(true, Ordering::Release);
}

#[test]
fn stats_snapshots_are_monotonic() {
    let rt = Arc::new(Runtime::builder().threads(2).build());
    let before = rt.stats();
    let _ = fib(&rt, 10);
    let after = rt.stats();
    let delta = after.since(&before);
    assert_eq!(
        delta.futures_created,
        after.futures_created - before.futures_created
    );
    assert!(delta.futures_created > 0);
    assert_stats_consistent(&delta, "delta snapshot");
}

#[test]
fn per_worker_counters_sum_to_the_global_stats() {
    // The cache-padded per-worker steal/execute counters are incremented
    // alongside the global ones (both before a task's body runs), so once
    // every spawned future has been touched the pool is quiescent and the
    // per-worker figures must sum exactly to the `RuntimeStats` totals.
    for policy in SpawnPolicy::ALL {
        let rt = Arc::new(Runtime::builder().threads(4).policy(policy).build());
        let n = 18u64;
        assert_eq!(fib(&rt, n), fib_reference(n));

        let stats = rt.stats();
        let workers = rt.worker_stats();
        assert_eq!(workers.len(), 4, "{policy}: one snapshot per worker");
        for (i, w) in workers.iter().enumerate() {
            assert_eq!(w.index, i, "{policy}: snapshots are worker-indexed");
            assert!(
                w.steals <= w.tasks_executed,
                "{policy}: worker {i} stole {} tasks but executed only {}",
                w.steals,
                w.tasks_executed
            );
        }
        let steals: u64 = workers.iter().map(|w| w.steals).sum();
        let executed: u64 = workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(
            steals, stats.steals,
            "{policy}: per-worker steals must sum to the global counter"
        );
        assert_eq!(
            executed, stats.tasks_executed,
            "{policy}: per-worker executions must sum to the global counter"
        );
        assert_stats_consistent(&stats, &format!("per-worker sums / {policy}"));
    }
}
