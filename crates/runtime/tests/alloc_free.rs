//! Proves the touch recorder's allocation discipline: all of its heap
//! usage happens in [`TouchTrace::new`]'s up-front reserve.
//!
//! * [`TouchTrace::record`] performs **zero** allocations after
//!   construction — on the fast path, on the overflow (drop-and-count)
//!   path, and after a [`TouchTrace::clear`] (which keeps the reserves).
//! * At the run level, executing the same DAG on a traced and an
//!   untraced pool allocates the same in steady state: with the reserve
//!   paid at construction, enabling tracing adds no per-event cost to
//!   the hot loop (and disabled tracing is a single never-taken branch).
//!
//! The counter is process-global (worker threads allocate too), so this
//! file holds a single test function: nothing else may run concurrently
//! in this binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wsf_core::ForkPolicy;
use wsf_runtime::{Runtime, SpawnPolicy, TaskOrigin, TouchEvent, TouchTrace};
use wsf_workloads::dag_exec::run_dag_on_pool;
use wsf_workloads::sort;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus a process-global allocation counter.
struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter update allocates
// nothing (a static atomic).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn recording_allocates_only_during_the_construction_reserve() {
    // ---- Recorder in isolation: exact zero, deterministically. ----
    let trace = TouchTrace::new(4, 1024);
    let before = allocs();
    for lane in 0..trace.lanes() {
        trace.record(
            lane,
            TouchEvent::Task {
                origin: TaskOrigin::Local,
            },
        );
    }
    for n in 0..1023u32 {
        trace.record(
            0,
            TouchEvent::Node {
                node: n,
                block: Some(n % 7),
            },
        );
    }
    // Lane 0 is now full: the overflow path must count, not grow.
    for n in 0..512u32 {
        trace.record(
            0,
            TouchEvent::Node {
                node: n,
                block: None,
            },
        );
    }
    assert_eq!(
        allocs() - before,
        0,
        "record() must never allocate (fast path or overflow path)"
    );
    assert_eq!(trace.dropped(), 512);

    // clear() keeps the reserves, so refilling is also allocation-free.
    let before = allocs();
    trace.clear();
    for n in 0..1024u32 {
        trace.record(
            0,
            TouchEvent::Node {
                node: n,
                block: None,
            },
        );
    }
    assert_eq!(allocs() - before, 0, "clear() must keep the lane reserves");
    assert_eq!(trace.dropped(), 0);

    // ---- Run-level parity: tracing adds no per-event allocations. ----
    // The same DAG on one traced and one untraced single-worker pool; in
    // steady state (pools warmed, reserves paid) the traced run may not
    // allocate more than the untraced one beyond a small scheduling
    // jitter — a per-event cost would show up as hundreds of extra
    // allocations (the run records > 300 events).
    let dag = Arc::new(sort::mergesort(256, 8));
    let traced = Arc::new(
        Runtime::builder()
            .threads(1)
            .policy(SpawnPolicy::ChildFirst)
            .touch_trace(1 << 14)
            .build(),
    );
    let untraced = Arc::new(
        Runtime::builder()
            .threads(1)
            .policy(SpawnPolicy::ChildFirst)
            .build(),
    );
    let measure = |rt: &Arc<Runtime>| -> u64 {
        if let Some(t) = rt.touch_trace() {
            t.clear();
        }
        let before = allocs();
        let report = run_dag_on_pool(rt, &dag, ForkPolicy::FutureFirst);
        let count = allocs() - before;
        assert_eq!(report.nodes_executed, dag.num_nodes());
        count
    };
    let _warm = (measure(&traced), measure(&untraced));
    let traced_steady = measure(&traced).min(measure(&traced));
    let untraced_steady = measure(&untraced).min(measure(&untraced));
    let events = traced.touch_trace().unwrap().total_events() as u64;
    assert!(
        events > 300,
        "the parity run must be event-dense ({events})"
    );
    eprintln!("alloc parity: traced={traced_steady} untraced={untraced_steady} events={events}");
    assert!(
        traced_steady <= untraced_steady + events / 8,
        "tracing allocated per event: {traced_steady} vs {untraced_steady} \
         for {events} recorded events"
    );
}
