//! Crash-recovery tests: seeded fault schedules (worker kills, task
//! panics, injector stalls, delayed wakeups) driven through the streaming
//! epoch engine, asserting exactly-once committed effects.
//!
//! The fault seed is taken from `WSF_FAULT_SEED` when set (the CI
//! fault-matrix job sweeps it), so a failure reproduces by exporting the
//! printed seed.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use wsf_runtime::{
    sequential_reference, CheckpointStore, EpochConfig, FaultPlan, FaultSpec, Runtime, SpawnPolicy,
    StreamEngine, StreamSource, StreamStage,
};

/// Order-sensitive pipeline stage: a reordered or replayed fold changes
/// the committed state, so exactly-once violations are visible in it.
struct Mix(u64);

impl StreamStage for Mix {
    fn init(&self) -> u64 {
        self.0
    }
    fn transform(&self, state: u64, input: u64) -> u64 {
        (input ^ state)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15 | self.0)
            .rotate_left(7)
    }
    fn fold(&self, state: u64, output: u64) -> u64 {
        state.rotate_left(5).wrapping_add(output)
    }
}

fn stages() -> Vec<Arc<dyn StreamStage>> {
    vec![Arc::new(Mix(1)), Arc::new(Mix(2)), Arc::new(Mix(3))]
}

fn source(len: u64) -> impl StreamSource {
    move |i: u64| (i < len).then(|| i.wrapping_mul(0xd134_2543_de82_ef95) ^ 0x5eed)
}

fn config() -> EpochConfig {
    EpochConfig {
        epoch_items: 16,
        window: 4,
        max_retries: 6,
        retry_backoff: Duration::from_millis(1),
        task_timeout: Duration::from_secs(10),
    }
}

fn env_fault_seed() -> u64 {
    std::env::var("WSF_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The fingerprint a fault-free run of `len` items commits (the ground
/// truth faulted runs must reproduce byte-for-byte).
fn baseline_fingerprint(len: u64) -> u64 {
    let rt = Arc::new(Runtime::builder().threads(2).build());
    let mut engine = StreamEngine::new(rt, stages(), config());
    engine.run(&source(len)).expect("fault-free baseline");
    engine.store().fingerprint()
}

#[test]
fn kill_worker_mid_epoch_recovers_exactly_once() {
    let seed = env_fault_seed();
    let len = 96u64; // 6 epochs of 16
    let reference = sequential_reference(&stages(), &source(len), 16);
    let clean_fp = baseline_fingerprint(len);

    for policy in SpawnPolicy::ALL {
        let spec = FaultSpec {
            // Well under the ~96 dequeues the stream guarantees, so every
            // drawn fault actually fires.
            horizon: 48,
            panics: 3,
            kills: 2,
            stall_period: 5,
            stall: Duration::from_micros(100),
            wakeup_period: 3,
            wakeup_delay: Duration::from_micros(50),
        };
        let plan = Arc::new(FaultPlan::seeded(seed, &spec));
        let rt = Arc::new(
            Runtime::builder()
                .threads(3)
                .policy(policy)
                .fault_hooks(Arc::clone(&plan) as _)
                .build(),
        );

        let mut engine = StreamEngine::new(Arc::clone(&rt), stages(), config());
        let report = engine
            .run(&source(len))
            .unwrap_or_else(|e| panic!("seed {seed} / {policy}: run failed: {e}"));

        assert_eq!(report.epochs_committed, 6, "seed {seed} / {policy}");
        assert_eq!(report.items, len, "seed {seed} / {policy}");
        engine
            .store()
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed} / {policy}: bad log: {e}"));
        assert_eq!(
            engine.committed_states(),
            reference,
            "seed {seed} / {policy}: exactly-once item effects"
        );
        assert_eq!(
            engine.store().fingerprint(),
            clean_fp,
            "seed {seed} / {policy}: checkpoints identical to the fault-free run"
        );

        // The schedule was actually exercised: both kills fired, each
        // killing one worker permanently.
        assert_eq!(plan.fired_kills(), 2, "seed {seed} / {policy}");
        assert_eq!(plan.fired_panics(), 3, "seed {seed} / {policy}");
        let stats = rt.stats();
        assert_eq!(stats.worker_deaths, 2, "seed {seed} / {policy}");
        assert_eq!(rt.live_workers(), 1, "seed {seed} / {policy}");
        assert!(
            report.retries >= 1,
            "seed {seed} / {policy}: faults mid-epoch force at least one retry"
        );
        eprintln!(
            "seed {seed} / {policy}: retries={} stalls={} delays={}",
            report.retries,
            plan.fired_stalls(),
            plan.fired_delays()
        );
    }
}

#[test]
fn restore_resumes_from_last_committed_checkpoint() {
    // Phase 1: a worker is killed mid-stream; the process "crashes" after
    // 3 committed epochs and persists its checkpoint log.
    let seed = env_fault_seed();
    let len = 80u64; // 5 epochs of 16
    let words = {
        let spec = FaultSpec {
            horizon: 24,
            panics: 1,
            kills: 1,
            stall_period: 4,
            stall: Duration::from_micros(100),
            wakeup_period: 0,
            wakeup_delay: Duration::ZERO,
        };
        let plan = Arc::new(FaultPlan::seeded(seed, &spec));
        let rt = Arc::new(
            Runtime::builder()
                .threads(2)
                .fault_hooks(Arc::clone(&plan) as _)
                .build(),
        );
        let mut engine = StreamEngine::new(rt, stages(), config());
        let report = engine
            .run_epochs(&source(len), 3)
            .expect("first process commits 3 epochs");
        assert_eq!(report.epochs_committed, 3);
        engine.into_store().encode()
        // Runtime (with its dead worker) drops here: the crash.
    };

    // Phase 2: a fresh process decodes the log and resumes — replaying
    // nothing before the last barrier and finishing the stream.
    let store = CheckpointStore::decode(&words).expect("persisted log decodes");
    assert_eq!(store.len(), 3);
    let rt = Arc::new(Runtime::builder().threads(2).build());
    let mut engine = StreamEngine::resume(rt, stages(), config(), store).expect("log is resumable");
    assert_eq!(engine.next_item(), 48, "resume offset is the last barrier");
    engine.run(&source(len)).expect("resumed run finishes");

    assert_eq!(
        engine.committed_states(),
        sequential_reference(&stages(), &source(len), 16),
        "seed {seed}: restored stream commits the same final states"
    );
    assert_eq!(engine.store().fingerprint(), baseline_fingerprint(len));
}

#[test]
fn all_workers_dead_degrades_to_inline_commits() {
    // Kill the only worker early: the engine must shrink to zero workers
    // and keep committing inline on the driver thread rather than abort.
    let seed = env_fault_seed();
    let spec = FaultSpec {
        horizon: 4,
        panics: 0,
        kills: 1,
        stall_period: 0,
        stall: Duration::ZERO,
        wakeup_period: 0,
        wakeup_delay: Duration::ZERO,
    };
    let plan = Arc::new(FaultPlan::seeded(seed, &spec));
    let rt = Arc::new(
        Runtime::builder()
            .threads(1)
            .fault_hooks(Arc::clone(&plan) as _)
            .build(),
    );
    let len = 48u64;
    let mut engine = StreamEngine::new(Arc::clone(&rt), stages(), config());
    let report = engine
        .run(&source(len))
        .expect("degraded run still commits");

    assert_eq!(plan.fired_kills(), 1, "seed {seed}");
    assert_eq!(rt.live_workers(), 0, "seed {seed}");
    assert!(
        report.inline_epochs >= 1,
        "seed {seed}: at least one epoch ran inline after the pool died"
    );
    assert_eq!(report.epochs_committed, 3, "seed {seed}");
    assert_eq!(
        engine.committed_states(),
        sequential_reference(&stages(), &source(len), 16),
        "seed {seed}"
    );
    assert_eq!(engine.store().fingerprint(), baseline_fingerprint(len));
}

/// Body of the property below (outside the macro: the vendored proptest
/// macro recurses per token, so keep the in-macro body tiny). Runs one
/// random fault schedule and checks the exactly-once commit invariants:
/// the log stays contiguous (no lost or duplicated epoch) and the
/// committed states match the sequential reference.
fn check_random_schedule(seed: u64, panics: usize, kills: usize) -> Result<(), String> {
    let spec = FaultSpec {
        horizon: 20,
        panics,
        kills,
        stall_period: 3,
        stall: Duration::from_micros(50),
        wakeup_period: 4,
        wakeup_delay: Duration::from_micros(50),
    };
    let plan = Arc::new(FaultPlan::seeded(seed, &spec));
    let rt = Arc::new(
        Runtime::builder()
            .threads(3)
            .fault_hooks(Arc::clone(&plan) as _)
            .build(),
    );
    let len = 40u64; // 5 epochs of 8
    let cfg = EpochConfig {
        epoch_items: 8,
        window: 3,
        max_retries: 8,
        retry_backoff: Duration::from_millis(1),
        task_timeout: Duration::from_secs(10),
    };
    let mut engine = StreamEngine::new(rt, stages(), cfg);
    let report = engine
        .run(&source(len))
        .map_err(|e| format!("seed {seed}: run failed: {e}"))?;
    if report.epochs_committed != 5 || report.items != len {
        return Err(format!("seed {seed}: bad report {report:?}"));
    }
    engine
        .store()
        .validate()
        .map_err(|e| format!("seed {seed}: commit log violated: {e}"))?;
    if engine.committed_states() != sequential_reference(&stages(), &source(len), 8) {
        return Err(format!("seed {seed}: committed states diverged"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random fault schedules never lose or duplicate epoch commits.
    #[test]
    fn random_fault_schedules_never_lose_or_duplicate_commits(
        (seed, panics, kills) in (any::<u64>(), 0usize..5, 0usize..3)
    ) {
        let outcome = check_random_schedule(seed, panics, kills);
        prop_assert!(outcome.is_ok(), "{:?}", outcome);
    }
}
