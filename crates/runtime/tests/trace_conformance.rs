//! Conformance wall between the real pool and the simulators: the touch
//! traces `run_dag_on_pool` records must be the simulator's schedules.
//!
//! * At `P = 1` with the `ChildFirst` spawn policy, the single worker's
//!   trace must be **byte-identical** to the sequential executor's order
//!   for every Theorem-12/16 workload family, under both fork policies —
//!   a worker's own-deque LIFO pop is exactly the simulator's
//!   `pop_bottom`.
//! * At `P > 1` the schedule is nondeterministic, but every execution
//!   must satisfy the universal relations (each node exactly once,
//!   touching its declared block) and the theorem bounds on deviations
//!   and extra misses, checked by `wsf_analysis::validate` over repeated
//!   runs.
//! * Under injected worker kills and task panics (`FaultPlan` seeded from
//!   `WSF_FAULT_SEED`, swept by the CI fault matrix), the rescue path
//!   must still produce a bound-conformant trace.

use std::sync::Arc;
use std::time::Duration;
use wsf_analysis::validate::{validate_trace, BoundFamily};
use wsf_core::{ForkPolicy, SequentialExecutor};
use wsf_dag::Dag;
use wsf_runtime::{FaultPlan, FaultSpec, Runtime, SpawnPolicy, TouchTrace};
use wsf_workloads::dag_exec::run_dag_on_pool;
use wsf_workloads::{backpressure, sort, stencil};

/// Every Theorem-12/16/18 workload family the experiment suites sweep,
/// with the bound family its executed schedules are checked against.
fn families() -> Vec<(&'static str, Arc<Dag>, BoundFamily)> {
    vec![
        (
            "mergesort",
            Arc::new(sort::mergesort(64, 8)),
            BoundFamily::Thm12,
        ),
        (
            "mergesort_streaming",
            Arc::new(sort::mergesort_streaming(64, 8, 16)),
            BoundFamily::Thm12,
        ),
        (
            "stencil",
            Arc::new(stencil::stencil(3, 2, 3)),
            BoundFamily::Thm12,
        ),
        (
            "stencil_exchange/1",
            Arc::new(stencil::stencil_exchange(3, 2, 1)),
            BoundFamily::Thm16,
        ),
        (
            "stencil_exchange/2",
            Arc::new(stencil::stencil_exchange(3, 2, 2)),
            BoundFamily::Thm18,
        ),
        (
            "batched_pipeline",
            Arc::new(backpressure::batched_pipeline(3, 12, 4, 1)),
            BoundFamily::Thm12,
        ),
    ]
}

fn traced_pool(threads: usize) -> Arc<Runtime> {
    Arc::new(
        Runtime::builder()
            .threads(threads)
            .policy(SpawnPolicy::ChildFirst)
            .touch_trace(1 << 16)
            .build(),
    )
}

fn full_trace(trace: &TouchTrace) -> Vec<(u32, Option<u32>)> {
    (0..trace.lanes())
        .flat_map(|lane| trace.node_trace(lane))
        .collect()
}

#[test]
fn p1_traces_are_byte_identical_to_the_sequential_executor() {
    for (family, dag, _) in families() {
        for policy in [ForkPolicy::FutureFirst, ForkPolicy::ParentFirst] {
            let rt = traced_pool(1);
            let report = run_dag_on_pool(&rt, &dag, policy);
            assert_eq!(report.nodes_executed, dag.num_nodes(), "{family}");
            assert_eq!(report.rescued, 0, "{family}: fault-free runs never rescue");

            let trace = rt.touch_trace().expect("tracing enabled");
            assert_eq!(trace.dropped(), 0, "{family}");
            let worker: Vec<(u32, Option<u32>)> = trace.node_trace(0);
            for lane in 1..trace.lanes() {
                assert!(
                    trace.node_trace(lane).is_empty(),
                    "{family}: only the single worker may execute nodes"
                );
            }
            let seq = SequentialExecutor::new(policy).run(&dag);
            let expected: Vec<(u32, Option<u32>)> = seq
                .order
                .iter()
                .map(|&n| (n.0, dag.block_of(n).map(|b| b.0)))
                .collect();
            assert_eq!(worker, expected, "{family} under {policy:?}");
        }
    }
}

#[test]
fn parallel_traces_satisfy_universal_relations_and_bounds() {
    // The P > 1 schedule depends on OS timing, so each configuration is
    // executed repeatedly; every observed schedule must validate.
    for (family, dag, bound_family) in families() {
        for p in [2usize, 4] {
            for run in 0..3 {
                let rt = traced_pool(p);
                let report = run_dag_on_pool(&rt, &dag, ForkPolicy::FutureFirst);
                assert_eq!(report.nodes_executed, dag.num_nodes(), "{family} P={p}");

                let trace = rt.touch_trace().expect("tracing enabled");
                let v = validate_trace(
                    &dag,
                    &trace,
                    ForkPolicy::FutureFirst,
                    16,
                    p as u64,
                    bound_family,
                );
                assert!(v.coverage_ok, "{family} P={p} run {run}: {v:?}");
                assert!(
                    v.deviations <= v.deviation_bound && v.extra_misses <= v.miss_bound,
                    "{family} P={p} run {run}: {v:?}"
                );
                assert!(v.within, "{family} P={p} run {run}: {v:?}");

                // Exactly one node event per node, across all lanes.
                let mut nodes: Vec<u32> = full_trace(&trace).iter().map(|&(n, _)| n).collect();
                nodes.sort_unstable();
                let expected: Vec<u32> = (0..dag.num_nodes() as u32).collect();
                assert_eq!(nodes, expected, "{family} P={p} run {run}");
            }
        }
    }
}

fn env_fault_seed() -> u64 {
    std::env::var("WSF_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[test]
fn faulted_executions_still_produce_bound_conformant_traces() {
    // Worker kills and task panics lose chain tasks; the rescue sweep
    // must recover every node exactly once, and the resulting trace must
    // still sit within the theorem bounds (which hold for *any* executed
    // schedule of these shapes: deviations and extra misses are each at
    // most one per node).
    let seed = env_fault_seed();
    let dag = Arc::new(sort::mergesort(256, 8));
    let spec = FaultSpec {
        horizon: 32,
        panics: 2,
        kills: 2,
        stall_period: 5,
        stall: Duration::from_micros(200),
        wakeup_period: 3,
        wakeup_delay: Duration::from_micros(100),
    };
    for round in 0..2 {
        let plan = Arc::new(FaultPlan::seeded(seed.wrapping_add(round), &spec));
        let rt = Arc::new(
            Runtime::builder()
                .threads(4)
                .policy(SpawnPolicy::ChildFirst)
                .touch_trace(1 << 16)
                .fault_hooks(Arc::clone(&plan) as _)
                .build(),
        );
        let report = run_dag_on_pool(&rt, &dag, ForkPolicy::FutureFirst);
        assert_eq!(
            report.nodes_executed,
            dag.num_nodes(),
            "seed {seed} round {round}: rescue must recover every node"
        );
        assert!(
            plan.fired_kills() + plan.fired_panics() > 0,
            "seed {seed} round {round}: the fault plan never fired"
        );

        let trace = rt.touch_trace().expect("tracing enabled");
        let v = validate_trace(
            &dag,
            &trace,
            ForkPolicy::FutureFirst,
            16,
            4,
            BoundFamily::Thm12,
        );
        assert!(
            dag.num_nodes() as u64 <= v.deviation_bound && dag.num_nodes() as u64 <= v.miss_bound,
            "shape too large for schedule-independent verdicts: {v:?}"
        );
        assert!(v.coverage_ok, "seed {seed} round {round}: {v:?}");
        assert!(v.within, "seed {seed} round {round}: {v:?}");
        eprintln!(
            "fault conformance seed {seed} round {round}: rescued={} deviations={}/{} \
             extra={}/{} kills={} panics={}",
            report.rescued,
            v.deviations,
            v.deviation_bound,
            v.extra_misses,
            v.miss_bound,
            plan.fired_kills(),
            plan.fired_panics(),
        );
    }
}
