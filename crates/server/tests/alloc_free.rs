//! Proves the server's ingest hot path is allocation-free in steady state.
//!
//! This extends the simulator's counting-allocator proof
//! (`crates/core/tests/alloc_free.rs`) to the full decode → admit →
//! arena-build → `push_batch` path: a counting global allocator tracks
//! *this thread's* allocations while the test plays the connection-reader
//! role — feeding raw frame bytes through a [`FrameReader`] into
//! [`ServerCore::ingest_frame`]. After warm-up, a full ingest round must
//! allocate nothing at all on the ingest thread, round after round — only
//! possible if every buffer is reused: the frame reader's byte and word
//! arenas, the [`DagBuilder`]'s node/thread pools (recycled from completed
//! submissions), the job staging buffer, and the injector's epoch-recycled
//! segments.
//!
//! Warm-up is adaptive rather than a fixed count: the recycled DAG
//! node-buffers rotate through differently-sized thread roles across the
//! mixed shapes, so capacities saturate gradually (each round can grow at
//! most a few buffers), and the injector's segment free-list only proves
//! reuse once pushes have crossed a segment boundary (every `SEG_CAP`
//! submissions). The test therefore warms until a long streak of
//! zero-allocation rounds — long enough to span segment-boundary
//! crossings — and only then asserts the steady state.
//!
//! Executor-side work (the future cell, completion records) happens on
//! other threads and is deliberately out of scope: the claim under test is
//! the *ingest* path, per the counting-allocator convention of measuring
//! only the current thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::{Duration, Instant};

use wsf_server::{
    frame_request, AdmissionMode, Completion, FrameReader, ServerConfig, ServerCore, TenantSpec,
    STATUS_OK,
};
use wsf_workloads::submission::ShapeSpec;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The system allocator plus a per-thread allocation counter (per-thread so
/// the executor threads cannot disturb the measurement).
struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter update allocates
// nothing (a `const`-initialized thread-local `Cell<u64>`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Zero-allocation rounds required before the steady state counts as
/// reached: > `SEG_CAP` (64) / submissions-per-round (3), so the streak is
/// guaranteed to span at least one injector segment-boundary crossing.
const ZERO_STREAK: u32 = 30;
/// Warm-up bound; saturating every recycled buffer takes tens of rounds.
const MAX_WARMUP_ROUNDS: u32 = 400;

#[test]
fn ingest_path_is_allocation_free_in_steady_state() {
    let core = ServerCore::new(ServerConfig {
        runtime_threads: 1,
        executors: 1,
        admission: AdmissionMode::QueueAll,
        tenants: vec![TenantSpec::default_with_seed(3)],
        fault_hooks: None,
    });
    let (mut ingest, conn) = core.connection();

    // Pre-encode one request frame per shape (buffers reused; the encode
    // itself is part of the warmed client, not the server's ingest path).
    let shapes = ShapeSpec::smoke_mix();
    let frames: Vec<Vec<u8>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut bytes = Vec::new();
            frame_request(0, &[(i as u64 + 1, s)], &mut bytes);
            bytes
        })
        .collect();

    let mut reader = FrameReader::new();
    let mut drained: Vec<Completion> = Vec::with_capacity(16);

    // One full ingest round. Each frame's completion is awaited before the
    // next frame is ingested, so the spent DAG is deterministically back in
    // the connection's recycle pool when ingest needs it — under pipelined
    // load the recycle hit is timing-dependent (a miss builds with fresh
    // buffers), and this test asserts the recycling path itself, not the
    // executor's race with the ingest thread. Only the ingest calls are
    // inside the measurement window.
    let mut round = || -> u64 {
        let mut count = 0;
        for bytes in &frames {
            let before = allocs();
            reader.push_bytes(bytes);
            while reader.poll_frame().expect("well-formed frame") {
                core.ingest_frame(&mut ingest, &conn, reader.words())
                    .expect("ingest");
            }
            count += allocs() - before;
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut got = 0;
            while got < 1 {
                assert!(Instant::now() < deadline, "completion timed out");
                drained.clear();
                got += conn.drain_completions(&mut drained, Duration::from_millis(50));
                for c in &drained {
                    assert_eq!(c.status, STATUS_OK);
                }
            }
        }
        count
    };

    let mut streak = 0u32;
    let mut warmup_rounds = 0u32;
    while streak < ZERO_STREAK {
        warmup_rounds += 1;
        assert!(
            warmup_rounds <= MAX_WARMUP_ROUNDS,
            "ingest never reached a {ZERO_STREAK}-round zero-allocation streak \
             within {MAX_WARMUP_ROUNDS} rounds: the hot path allocates in steady state"
        );
        if round() == 0 {
            streak += 1;
        } else {
            streak = 0;
        }
    }

    // Steady state: every further round — including ones that cross
    // injector segment boundaries — must allocate nothing on this thread.
    for i in 0..ZERO_STREAK {
        let steady = round();
        assert_eq!(
            steady, 0,
            "steady-state ingest round {i} allocated {steady} times on the reader \
             thread; decode → admit → arena-build → push_batch must reuse every buffer"
        );
    }

    let report = core.shutdown(Duration::from_secs(10));
    assert!(report.drained);
}
