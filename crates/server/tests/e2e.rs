//! End-to-end server tests over real TCP sockets: round-trip correctness
//! against a local replay, graceful shutdown with a hung client attached,
//! and exactly-once completion delivery under injected worker kills.
//!
//! The fault seed is taken from `WSF_FAULT_SEED` when set (the CI
//! fault-matrix job sweeps it), so a failure reproduces by exporting the
//! printed seed.

use std::collections::BTreeSet;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wsf_core::{ParallelSimulator, PolicyScheduler};
use wsf_dag::DagBuilder;
use wsf_runtime::{FaultPlan, FaultSpec};
use wsf_server::{
    AdmissionMode, BenchClient, Completion, Server, ServerConfig, TenantSpec, STATUS_OK,
};
use wsf_workloads::submission::{ShapeScratch, ShapeSpec};

fn env_fault_seed() -> u64 {
    std::env::var("WSF_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn two_tenant_config() -> ServerConfig {
    ServerConfig {
        runtime_threads: 2,
        executors: 2,
        admission: AdmissionMode::QueueAll,
        tenants: vec![
            TenantSpec::default_with_seed(11),
            TenantSpec::default_with_seed(22),
        ],
        fault_hooks: None,
    }
}

/// Executes `spec` locally under `tenant`'s deterministic simulator
/// config — the ground truth a server completion must match.
fn local_replay(tenant: &TenantSpec, spec: ShapeSpec) -> (u64, u64) {
    let mut b = DagBuilder::new();
    let mut s = ShapeScratch::new();
    let dag = spec.build_into(&mut b, &mut s);
    let sim = ParallelSimulator::new(tenant.sim_config());
    let seq = sim.sequential(&dag);
    let mut sched = PolicyScheduler::new(tenant.policy);
    let report = sim.run_against(&dag, &seq, &mut sched, false);
    (report.cache_misses(), report.deviations())
}

fn collect(client: &mut BenchClient, want: usize) -> Vec<Completion> {
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while out.len() < want {
        assert!(
            Instant::now() < deadline,
            "timed out at {}/{want}",
            out.len()
        );
        client
            .recv_completions(&mut out, Duration::from_secs(5))
            .expect("recv completions");
    }
    out
}

#[test]
fn tcp_round_trip_matches_local_replay() {
    let server = Server::bind_tcp("127.0.0.1:0", two_tenant_config()).expect("bind");
    let addr = server.tcp_addr().unwrap();
    let mut client = BenchClient::connect_tcp(addr).expect("connect");

    let shapes = ShapeSpec::smoke_mix();
    let mut expected = Vec::new();
    for (t, tenant_seed) in [(0u64, 11u64), (1, 22)] {
        let batch: Vec<(u64, ShapeSpec)> = shapes
            .iter()
            .enumerate()
            .map(|(i, &s)| (t * 100 + i as u64, s))
            .collect();
        client.submit_batch(t, &batch).expect("submit");
        for &(id, s) in &batch {
            expected.push((id, s, TenantSpec::default_with_seed(tenant_seed)));
        }
    }

    let completions = collect(&mut client, expected.len());
    assert_eq!(completions.len(), expected.len());
    for (id, spec, tenant) in expected {
        let c = completions
            .iter()
            .find(|c| c.request_id == id)
            .unwrap_or_else(|| panic!("no completion for request {id}"));
        assert_eq!(c.status, STATUS_OK, "request {id}");
        assert_eq!(c.footprint, spec.footprint(), "request {id} footprint");
        let (misses, deviations) = local_replay(&tenant, spec);
        assert_eq!(c.misses, misses, "request {id} misses");
        assert_eq!(c.deviations, deviations, "request {id} deviations");
    }

    for t in 0..2 {
        let r = server.core().tenant_report(t);
        assert_eq!(r.completed, 3, "tenant {t}");
        assert_eq!(r.inflight, 0, "tenant {t}");
    }
    let report = server.shutdown(Duration::from_secs(10));
    assert!(report.drained);
    assert_eq!(report.hung_workers, 0);
    assert_eq!(report.detached_executors, 0);
}

#[test]
fn hung_client_cannot_wedge_shutdown() {
    let server = Server::bind_tcp("127.0.0.1:0", two_tenant_config()).expect("bind");
    let addr = server.tcp_addr().unwrap();

    // A healthy client proves the server is live...
    let mut healthy = BenchClient::connect_tcp(addr).expect("connect healthy");
    healthy
        .submit_batch(0, &[(7, ShapeSpec::Mergesort { leaves: 16 })])
        .expect("submit");
    let done = collect(&mut healthy, 1);
    assert_eq!(done[0].status, STATUS_OK);

    // ...and a hung one sends half a frame, then goes silent forever.
    let mut hung = std::net::TcpStream::connect(addr).expect("connect hung");
    hung.write_all(&[0x03, 0, 0, 0, 0]).expect("partial frame");
    // (keep `hung` open across the shutdown)

    let started = Instant::now();
    let report = server.shutdown(Duration::from_secs(5));
    let took = started.elapsed();
    assert!(report.drained, "nothing should remain queued");
    assert!(
        took < Duration::from_secs(5),
        "shutdown took {took:?} with a hung client attached"
    );
    drop(hung);
}

#[test]
fn exactly_once_completions_under_injected_worker_kills() {
    let seed = env_fault_seed();
    // Three of the four workers get killed mid-run; a few task panics and
    // injector stalls ride along. The horizon is well under the task count
    // so every drawn fault actually fires.
    let spec = FaultSpec {
        horizon: 24,
        panics: 2,
        kills: 3,
        stall_period: 5,
        stall: Duration::from_micros(200),
        wakeup_period: 4,
        wakeup_delay: Duration::from_micros(100),
    };
    let plan = Arc::new(FaultPlan::seeded(seed, &spec));
    let config = ServerConfig {
        runtime_threads: 4,
        executors: 2,
        admission: AdmissionMode::QueueAll,
        tenants: vec![TenantSpec::default_with_seed(5)],
        fault_hooks: Some(plan),
    };
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.tcp_addr().unwrap();
    let mut client = BenchClient::connect_tcp(addr).expect("connect");

    let shapes = ShapeSpec::smoke_mix();
    const TOTAL: u64 = 40;
    let mut sent = 0u64;
    while sent < TOTAL {
        let batch: Vec<(u64, ShapeSpec)> = (0..8)
            .map(|i| {
                let id = sent + i + 1;
                (id, shapes[id as usize % shapes.len()])
            })
            .collect();
        client.submit_batch(0, &batch).expect("submit");
        sent += batch.len() as u64;
    }

    let completions = collect(&mut client, TOTAL as usize);
    let ids: BTreeSet<u64> = completions.iter().map(|c| c.request_id).collect();
    assert_eq!(
        ids.len(),
        completions.len(),
        "duplicate completions under seed {seed}"
    );
    assert_eq!(
        ids,
        (1..=TOTAL).collect::<BTreeSet<u64>>(),
        "lost completions under seed {seed}"
    );
    // Every submission must still succeed: kills fire before the task body
    // runs (the DAG survives for retry), and the executor falls back to
    // inline simulation once the pool degrades.
    for c in &completions {
        assert_eq!(
            c.status, STATUS_OK,
            "request {} under seed {seed}",
            c.request_id
        );
    }
    // Simulation results stay deterministic even when computed on a retry.
    let tenant = TenantSpec::default_with_seed(5);
    for c in completions.iter().take(6) {
        let spec = shapes[c.request_id as usize % shapes.len()];
        let (misses, deviations) = local_replay(&tenant, spec);
        assert_eq!(
            c.misses, misses,
            "request {} under seed {seed}",
            c.request_id
        );
        assert_eq!(
            c.deviations, deviations,
            "request {} under seed {seed}",
            c.request_id
        );
    }

    let report = server.shutdown(Duration::from_secs(10));
    assert!(
        report.drained,
        "drain must survive worker deaths (seed {seed})"
    );
}
