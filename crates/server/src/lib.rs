//! `wsf-server`: futures-as-a-service over the `wsf` runtime.
//!
//! A TCP/UDS front end that accepts DAG/future submissions from many
//! concurrent clients over a length-prefixed, versioned flat-`u64` binary
//! protocol ([`protocol`]), decodes them into a per-connection reusable
//! [`wsf_dag::DagBuilder`] arena (no steady-state allocation on the ingest
//! hot path), admits or sheds them by declared block footprint
//! ([`admission`]), batches accepted work into the runtime's injector via
//! [`wsf_deque::Injector::push_batch`] — one two-parity epoch-guard entry
//! per frame — and executes each submission on a shared
//! [`wsf_runtime::Runtime`] with per-tenant accounting ([`tenant`]).
//!
//! Layering:
//!
//! * [`protocol`] — framing and status codes (transport-free, allocation-
//!   free after warm-up).
//! * [`admission`] — the reject-vs-queue decision.
//! * [`tenant`] — per-tenant policy/machine specs and accounting.
//! * [`core`] — ingest → admit → arena-build → batch-inject → execute;
//!   exactly-once completion delivery under injected worker faults;
//!   graceful drain-then-stop shutdown.
//! * [`net`] — TCP/UDS listeners and per-connection reader/writer threads;
//!   hung clients cannot wedge shutdown.
//! * [`client`] — closed- and open-loop load harnesses with zipfian tenant
//!   popularity and p50/p99/p999 latency measurement (E20 and the
//!   `server_macro` benchmarks drive these).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod client;
pub mod core;
pub mod net;
pub mod protocol;
pub mod tenant;

pub use admission::AdmissionMode;
pub use client::{
    run_closed_loop, run_open_loop, run_open_loop_multi, BenchClient, Endpoint, LatencyRecorder,
    LoadConfig, LoadReport, ZipfSampler,
};
pub use core::{Completion, ConnShared, Ingest, ServerConfig, ServerCore, ServerReport};
pub use net::Server;
pub use protocol::{
    frame_request, FrameReader, ProtocolError, COMPLETION_WORDS, MAX_FRAME_WORDS, PROTOCOL_VERSION,
    REQUEST_MAGIC, RESPONSE_MAGIC, STATUS_BAD_SHAPE, STATUS_FAILED, STATUS_OK, STATUS_SHED,
    STATUS_SHUTTING_DOWN,
};
pub use tenant::{TenantReport, TenantSpec};
